//! Cross-crate integration tests of the packet simulator: every scheme on
//! a real (small) trace, plus scheme-differentiating behaviours from the
//! paper's evaluation.

use flowtune_sim::{Scheme, SimConfig, Simulation, MS};
use flowtune_topo::ClosConfig;
use flowtune_workload::{TraceConfig, TraceGenerator, Workload};

fn pod(racks: usize) -> ClosConfig {
    ClosConfig {
        racks,
        servers_per_rack: 16,
        racks_per_block: racks,
        ..ClosConfig::paper_eval()
    }
}

fn run_trace(scheme: Scheme, load: f64, horizon_ms: u64, seed: u64) -> Simulation {
    let mut cfg = SimConfig::paper(scheme);
    cfg.clos = pod(2);
    cfg.sample_interval_ps = 200_000_000;
    let mut sim = Simulation::new(cfg);
    let mut gen = TraceGenerator::new(TraceConfig {
        workload: Workload::Web,
        load,
        servers: 32,
        server_link_bps: 10_000_000_000,
        seed,
        affinity: None,
    });
    for e in gen.events_until(horizon_ms * MS) {
        sim.add_flow(e.at_ps, e.src as u16, e.dst as u16, e.bytes);
    }
    sim.run_until(horizon_ms * MS + 50 * MS);
    sim
}

#[test]
fn every_scheme_completes_a_real_trace() {
    for scheme in Scheme::ALL {
        let sim = run_trace(scheme, 0.4, 4, 1);
        let m = sim.metrics();
        let completed = m.fcts.len();
        assert!(completed > 20, "{}: only {completed} flows", scheme.name());
        // All slowdowns are ≥ ~1 (can dip a hair below 1 because the
        // ideal time charges the whole size at the bottleneck rate while
        // the first packets overlap propagation).
        for r in &m.fcts {
            assert!(
                r.slowdown > 0.9,
                "{}: slowdown {}",
                scheme.name(),
                r.slowdown
            );
        }
    }
}

#[test]
fn flowtune_beats_dctcp_on_small_flow_tails_under_load() {
    let ft = run_trace(Scheme::Flowtune, 0.7, 5, 3);
    let dc = run_trace(Scheme::Dctcp, 0.7, 5, 3);
    let ft_p99 = ft.metrics().p_slowdown("1-10 packets", 99.0).unwrap();
    let dc_p99 = dc.metrics().p_slowdown("1-10 packets", 99.0).unwrap();
    assert!(
        ft_p99 < dc_p99,
        "Flowtune p99 {ft_p99} should beat DCTCP {dc_p99}"
    );
}

#[test]
fn flowtune_keeps_queues_shorter_than_dctcp() {
    let ft = run_trace(Scheme::Flowtune, 0.7, 5, 3);
    let dc = run_trace(Scheme::Dctcp, 0.7, 5, 3);
    let ft_q = ft.metrics().p_queue_delay(4, 99.0).unwrap_or(0);
    let dc_q = dc.metrics().p_queue_delay(4, 99.0).unwrap_or(0);
    assert!(
        ft_q < dc_q,
        "Flowtune 4-hop p99 queue {ft_q} ps should be below DCTCP {dc_q} ps"
    );
}

#[test]
fn flowtune_and_dctcp_drop_negligibly_pfabric_drops() {
    let ft = run_trace(Scheme::Flowtune, 0.6, 4, 7);
    let pf = run_trace(Scheme::Pfabric, 0.6, 4, 7);
    assert_eq!(ft.metrics().dropped_data_bytes, 0, "Flowtune drops");
    assert!(
        pf.metrics().dropped_data_bytes > 0,
        "pFabric's tiny buffers must drop under load"
    );
}

#[test]
fn control_overhead_is_a_small_fraction() {
    let sim = run_trace(Scheme::Flowtune, 0.6, 5, 11);
    let m = sim.metrics();
    let secs = 55.0 * 1e-3;
    let frac =
        (m.ctrl_bytes_to_alloc + m.ctrl_bytes_from_alloc) as f64 * 8.0 / secs / (32.0 * 1e10);
    assert!(frac < 0.05, "control overhead {frac} too high");
    assert!(frac > 0.0, "control traffic must exist");
    let stats = sim.allocator_stats().unwrap();
    assert!(stats.starts > 20);
    assert!(stats.ends > 0, "flowlet ends must flow back");
}

#[test]
fn conservation_no_scheme_invents_bytes() {
    for scheme in Scheme::ALL {
        let sim = run_trace(scheme, 0.5, 3, 13);
        let m = sim.metrics();
        let offered: u64 = m.fcts.iter().map(|r| r.bytes).sum();
        assert!(
            m.delivered_bytes >= offered,
            "{}: delivered {} < completed-flow bytes {}",
            scheme.name(),
            m.delivered_bytes,
            offered
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let a = run_trace(Scheme::Flowtune, 0.5, 3, 17);
    let b = run_trace(Scheme::Flowtune, 0.5, 3, 17);
    let fa: Vec<_> = a
        .metrics()
        .fcts
        .iter()
        .map(|r| (r.flow, r.end_ps))
        .collect();
    let fb: Vec<_> = b
        .metrics()
        .fcts
        .iter()
        .map(|r| (r.flow, r.end_ps))
        .collect();
    assert_eq!(fa, fb);
}
