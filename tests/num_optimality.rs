//! Analytic-optimum tests: NED (and the block-decomposed allocator built
//! on it) must land on allocations that can be derived by hand from the
//! proportional-fairness KKT conditions.

use flowtune_alloc::{AllocConfig, SerialAllocator};
use flowtune_num::solver::solve;
use flowtune_num::{Ned, NumProblem, SolverState, Utility};
use flowtune_topo::{ClosConfig, FlowId, LinkId, TwoTierClos};

fn l(i: u32) -> LinkId {
    LinkId(i)
}

#[test]
fn triangle_with_asymmetric_capacities() {
    // Links a=6, b=12. Flow 1 on {a}, flow 2 on {a,b}, flow 3 on {b}.
    // KKT: x1 = 1/pa, x2 = 1/(pa+pb), x3 = 1/pb with both links tight.
    // Solving: pa ≈ 0.2770, pb ≈ 0.1070 → x1 ≈ 3.610, x2 ≈ 2.604,
    // x3 ≈ 9.346 (verified by substitution: x1+x2 = 6.21? — no: compute
    // exactly below from the converged state instead of trusting algebra,
    // then assert the *invariants*).
    let mut p = NumProblem::new(vec![6.0, 12.0]);
    let f1 = p.add_flow(vec![l(0)], Utility::log(1.0));
    let f2 = p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
    let f3 = p.add_flow(vec![l(1)], Utility::log(1.0));
    let mut s = SolverState::new(&p);
    let r = solve(&mut Ned::new(0.4), &p, &mut s, 20_000, 1e-10);
    assert!(r.converged, "{r:?}");
    let (x1, x2, x3) = (s.rates[f1], s.rates[f2], s.rates[f3]);
    // Both links saturated.
    assert!((x1 + x2 - 6.0).abs() < 1e-6);
    assert!((x2 + x3 - 12.0).abs() < 1e-6);
    // Price consistency: 1/x2 = 1/x1 + 1/x3 (λ additivity for log
    // utility: λ2 = λ1 + λ3).
    assert!((1.0 / x2 - (1.0 / x1 + 1.0 / x3)).abs() < 1e-6);
    // The shared flow gets less than either single-link flow.
    assert!(x2 < x1 && x2 < x3);
}

#[test]
fn n_parking_lot_matches_closed_form() {
    // L unit links in a chain; 1 long flow over all, one 1-hop flow per
    // link. Proportional fairness: long = 1/(L+1)... only for L=1. For
    // general L the KKT gives x_long from Σ p = L·p (symmetric):
    // x_short + x_long = 1, x_short = 1/p, x_long = 1/(L·p)
    // ⇒ 1/p + 1/(Lp) = 1 ⇒ p = (L+1)/L ⇒ x_short = L/(L+1),
    // x_long = 1/(L+1). Holds for every L.
    for links in [1usize, 2, 4, 8] {
        let mut p = NumProblem::new(vec![1.0; links]);
        let long = p.add_flow((0..links as u32).map(l).collect(), Utility::log(1.0));
        let shorts: Vec<_> = (0..links as u32)
            .map(|i| p.add_flow(vec![l(i)], Utility::log(1.0)))
            .collect();
        let mut s = SolverState::new(&p);
        let r = solve(&mut Ned::new(0.2), &p, &mut s, 100_000, 1e-10);
        assert!(r.converged, "L={links}: {r:?}");
        let expect_long = 1.0 / (links as f64 + 1.0);
        assert!(
            (s.rates[long] - expect_long).abs() < 1e-6,
            "L={links}: long {} vs {expect_long}",
            s.rates[long]
        );
        for sf in shorts {
            assert!((s.rates[sf] - (1.0 - expect_long)).abs() < 1e-6);
        }
    }
}

#[test]
fn block_allocator_agrees_with_analytic_shares_on_a_fabric() {
    // 16 senders in rack 0 all send to distinct servers of rack 2 via
    // the fabric. Each flow is alone on its 40 G uplink and its
    // receiver's downlink, so the only possible bottleneck is its
    // ECMP-chosen ToR→spine (and matching spine→ToR) link: with c flows
    // hashed to the same 160 G fabric link, each gets min(40, 160/c).
    let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 16));
    let mut alloc = SerialAllocator::new(
        &fabric,
        AllocConfig {
            capacity_fraction: 1.0,
            ..AllocConfig::default()
        },
    );
    let mut spine_of = Vec::new();
    let mut collisions = [0u32; 4];
    for s in 0..16usize {
        let dst = 32 + s; // rack 2
        let id = FlowId(s as u64);
        let path = fabric.path(s, dst, id);
        let spine = fabric.ecmp_spine(s, dst, id);
        spine_of.push(spine);
        collisions[spine] += 1;
        alloc.add_flow(id, s, dst, 1.0, &path);
    }
    alloc.run_iterations(2000);
    for s in 0..16 {
        let r = alloc.flow_rate(FlowId(s as u64)).unwrap();
        let expect = 40.0f64.min(160.0 / collisions[spine_of[s]] as f64);
        assert!(
            (r.rate - expect).abs() < 1e-3,
            "flow {s}: {} vs analytic {expect} ({} flows on spine {})",
            r.rate,
            collisions[spine_of[s]],
            spine_of[s]
        );
    }
}

#[test]
fn alpha_fair_extension_matches_log_at_alpha_near_one() {
    // α → 1 recovers proportional fairness; α = 1 ± ε should produce
    // nearly identical allocations on an asymmetric instance.
    let build = |u: Utility| {
        let mut p = NumProblem::new(vec![10.0, 4.0]);
        p.add_flow(vec![l(0), l(1)], u);
        p.add_flow(vec![l(0)], u);
        p
    };
    let plog = build(Utility::log(1.0));
    let mut slog = SolverState::new(&plog);
    assert!(solve(&mut Ned::new(0.4), &plog, &mut slog, 50_000, 1e-9).converged);

    let pa = build(Utility::alpha_fair(1.0, 1.001));
    let mut sa = SolverState::new(&pa);
    assert!(solve(&mut Ned::new(0.4), &pa, &mut sa, 50_000, 1e-9).converged);

    for i in 0..2 {
        assert!(
            (slog.rates[i] - sa.rates[i]).abs() < 0.01,
            "flow {i}: log {} vs α-fair {}",
            slog.rates[i],
            sa.rates[i]
        );
    }
}

#[test]
fn alpha_two_is_less_throughput_more_equal() {
    // Higher α trades throughput for equality: on the parking lot, the
    // multi-hop flow does better under α=2 than under proportional
    // fairness, at lower total throughput.
    let build = |u: Utility| {
        let mut p = NumProblem::new(vec![1.0, 1.0]);
        let long = p.add_flow(vec![l(0), l(1)], u);
        p.add_flow(vec![l(0)], u);
        p.add_flow(vec![l(1)], u);
        (p, long)
    };
    let (plog, long_log) = build(Utility::log(1.0));
    let mut slog = SolverState::new(&plog);
    assert!(solve(&mut Ned::new(0.2), &plog, &mut slog, 100_000, 1e-9).converged);
    let (p2, long_2) = build(Utility::alpha_fair(1.0, 2.0));
    let mut s2 = SolverState::new(&p2);
    assert!(solve(&mut Ned::new(0.2), &p2, &mut s2, 100_000, 1e-9).converged);

    assert!(
        s2.rates[long_2] > slog.rates[long_log],
        "α=2 favours the long flow"
    );
    let total_log: f64 = slog.rates.iter().sum();
    let total_2: f64 = s2.rates.iter().sum();
    assert!(total_2 < total_log, "…at lower total throughput");
}
