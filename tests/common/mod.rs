//! Differential conformance harness (ISSUE 10 satellite).
//!
//! Every control-plane equivalence test in this suite has the same
//! skeleton: build two [`TickDriver`]s, feed both the identical
//! notification stream round by round, tick both after every round, and
//! demand bit-for-bit equal update streams, final rates, counters, and
//! active-flow totals. This module owns that skeleton once:
//!
//! * [`Replay`] is a driver-independent notification schedule — either a
//!   seeded churn stream ([`Replay::churn`], the schedule the sharded /
//!   incremental equivalence tests always used) or a recording of a
//!   [`Scenario`] run ([`Replay::record`], via
//!   [`flowtune::run_scenario_traced`]'s trace hook);
//! * [`assert_bit_for_bit`] replays one schedule through a reference and
//!   a candidate driver and asserts they are indistinguishable.
//!
//! Scenario streams must be *recorded* rather than generated per driver:
//! barrier admission depends on flow completion, so the stream is an
//! output of the run. Replaying an oracle's recording into every driver
//! is exactly right for drivers that are bit-for-bit equal — which is the
//! property under test.

#![allow(dead_code)] // each integration-test binary uses a subset

use flowtune::{
    run_scenario_traced, ScenarioOptions, ScenarioReport, ServiceStats, TickDriver, TickLoop,
};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};
use flowtune_workload::Scenario;

/// Two blocks of 2 racks × 4 servers: 16 servers, block 0 = 0..8,
/// block 1 = 8..16, 40 G hosts — the equivalence-test fabric.
pub fn fabric() -> TwoTierClos {
    TwoTierClos::build(ClosConfig::multicore(2, 2, 4))
}

/// A `FlowletStart` with the fabric's own ECMP spine choice.
pub fn start(fabric: &TwoTierClos, token: u32, src: u16, dst: u16) -> Message {
    let spine = fabric.ecmp_spine(
        src as usize,
        dst as usize,
        flowtune_topo::FlowId(token as u64),
    );
    Message::FlowletStart {
        token: Token::new(token),
        src,
        dst,
        size_hint: 1_000_000,
        weight_q8: 256,
        spine: spine as u8,
    }
}

/// xorshift64 — a tiny deterministic stream for churn schedules.
pub fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Aggregate counters with the incremental-only telemetry masked out —
/// the full sweep keeps no dirty set, so those two fields are the one
/// place compared configs are *allowed* to differ.
pub fn masked(mut stats: ServiceStats) -> ServiceStats {
    stats.dirty_flows = 0;
    stats.dirty_links = 0;
    stats
}

/// How [`assert_bit_for_bit`] compares final counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsCheck {
    /// `ServiceStats` equal field for field.
    Exact,
    /// Equal with `dirty_flows`/`dirty_links` masked (incremental vs
    /// full-sweep comparisons).
    MaskedDirty,
}

/// A driver-independent notification schedule: `rounds[r]` is fed to a
/// driver immediately before its `r`-th tick.
#[derive(Debug, Clone)]
pub struct Replay {
    pub rounds: Vec<Vec<Message>>,
}

impl Replay {
    /// The equivalence suite's churn schedule: every third round one
    /// seeded event — mostly starts across the whole 16-server (and
    /// therefore shard) space, some ends — for `rounds` rounds. Starts
    /// always carry fresh tokens and valid endpoints, so the schedule is
    /// the same for every driver and can be precomputed.
    pub fn churn(fabric: &TwoTierClos, seed: u64, rounds: usize) -> Replay {
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut token = 0u32;
        let mut live: Vec<u32> = Vec::new();
        let mut schedule = Vec::with_capacity(rounds);
        for round in 0..rounds {
            let mut msgs = Vec::new();
            if round % 3 == 0 {
                let r = xorshift(&mut rng);
                if r.is_multiple_of(4) && !live.is_empty() {
                    let t = live.swap_remove((r >> 8) as usize % live.len());
                    msgs.push(Message::FlowletEnd {
                        token: Token::new(t),
                    });
                } else {
                    token += 1;
                    let src = (r % 16) as u16;
                    let mut dst = ((r >> 16) % 16) as u16;
                    if dst == src {
                        dst = (dst + 1) % 16;
                    }
                    msgs.push(start(fabric, token, src, dst));
                    live.push(token);
                }
            }
            schedule.push(msgs);
        }
        Replay { rounds: schedule }
    }

    /// Records the notification stream of a scenario run driven against
    /// the oracle inside `ticker`, returning the schedule and the
    /// oracle's report.
    pub fn record<D: TickDriver>(
        ticker: &mut TickLoop<D>,
        scenario: &mut dyn Scenario,
        opts: &ScenarioOptions,
    ) -> (Replay, ScenarioReport) {
        let mut rounds: Vec<Vec<Message>> = Vec::new();
        let report = run_scenario_traced(ticker, scenario, opts, &mut |tick, msg| {
            let t = tick as usize;
            if rounds.len() <= t {
                rounds.resize_with(t + 1, Vec::new);
            }
            rounds[t].push(*msg);
        });
        // Trailing quiet ticks (and the final tick's `FlowletEnd`s, which
        // land one round past the last tick) stay part of the schedule.
        if rounds.len() < report.ticks as usize + 1 {
            rounds.resize_with(report.ticks as usize + 1, Vec::new);
        }
        (Replay { rounds }, report)
    }

    /// Tokens started but never ended by the schedule — the ones still
    /// live after a full replay.
    pub fn live_tokens(&self) -> Vec<Token> {
        let mut live: Vec<u32> = Vec::new();
        for msg in self.rounds.iter().flatten() {
            match msg {
                Message::FlowletStart { token, .. } => live.push(token.get()),
                Message::FlowletEnd { token } => live.retain(|&t| t != token.get()),
                Message::RateUpdate { .. } => {}
            }
        }
        live.into_iter().map(Token::new).collect()
    }

    /// Total notifications in the schedule.
    pub fn message_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

/// Replays one schedule through both drivers and asserts they are
/// indistinguishable: same intake verdict on every notification, same
/// update stream on every tick, same final rates to the bit on every
/// live token, same counters (per `stats`), same active-flow totals.
pub fn assert_bit_for_bit<A: TickDriver, B: TickDriver>(
    label: &str,
    replay: &Replay,
    reference: &mut A,
    candidate: &mut B,
    stats: StatsCheck,
) {
    for (round, msgs) in replay.rounds.iter().enumerate() {
        for msg in msgs {
            let a = reference.on_message(*msg);
            let b = candidate.on_message(*msg);
            assert_eq!(
                a, b,
                "{label}: verdicts diverged on {msg:?} (round {round})"
            );
        }
        let a = reference.tick();
        let b = candidate.tick();
        assert_eq!(a, b, "{label}: update streams diverged at round {round}");
    }
    for t in replay.live_tokens() {
        let a = reference.flow_rate_gbps(t);
        let b = candidate.flow_rate_gbps(t);
        assert_eq!(
            a.map(f64::to_bits),
            b.map(f64::to_bits),
            "{label}: rate of token {t:?} diverged: {a:?} vs {b:?}"
        );
    }
    match stats {
        StatsCheck::Exact => assert_eq!(
            reference.stats(),
            candidate.stats(),
            "{label}: aggregate counters diverged"
        ),
        StatsCheck::MaskedDirty => assert_eq!(
            masked(reference.stats()),
            masked(candidate.stats()),
            "{label}: aggregate counters diverged (dirty telemetry masked)"
        ),
    }
    assert_eq!(
        reference.active_flows(),
        candidate.active_flows(),
        "{label}: active-flow totals diverged"
    );
}
