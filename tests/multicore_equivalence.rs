//! Cross-crate check of the §5 parallelization claim: the multicore
//! engine computes exactly what single-threaded NED computes — asserted
//! through the *public service API* (builder + messages + ticks), plus
//! engine-level churn/feasibility checks.

use flowtune::{AllocatorService, DynAllocatorService, Engine, FlowtuneConfig};
use flowtune_alloc::{AllocConfig, MulticoreAllocator, RateAllocator, SerialAllocator};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};
use flowtune_workload::{TraceConfig, TraceGenerator, Workload};

fn trace_flows(fabric: &TwoTierClos, n: usize, seed: u64) -> Vec<(FlowId, usize, usize)> {
    let servers = fabric.config().server_count();
    let mut gen = TraceGenerator::new(TraceConfig {
        workload: Workload::Cache,
        load: 0.5,
        servers,
        server_link_bps: 40_000_000_000,
        seed,
        affinity: None,
    });
    (0..n)
        .map(|_| {
            let e = gen.next_event();
            (FlowId(e.id), e.src as usize, e.dst as usize)
        })
        .collect()
}

fn service_on(fabric: &TwoTierClos, engine: Engine) -> DynAllocatorService {
    AllocatorService::builder()
        .fabric(fabric)
        .config(FlowtuneConfig::default())
        .engine(engine)
        .build()
        .expect("fabric is set")
}

/// The headline §5 equivalence, through the public control-plane API:
/// identical message sequences into a serial-engine service and a
/// multicore-engine service produce bit-for-bit identical rates and
/// identical update streams, under churn, across block counts.
#[test]
fn serial_and_multicore_services_agree_bit_for_bit() {
    for blocks in [1usize, 2, 4] {
        let fabric = TwoTierClos::build(ClosConfig::multicore(blocks, 2, 8));
        let mut serial = service_on(&fabric, Engine::Serial);
        let mut multicore = service_on(&fabric, Engine::Multicore { workers: 2 });

        let flows = trace_flows(&fabric, 72, 5);
        let mut live: Vec<Token> = Vec::new();
        for (round, chunk) in flows.chunks(18).enumerate() {
            for (k, &(id, src, dst)) in chunk.iter().enumerate() {
                let token = Token::new((round * 100 + k) as u32);
                let spine = fabric.ecmp_spine(src, dst, id);
                let msg = Message::FlowletStart {
                    token,
                    src: src as u16,
                    dst: dst as u16,
                    size_hint: 1_000_000,
                    weight_q8: 256,
                    spine: spine as u8,
                };
                serial.on_message(msg).unwrap();
                multicore.on_message(msg).unwrap();
                live.push(token);
            }
            for _ in 0..13 {
                let a = serial.tick();
                let b = multicore.tick();
                assert_eq!(a, b, "blocks={blocks}: update streams diverged");
            }
            if round > 0 {
                let victim = live.remove(0);
                let end = Message::FlowletEnd { token: victim };
                serial.on_message(end).unwrap();
                multicore.on_message(end).unwrap();
            }
            for &token in &live {
                let a = serial.flow_rate_gbps(token).unwrap();
                let b = multicore.flow_rate_gbps(token).unwrap();
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "blocks={blocks} token {token:?}: {a} vs {b}"
                );
            }
        }
        assert_eq!(serial.active_flows(), multicore.active_flows());
        assert_eq!(serial.stats(), multicore.stats());
    }
}

#[test]
fn f_norm_off_matches_too() {
    let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 8));
    let cfg = AllocConfig {
        f_norm: false,
        ..AllocConfig::default()
    };
    let mut serial = SerialAllocator::new(&fabric, cfg);
    let mut parallel = MulticoreAllocator::new(&fabric, cfg);
    for (id, src, dst) in trace_flows(&fabric, 40, 9) {
        let path = fabric.path(src, dst, id);
        serial.add_flow(id, src, dst, 1.0, &path);
        parallel.add_flow(id, src, dst, 1.0, &path);
    }
    RateAllocator::run_iterations(&mut serial, 25);
    RateAllocator::run_iterations(&mut parallel, 25);
    for (x, y) in serial.rates().iter().zip(&parallel.rates()) {
        assert_eq!(x.rate.to_bits(), y.rate.to_bits());
        assert_eq!(
            x.rate.to_bits(),
            x.normalized.to_bits(),
            "f_norm off ⇒ normalized == raw"
        );
        let _ = y;
    }
}

#[test]
fn normalized_rates_never_overallocate_fabric_links() {
    // Feasibility of F-NORM output on the real fabric: per-link sums of
    // normalized rates stay within (scaled) capacity even mid-convergence.
    let fabric = TwoTierClos::build(ClosConfig::multicore(4, 2, 8));
    let cfg = AllocConfig::default();
    let mut alloc = SerialAllocator::new(&fabric, cfg);
    let flows = trace_flows(&fabric, 120, 21);
    let mut paths = std::collections::HashMap::new();
    for &(id, src, dst) in &flows {
        let path = fabric.path(src, dst, id);
        alloc.add_flow(id, src, dst, 1.0, &path);
        paths.insert(id, path);
    }
    for _ in 0..5 {
        alloc.iterate();
        let mut load = vec![0.0f64; fabric.topology().link_count()];
        for fr in alloc.rates() {
            for link in paths[&fr.id].iter() {
                load[link.index()] += fr.normalized;
            }
        }
        for (l, link) in fabric.topology().links().iter().enumerate() {
            let cap = link.capacity_bps as f64 / 1e9;
            assert!(
                load[l] <= cap * (1.0 + 1e-9),
                "link {l} over-allocated: {} > {cap}",
                load[l]
            );
        }
    }
}
