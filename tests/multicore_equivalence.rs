//! Cross-crate check of the §5 parallelization claim: the multicore
//! engine computes exactly what single-threaded NED computes, across
//! block counts, under churn, with and without F-NORM.

use flowtune_alloc::{AllocConfig, MulticoreAllocator, SerialAllocator};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};
use flowtune_workload::{TraceConfig, TraceGenerator, Workload};

fn trace_flows(fabric: &TwoTierClos, n: usize, seed: u64) -> Vec<(FlowId, usize, usize)> {
    let servers = fabric.config().server_count();
    let mut gen = TraceGenerator::new(TraceConfig {
        workload: Workload::Cache,
        load: 0.5,
        servers,
        server_link_bps: 40_000_000_000,
        seed,
    });
    (0..n)
        .map(|_| {
            let e = gen.next_event();
            (FlowId(e.id), e.src as usize, e.dst as usize)
        })
        .collect()
}

#[test]
fn parallel_equals_serial_under_churn_all_block_counts() {
    for blocks in [1usize, 2, 4] {
        let fabric = TwoTierClos::build(ClosConfig::multicore(blocks, 2, 8));
        let cfg = AllocConfig::default();
        let mut serial = SerialAllocator::new(&fabric, cfg);
        let mut parallel = MulticoreAllocator::new(&fabric, cfg);
        let flows = trace_flows(&fabric, 96, 5);
        // Interleave adds, iterations, and removals.
        for (round, chunk) in flows.chunks(24).enumerate() {
            for &(id, src, dst) in chunk {
                let path = fabric.path(src, dst, id);
                serial.add_flow(id, src, dst, 1.0, &path);
                parallel.add_flow(id, src, dst, 1.0, &path);
            }
            serial.run_iterations(13);
            parallel.run_iterations(13);
            if round > 0 {
                let victim = flows[(round - 1) * 24].0;
                assert!(serial.remove_flow(victim));
                assert!(parallel.remove_flow(victim));
            }
        }
        serial.run_iterations(7);
        parallel.run_iterations(7);

        let a = serial.rates();
        let b = parallel.rates();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(
                x.rate.to_bits(),
                y.rate.to_bits(),
                "blocks={blocks} flow {:?}",
                x.id
            );
            assert_eq!(x.normalized.to_bits(), y.normalized.to_bits());
        }
    }
}

#[test]
fn f_norm_off_matches_too() {
    let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 8));
    let cfg = AllocConfig {
        f_norm: false,
        ..AllocConfig::default()
    };
    let mut serial = SerialAllocator::new(&fabric, cfg);
    let mut parallel = MulticoreAllocator::new(&fabric, cfg);
    for (id, src, dst) in trace_flows(&fabric, 40, 9) {
        let path = fabric.path(src, dst, id);
        serial.add_flow(id, src, dst, 1.0, &path);
        parallel.add_flow(id, src, dst, 1.0, &path);
    }
    serial.run_iterations(25);
    parallel.run_iterations(25);
    for (x, y) in serial.rates().iter().zip(&parallel.rates()) {
        assert_eq!(x.rate.to_bits(), y.rate.to_bits());
        assert_eq!(
            x.rate.to_bits(),
            x.normalized.to_bits(),
            "f_norm off ⇒ normalized == raw"
        );
        let _ = y;
    }
}

#[test]
fn normalized_rates_never_overallocate_fabric_links() {
    // Feasibility of F-NORM output on the real fabric: per-link sums of
    // normalized rates stay within (scaled) capacity even mid-convergence.
    let fabric = TwoTierClos::build(ClosConfig::multicore(4, 2, 8));
    let cfg = AllocConfig::default();
    let mut alloc = SerialAllocator::new(&fabric, cfg);
    let flows = trace_flows(&fabric, 120, 21);
    let mut paths = std::collections::HashMap::new();
    for &(id, src, dst) in &flows {
        let path = fabric.path(src, dst, id);
        alloc.add_flow(id, src, dst, 1.0, &path);
        paths.insert(id, path);
    }
    for _ in 0..5 {
        alloc.iterate();
        let mut load = vec![0.0f64; fabric.topology().link_count()];
        for fr in alloc.rates() {
            for link in paths[&fr.id].iter() {
                load[link.index()] += fr.normalized;
            }
        }
        for (l, link) in fabric.topology().links().iter().enumerate() {
            let cap = link.capacity_bps as f64 / 1e9;
            assert!(
                load[l] <= cap * (1.0 + 1e-9),
                "link {l} over-allocated: {} > {cap}",
                load[l]
            );
        }
    }
}
