//! Exchange-aware shard placement: acceptance and determinism.
//!
//! The tentpole claims, pinned:
//!
//! * **contiguous is bit-for-bit the pre-placement service** — the
//!   `Placement::contiguous` table reproduces the historical routing
//!   formula exactly, and a sharded service built through the builder
//!   with the default placement emits the same update stream as one
//!   built directly;
//! * **traffic placement is deterministic** — same matrix, same shape ⇒
//!   identical assignment, and identical post-[`ShardedService::replace`]
//!   update streams bit for bit;
//! * **the win** — on a rack-affine 2-shard workload with churn, traffic
//!   placement cuts [`ServiceStats::exchange_bytes`] by ≥ 30% at equal
//!   `exchange_every`, and never over-subscribes a link at steady state.

use flowtune::{
    AllocatorService, Engine, FlowtuneConfig, Placement, ServiceStats, ShardedService, TickDriver,
    TrafficMatrix,
};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};

/// 8 racks of 4 servers (32 servers, 40 G links), two shards. Rack
/// classes interleave (evens vs odds), so the contiguous split
/// {racks 0–3} | {racks 4–7} always separates class members.
fn fabric() -> TwoTierClos {
    TwoTierClos::build(ClosConfig::multicore(2, 4, 4))
}

fn start(fabric: &TwoTierClos, token: u32, src: u16, dst: u16) -> Message {
    let spine = fabric.ecmp_spine(
        src as usize,
        dst as usize,
        flowtune_topo::FlowId(token as u64),
    );
    Message::FlowletStart {
        token: Token::new(token),
        src,
        dst,
        size_hint: 1_000_000,
        weight_q8: 256,
        spine: spine as u8,
    }
}

/// The rack-affine incast-mesh flow set: each rack sends one flow from
/// every one of its servers to the same-offset server of each of `fan`
/// *other* racks of its class (even racks talk to even racks, odd to
/// odd). Every destination access link therefore carries an incast of
/// `fan` same-class flows — contended, so flowlet churn anywhere in a
/// class re-prices the whole class (the zero-sum reallocation a shared
/// bottleneck forces). That coupling is the point: under contiguous
/// placement each class spans both shards and every churn event makes
/// *both* shards re-ship link state; under traffic placement a class
/// lives in one shard and its churn never touches the other. Returns
/// `(src, dst)` pairs.
fn affine_flows(servers: usize, spr: usize, fan: usize) -> Vec<(u16, u16)> {
    let racks = servers / spr;
    let mut flows = Vec::new();
    for src_rack in 0..racks {
        let class = src_rack % 2;
        let others: Vec<usize> = (0..racks)
            .filter(|r| r % 2 == class && *r != src_rack)
            .collect();
        for k in 0..fan.min(others.len()) {
            let dst_rack = others[(src_rack / 2 + k) % others.len()];
            for s in 0..spr {
                flows.push(((src_rack * spr + s) as u16, (dst_rack * spr + s) as u16));
            }
        }
    }
    flows
}

/// The exact rack matrix of a flow list (what a workload would sample).
fn matrix_of(flows: &[(u16, u16)], racks: usize, spr: usize) -> TrafficMatrix {
    let mut m = TrafficMatrix::new(racks);
    for &(src, dst) in flows {
        m.add(src as usize / spr, dst as usize / spr, 1.0);
    }
    m
}

/// Drives `svc` through the same deterministic churny schedule: load the
/// flow set, converge, then rotate flowlets (end + restart a fraction,
/// round-robin) to keep link state moving, then a convergence tail.
/// Returns the per-flow tokens live at the end.
fn drive(svc: &mut dyn TickDriver, fabric: &TwoTierClos, flows: &[(u16, u16)]) -> Vec<Token> {
    let mut token = 0u32;
    let mut live: Vec<(Token, usize)> = Vec::new(); // (token, flow index)
    for (i, &(src, dst)) in flows.iter().enumerate() {
        token += 1;
        svc.on_message(start(fabric, token, src, dst)).unwrap();
        live.push((Token::new(token), i));
    }
    for _ in 0..100 {
        svc.tick();
    }
    // Churn: every 5 ticks, restart one flow under a fresh token (an end
    // and a start — flowlet churn on the same traffic pattern).
    let mut cursor = 0usize;
    for round in 0..300 {
        if round % 5 == 0 {
            let slot = cursor % live.len();
            cursor += 1;
            let (old, idx) = live[slot];
            svc.on_message(Message::FlowletEnd { token: old }).unwrap();
            token += 1;
            let (src, dst) = flows[idx];
            svc.on_message(start(fabric, token, src, dst)).unwrap();
            live[slot] = (Token::new(token), idx);
        }
        svc.tick();
    }
    // Tail: no churn, let everything converge.
    for _ in 0..200 {
        svc.tick();
    }
    live.iter().map(|&(t, _)| t).collect()
}

/// Worst per-link over-subscription of the endpoint-visible (normalized)
/// rates, as a fraction of capacity.
fn worst_oversubscription(
    svc: &dyn TickDriver,
    fabric: &TwoTierClos,
    flows: &[(u16, u16)],
    tokens: &[Token],
) -> f64 {
    let mut loads = vec![0.0; fabric.topology().link_count()];
    for (&token, &(src, dst)) in tokens.iter().zip(flows) {
        let rate = svc.flow_rate_gbps(token).unwrap();
        let spine = fabric.ecmp_spine(
            src as usize,
            dst as usize,
            flowtune_topo::FlowId(token.get() as u64),
        );
        let path = fabric.path_via_spine(src as usize, dst as usize, spine);
        for link in path.iter() {
            loads[link.index()] += rate;
        }
    }
    fabric
        .topology()
        .links()
        .iter()
        .enumerate()
        .map(|(l, link)| (loads[l] / (link.capacity_bps as f64 / 1e9)) - 1.0)
        .fold(0.0f64, f64::max)
}

fn exchange_cfg() -> FlowtuneConfig {
    FlowtuneConfig {
        exchange_every: 1,
        // A deployment-realistic delta filter: converged links stop
        // shipping, so the bytes measure ongoing reconciliation work,
        // not the decay tails of never-loaded links (identical under
        // any placement).
        exchange_delta_eps: 1e-3,
        ..FlowtuneConfig::default()
    }
}

fn contiguous_service(f: &TwoTierClos, cfg: FlowtuneConfig) -> ShardedService {
    ShardedService::new(f, cfg, 2)
}

fn placed_service(f: &TwoTierClos, cfg: FlowtuneConfig, m: &TrafficMatrix) -> ShardedService {
    let shards = (0..2).map(|_| AllocatorService::new(f, cfg)).collect();
    let placement = Placement::traffic(
        f.config().server_count(),
        f.config().servers_per_rack,
        2,
        m,
        true,
    );
    ShardedService::with_placement(shards, placement)
}

#[test]
fn traffic_placement_cuts_exchange_bytes_by_thirty_percent() {
    // The acceptance criterion. Same fabric, same churny rack-affine
    // workload, same exchange cadence and filter — only the placement
    // differs. Contiguous splits every rack class across the two shards,
    // so each destination's links are priced (and re-shipped, and
    // consensus-reconciled) from both sides; traffic placement puts each
    // class in one shard.
    let f = fabric();
    let flows = affine_flows(32, 4, 3);
    let m = matrix_of(&flows, 8, 4);
    let cfg = exchange_cfg();

    let mut contiguous = contiguous_service(&f, cfg);
    let tokens_c = drive(&mut contiguous, &f, &flows);
    let mut placed = placed_service(&f, cfg, &m);
    assert_eq!(placed.placement().strategy(), "traffic:refine");
    let tokens_p = drive(&mut placed, &f, &flows);

    let (bc, bp) = (
        contiguous.stats().exchange_bytes,
        placed.stats().exchange_bytes,
    );
    assert!(bc > 0 && bp > 0, "both configurations must exchange");
    let reduction = 1.0 - bp as f64 / bc as f64;
    eprintln!(
        "exchange bytes: contiguous {bc}, placed {bp} ({:.1}% saved)",
        reduction * 100.0
    );
    assert!(
        reduction >= 0.30,
        "traffic placement saved only {:.1}% exchange bytes \
         (contiguous {bc}, placed {bp})",
        reduction * 100.0
    );
    assert_eq!(
        contiguous.stats().exchange_rounds,
        placed.stats().exchange_rounds,
        "equal cadence — the savings are per-round, not fewer rounds"
    );

    // Never over-subscribed at steady state, under either placement.
    for (svc, tokens, name) in [
        (&contiguous, &tokens_c, "contiguous"),
        (&placed, &tokens_p, "placed"),
    ] {
        let over = worst_oversubscription(svc, &f, &flows, tokens);
        assert!(over <= 1e-6, "{name} over-subscribed by {over}");
        // And nobody is starved: the placement change must not cost
        // anyone their share.
        for &t in tokens.iter() {
            assert!(svc.flow_rate_gbps(t).unwrap() > 1.0, "{name} starved {t:?}");
        }
    }
}

#[test]
fn contiguous_placement_is_bit_for_bit_the_direct_construction() {
    // `--placement contiguous` (the default) must leave the sharded
    // service exactly as PR 4 built it: the builder path with the
    // default spec and the direct `ShardedService::new` path produce
    // identical update streams, rates and counters on a cross-shard
    // workload with the exchange on.
    let f = fabric();
    let cfg = FlowtuneConfig {
        exchange_every: 1,
        ..FlowtuneConfig::default()
    };
    let mut direct = ShardedService::new(&f, cfg, 2);
    let mut built = AllocatorService::builder()
        .fabric(&f)
        .config(cfg)
        .engine(Engine::Serial.sharded(2))
        .build_driver()
        .unwrap();
    let flows = affine_flows(32, 4, 1);
    let mut token = 0u32;
    for &(src, dst) in &flows {
        token += 1;
        let msg = start(&f, token, src, dst);
        assert_eq!(
            TickDriver::on_message(&mut direct, msg),
            built.on_message(msg)
        );
    }
    for round in 0..150 {
        assert_eq!(
            TickDriver::tick(&mut direct),
            built.tick(),
            "streams diverged at tick {round}"
        );
    }
    for t in 1..=flows.len() as u32 {
        assert_eq!(
            direct.flow_rate_gbps(Token::new(t)).map(f64::to_bits),
            built.flow_rate_gbps(Token::new(t)).map(f64::to_bits)
        );
    }
    assert_eq!(TickDriver::stats(&direct), built.stats());
}

#[test]
fn same_matrix_and_seed_give_identical_placement_and_replace_streams() {
    // Determinism, end to end: the same traffic matrix yields the same
    // assignment, and two identical services replaced with it emit
    // bit-for-bit identical update streams afterwards.
    let f = fabric();
    let flows = affine_flows(32, 4, 3);
    let m = matrix_of(&flows, 8, 4);
    let p1 = Placement::traffic(32, 4, 2, &m, true);
    let p2 = Placement::traffic(32, 4, 2, &m, true);
    assert_eq!(p1, p2, "same matrix ⇒ same placement");

    let cfg = exchange_cfg();
    let run = |placement: Placement| -> (Vec<Vec<(u16, Message)>>, ServiceStats) {
        let mut svc = ShardedService::new(&f, cfg, 2);
        let mut token = 0u32;
        for &(src, dst) in &flows {
            token += 1;
            svc.on_message(start(&f, token, src, dst)).unwrap();
        }
        for _ in 0..50 {
            svc.tick();
        }
        let moved = svc.replace(placement);
        assert!(moved > 0, "the affine placement must move flows");
        let streams: Vec<_> = (0..100).map(|_| svc.tick()).collect();
        (streams, svc.stats())
    };
    let (sa, stats_a) = run(p1);
    let (sb, stats_b) = run(p2);
    assert_eq!(sa, sb, "post-replace update streams must be bit-for-bit");
    assert_eq!(stats_a, stats_b);
}

#[test]
fn online_epoch_learns_the_workload_and_cuts_the_exchange() {
    // The online path: run contiguous, let the service accumulate its
    // observed matrix from intake, re-place from that matrix, and verify
    // the new epoch (a) grouped the classes and (b) ships fewer exchange
    // bytes per round than the contiguous epoch did under the same
    // churn.
    let f = fabric();
    let flows = affine_flows(32, 4, 3);
    let cfg = exchange_cfg();
    let mut svc = ShardedService::new(&f, cfg, 2);
    let mut token = 0u32;
    for &(src, dst) in &flows {
        token += 1;
        svc.on_message(start(&f, token, src, dst)).unwrap();
    }
    // Epoch 1: contiguous, with churn to make the exchange work.
    let mut cursor = 0usize;
    let mut live: Vec<(Token, usize)> = (1..=flows.len() as u32)
        .map(|t| (Token::new(t), (t - 1) as usize))
        .collect();
    let mut churn =
        |svc: &mut ShardedService, token: &mut u32, rounds: usize, cursor: &mut usize| {
            for round in 0..rounds {
                if round % 5 == 0 {
                    let slot = *cursor % live.len();
                    *cursor += 1;
                    let (old, idx) = live[slot];
                    svc.on_message(Message::FlowletEnd { token: old }).unwrap();
                    *token += 1;
                    let (src, dst) = flows[idx];
                    svc.on_message(start(&f, *token, src, dst)).unwrap();
                    live[slot] = (Token::new(*token), idx);
                }
                svc.tick();
            }
        };
    churn(&mut svc, &mut token, 300, &mut cursor);
    let epoch1 = svc.stats();
    assert!(epoch1.exchange_bytes > 0);
    // The hot shared links kept re-shipping — the re-placement trigger.
    assert!(svc.exchange_shipped_counts().iter().sum::<u64>() > 0);

    // Re-place from what the service itself observed.
    let observed = svc.observed_matrix().clone();
    let placement = Placement::traffic(32, 4, 2, &observed, true);
    // The learned placement groups the interleaved classes.
    for rack in 0..8 {
        assert_eq!(
            placement.shard_of((rack * 4) as u16),
            placement.shard_of((4 * (rack % 2)) as u16),
            "rack {rack} not grouped with its class"
        );
    }
    let moved = svc.replace(placement);
    assert!(moved > 0);

    // Epoch 2: same churn schedule length; let the migration transient
    // settle first so the comparison is steady churn vs steady churn.
    for _ in 0..100 {
        svc.tick();
    }
    let settled = svc.stats();
    churn(&mut svc, &mut token, 300, &mut cursor);
    let epoch2 = svc.stats();

    let bytes_per_round_1 = epoch1.exchange_bytes as f64 / epoch1.exchange_rounds as f64;
    let bytes_per_round_2 = (epoch2.exchange_bytes - settled.exchange_bytes) as f64
        / (epoch2.exchange_rounds - settled.exchange_rounds) as f64;
    assert!(
        bytes_per_round_2 < bytes_per_round_1,
        "online epoch did not cut the exchange: {bytes_per_round_1:.0} → {bytes_per_round_2:.0} B/round"
    );
}
