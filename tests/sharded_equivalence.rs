//! Sharded-vs-unsharded control-plane equivalence.
//!
//! The contract of `ShardedService` is that partitioning the endpoint
//! space is *transparent* to the endpoints:
//!
//! * at one shard the sharded service is the unsharded service —
//!   bit-for-bit: same update stream, same rates, same counters;
//! * with real partitioning (≥ 2 shards) a workload whose links each
//!   carry a single shard's flows allocates identically (within the
//!   update-threshold tolerance the figures use — in practice exactly),
//!   because every link price a flow sees is driven by the same loads;
//! * routing never misdirects: a flowlet lives in exactly the shard that
//!   owns its source endpoint (property-tested under random workloads).
//!
//! The replay/assert skeleton lives in `tests/common` (the differential
//! conformance harness); this file owns only what varies per pin.

mod common;

use common::{assert_bit_for_bit, fabric, start, Replay, StatsCheck};
use flowtune::{AllocatorService, FlowtuneConfig, ShardedService};
use flowtune_proto::{Message, Token};
use flowtune_topo::TwoTierClos;
use proptest::prelude::*;

/// A deterministic churny workload crossing both blocks: starts, some
/// rejected duplicates, an unknown end, real ends.
fn workload(fabric: &TwoTierClos) -> Vec<Message> {
    let mut msgs = Vec::new();
    for (t, src, dst) in [
        (1u32, 0u16, 9u16), // block 0 → 1
        (2, 8, 1),          // block 1 → 0
        (3, 0, 12),         // same src as 1: shares its uplink
        (4, 3, 2),          // same-block flow
        (5, 15, 6),
        (6, 4, 11),
    ] {
        msgs.push(start(fabric, t, src, dst));
    }
    msgs.push(start(fabric, 1, 7, 9)); // duplicate token: rejected
    msgs.push(Message::FlowletEnd {
        token: Token::new(99), // unknown: ignored
    });
    msgs.push(Message::FlowletEnd {
        token: Token::new(4),
    });
    msgs
}

#[test]
fn one_shard_is_bit_for_bit_the_unsharded_service() {
    let fabric = fabric();
    let cfg = FlowtuneConfig::default();
    let mut plain = AllocatorService::new(&fabric, cfg);
    let mut sharded = ShardedService::new(&fabric, cfg, 1);

    // The original interleave as a replay schedule: five starts up
    // front, then the rest of the churn (duplicate, unknown end, real
    // end) dripped in every ten rounds across 300 rounds of ticking.
    let msgs = workload(&fabric);
    let mut rounds: Vec<Vec<Message>> = vec![Vec::new(); 300];
    rounds[0].extend_from_slice(&msgs[..5]);
    for (i, msg) in msgs[5..].iter().enumerate() {
        rounds[i * 10].push(*msg);
    }
    let replay = Replay { rounds };
    assert_bit_for_bit(
        "one shard vs unsharded",
        &replay,
        &mut plain,
        &mut sharded,
        StatsCheck::Exact,
    );
}

#[test]
fn two_shards_match_unsharded_rates_on_a_cross_block_workload() {
    let fabric = fabric();
    let cfg = FlowtuneConfig::default();
    let mut plain = AllocatorService::new(&fabric, cfg);
    let mut sharded = ShardedService::new(&fabric, cfg, 2);
    assert_eq!(sharded.shard_count(), 2);

    // Every server sends two flows into the *opposite* block (distinct
    // receivers), so each source uplink carries two same-shard flows and
    // each receiver downlink carries flows of a single shard — the
    // partition the block structure is for.
    let mut token = 0u32;
    let mut tokens = Vec::new();
    for src in 0..16u16 {
        let base = if src < 8 { 8 } else { 0 };
        for k in 0..2u16 {
            let dst = base + ((src % 8) + 3 * k) % 8;
            token += 1;
            let msg = start(&fabric, token, src, dst);
            plain.on_message(msg).unwrap();
            sharded.on_message(msg).unwrap();
            tokens.push((Token::new(token), src));
        }
    }
    for _ in 0..400 {
        plain.tick();
        let updates = sharded.tick();
        // Merged stream stays token-ordered.
        let toks: Vec<u32> = updates
            .iter()
            .map(|(_, m)| match m {
                Message::RateUpdate { token, .. } => token.get(),
                other => panic!("tick emitted {other:?}"),
            })
            .collect();
        let mut sorted = toks.clone();
        sorted.sort_unstable();
        assert_eq!(toks, sorted, "merged updates out of token order");
    }
    // Acceptance: rates equal within the update-threshold tolerance.
    let tol = cfg.update_threshold;
    for (t, src) in tokens {
        let a = plain.flow_rate_gbps(t).unwrap();
        let b = sharded.flow_rate_gbps(t).unwrap();
        assert!(
            (a - b).abs() <= tol * a.max(1.0),
            "token {t:?} (src {src}): unsharded {a} vs sharded {b}"
        );
        // Feasibility: every flow gets a real share, nobody exceeds the
        // 40 G × 0.99 access line (exact shares depend on ECMP spine
        // contention, which proportional fairness rebalances per flow).
        assert!(b > 1.0 && b <= 39.6 * (1.0 + 1e-6), "token {t:?}: {b}");
    }
    // Endpoint-visible totals agree.
    assert_eq!(plain.active_flows(), sharded.active_flows());
    assert_eq!(plain.stats().starts, sharded.stats().starts);
}

#[test]
fn message_intake_stats_match_byte_for_byte_at_any_shard_count() {
    // The routing layer disposes of some messages itself (cross-shard
    // duplicates, unknown `FlowletEnd`s, stray rate updates) and counts
    // them in its own `local` stats; everything else is counted by the
    // owning shard. Whichever layer does the counting, the *aggregate*
    // must equal the unsharded service's counters byte for byte — in
    // particular `bytes_in` for unknown ends, which arrive and are
    // ignored on both paths. No ticks here: this pins pure intake
    // accounting, independent of engine trajectories.
    let fabric = fabric();
    let mut msgs = workload(&fabric);
    msgs.push(Message::RateUpdate {
        token: Token::new(3),
        rate: flowtune_proto::Rate16::encode(2.0),
    }); // stray update: rejected at the routing layer
    msgs.push(start(&fabric, 50, 9999, 1)); // malformed: clamped, then rejected
    msgs.push(Message::FlowletEnd {
        token: Token::new(50), // end of a rejected start: unknown
    });
    for shards in [1usize, 2, 3, 5] {
        let mut plain = AllocatorService::new(&fabric, FlowtuneConfig::default());
        let mut sharded = ShardedService::new(&fabric, FlowtuneConfig::default(), shards);
        for msg in &msgs {
            let a = plain.on_message(*msg);
            let b = sharded.on_message(*msg);
            assert_eq!(a, b, "{shards} shards: verdicts diverged on {msg:?}");
        }
        assert_eq!(
            plain.stats(),
            sharded.stats(),
            "{shards} shards: aggregate intake stats diverged"
        );
        assert_eq!(plain.active_flows(), sharded.active_flows());
    }
}

#[test]
fn parallel_tick_is_bit_for_bit_sequential() {
    // The concurrent two-phase tick must be *indistinguishable* from the
    // sequential fallback: same update stream every tick, same final
    // rates to the bit, same aggregate counters — across shard counts,
    // churn schedules, and with the exchange both off and on every tick.
    let fabric = fabric();
    for shards in [1usize, 2, 4] {
        for exchange_every in [0u64, 1] {
            for seed in [1u64, 7, 42] {
                let build = |parallel: bool| {
                    let cfg = FlowtuneConfig {
                        exchange_every,
                        parallel_shards: parallel,
                        ..FlowtuneConfig::default()
                    };
                    ShardedService::new(&fabric, cfg, shards)
                };
                let mut par = build(true);
                let mut seq = build(false);
                assert_eq!(par.parallel_shards(), shards > 1);
                assert!(!seq.parallel_shards());
                assert_bit_for_bit(
                    &format!("parallel vs sequential, {shards} shards, exchange {exchange_every}, seed {seed}"),
                    &Replay::churn(&fabric, seed, 90),
                    &mut seq,
                    &mut par,
                    StatsCheck::Exact,
                );
            }
        }
    }
}

#[test]
fn mem_wire_cluster_is_bit_for_bit_the_in_process_sharded_service() {
    // The distributed control plane's acceptance criterion: a cluster of
    // `ShardPeer`s speaking the serialized exchange format over the
    // in-memory transport is *indistinguishable* from the in-process
    // `ShardedService` — same update stream every tick, same final rates
    // to the bit, same aggregate counters — across shard counts, churn
    // schedules, and exchange cadences. Everything the wire adds
    // (framing, encode/decode, transport queues) must be behaviorally
    // invisible.
    use std::time::Duration;

    use flowtune::ExchangeConfig;
    use flowtune_net::{mem_mesh, PeerCluster, ShardPeer};

    let fabric = fabric();
    for shards in [1usize, 2, 4] {
        for exchange_every in [1u64, 3] {
            for seed in [1u64, 7, 42] {
                let cfg = FlowtuneConfig {
                    exchange_every,
                    ..FlowtuneConfig::default()
                };
                let exchange =
                    ExchangeConfig::from_flowtune(&cfg).round_timeout(Duration::from_secs(5));
                let mut svc = ShardedService::new(&fabric, cfg, shards);
                let peers: Vec<_> = mem_mesh(shards)
                    .into_iter()
                    .map(|t| {
                        ShardPeer::new(AllocatorService::new(&fabric, cfg), t, exchange)
                            .expect("mem transport splits infallibly")
                    })
                    .collect();
                let mut cluster = PeerCluster::from_peers(peers);

                assert_bit_for_bit(
                    &format!("mem cluster vs in-process, {shards} shards, exchange {exchange_every}, seed {seed}"),
                    &Replay::churn(&fabric, seed, 90),
                    &mut svc,
                    &mut cluster,
                    StatsCheck::Exact,
                );
                // Real frames moved through the transport whenever an
                // exchange could have happened.
                let wire = cluster.wire_stats();
                if shards > 1 {
                    assert!(wire.tx_bytes > 0, "no bytes on the mem wire");
                    assert_eq!(wire.tx_frames, wire.rx_frames);
                }
                assert_eq!(wire.late_rounds, 0);
            }
        }
    }
}

#[test]
fn uds_wire_cluster_is_bit_for_bit_the_in_process_sharded_service() {
    // The same pin over a kernel transport: peers speaking the exchange
    // over Unix-domain sockets — real syscalls, real socket buffers,
    // the receiver threads draining a real wire — still reproduce the
    // in-process ShardedService to the bit when every frame arrives on
    // time. (Smaller matrix than the mem pin: the property is transport
    // independence, the churn breadth is covered above.)
    use std::time::Duration;

    use flowtune::ExchangeConfig;
    use flowtune_net::{uds_mesh, PeerCluster, ShardPeer};

    let fabric = fabric();
    for shards in [2usize, 4] {
        for seed in [7u64, 42] {
            let cfg = FlowtuneConfig {
                exchange_every: 1,
                ..FlowtuneConfig::default()
            };
            let exchange =
                ExchangeConfig::from_flowtune(&cfg).round_timeout(Duration::from_secs(5));
            let mut svc = ShardedService::new(&fabric, cfg, shards);
            let dir = std::env::temp_dir().join(format!(
                "flowtune-equiv-uds-{}-{shards}-{seed}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).expect("socket dir");
            let peers: Vec<_> = uds_mesh(&dir, shards as u16)
                .expect("uds mesh bootstrap")
                .into_iter()
                .map(|t| {
                    ShardPeer::new(AllocatorService::new(&fabric, cfg), t, exchange)
                        .expect("connected uds transport splits")
                })
                .collect();
            let mut cluster = PeerCluster::from_peers(peers);

            assert_bit_for_bit(
                &format!("uds cluster vs in-process, {shards} shards, seed {seed}"),
                &Replay::churn(&fabric, seed, 60),
                &mut svc,
                &mut cluster,
                StatsCheck::Exact,
            );
            let wire = cluster.wire_stats();
            assert!(wire.tx_bytes > 0, "no bytes on the uds wire");
            assert_eq!(wire.late_rounds, 0, "on-time frames must never be late");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A serial NED engine that panics on its next `panics_left` iterations —
/// the fault injector for shard-panic containment.
#[derive(Debug)]
struct PanickyEngine {
    inner: flowtune_alloc::SerialAllocator,
    panics_left: u32,
}

impl flowtune_alloc::RateAllocator for PanickyEngine {
    fn add_flow(
        &mut self,
        id: flowtune_topo::FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &flowtune_topo::Path,
    ) {
        self.inner
            .add_flow(id, src_server, dst_server, weight, path);
    }

    fn remove_flow(&mut self, id: flowtune_topo::FlowId) -> bool {
        self.inner.remove_flow(id)
    }

    fn iterate(&mut self) {
        if self.panics_left > 0 {
            self.panics_left -= 1;
            panic!("injected engine fault");
        }
        self.inner.iterate();
    }

    fn flow_count(&self) -> usize {
        self.inner.flow_count()
    }

    fn rates(&self) -> Vec<flowtune_alloc::FlowRate> {
        self.inner.rates()
    }

    fn flow_rate(&self, id: flowtune_topo::FlowId) -> Option<flowtune_alloc::FlowRate> {
        self.inner.flow_rate(id)
    }

    fn name(&self) -> &'static str {
        "panicky"
    }
}

#[test]
fn a_panicking_shard_is_contained_not_fatal() {
    use flowtune::ServiceError;
    let fabric = fabric();
    for parallel in [true, false] {
        let cfg = FlowtuneConfig {
            parallel_shards: parallel,
            ..FlowtuneConfig::default()
        };
        let shard = |panics_left: u32| {
            AllocatorService::with_engine(
                &fabric,
                cfg,
                PanickyEngine {
                    inner: flowtune_alloc::SerialAllocator::new(
                        &fabric,
                        flowtune_alloc::AllocConfig::default(),
                    ),
                    panics_left,
                },
            )
        };
        // Shard 1's engine dies on the first tick's iteration; shard 0 is
        // healthy throughout.
        let mut svc = ShardedService::from_shards(vec![shard(0), shard(1)]);
        svc.on_message(start(&fabric, 1, 0, 12)).unwrap(); // shard 0
        svc.on_message(start(&fabric, 2, 8, 4)).unwrap(); // shard 1
        let err = svc.try_tick().expect_err("shard 1 must panic");
        assert_eq!(
            err,
            ServiceError::ShardPanicked { shard: 1 },
            "parallel={parallel}"
        );
        // The sibling completed its tick despite the dead shard: shard
        // 0's flow already carries a converging rate.
        assert!(
            svc.flow_rate_gbps(Token::new(1)).unwrap() > 0.0,
            "parallel={parallel}: sibling shard's tick was lost"
        );
        // Neither the pool nor the service is poisoned: the next tick
        // succeeds and serves *both* shards (the recovered shard's flow
        // gets its first update now).
        let updates = svc.try_tick().expect("recovered tick");
        assert!(
            updates
                .iter()
                .any(|(_, m)| matches!(m, Message::RateUpdate { token, .. } if token.get() == 2)),
            "parallel={parallel}: recovered shard must emit an update"
        );
        for t in [1u32, 2] {
            assert!(svc.flow_rate_gbps(Token::new(t)).unwrap() > 0.0);
        }
        assert_eq!(svc.stats().starts, 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Shard routing never misdirects: an accepted flowlet is registered
    // in exactly the shard owning its source endpoint, updates come back
    // addressed to that source, and no other shard ever sees the token.
    #[test]
    fn shard_routing_never_misdirects(
        shards in 1usize..=5,
        flows in proptest::collection::vec((0u16..16, 0u16..16), 1..48),
    ) {
        let fabric = fabric();
        let mut svc = ShardedService::new(&fabric, FlowtuneConfig::default(), shards);
        let mut accepted = Vec::new();
        for (i, &(src, dst)) in flows.iter().enumerate() {
            let msg = start(&fabric, i as u32 + 1, src, dst);
            if svc.on_message(msg).is_ok() {
                accepted.push((Token::new(i as u32 + 1), src));
            }
        }
        for &(token, src) in &accepted {
            let owner = svc.shard_for_token(token);
            prop_assert_eq!(owner, Some(svc.shard_of(src)),
                "token {:?} from src {} landed in shard {:?}", token, src, owner);
            for (s, shard) in svc.shards().iter().enumerate() {
                let here = shard.flow_rate_gbps(token).is_some();
                prop_assert_eq!(here, Some(s) == owner,
                    "token {:?} visible in shard {} but owned by {:?}", token, s, owner);
            }
        }
        // First tick reports every accepted flow back to its own source.
        let mut updated = std::collections::HashMap::new();
        for (src, msg) in svc.tick() {
            if let Message::RateUpdate { token, .. } = msg {
                updated.insert(token, src);
            }
        }
        for &(token, src) in &accepted {
            prop_assert_eq!(updated.get(&token), Some(&src));
        }
        prop_assert_eq!(svc.active_flows(), accepted.len());
    }
}
