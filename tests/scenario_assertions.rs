//! Fairness and FCT assertions on the adversarial scenarios (ISSUE 10
//! satellite) — each scenario family lands with a pinned correctness
//! bound, not just a generator:
//!
//! * **permshift + fairness floor**: under NED at convergence, the Jain
//!   index over per-flow mean throughput on every permutation phase is
//!   ≥ 0.95 (on a host-bottlenecked fabric a permutation is symmetric,
//!   so proportional fairness must hand everyone a near-identical
//!   share);
//! * **incast + p99-FCT bound**: fair sharing is work-conserving, so the
//!   last of N equal incast flows cannot finish much later than the
//!   serial oracle (all bytes back to back down the receiver line);
//!   p99 FCT stays within 1.3× of that oracle;
//! * **burst + feasibility**: mid-burst, after the allocator's reaction
//!   window, no link is over-subscribed by the normalized rates —
//!   F-NORM's guarantee holding through abrupt on/off edges (the *raw*
//!   NED allocation over-allocates by design; that is what F-NORM
//!   normalizes away, and it is reported as telemetry, not bounded).

mod common;

use common::fabric;
use flowtune::{AllocatorService, FlowtuneConfig, ScenarioOptions, ScenarioReport, TickLoop};
use flowtune_topo::{ClosConfig, TwoTierClos};
use flowtune_workload::{BurstyOnOff, Incast, PermutationShift, Scenario};

fn run_on(
    fabric: &TwoTierClos,
    scenario: &mut dyn Scenario,
    opts: &ScenarioOptions,
) -> ScenarioReport {
    let cfg = FlowtuneConfig::default();
    let mut ticker = TickLoop::new(AllocatorService::new(fabric, cfg), cfg.tick_interval_ps);
    flowtune::run_scenario(&mut ticker, scenario, opts)
}

fn run(scenario: &mut dyn Scenario, opts: &ScenarioOptions) -> ScenarioReport {
    run_on(&fabric(), scenario, opts)
}

#[test]
fn jain_is_at_least_0_95_on_the_permutation_workload_under_ned() {
    // The paper's evaluation shape (§6.2): 10 G hosts under a 40 G
    // fabric. Every permutation flow is bottlenecked by its own host
    // line, so the workload is genuinely symmetric and the converged
    // fair share is the usable line rate for everyone. (On a fabric
    // with 40 G hosts the bottleneck moves to the rack uplinks, where
    // deterministic ECMP collisions make some shifts honestly unequal —
    // that asymmetry is the topology's, not the allocator's.)
    let mut cfg = ClosConfig::multicore(2, 2, 4);
    cfg.host_link_bps = 10_000_000_000;
    let fabric = TwoTierClos::build(cfg);
    // 400-tick rotations: far past convergence (NED settles in a few
    // ticks on 16 symmetric flows), so the per-flow mean throughput is
    // dominated by the converged allocation. 16 MiB per flow outlasts
    // the ~5 MB a 9.9 Gbit/s share drains per 400-tick rotation, so
    // every rotation cuts a still-live permutation.
    let mut scenario = PermutationShift::new(16, 1 << 24, 400, 4, 0);
    let report = run_on(&fabric, &mut scenario, &ScenarioOptions::default());
    assert!(!report.truncated);
    assert_eq!(report.phases.len(), 4);
    for p in &report.phases {
        let jain = p.jain.expect("every permutation phase moves bytes");
        assert!(
            jain >= 0.95,
            "{}: Jain {jain} under the 0.95 fairness floor",
            p.label
        );
    }
    // The floor is not vacuous: each rotation cut a full permutation.
    assert!(report.phases[..3].iter().all(|p| p.cut_flows == 16));
}

#[test]
fn incast_p99_fct_is_bounded_by_the_serial_oracle() {
    // 8:1 incast of 500 kB each onto server 15. The serial oracle is all
    // bytes back to back down the receiver's one access line at the
    // usable line rate (40 G × 0.99 headroom): no schedule can beat it,
    // and a work-conserving fair share finishes the last flow at
    // essentially the same instant. 1.3× absorbs tick quantization and
    // the convergence transient.
    let sources = vec![0u32, 1, 2, 3, 8, 9, 10, 11];
    let bytes = 500_000u64;
    let mut scenario = Incast::new(sources.clone(), 15, bytes);
    let report = run(&mut scenario, &ScenarioOptions::default());
    assert!(!report.truncated);

    let oracle_ps = (sources.len() as u64 * bytes * 8) as f64 / 39.6 * 1e3; // bits / Gbit/s → ps
    let p99 = report.p99_fct_ps().expect("flows completed") as f64;
    assert!(
        p99 <= 1.3 * oracle_ps,
        "p99 FCT {p99:.3e} ps vs serial oracle {oracle_ps:.3e} ps"
    );
    // And the oracle really is a lower bound (sanity on the model): the
    // last flow cannot finish before all bytes have crossed the line.
    let completion = report.max_phase_completion_ps().unwrap() as f64;
    assert!(
        completion >= 0.95 * oracle_ps,
        "completion {completion:.3e} ps beat the serial oracle {oracle_ps:.3e} ps"
    );
    // Fan-in shares are symmetric: fairness across the 8 sources.
    assert!(report.min_jain().unwrap() > 0.95);
}

#[test]
fn no_link_is_over_subscribed_mid_burst() {
    // Three on/off cycles, flows sized to outlast the 60-tick on-window
    // (so the fabric is saturated when the cut hits). After the grace
    // window of each admission edge, the normalized rates must stay
    // feasible on every link: that is F-NORM's guarantee, and the one
    // the paper makes — the *raw* NED allocation legitimately exceeds
    // capacity while prices converge (Fig. 12 measures exactly that
    // over-allocation), which is why the normalization layer exists.
    let mut scenario = BurstyOnOff::new(16, 1 << 26, 60, 40, 3);
    let report = run(&mut scenario, &ScenarioOptions::default());
    assert!(!report.truncated);
    assert_eq!(report.phases.len(), 6, "three bursts, three cuts");
    assert!(
        report.peak_oversubscription <= 1e-6,
        "a link was over-subscribed mid-burst: {:+e}",
        report.peak_oversubscription
    );
    // The raw-allocation telemetry saw the loaded fabric: mid-burst the
    // un-normalized NED rates really did exceed some link's capacity —
    // the over-subscription floor above is non-vacuous precisely
    // because there was raw excess for F-NORM to squash.
    assert!(
        report.peak_overallocation_gbps > 0.0,
        "the sampler never saw raw over-allocation — the burst did not load the fabric"
    );
    // Non-vacuous: every burst was cut while still moving bytes, and the
    // sampler really saw loaded links (the on-window outlives the grace).
    for (i, p) in report.phases.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(p.flows, 8, "burst {i} admits the half-fabric fan");
            assert_eq!(p.cut_flows, 8, "burst {i} must outlast its window");
        }
    }
}
