//! End-to-end allocator tests spanning flowtune (service + agents),
//! flowtune-proto and flowtune-topo — the control loop without the packet
//! simulator in between.
//!
//! The convergence tests run once per NED engine (serial and multicore)
//! through the engine-agnostic builder API, which is exactly the claim of
//! §5: the parallel engine is a drop-in replacement.

use flowtune::{
    AllocatorService, DynAllocatorService, EndpointAgent, Engine, FlowtuneConfig, ServiceError,
};
use flowtune_proto::{Message, Rate16, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};

/// Both NED engines; every converging test must pass under each.
const NED_ENGINES: [Engine; 2] = [Engine::Serial, Engine::Multicore { workers: 2 }];

fn setup_with(engine: Engine) -> (TwoTierClos, DynAllocatorService, Vec<EndpointAgent>) {
    let fabric = TwoTierClos::build(ClosConfig::paper_eval());
    let servers = fabric.config().server_count();
    let svc = AllocatorService::builder()
        .fabric(&fabric)
        .config(FlowtuneConfig::default())
        .engine(engine)
        .build()
        .expect("fabric is set");
    let agents = (0..servers)
        .map(|s| EndpointAgent::new(s as u16, servers))
        .collect();
    (fabric, svc, agents)
}

fn setup() -> (TwoTierClos, DynAllocatorService, Vec<EndpointAgent>) {
    setup_with(Engine::Serial)
}

/// Delivers all pending updates to the right agents.
fn pump(svc: &mut DynAllocatorService, agents: &mut [EndpointAgent], ticks: usize) {
    for _ in 0..ticks {
        for (server, msg) in svc.tick() {
            agents[server as usize].on_rate_update(&msg);
        }
    }
}

#[test]
fn many_flows_converge_to_proportional_fairness_every_ned_engine() {
    for engine in NED_ENGINES {
        let (_, mut svc, mut agents) = setup_with(engine);
        // 16 servers of rack 0 each send one flow to the same rack-8
        // server's 10 G downlink: proportional fairness gives each
        // ≈ 9.9/16 Gbit/s.
        for s in 0..16u16 {
            let msg = agents[s as usize]
                .on_backlog(s as u64, 143, 10_000_000, 0)
                .unwrap();
            svc.on_message(msg).unwrap();
        }
        pump(&mut svc, &mut agents, 300);
        for s in 0..16u16 {
            let rate = agents[s as usize].pacing_rate_gbps(s as u64).unwrap();
            assert!(
                (rate - 9.9 / 16.0).abs() < 0.03,
                "[{}] server {s} got {rate} Gbit/s",
                svc.engine_name()
            );
        }
    }
}

#[test]
fn weighted_flows_get_weighted_shares_end_to_end() {
    for engine in NED_ENGINES {
        let (_, mut svc, mut agents) = setup_with(engine);
        let m1 = agents[0]
            .on_backlog_weighted(1, 143, 1_000_000, 3.0, 0)
            .unwrap();
        let m2 = agents[16]
            .on_backlog_weighted(2, 143, 1_000_000, 1.0, 0)
            .unwrap();
        svc.on_message(m1).unwrap();
        svc.on_message(m2).unwrap();
        pump(&mut svc, &mut agents, 400);
        let r1 = agents[0].pacing_rate_gbps(1).unwrap();
        let r2 = agents[16].pacing_rate_gbps(2).unwrap();
        assert!(
            (r1 / r2 - 3.0).abs() < 0.05,
            "[{}] ratio {}",
            svc.engine_name(),
            r1 / r2
        );
    }
}

#[test]
fn flowlet_lifecycle_start_end_restart() {
    let (_, mut svc, mut agents) = setup();
    let start = agents[5].on_backlog(9, 99, 50_000, 0).unwrap();
    svc.on_message(start).unwrap();
    assert_eq!(svc.active_flows(), 1);
    pump(&mut svc, &mut agents, 50);

    // Queue drains; after the 30 µs idle threshold the agent reports an
    // end, freeing allocator state.
    agents[5].on_drained(9, 1_000_000_000);
    let ends = agents[5].poll(1_000_000_000 + 30_000_000);
    assert_eq!(ends.len(), 1);
    svc.on_message(ends[0]).unwrap();
    assert_eq!(svc.active_flows(), 0);

    // The same flow becomes backlogged again: a *new* flowlet (new
    // token), and the allocator accepts it.
    let restart = agents[5].on_backlog(9, 99, 50_000, 2_000_000_000).unwrap();
    let Message::FlowletStart { token, .. } = restart else {
        panic!("expected start");
    };
    svc.on_message(restart).unwrap();
    assert_eq!(svc.active_flows(), 1);
    pump(&mut svc, &mut agents, 50);
    assert!(svc.flow_rate_gbps(token).unwrap() > 9.0);
}

#[test]
fn rekeyed_end_then_reused_token_start_roundtrip() {
    // An endpoint restart can re-key its flowlets: the allocator then
    // sees (1) a FlowletEnd for a token it never registered, and (2) a
    // FlowletStart reusing a token that was freed moments ago. Both must
    // flow through the Result path without disturbing service state.
    let (_, mut svc, _) = setup();
    let start = |token: u32, src: u16| Message::FlowletStart {
        token: Token::new(token),
        src,
        dst: 143,
        size_hint: 50_000,
        weight_q8: 256,
        spine: 1,
    };

    svc.on_message(start(7, 3)).unwrap();
    // End for a token re-keyed out of existence: accepted (ignored).
    svc.on_message(Message::FlowletEnd {
        token: Token::new(999),
    })
    .unwrap();
    assert_eq!(svc.active_flows(), 1);
    assert_eq!(svc.stats().ends, 0);

    // While token 7 is live, a duplicate start is a reportable rejection…
    let err = svc.on_message(start(7, 4)).unwrap_err();
    assert_eq!(err, ServiceError::DuplicateToken(Token::new(7)));
    assert_eq!(svc.stats().rejected, 1);

    // …but after the real end, the token may be reused by a new flowlet.
    svc.on_message(Message::FlowletEnd {
        token: Token::new(7),
    })
    .unwrap();
    svc.on_message(start(7, 4)).unwrap();
    assert_eq!(svc.active_flows(), 1);
    assert_eq!(svc.stats().starts, 2);
    assert_eq!(svc.stats().rejected, 1, "no further rejections");
    for _ in 0..100 {
        svc.tick();
    }
    assert!(svc.flow_rate_gbps(Token::new(7)).unwrap() > 9.0);
}

#[test]
fn builder_constructs_every_engine_variant() {
    let fabric = TwoTierClos::build(ClosConfig::paper_eval());
    for engine in [
        Engine::Serial,
        Engine::Multicore { workers: 0 },
        Engine::Multicore { workers: 2 },
        Engine::Fastpass,
        Engine::Gradient,
    ] {
        // First-order gradient steps need far more ticks than NED or the
        // arbiter to approach line rate (§3's argument for NED).
        let ticks = if engine == Engine::Gradient {
            4_000
        } else {
            120
        };
        let mut svc = AllocatorService::builder()
            .fabric(&fabric)
            .engine(engine.clone())
            .build()
            .unwrap();
        assert_eq!(svc.engine_name(), engine.name());
        svc.on_message(Message::FlowletStart {
            token: Token::new(1),
            src: 0,
            dst: 140,
            size_hint: 100_000,
            weight_q8: 256,
            spine: 1,
        })
        .unwrap();
        let updates = svc.tick();
        assert_eq!(
            updates.len(),
            1,
            "{}: first tick reports a rate",
            engine.name()
        );
        for _ in 0..ticks {
            svc.tick();
        }
        let rate = svc.flow_rate_gbps(Token::new(1)).unwrap();
        assert!(
            rate > 9.0,
            "{}: lone flow should get ~line rate, got {rate}",
            engine.name()
        );
    }
}

#[test]
fn misdelivered_rate_update_is_rejected_and_counted() {
    let (_, mut svc, _) = setup();
    let msg = Message::RateUpdate {
        token: Token::new(1),
        rate: Rate16::encode(5.0),
    };
    assert_eq!(svc.on_message(msg), Err(ServiceError::UnexpectedRateUpdate));
    assert_eq!(svc.stats().rejected, 1);
}

#[test]
fn fault_tolerance_rates_survive_allocator_restart() {
    // §2: "if the allocator fails, the rates expire and endpoint
    // congestion control takes over, using the previously allocated rates
    // as a starting point" — and a fresh allocator can be rebuilt from
    // new notifications without replication.
    let (fabric, mut svc, mut agents) = setup();
    let start = agents[0].on_backlog(1, 99, 1_000_000, 0).unwrap();
    svc.on_message(start).unwrap();
    pump(&mut svc, &mut agents, 100);
    let before = agents[0].pacing_rate_gbps(1).unwrap();
    assert!(before > 9.0);

    // Allocator crashes; endpoints keep their last rate.
    drop(svc);
    assert_eq!(agents[0].pacing_rate_gbps(1), Some(before));

    // A replacement allocator starts empty; the endpoint's *next* flowlet
    // re-registers and gets allocated again.
    let mut svc2 = AllocatorService::builder()
        .fabric(&fabric)
        .build()
        .expect("fabric is set");
    agents[0].on_drained(1, 1_000_000_000);
    for m in agents[0].poll(2_000_000_000) {
        // The end notification goes to the new allocator, which ignores
        // the unknown token gracefully.
        svc2.on_message(m).unwrap();
    }
    let restart = agents[0]
        .on_backlog(1, 99, 1_000_000, 3_000_000_000)
        .unwrap();
    svc2.on_message(restart).unwrap();
    pump(&mut svc2, &mut agents, 100);
    assert!(agents[0].pacing_rate_gbps(1).unwrap() > 9.0);
}

#[test]
fn update_traffic_is_quiet_at_steady_state() {
    let (_, mut svc, mut agents) = setup();
    for s in 0..32u16 {
        let dst = (s + 64) % 144;
        let msg = agents[s as usize]
            .on_backlog(s as u64, dst, 1_000_000, 0)
            .unwrap();
        svc.on_message(msg).unwrap();
    }
    pump(&mut svc, &mut agents, 200);
    let sent_before = svc.stats().updates_sent;
    pump(&mut svc, &mut agents, 100);
    let new_updates = svc.stats().updates_sent - sent_before;
    assert_eq!(
        new_updates, 0,
        "converged allocation must be silent under the threshold filter"
    );
}
