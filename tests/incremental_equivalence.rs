//! Incremental-vs-full tick equivalence.
//!
//! The contract of the incremental tick (`FlowtuneConfig::incremental`)
//! is layered:
//!
//! * at `dirty_eps = 0` it is the full sweep — bit-for-bit: same update
//!   stream every tick, same final rates, same aggregate counters (the
//!   dirty-set telemetry aside, which the full sweep doesn't keep) —
//!   across shard counts, exchange cadences, and churn schedules;
//! * at `dirty_eps > 0` it may skip recomputes whose inputs moved less
//!   than `eps`, so rates can diverge from the full sweep — but only
//!   boundedly, `O(eps)`, with the periodic full sweep
//!   (`full_sweep_every`) stopping float drift from compounding;
//! * flow intake dirties exactly the traversed links: an add or remove
//!   marks the links of that flow's path, nothing else (property-tested
//!   under random endpoint pairs).
//!
//! The replay/assert skeleton lives in `tests/common` (the differential
//! conformance harness); this file owns only what varies per pin.

mod common;

use common::{assert_bit_for_bit, fabric, start, Replay, StatsCheck};
use flowtune::{AllocatorService, FlowtuneConfig, ShardedService};
use proptest::prelude::*;

#[test]
fn incremental_is_bit_for_bit_the_full_sweep_at_eps_zero() {
    let fabric = fabric();
    for shards in [1usize, 2, 4] {
        for exchange_every in [0u64, 1] {
            for seed in [1u64, 7, 42] {
                let build = |incremental: bool| {
                    let cfg = FlowtuneConfig {
                        exchange_every,
                        incremental,
                        dirty_eps: 0.0,
                        ..FlowtuneConfig::default()
                    };
                    ShardedService::new(&fabric, cfg, shards)
                };
                let mut inc = build(true);
                let mut full = build(false);
                let replay = Replay::churn(&fabric, seed, 120);
                assert_bit_for_bit(
                    &format!("incremental vs full sweep, {shards} shards, exchange {exchange_every}, seed {seed}"),
                    &replay,
                    &mut full,
                    &mut inc,
                    StatsCheck::MaskedDirty,
                );
                // The incremental run did skip work — the equivalence
                // is not vacuous. A 120-tick full sweep would re-run
                // every live flow's rate pass every tick; the dirty
                // counter must come in strictly below that.
                let live = replay.live_tokens();
                let full_work: u64 = full.stats().iterations * live.len() as u64;
                assert!(
                    inc.stats().dirty_flows < full_work || live.is_empty(),
                    "{shards} shards, exchange {exchange_every}, seed {seed}: \
                     dirty_flows {} never skipped anything (full would be {full_work})",
                    inc.stats().dirty_flows,
                );
            }
        }
    }
}

#[test]
fn eps_divergence_is_bounded_and_sweep_cadence_caps_drift() {
    // With a positive dirty eps the incremental engine may hold a flow's
    // rate at a value computed from prices up to eps stale, so its rates
    // drift from the full sweep's — the acceptance criterion is that the
    // drift stays O(eps) at every sweep cadence, not that it vanishes.
    // Constant: link prices diverge by under 1×eps, and a rate's
    // sensitivity to a path-price move is dx = (x²/w)·dλ — with ~18
    // Gbit/s unit-weight flows that is ~320 per link, ~10³ over a
    // path — so 10⁴×eps gives an order of magnitude of headroom while
    // still catching unbounded drift (which compounds per tick and
    // would blow through any fixed multiple within the 500 ticks).
    let fabric = fabric();
    let eps = 1e-6;
    for full_sweep_every in [4u64, 16, 64] {
        let build = |incremental: bool| {
            let cfg = FlowtuneConfig {
                incremental,
                dirty_eps: if incremental { eps } else { 0.0 },
                full_sweep_every,
                ..FlowtuneConfig::default()
            };
            AllocatorService::new(&fabric, cfg)
        };
        let mut inc = build(true);
        let mut full = build(false);
        let mut token = 0u32;
        let mut live = Vec::new();
        for src in 0..16u16 {
            for k in 0..2u16 {
                let dst = (src + 5 + 3 * k) % 16;
                token += 1;
                let msg = start(&fabric, token, src, dst);
                inc.on_message(msg).unwrap();
                full.on_message(msg).unwrap();
                live.push(flowtune_proto::Token::new(token));
            }
        }
        // Long quiet stretch: plenty of iterations for per-tick drift to
        // compound if the sweep failed to re-anchor the trajectory.
        for _ in 0..500 {
            inc.tick();
            full.tick();
        }
        let bound = 1e4 * eps;
        for &t in &live {
            let a = full.flow_rate_gbps(t).unwrap();
            let b = inc.flow_rate_gbps(t).unwrap();
            assert!(
                (a - b).abs() <= bound,
                "sweep cadence {full_sweep_every}: token {t:?} drifted \
                 {:.3e} Gbit/s (> {bound:.1e}): full {a} vs incremental {b}",
                (a - b).abs()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Intake dirtiness is exact: adding a flow marks precisely the links
    // its path traverses (in traversal order, nothing else), the next
    // iteration drains the marks, and removing the flow re-marks the
    // same links.
    #[test]
    fn intake_dirties_exactly_the_traversed_links(
        src in 0usize..16,
        dst_off in 1usize..16,
        spine in 0usize..2,
        weight in 1u16..1024,
    ) {
        use flowtune_alloc::{AllocConfig, SerialAllocator};
        use flowtune_topo::FlowId;

        let fabric = fabric();
        let dst = (src + dst_off) % 16;
        let path = fabric.path_via_spine(src, dst, spine);
        let mut alloc = SerialAllocator::new(
            &fabric,
            AllocConfig {
                incremental: true,
                ..AllocConfig::default()
            },
        );
        prop_assert_eq!(alloc.dirty_link_ids(), Vec::new());

        alloc.add_flow(FlowId(1), src, dst, weight as f64 / 256.0, &path);
        prop_assert_eq!(
            alloc.dirty_link_ids(),
            path.links().to_vec(),
            "add must dirty the path links, in order"
        );

        // The iteration consumes the intake marks...
        alloc.iterate();
        prop_assert_eq!(alloc.dirty_link_ids(), Vec::new());

        // ...and the remove re-marks exactly the same links.
        prop_assert!(alloc.remove_flow(FlowId(1)));
        prop_assert_eq!(
            alloc.dirty_link_ids(),
            path.links().to_vec(),
            "remove must dirty the path links, in order"
        );
    }
}
