//! Cross-shard incast: the workload sharding alone gets wrong, and the
//! inter-shard link-state exchange makes right.
//!
//! A many-to-one incast whose sources span both shards makes the
//! receiver's downlink a *shared* link: without the exchange each shard
//! prices it for its own flows alone and the merged allocation
//! over-subscribes it (~2× at two shards); with the exchange enabled
//! every shard prices the link for the true total and the sharded
//! service matches the unsharded one. Both behaviors are pinned here —
//! the first so the failure mode stays visible, the second as the
//! exchange's acceptance criterion.

use flowtune::{AllocatorService, FlowtuneConfig, ShardedService, TickDriver};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};

/// Two blocks of 2 racks × 4 servers: 16 servers, shard 0 = sources 0..8,
/// shard 1 = sources 8..16, 40 G links.
fn fabric() -> TwoTierClos {
    TwoTierClos::build(ClosConfig::multicore(2, 2, 4))
}

fn start(fabric: &TwoTierClos, token: u32, src: u16, dst: u16) -> Message {
    let spine = fabric.ecmp_spine(
        src as usize,
        dst as usize,
        flowtune_topo::FlowId(token as u64),
    );
    Message::FlowletStart {
        token: Token::new(token),
        src,
        dst,
        size_hint: 1_000_000,
        weight_q8: 256,
        spine: spine as u8,
    }
}

/// An incast flow set: one flow per source (fed to a service with
/// [`feed`], which addresses them all at the receiver). Returns
/// `(token, src)` pairs, token = 1-based index.
fn incast(sources: &[u16]) -> Vec<(Token, u16)> {
    sources
        .iter()
        .enumerate()
        .map(|(i, &src)| (Token::new(i as u32 + 1), src))
        .collect()
}

fn feed(svc: &mut dyn TickDriver, fabric: &TwoTierClos, flows: &[(Token, u16)], receiver: u16) {
    for &(token, src) in flows {
        svc.on_message(start(fabric, token.get(), src, receiver))
            .unwrap();
    }
}

/// Sum of the flows' *normalized* (endpoint-visible) rates per global
/// link — what the network would actually be asked to carry.
fn endpoint_link_loads(
    svc: &dyn TickDriver,
    fabric: &TwoTierClos,
    flows: &[(Token, u16)],
    receiver: u16,
) -> Vec<f64> {
    let mut loads = vec![0.0; fabric.topology().link_count()];
    for &(token, src) in flows {
        let rate = svc.flow_rate_gbps(token).unwrap();
        let spine = fabric.ecmp_spine(
            src as usize,
            receiver as usize,
            flowtune_topo::FlowId(token.get() as u64),
        );
        let path = fabric.path_via_spine(src as usize, receiver as usize, spine);
        for link in path.iter() {
            loads[link.index()] += rate;
        }
    }
    loads
}

/// Worst over-subscription across links, as a fraction of capacity
/// (0 = every link within capacity).
fn worst_oversubscription(fabric: &TwoTierClos, loads: &[f64]) -> f64 {
    fabric
        .topology()
        .links()
        .iter()
        .enumerate()
        .map(|(l, link)| (loads[l] / (link.capacity_bps as f64 / 1e9)) - 1.0)
        .fold(0.0f64, f64::max)
}

const TICKS: usize = 400;

/// 4 sources per block, all sending to server 15 (shard 1): the
/// receiver's 40 G downlink carries both shards' flows.
const SOURCES: [u16; 8] = [0, 1, 2, 3, 8, 9, 10, 11];
const RECEIVER: u16 = 15;

#[test]
fn incast_without_exchange_oversubscribes_the_shared_downlink() {
    // Pins the bug the exchange exists to fix: with the exchange off
    // (the pre-exchange sharded behavior), each shard hands its four
    // flows nearly the whole downlink.
    let fabric = fabric();
    let mut svc = ShardedService::new(&fabric, FlowtuneConfig::default(), 2);
    let flows = incast(&SOURCES);
    feed(&mut svc, &fabric, &flows, RECEIVER);
    for _ in 0..TICKS {
        svc.tick();
    }
    let loads = endpoint_link_loads(&svc, &fabric, &flows, RECEIVER);
    let over = worst_oversubscription(&fabric, &loads);
    assert!(
        over > 0.5,
        "expected ≥1.5× over-subscription on the shared downlink, got {over}"
    );
    assert_eq!(svc.stats().exchange_rounds, 0);
}

#[test]
fn incast_with_exchange_matches_unsharded_and_respects_capacity() {
    // The tentpole acceptance: with a per-tick exchange, the 2-shard
    // incast converges to the unsharded service's per-flow rates and no
    // link's summed allocation exceeds capacity at steady state.
    let fabric = fabric();
    let cfg = FlowtuneConfig {
        exchange_every: 1,
        ..FlowtuneConfig::default()
    };
    let mut plain = AllocatorService::new(&fabric, cfg);
    let mut sharded = ShardedService::new(&fabric, cfg, 2);
    let flows = incast(&SOURCES);
    feed(&mut plain, &fabric, &flows, RECEIVER);
    feed(&mut sharded, &fabric, &flows, RECEIVER);
    for _ in 0..TICKS {
        plain.tick();
        sharded.tick();
    }
    // Per-flow rates match the unsharded service within the F-NORM /
    // update-threshold tolerance the figures use.
    let tol = cfg.update_threshold;
    for &(token, src) in &flows {
        let a = plain.flow_rate_gbps(token).unwrap();
        let b = sharded.flow_rate_gbps(token).unwrap();
        assert!(
            (a - b).abs() <= tol * a.max(1.0),
            "token {token:?} (src {src}): unsharded {a} vs sharded {b}"
        );
    }
    // No link is over-subscribed by the endpoint-visible rates.
    let loads = endpoint_link_loads(&sharded, &fabric, &flows, RECEIVER);
    let over = worst_oversubscription(&fabric, &loads);
    assert!(over <= 1e-6, "over-subscribed by {over}");
    // The 8 flows share the 40 G downlink (less the §6.4 headroom).
    let total: f64 = flows
        .iter()
        .map(|&(t, _)| sharded.flow_rate_gbps(t).unwrap())
        .sum();
    assert!((total - 39.6).abs() < 0.5, "downlink total {total}");
    assert_eq!(sharded.stats().exchange_rounds, TICKS as u64);
}

#[test]
fn asymmetric_incast_with_exchange_respects_capacity() {
    // 3 sources in shard 0 vs 5 in shard 1: the shards' price
    // trajectories differ, but the exchanged totals must still keep
    // every link feasible at steady state.
    let fabric = fabric();
    let cfg = FlowtuneConfig {
        exchange_every: 2,
        ..FlowtuneConfig::default()
    };
    let mut svc = ShardedService::new(&fabric, cfg, 2);
    let sources = [0u16, 1, 2, 8, 9, 10, 11, 12, 13];
    let flows = incast(&sources);
    feed(&mut svc, &fabric, &flows, RECEIVER);
    for _ in 0..TICKS {
        svc.tick();
    }
    let loads = endpoint_link_loads(&svc, &fabric, &flows, RECEIVER);
    let over = worst_oversubscription(&fabric, &loads);
    assert!(over <= 1e-6, "over-subscribed by {over}");
    // Everyone keeps a real share — the exchange must not starve either
    // shard's flows.
    for &(token, src) in &flows {
        let rate = svc.flow_rate_gbps(token).unwrap();
        assert!(rate > 1.0, "src {src} starved at {rate}");
    }
}

#[test]
fn four_shard_incast_with_exchange_matches_unsharded() {
    // Pins the Hessian half of the exchange: with background *loads*
    // only, each shard divides the global over-allocation by just its
    // own Hessian diagonal, multiplying NED's effective step by the
    // shard count — at 4 shards that is γ_eff ≈ 1.6, outside the
    // paper's stable [0.2, 1.5] range, and the allocation collapsed to
    // ~25% of optimal. Exchanging `Σ ∂x/∂p` alongside the loads keeps
    // the Newton step global and the fixed point at the unsharded
    // optimum for any shard count.
    let fabric = fabric();
    let cfg = FlowtuneConfig {
        exchange_every: 1,
        ..FlowtuneConfig::default()
    };
    let mut plain = AllocatorService::new(&fabric, cfg);
    let mut sharded = ShardedService::new(&fabric, cfg, 4);
    // Two sources per 4-server shard (receiver 15's own shard
    // contributes 12 and 13).
    let sources = [0u16, 1, 4, 5, 8, 9, 12, 13];
    let flows = incast(&sources);
    feed(&mut plain, &fabric, &flows, RECEIVER);
    feed(&mut sharded, &fabric, &flows, RECEIVER);
    for _ in 0..TICKS {
        plain.tick();
        sharded.tick();
    }
    let tol = cfg.update_threshold;
    for &(token, src) in &flows {
        let a = plain.flow_rate_gbps(token).unwrap();
        let b = sharded.flow_rate_gbps(token).unwrap();
        assert!(
            (a - b).abs() <= tol * a.max(1.0),
            "token {token:?} (src {src}): unsharded {a} vs 4-shard {b}"
        );
    }
    let loads = endpoint_link_loads(&sharded, &fabric, &flows, RECEIVER);
    let over = worst_oversubscription(&fabric, &loads);
    assert!(over <= 1e-6, "over-subscribed by {over}");
}

#[test]
fn exchange_disabled_two_shards_stay_bit_for_bit_pre_exchange() {
    // `exchange_every: 0` (the default) must leave the sharded service's
    // arithmetic untouched: same update streams and same rates as a
    // service built with the pre-exchange default configuration.
    let fabric = fabric();
    let explicit_off = FlowtuneConfig {
        exchange_every: 0,
        ..FlowtuneConfig::default()
    };
    let mut a = ShardedService::new(&fabric, FlowtuneConfig::default(), 2);
    let mut b = ShardedService::new(&fabric, explicit_off, 2);
    let flows = incast(&SOURCES);
    feed(&mut a, &fabric, &flows, RECEIVER);
    feed(&mut b, &fabric, &flows, RECEIVER);
    for round in 0..100 {
        assert_eq!(a.tick(), b.tick(), "diverged at tick {round}");
    }
    for &(token, _) in &flows {
        assert_eq!(
            a.flow_rate_gbps(token).map(f64::to_bits),
            b.flow_rate_gbps(token).map(f64::to_bits)
        );
    }
    assert_eq!(a.stats(), b.stats());
}
