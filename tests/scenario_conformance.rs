//! Differential conformance on a collective scenario (ISSUE 10
//! acceptance): the notification stream of a ring-allreduce run —
//! recorded once from an unsharded oracle via the scenario runner's
//! trace hook — replays bit-for-bit through every control plane:
//!
//! * unsharded `AllocatorService` vs `ShardedService` (1 shard) vs
//!   `PeerCluster` over the in-memory wire (1 peer): the full
//!   unsharded / sharded / wire-cluster chain, exactly equal;
//! * `ShardedService` vs `PeerCluster` under real partitioning (2 and 4
//!   shards, exchange every tick): the wire stays behaviorally
//!   invisible on barrier-synchronized collective churn, whose
//!   admission edges (a whole phase starting the instant the previous
//!   one drains) are sharper than anything the seeded-churn pins feed;
//! * incremental vs full-sweep at `eps = 0` on the same stream.
//!
//! A collective stream cannot be generated per driver — barrier
//! admission depends on when flows complete, so the schedule is an
//! *output* of the oracle run. Replaying the recording is sound exactly
//! because the drivers under test are bit-for-bit equal, which is the
//! property being pinned.

mod common;

use std::time::Duration;

use common::{assert_bit_for_bit, fabric, Replay, StatsCheck};
use flowtune::{
    AllocatorService, ExchangeConfig, FlowtuneConfig, ScenarioOptions, ShardedService, TickLoop,
};
use flowtune_net::{mem_mesh, MemTransport, PeerCluster, ShardPeer};
use flowtune_workload::ScenarioKind;

/// Records a ring-allreduce stream from an unsharded oracle under `cfg`.
fn recorded_allreduce(cfg: FlowtuneConfig) -> Replay {
    let fabric = fabric();
    let mut ticker = TickLoop::new(AllocatorService::new(&fabric, cfg), cfg.tick_interval_ps);
    let mut scenario = ScenarioKind::AllreduceRing.build(16, 2_000_000);
    let (replay, report) =
        Replay::record(&mut ticker, scenario.as_mut(), &ScenarioOptions::default());
    assert!(!report.truncated, "oracle run blew its tick budget");
    assert_eq!(report.phases.len(), 30, "2(n−1) phases for n = 16");
    assert_eq!(report.stats.starts, 16 * 30);
    assert_eq!(report.stats.ends, 16 * 30, "every flow drained");
    assert!(
        replay.message_count() >= 2 * 16 * 30,
        "a start and an end per flow"
    );
    replay
}

fn mem_cluster(
    fabric: &flowtune_topo::TwoTierClos,
    cfg: FlowtuneConfig,
    shards: usize,
) -> PeerCluster<MemTransport> {
    let exchange = ExchangeConfig::from_flowtune(&cfg).round_timeout(Duration::from_secs(5));
    let peers: Vec<_> = mem_mesh(shards)
        .into_iter()
        .map(|t| {
            ShardPeer::new(AllocatorService::new(fabric, cfg), t, exchange)
                .expect("mem transport splits infallibly")
        })
        .collect();
    PeerCluster::from_peers(peers)
}

#[test]
fn a_collective_stream_is_bit_for_bit_across_unsharded_sharded_and_wire_cluster() {
    let fabric = fabric();
    let cfg = FlowtuneConfig::default();
    let replay = recorded_allreduce(cfg);

    // Unsharded vs sharded.
    let mut plain = AllocatorService::new(&fabric, cfg);
    let mut sharded = ShardedService::new(&fabric, cfg, 1);
    assert_bit_for_bit(
        "allreduce: unsharded vs sharded",
        &replay,
        &mut plain,
        &mut sharded,
        StatsCheck::Exact,
    );

    // Unsharded vs the wire cluster — the same stream crosses the
    // serialized exchange path and stays exactly equal, closing the
    // unsharded ≡ sharded ≡ wire-cluster chain.
    let mut plain = AllocatorService::new(&fabric, cfg);
    let mut cluster = mem_cluster(&fabric, cfg, 1);
    assert_bit_for_bit(
        "allreduce: unsharded vs mem wire cluster",
        &replay,
        &mut plain,
        &mut cluster,
        StatsCheck::Exact,
    );
}

#[test]
fn the_partitioned_planes_match_bit_for_bit_on_collective_churn() {
    let fabric = fabric();
    for shards in [2usize, 4] {
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            ..FlowtuneConfig::default()
        };
        // The stream is recorded under the same config the partitioned
        // planes run, so their tick trajectories see identical inputs.
        let replay = recorded_allreduce(cfg);
        let mut svc = ShardedService::new(&fabric, cfg, shards);
        let mut cluster = mem_cluster(&fabric, cfg, shards);
        assert_bit_for_bit(
            &format!("allreduce: {shards}-shard in-process vs mem wire cluster"),
            &replay,
            &mut svc,
            &mut cluster,
            StatsCheck::Exact,
        );
        let wire = cluster.wire_stats();
        assert!(wire.tx_bytes > 0, "no bytes on the mem wire");
        assert_eq!(wire.tx_frames, wire.rx_frames);
        assert_eq!(wire.late_rounds, 0);
    }
}

#[test]
fn incremental_matches_the_full_sweep_on_a_collective_stream_at_eps_zero() {
    let fabric = fabric();
    let base = FlowtuneConfig::default();
    let replay = recorded_allreduce(base);
    let build = |incremental: bool| {
        let cfg = FlowtuneConfig {
            incremental,
            dirty_eps: 0.0,
            ..base
        };
        AllocatorService::new(&fabric, cfg)
    };
    let mut full = build(false);
    let mut inc = build(true);
    assert_bit_for_bit(
        "allreduce: incremental vs full sweep",
        &replay,
        &mut full,
        &mut inc,
        StatsCheck::MaskedDirty,
    );
}
