//! How much does centralized flowlet control cost on the wire? Runs the
//! fluid control-plane model (the Figure 5–6 harness) on one workload and
//! prints the overhead budget, including the §7 batching arithmetic.
//!
//! Run with: `cargo run --release --example update_traffic`

use flowtune::FlowtuneConfig;
use flowtune_bench::FluidDriver;
use flowtune_proto::wire;
use flowtune_workload::Workload;

fn main() {
    let servers = 144;
    let load = 0.8;
    println!("cache workload, {servers} servers, load {load}, 20 ms measured window\n");
    println!("threshold | updates/s | from-alloc wire | capacity fraction");
    for threshold in [0.01, 0.02, 0.05] {
        let cfg = FlowtuneConfig {
            update_threshold: threshold,
            ..FlowtuneConfig::default()
        };
        let mut driver = FluidDriver::new(Workload::Cache, load, servers, cfg, 42);
        let stats = driver.run(5_000_000_000, 20_000_000_000);
        let secs = stats.duration_ps as f64 / 1e12;
        println!(
            "{threshold:>9} | {:>9.0} | {:>12.1} kB/s | {:.4}%",
            stats.updates_sent as f64 / secs,
            stats.wire_from_alloc as f64 / secs / 1e3,
            100.0 * stats.from_alloc_fraction(servers, 10_000_000_000),
        );
    }

    // §7's observation: tiny updates pay the 64-byte minimum frame.
    println!(
        "\nwire cost of one 6-byte rate update: {} bytes ({}x overhead)",
        wire::segment_wire_bytes(6),
        wire::segment_wire_bytes(6) / 6
    );
    let n = 200;
    println!(
        "batched through an intermediary, {n} updates cost {} bytes ({:.1} B each)",
        wire::batched_wire_bytes(n * 6),
        wire::batched_wire_bytes(n * 6) as f64 / n as f64
    );
}
