//! Quickstart: stand up a Flowtune allocator on the paper's evaluation
//! fabric, start a few flowlets, watch rates converge and churn re-settle.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The allocator is built through `AllocatorService::builder()`; swap
//! `Engine::Serial` for `Engine::Multicore { workers }`,
//! `Engine::Fastpass` or `Engine::Gradient` to run the same control loop
//! over a different allocation engine — or call
//! `.engine(Engine::Serial.sharded(n)).build_driver()` to run the same
//! loop over a sharded control plane (`ShardedService`), which the
//! experiment binaries expose as `--shards N`.

use flowtune::{AllocatorService, EndpointAgent, Engine, FlowtuneConfig};
use flowtune_topo::{ClosConfig, TwoTierClos};

fn main() {
    // 9 racks × 16 servers, 4 spines, 10 G hosts / 40 G fabric (§6.2).
    let fabric = TwoTierClos::build(ClosConfig::paper_eval());
    let servers = fabric.config().server_count();
    let mut allocator = AllocatorService::builder()
        .fabric(&fabric)
        .config(FlowtuneConfig::default())
        .engine(Engine::Serial)
        .build()
        .expect("fabric was supplied");
    let mut agents: Vec<EndpointAgent> = (0..servers)
        .map(|s| EndpointAgent::new(s as u16, servers))
        .collect();

    println!(
        "fabric: {servers} servers, {} links | engine: {}",
        fabric.topology().link_count(),
        allocator.engine_name()
    );

    // Three flowlets: two from server 0 (they will share its 10 G
    // uplink), one from server 17.
    let mut notify = |agents: &mut Vec<EndpointAgent>, flow: u64, src: usize, dst: u16| {
        if let Some(msg) = agents[src].on_backlog(flow, dst, 5_000_000, 0) {
            allocator.on_message(msg).expect("fresh token");
        }
    };
    notify(&mut agents, 1, 0, 140);
    notify(&mut agents, 2, 0, 70);
    notify(&mut agents, 3, 17, 99);

    // Run allocator ticks (one per 10 µs in deployment) and deliver the
    // rate updates back to the owning endpoint agents.
    for tick in 1..=40 {
        let updates = allocator.tick();
        for (server, msg) in &updates {
            agents[*server as usize].on_rate_update(msg);
        }
        if tick <= 3 || tick % 20 == 0 {
            println!(
                "tick {tick:>3}: {} updates | flow1 {:.2} Gbit/s, flow2 {:.2}, flow3 {:.2}",
                updates.len(),
                agents[0].pacing_rate_gbps(1).unwrap_or(0.0),
                agents[0].pacing_rate_gbps(2).unwrap_or(0.0),
                agents[17].pacing_rate_gbps(3).unwrap_or(0.0),
            );
        }
    }
    println!("→ flows 1+2 share server 0's uplink (≈4.95 each); flow 3 gets ≈9.9");

    // Flowlet 2 ends: the allocator reassigns the freed capacity.
    agents[0].on_drained(2, 400_000_000);
    for msg in agents[0].poll(400_000_000 + 30_000_000) {
        allocator.on_message(msg).expect("end is always accepted");
    }
    for _ in 0..40 {
        for (server, msg) in allocator.tick() {
            agents[server as usize].on_rate_update(&msg);
        }
    }
    println!(
        "after flow 2 ends: flow1 {:.2} Gbit/s (re-converged to line rate)",
        agents[0].pacing_rate_gbps(1).unwrap_or(0.0)
    );
    let stats = allocator.stats();
    println!(
        "allocator stats: {} starts, {} ends, {} updates sent, {} suppressed, {} B in / {} B out",
        stats.starts,
        stats.ends,
        stats.updates_sent,
        stats.updates_suppressed,
        stats.bytes_in,
        stats.bytes_out
    );
}
