//! Packet-level shoot-out: run the same Facebook-web trace under Flowtune
//! and DCTCP on a 48-server leaf-spine pod and compare tail FCTs, queueing
//! and drops — a miniature of the paper's §6.5 comparison.
//!
//! Run with: `cargo run --release --example datacenter_sim`

use flowtune_sim::{Scheme, SimConfig, Simulation, MS};
use flowtune_topo::ClosConfig;
use flowtune_workload::{TraceConfig, TraceGenerator, Workload};

fn main() {
    let servers = 48;
    let load = 0.6;
    let horizon = 8 * MS;

    println!(
        "web workload, {servers} servers, load {load}, {} ms of arrivals",
        horizon / MS
    );
    println!("scheme     | flows | p99 slowdown (1pkt) | p99 qdelay 4hop | dropped");
    for scheme in [Scheme::Flowtune, Scheme::Dctcp, Scheme::Pfabric] {
        let mut cfg = SimConfig::paper(scheme);
        cfg.clos = ClosConfig {
            racks: servers / 16,
            servers_per_rack: 16,
            racks_per_block: servers / 16,
            ..ClosConfig::paper_eval()
        };
        cfg.sample_interval_ps = 100_000_000; // 100 µs sampling for a short run
        let mut sim = Simulation::new(cfg);
        let mut gen = TraceGenerator::new(TraceConfig {
            workload: Workload::Web,
            load,
            servers,
            server_link_bps: 10_000_000_000,
            seed: 42,
            affinity: None,
        });
        for e in gen.events_until(horizon) {
            sim.add_flow(e.at_ps, e.src as u16, e.dst as u16, e.bytes);
        }
        sim.run_until(horizon + 40 * MS);
        let m = sim.metrics();
        println!(
            "{:<10} | {:>5} | {:>19} | {:>12} µs | {:>6.2} Gbit/s",
            scheme.name(),
            m.fcts.len(),
            m.p_slowdown("1 packet", 99.0)
                .map_or("n/a".into(), |v| format!("{v:.2}x")),
            m.p_queue_delay(4, 99.0).unwrap_or(0) / 1_000_000,
            m.drop_gbps(horizon + 40 * MS),
        );
        if scheme == Scheme::Flowtune {
            let s = sim.allocator_stats().unwrap();
            println!(
                "           | allocator: {} flowlet starts, {} rate updates, {:.3}% ctrl overhead",
                s.starts,
                s.updates_sent,
                100.0 * (m.ctrl_bytes_to_alloc + m.ctrl_bytes_from_alloc) as f64 * 8.0
                    / ((horizon + 40 * MS) as f64 / 1e12)
                    / (servers as f64 * 1e10)
            );
        }
    }
}
