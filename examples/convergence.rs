//! The Figure-4 experiment in miniature: five senders to one receiver,
//! a flow starting every 2 ms then stopping every 2 ms; prints each
//! flow's throughput staircase under Flowtune vs DCTCP.
//!
//! Flowtune converges to the 1/N fair share within tens of microseconds
//! of each change; DCTCP takes milliseconds and keeps fluctuating.
//!
//! Run with: `cargo run --release --example convergence`

use flowtune_sim::{Scheme, SimConfig, Simulation, MS, US};
use flowtune_workload::ConvergenceScenario;

fn main() {
    let scen = ConvergenceScenario {
        stagger_ps: 2 * MS,
        ..ConvergenceScenario::paper_default()
    };
    let bin = 500 * US;
    for scheme in [Scheme::Flowtune, Scheme::Dctcp] {
        let mut cfg = SimConfig::paper(scheme);
        cfg.throughput_bin_ps = bin;
        let mut sim = Simulation::new(cfg);
        let mut ids = Vec::new();
        for (k, &(start, stop)) in scen.schedule().iter().enumerate() {
            ids.push(sim.add_open_flow(start, stop, scen.senders[k] as u16, scen.receiver as u16));
        }
        sim.run_until(scen.duration_ps() + 2 * MS);

        println!("\n=== {} — Gbit/s per flow, 500 µs bins ===", scheme.name());
        println!(
            "{:>6} | {:>6} {:>6} {:>6} {:>6} {:>6} | sum",
            "t(ms)", "f0", "f1", "f2", "f3", "f4"
        );
        let m = sim.metrics();
        let bins = (scen.duration_ps() / bin) as usize;
        for b in (0..bins).step_by(2) {
            let mut gbps = [0.0f64; 5];
            for (i, id) in ids.iter().enumerate() {
                let bytes = m
                    .throughput_bins
                    .get(id)
                    .and_then(|s| s.get(b))
                    .copied()
                    .unwrap_or(0);
                gbps[i] = bytes as f64 * 8.0 / (bin as f64 / 1e12) / 1e9;
            }
            println!(
                "{:>6.1} | {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} | {:>5.2}",
                (b as u64 * bin) as f64 / 1e9,
                gbps[0],
                gbps[1],
                gbps[2],
                gbps[3],
                gbps[4],
                gbps.iter().sum::<f64>()
            );
        }
    }
    println!("\nExpected: each active flow holds ≈10/N Gbit/s; Flowtune rows are flat,");
    println!("DCTCP rows wobble around the fair share and bleed across steps.");
}
