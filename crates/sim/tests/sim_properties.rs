//! Property tests over the packet simulator: for random small topologies,
//! flow sets and schemes, physical invariants must hold.

use flowtune_sim::{Scheme, SimConfig, Simulation, MS};
use flowtune_topo::ClosConfig;
use proptest::prelude::*;

fn pod(racks: usize, spr: usize) -> ClosConfig {
    ClosConfig {
        racks,
        servers_per_rack: spr,
        racks_per_block: racks,
        ..ClosConfig::paper_eval()
    }
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Flowtune),
        Just(Scheme::Dctcp),
        Just(Scheme::Pfabric),
        Just(Scheme::SfqCodel),
        Just(Scheme::Xcp),
    ]
}

/// Up to 12 random flows on a 2×8 pod.
fn flows_strategy() -> impl Strategy<Value = Vec<(u64, u16, u16, u64)>> {
    proptest::collection::vec(
        (0u64..2_000_000, 0u16..16, 0u16..16, 100u64..500_000),
        1..12,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(at, src, dst, bytes)| {
                let dst = if dst == src { (dst + 1) % 16 } else { dst };
                (at * 1_000, src, dst, bytes) // ns-ish stagger → ps
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_flows_complete_and_slowdowns_are_sane(
        scheme in scheme_strategy(),
        flows in flows_strategy(),
    ) {
        let mut cfg = SimConfig::paper(scheme);
        cfg.clos = pod(2, 8);
        let mut sim = Simulation::new(cfg);
        let ids: Vec<u64> = flows
            .iter()
            .map(|&(at, src, dst, bytes)| sim.add_flow(at, src, dst, bytes))
            .collect();
        sim.run_until(500 * MS);
        for (i, id) in ids.iter().enumerate() {
            prop_assert!(
                sim.flow_finished(*id),
                "{}: flow {i} of {:?} unfinished",
                scheme.name(),
                flows[i]
            );
        }
        let m = sim.metrics();
        prop_assert_eq!(m.fcts.len(), flows.len());
        for r in &m.fcts {
            prop_assert!(r.slowdown >= 0.99, "slowdown {} below ideal", r.slowdown);
            prop_assert!(r.end_ps > r.start_ps);
        }
        // Conservation: delivered application bytes equal the offered sum
        // exactly once everything completed.
        let offered: u64 = flows.iter().map(|f| f.3).sum();
        prop_assert_eq!(m.delivered_bytes, offered);
    }

    #[test]
    fn drops_only_happen_for_lossy_schemes_at_tiny_scale(
        flows in flows_strategy(),
    ) {
        // A lightly loaded pod: Flowtune must never drop data.
        let mut cfg = SimConfig::paper(Scheme::Flowtune);
        cfg.clos = pod(2, 8);
        let mut sim = Simulation::new(cfg);
        for &(at, src, dst, bytes) in &flows {
            sim.add_flow(at, src, dst, bytes);
        }
        sim.run_until(500 * MS);
        prop_assert_eq!(sim.metrics().dropped_data_bytes, 0);
    }

    #[test]
    fn determinism_holds_for_any_flow_set(
        scheme in scheme_strategy(),
        flows in flows_strategy(),
    ) {
        let run = || {
            let mut cfg = SimConfig::paper(scheme);
            cfg.clos = pod(2, 8);
            let mut sim = Simulation::new(cfg);
            for &(at, src, dst, bytes) in &flows {
                sim.add_flow(at, src, dst, bytes);
            }
            sim.run_until(200 * MS);
            sim.metrics()
                .fcts
                .iter()
                .map(|r| (r.flow, r.end_ps))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
