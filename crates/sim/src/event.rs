//! The event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use flowtune_topo::LinkId;

use crate::packet::Packet;

/// A scheduled occurrence.
#[derive(Debug, Clone)]
pub enum Event {
    /// `pkt` finishes propagation over `link` and arrives at `link.dst`.
    Arrive {
        /// The link just traversed.
        link: LinkId,
        /// The packet (with `hop` already advanced past `link`).
        pkt: Packet,
    },
    /// `link`'s serializer becomes free; dequeue the next packet.
    PortFree {
        /// The transmitting port's link.
        link: LinkId,
    },
    /// A transport timer (RTO or pacer) for `flow` fires. Stale timers
    /// are recognized by `generation` mismatches.
    FlowTimer {
        /// Flow id.
        flow: u64,
        /// Which timer: retransmission or pacing.
        kind: TimerKind,
        /// Generation stamp at arming time.
        generation: u64,
    },
    /// The allocator's 10 µs iteration tick.
    AllocTick,
    /// Periodic endpoint poll for flowlet-end detection.
    AgentPoll,
    /// Periodic queue-length sampling for the delay metrics (§6.5:
    /// "collected queue lengths, drops, and throughput from each queue
    /// every 1 ms").
    MetricsSample,
    /// XCP routers recompute aggregate feedback each control interval.
    XcpInterval,
    /// A flow's application data becomes available at its source.
    FlowArrival {
        /// Index into the simulation's pending-arrival list.
        index: usize,
    },
    /// Scheduled stop of a long-running flow (Figure 4's staircase).
    FlowStop {
        /// Flow id.
        flow: u64,
    },
}

/// Transport timer kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout.
    Rto,
    /// Paced-send credit (Flowtune pacer).
    Pace,
}

/// Deterministic time-ordered queue (FIFO among equal timestamps).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    key: Reverse<(u64, u64)>,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at_ps`.
    pub fn push(&mut self, at_ps: u64, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at_ps, seq)),
            event,
        });
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.event))
    }

    /// Next event time without popping.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::AllocTick);
        q.push(10, Event::AgentPoll);
        q.push(20, Event::MetricsSample);
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.push(
            5,
            Event::FlowTimer {
                flow: 1,
                kind: TimerKind::Rto,
                generation: 0,
            },
        );
        q.push(
            5,
            Event::FlowTimer {
                flow: 2,
                kind: TimerKind::Rto,
                generation: 0,
            },
        );
        q.push(
            5,
            Event::FlowTimer {
                flow: 3,
                kind: TimerKind::Rto,
                generation: 0,
            },
        );
        let order: Vec<u64> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::FlowTimer { flow, .. } => flow,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(7, Event::AllocTick);
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
