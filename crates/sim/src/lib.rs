//! Deterministic discrete-event packet-level datacenter network simulator
//! — the ns2 substitute for the paper's §6.2–§6.6 experiments.
//!
//! Design rules (what makes the comparisons meaningful):
//!
//! * **Everything traverses the network.** Data, ACKs, and Flowtune's
//!   control messages are packets subject to queueing, drops and
//!   retransmission, exactly as the paper models in ns2 ("All control
//!   traffic shares the network with data traffic and experiences queuing
//!   and packet drops").
//! * **Determinism.** Time is integer picoseconds; ties break on a
//!   monotone sequence number; all randomness comes from one seeded RNG.
//!   The same seed and configuration replay the identical simulation.
//! * **One simulator, five schemes.** DCTCP, pFabric, Cubic+sfqCoDel,
//!   XCP and Flowtune differ only in queue discipline and endpoint
//!   transport; topology, trace and measurement are shared.
//!
//! The entry point is [`Simulation`]; see `examples/datacenter_sim.rs` at
//! the workspace root for typical usage.

#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod packet;
pub mod queue;
pub mod sim;
pub mod time;
pub mod transport;

pub use flowtune::Engine;
pub use metrics::{FctRecord, Metrics};
pub use packet::{Packet, PktKind};
pub use sim::{Scheme, SimConfig, Simulation};
pub use time::{MS, PS_PER_SEC, US};
