//! The simulation engine: topology + ports + transports + (for Flowtune)
//! the in-network control plane.

use std::collections::HashMap;

use bytes_shim::ByteBuf;
use flowtune::{AllocatorService, BoxTickDriver, EndpointAgent, Engine, FlowtuneConfig};
use flowtune_proto::codec;
use flowtune_topo::{ClosConfig, FlowId, LinkId, TwoTierClos};

use crate::event::{Event, EventQueue, TimerKind};
use crate::metrics::{FctRecord, Metrics};
use crate::packet::{Packet, PktKind, MSS, MTU};
use crate::queue::{DropTail, EcnQueue, PfabricQueue, Queue, SfqCodel, XcpPort};
use crate::time::{tx_time_ps, MS, US};
use crate::transport::{Action, CcKind, Conn, TransportConfig};

/// Minimal growable byte buffer for control streams (kept private so the
/// public API stays `bytes`-free).
mod bytes_shim {
    /// Append-only byte buffer with a consumed-prefix cursor.
    #[derive(Debug, Default)]
    pub struct ByteBuf {
        pub data: Vec<u8>,
        pub consumed: usize,
    }
}

/// Which end-to-end scheme a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Centralized flowlet control (this paper).
    Flowtune,
    /// DCTCP (ECN marking + proportional reduction).
    Dctcp,
    /// pFabric (SRPT priority queues, minimal transport).
    Pfabric,
    /// Cubic over stochastic-fair CoDel.
    SfqCodel,
    /// XCP explicit rate feedback.
    Xcp,
}

impl Scheme {
    /// All five schemes, in the paper's presentation order.
    pub const ALL: [Scheme; 5] = [
        Scheme::Flowtune,
        Scheme::Dctcp,
        Scheme::Pfabric,
        Scheme::SfqCodel,
        Scheme::Xcp,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Flowtune => "Flowtune",
            Scheme::Dctcp => "DCTCP",
            Scheme::Pfabric => "pFabric",
            Scheme::SfqCodel => "sfqCoDel",
            Scheme::Xcp => "XCP",
        }
    }

    fn cc_kind(self) -> CcKind {
        match self {
            Scheme::Flowtune => CcKind::FlowtunePaced,
            Scheme::Dctcp => CcKind::Dctcp,
            Scheme::Pfabric => CcKind::Pfabric,
            Scheme::SfqCodel => CcKind::Cubic,
            Scheme::Xcp => CcKind::Xcp,
        }
    }
}

/// Simulation parameters (defaults reproduce §6.2's setup).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The scheme under test.
    pub scheme: Scheme,
    /// Fabric shape.
    pub clos: ClosConfig,
    /// Flowtune control-plane settings (ignored by other schemes).
    pub flowtune: FlowtuneConfig,
    /// Which allocation engine the Flowtune control plane runs (ignored
    /// by other schemes).
    pub engine: Engine,
    /// Data-port buffer size, bytes (≈ 200 full packets).
    pub buffer_bytes: u64,
    /// DCTCP marking threshold K, bytes (≈ 65 packets at 10 G).
    pub ecn_k_bytes: u64,
    /// pFabric buffer, bytes (≈ 2×BDP).
    pub pfabric_buffer_bytes: u64,
    /// sfqCoDel: buckets / total limit / CoDel target / interval.
    pub codel: (usize, u64, u64, u64),
    /// XCP control interval, ps.
    pub xcp_interval_ps: u64,
    /// Queue sampling period (§6.5: 1 ms).
    pub sample_interval_ps: u64,
    /// Figure-4 throughput series bin (0 = disabled).
    pub throughput_bin_ps: u64,
}

impl SimConfig {
    /// The paper's evaluation setup for `scheme`.
    pub fn paper(scheme: Scheme) -> Self {
        Self {
            scheme,
            clos: ClosConfig::paper_eval(),
            flowtune: FlowtuneConfig::default(),
            engine: Engine::Serial,
            buffer_bytes: 200 * MTU as u64,
            ecn_k_bytes: 65 * MTU as u64,
            pfabric_buffer_bytes: 24 * MTU as u64,
            codel: (1024, 700 * MTU as u64, 500 * US, 10 * MS),
            xcp_interval_ps: 22 * US,
            sample_interval_ps: MS,
            throughput_bin_ps: 0,
        }
    }
}

#[derive(Debug)]
struct Port {
    queue: Queue,
    busy: bool,
    xcp: Option<XcpPort>,
    capacity_bps: u64,
    delay_ps: u64,
    /// Originating node's processing delay, charged on the first hop so
    /// simulated path latency matches `TwoTierClos::path_latency_ps`.
    src_delay_ps: u64,
    dst_delay_ps: u64,
    bytes_tx: u64,
}

#[derive(Debug)]
struct FlowEntry {
    conn: Conn,
    src: u16,
    start_ps: u64,
    size: Option<u64>,
    done: bool,
    is_ctrl: bool,
    /// One-way empty-network latency of the forward path, ps.
    base_latency_ps: u64,
    /// Bottleneck capacity of the forward path, bits/s.
    bottleneck_bps: u64,
}

#[derive(Debug, Clone, Copy)]
struct ArrivalSpec {
    flow: u64,
    src: u16,
    dst: u16,
    bytes: u64,
    stop_ps: Option<u64>,
}

/// Base id for control-stream "flows" (data flows use small ids).
const CTRL_BASE: u64 = 1 << 40;

/// A packet-level simulation of one scheme on one fabric.
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    fabric: TwoTierClos,
    ports: Vec<Port>,
    queue: EventQueue,
    now: u64,
    flows: HashMap<u64, FlowEntry>,
    arrivals: Vec<ArrivalSpec>,
    next_flow_id: u64,
    metrics: Metrics,
    // Flowtune control plane (None for other schemes); the engine behind
    // the service is whatever `SimConfig::engine` selected.
    alloc: Option<BoxTickDriver>,
    agents: Vec<EndpointAgent>,
    ctrl_up_buf: Vec<ByteBuf>,
    ctrl_down_buf: Vec<ByteBuf>,
    // Reused across drain_ctrl_stream calls so the per-segment parse
    // allocates nothing once warmed up.
    ctrl_chunk: Vec<u8>,
    ctrl_msgs: Vec<codec::Message>,
    sample_rotor: usize,
}

impl Simulation {
    /// Builds a simulation (no flows yet; see [`Simulation::add_flow`]).
    pub fn new(cfg: SimConfig) -> Self {
        let mut fabric = TwoTierClos::build(cfg.clos.clone());
        let is_flowtune = cfg.scheme == Scheme::Flowtune;
        if is_flowtune {
            fabric.attach_allocator();
        }
        let topo = fabric.topology().clone();
        let mut ports = Vec::with_capacity(topo.link_count());
        for link in topo.links() {
            let queue = match cfg.scheme {
                Scheme::Flowtune => Queue::DropTail(DropTail::new(cfg.buffer_bytes)),
                Scheme::Dctcp => Queue::Ecn(EcnQueue::new(cfg.buffer_bytes, cfg.ecn_k_bytes)),
                Scheme::Pfabric => Queue::Pfabric(PfabricQueue::new(cfg.pfabric_buffer_bytes)),
                Scheme::SfqCodel => {
                    let (b, lim, target, interval) = cfg.codel;
                    Queue::SfqCodel(SfqCodel::new(b, lim, target, interval))
                }
                Scheme::Xcp => Queue::DropTail(DropTail::new(cfg.buffer_bytes)),
            };
            let xcp = (cfg.scheme == Scheme::Xcp).then(|| XcpPort::new(cfg.xcp_interval_ps));
            ports.push(Port {
                queue,
                busy: false,
                xcp,
                capacity_bps: link.capacity_bps,
                delay_ps: link.delay_ps,
                src_delay_ps: topo.node(link.src).delay_ps,
                dst_delay_ps: topo.node(link.dst).delay_ps,
                bytes_tx: 0,
            });
        }

        let servers = fabric.config().server_count();
        let (alloc, agents, ctrl_up_buf, ctrl_down_buf) = if is_flowtune {
            let alloc = AllocatorService::builder()
                .fabric(&fabric)
                .config(cfg.flowtune)
                .engine(cfg.engine.clone())
                .build_driver()
                .expect("fabric is set and the engine spec is sane");
            let agents = (0..servers)
                .map(|s| {
                    EndpointAgent::with_config(
                        s as u16,
                        servers,
                        fabric.config().spines,
                        cfg.flowtune,
                    )
                })
                .collect();
            let bufs = |_: ()| (0..servers).map(|_| ByteBuf::default()).collect::<Vec<_>>();
            (Some(alloc), agents, bufs(()), bufs(()))
        } else {
            (None, Vec::new(), Vec::new(), Vec::new())
        };

        let mut sim = Self {
            cfg: cfg.clone(),
            fabric,
            ports,
            queue: EventQueue::new(),
            now: 0,
            flows: HashMap::new(),
            arrivals: Vec::new(),
            next_flow_id: 0,
            metrics: Metrics::new(cfg.throughput_bin_ps),
            alloc,
            agents,
            ctrl_up_buf,
            ctrl_down_buf,
            ctrl_chunk: Vec::new(),
            ctrl_msgs: Vec::new(),
            sample_rotor: 0,
        };

        if is_flowtune {
            sim.create_ctrl_streams();
            sim.queue
                .push(cfg.flowtune.tick_interval_ps, Event::AllocTick);
            sim.queue.push(10 * US, Event::AgentPoll);
        }
        if cfg.scheme == Scheme::Xcp {
            sim.queue.push(cfg.xcp_interval_ps, Event::XcpInterval);
        }
        sim.queue.push(cfg.sample_interval_ps, Event::MetricsSample);
        sim
    }

    fn create_ctrl_streams(&mut self) {
        let servers = self.fabric.config().server_count();
        for s in 0..servers {
            let up_id = CTRL_BASE + s as u64;
            let down_id = CTRL_BASE * 2 + s as u64;
            let to_alloc = self.fabric.path_to_allocator(s, FlowId(up_id));
            let from_alloc = self.fabric.path_from_allocator(s, FlowId(up_id));
            let mk = |id: u64, fwd: &flowtune_topo::Path, rev: &flowtune_topo::Path| FlowEntry {
                conn: Conn::new(
                    id,
                    TransportConfig::control_default(),
                    fwd.links().to_vec(),
                    rev.links().to_vec(),
                    None,
                ),
                src: s as u16,
                start_ps: 0,
                size: None,
                done: false,
                is_ctrl: true,
                base_latency_ps: 0,
                bottleneck_bps: 0,
            };
            self.flows.insert(up_id, mk(up_id, &to_alloc, &from_alloc));
            self.flows
                .insert(down_id, mk(down_id, &from_alloc, &to_alloc));
        }
    }

    /// Schedules a sized flow; returns its id.
    pub fn add_flow(&mut self, at_ps: u64, src: u16, dst: u16, bytes: u64) -> u64 {
        self.schedule_arrival(at_ps, src, dst, bytes, None)
    }

    /// Schedules an open-ended flow that stops at `stop_ps` (Figure 4's
    /// long-running senders).
    pub fn add_open_flow(&mut self, at_ps: u64, stop_ps: u64, src: u16, dst: u16) -> u64 {
        self.schedule_arrival(at_ps, src, dst, u64::MAX, Some(stop_ps))
    }

    fn schedule_arrival(
        &mut self,
        at_ps: u64,
        src: u16,
        dst: u16,
        bytes: u64,
        stop_ps: Option<u64>,
    ) -> u64 {
        assert!(src != dst, "flows need distinct endpoints");
        let flow = self.next_flow_id;
        self.next_flow_id += 1;
        let index = self.arrivals.len();
        self.arrivals.push(ArrivalSpec {
            flow,
            src,
            dst,
            bytes,
            stop_ps,
        });
        self.queue.push(at_ps, Event::FlowArrival { index });
        if let Some(stop) = stop_ps {
            self.queue.push(stop, Event::FlowStop { flow });
        }
        flow
    }

    /// Current simulation time, ps.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Measurements so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Whether `flow` has delivered all its bytes.
    pub fn flow_finished(&self, flow: u64) -> bool {
        self.flows.get(&flow).is_some_and(|f| f.done)
    }

    /// The allocator's operating counters (Flowtune runs only).
    pub fn allocator_stats(&self) -> Option<flowtune::ServiceStats> {
        self.alloc.as_ref().map(|a| a.stats())
    }

    /// Runs until the event queue drains or `until_ps` is reached.
    pub fn run_until(&mut self, until_ps: u64) {
        while let Some(t) = self.queue.peek_time() {
            if t > until_ps {
                break;
            }
            let (t, ev) = self.queue.pop().unwrap();
            self.now = t;
            self.handle(ev);
        }
        self.now = until_ps;
    }

    // ------------------------------------------------------------- events

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Arrive { link: _, pkt } => {
                if pkt.at_destination() {
                    self.deliver(pkt);
                } else {
                    self.forward(pkt);
                }
            }
            Event::PortFree { link } => {
                let out = {
                    let port = &mut self.ports[link.index()];
                    port.busy = false;
                    port.queue.dequeue(self.now)
                };
                for d in out.dropped {
                    self.on_drop(d);
                }
                if let Some(pkt) = out.pkt {
                    self.transmit(link, pkt);
                }
            }
            Event::FlowTimer {
                flow,
                kind,
                generation,
            } => self.on_flow_timer(flow, kind, generation),
            Event::AllocTick => self.on_alloc_tick(),
            Event::AgentPoll => self.on_agent_poll(),
            Event::MetricsSample => self.on_metrics_sample(),
            Event::XcpInterval => self.on_xcp_interval(),
            Event::FlowArrival { index } => self.on_flow_arrival(index),
            Event::FlowStop { flow } => self.on_flow_stop(flow),
        }
    }

    /// Sends `pkt` onto its next link (host NIC or switch output port).
    fn send_on_next(&mut self, mut pkt: Packet) {
        let link = pkt.next_link().expect("packet already at destination");
        // XCP routers account and write feedback at the output port.
        if pkt.kind == PktKind::Data {
            let port = &mut self.ports[link.index()];
            let qlen = port.queue.len_bytes();
            if let Some(xcp) = &mut port.xcp {
                xcp.on_data(pkt.wire_bytes, qlen);
                pkt.xcp_feedback = pkt.xcp_feedback.min(xcp.per_packet_feedback);
            }
        }
        self.enqueue_or_transmit(link, pkt);
    }

    fn enqueue_or_transmit(&mut self, link: LinkId, pkt: Packet) {
        let idle = {
            let port = &self.ports[link.index()];
            !port.busy && port.queue.is_empty()
        };
        if idle {
            self.transmit(link, pkt);
        } else {
            let out = self.ports[link.index()].queue.enqueue(pkt, self.now);
            for d in out.dropped {
                self.on_drop(d);
            }
        }
    }

    fn transmit(&mut self, link: LinkId, mut pkt: Packet) {
        let (ser, arrive) = {
            let port = &mut self.ports[link.index()];
            debug_assert!(!port.busy);
            port.busy = true;
            port.bytes_tx += pkt.wire_bytes as u64;
            let ser = tx_time_ps(pkt.wire_bytes, port.capacity_bps);
            // Originated packets (first hop) also pay the source host's
            // processing delay; forwarded packets paid their switch's
            // delay on arrival.
            let origination = if pkt.hop == 0 { port.src_delay_ps } else { 0 };
            (
                ser,
                self.now + ser + origination + port.delay_ps + port.dst_delay_ps,
            )
        };
        self.queue.push(self.now + ser, Event::PortFree { link });
        pkt.advance();
        self.queue.push(arrive, Event::Arrive { link, pkt });
    }

    fn forward(&mut self, pkt: Packet) {
        self.send_on_next(pkt);
    }

    fn on_drop(&mut self, pkt: Packet) {
        self.metrics.dropped_bytes += pkt.wire_bytes as u64;
        if pkt.kind == PktKind::Data && !is_ctrl_flow(pkt.flow) {
            self.metrics.dropped_data_bytes += pkt.wire_bytes as u64;
        }
    }

    // ----------------------------------------------------------- delivery

    fn deliver(&mut self, pkt: Packet) {
        match pkt.kind {
            PktKind::Data => self.deliver_data(pkt),
            PktKind::Ack => self.deliver_ack(pkt),
        }
    }

    fn deliver_data(&mut self, pkt: Packet) {
        let now = self.now;
        let Some(entry) = self.flows.get_mut(&pkt.flow) else {
            return;
        };
        let before = entry.conn.delivered;
        let ack = entry.conn.on_data(&pkt, now);
        let progressed = entry.conn.delivered - before;
        let is_ctrl = entry.is_ctrl;
        let size = entry.size;
        let delivered = entry.conn.delivered;
        let mut completed = None;
        if !is_ctrl && progressed > 0 {
            self.metrics.on_delivered(pkt.flow, progressed, now);
            if let Some(sz) = size {
                if delivered >= sz && !self.flows[&pkt.flow].done {
                    completed = Some(sz);
                }
            }
        }
        if let Some(sz) = completed {
            self.complete_flow(pkt.flow, sz);
        }
        // Send the ACK back.
        self.send_on_next(ack);
        // Control stream progress → parse messages.
        if is_ctrl && progressed > 0 {
            self.drain_ctrl_stream(pkt.flow);
        }
    }

    fn complete_flow(&mut self, flow: u64, size: u64) {
        let entry = self.flows.get_mut(&flow).unwrap();
        entry.done = true;
        let fct = self.now - entry.start_ps;
        let ideal = entry.base_latency_ps + tx_time_ps_u64(size, entry.bottleneck_bps);
        let packets = size.div_ceil(MSS as u64);
        self.metrics.fcts.push(FctRecord {
            flow,
            bytes: size,
            start_ps: entry.start_ps,
            end_ps: self.now,
            slowdown: fct as f64 / ideal.max(1) as f64,
            packets,
        });
    }

    fn deliver_ack(&mut self, pkt: Packet) {
        let now = self.now;
        let mut actions = Vec::new();
        let Some(entry) = self.flows.get_mut(&pkt.flow) else {
            return;
        };
        let was_done = entry.conn.sender_done;
        entry.conn.on_ack(&pkt, now, &mut actions);
        let newly_done = entry.conn.sender_done && !was_done;
        let src = entry.src;
        self.run_actions(pkt.flow, actions);
        if newly_done && self.cfg.scheme == Scheme::Flowtune && !is_ctrl_flow(pkt.flow) {
            // Sender queue drained: the flowlet-end clock starts.
            self.agents[src as usize].on_drained(pkt.flow, now);
        }
    }

    fn run_actions(&mut self, flow: u64, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send(mut pkt) => {
                    pkt.sent_ps = self.now;
                    self.send_on_next(pkt);
                }
                Action::ArmRto(at) => {
                    let generation = self.flows[&flow].conn.rto_generation;
                    self.queue.push(
                        at,
                        Event::FlowTimer {
                            flow,
                            kind: TimerKind::Rto,
                            generation,
                        },
                    );
                }
                Action::ArmPace(at) => {
                    let generation = self.flows[&flow].conn.pace_generation;
                    self.queue.push(
                        at,
                        Event::FlowTimer {
                            flow,
                            kind: TimerKind::Pace,
                            generation,
                        },
                    );
                }
                Action::SenderDone => {}
            }
        }
    }

    fn on_flow_timer(&mut self, flow: u64, kind: TimerKind, generation: u64) {
        let now = self.now;
        let Some(entry) = self.flows.get_mut(&flow) else {
            return;
        };
        let mut actions = Vec::new();
        match kind {
            TimerKind::Rto => {
                if entry.conn.rto_generation != generation || entry.conn.sender_done {
                    return;
                }
                entry.conn.on_rto(now, &mut actions);
            }
            TimerKind::Pace => {
                if entry.conn.pace_generation != generation {
                    return;
                }
                entry.conn.on_pace_timer(now, &mut actions);
            }
        }
        self.run_actions(flow, actions);
    }

    // ------------------------------------------------------ control plane

    /// Appends an encoded message to a control stream and pumps its
    /// transport.
    fn ctrl_send(&mut self, stream_id: u64, msg: &codec::Message) {
        let buf = if stream_id < CTRL_BASE * 2 {
            &mut self.ctrl_up_buf[(stream_id - CTRL_BASE) as usize]
        } else {
            &mut self.ctrl_down_buf[(stream_id - CTRL_BASE * 2) as usize]
        };
        let mut tmp = bytes::BytesMut::new();
        codec::encode(msg, &mut tmp);
        let len = tmp.len() as u64;
        buf.data.extend_from_slice(&tmp);
        if stream_id < CTRL_BASE * 2 {
            self.metrics.ctrl_bytes_to_alloc += len;
        } else {
            self.metrics.ctrl_bytes_from_alloc += len;
        }
        let mut actions = Vec::new();
        let now = self.now;
        if let Some(entry) = self.flows.get_mut(&stream_id) {
            entry.conn.on_app_data(len, now, &mut actions);
        }
        self.run_actions(stream_id, actions);
    }

    /// Parses newly delivered in-order bytes of a control stream.
    fn drain_ctrl_stream(&mut self, stream_id: u64) {
        let is_up = stream_id < CTRL_BASE * 2;
        // Scratch buffers are taken out of self so the parse can borrow
        // them while the message handlers below take &mut self.
        let mut chunk = std::mem::take(&mut self.ctrl_chunk);
        let mut msgs = std::mem::take(&mut self.ctrl_msgs);
        chunk.clear();
        msgs.clear();
        let delivered = {
            let buf = if is_up {
                &self.ctrl_up_buf[(stream_id - CTRL_BASE) as usize]
            } else {
                &self.ctrl_down_buf[(stream_id - CTRL_BASE * 2) as usize]
            };
            let delivered = self.flows[&stream_id].conn.delivered as usize;
            chunk.extend_from_slice(&buf.data[buf.consumed..delivered]);
            delivered
        };
        let mut iter = codec::MessageIter::new(&chunk);
        for msg in iter.by_ref() {
            msgs.push(msg.expect("control stream corrupt"));
        }
        let parsed = iter.consumed();
        {
            let buf = if is_up {
                &mut self.ctrl_up_buf[(stream_id - CTRL_BASE) as usize]
            } else {
                &mut self.ctrl_down_buf[(stream_id - CTRL_BASE * 2) as usize]
            };
            buf.consumed += parsed;
            debug_assert!(buf.consumed <= delivered);
        }
        for &msg in &msgs {
            if is_up {
                // Arrived at the allocator. In production a rejection is
                // a counted, survivable condition — but the sim's control
                // streams are reliable TCP, so any rejection here means
                // the sim's own wiring broke; surface that in debug runs.
                if let Some(alloc) = &mut self.alloc {
                    let verdict = alloc.on_message(msg);
                    debug_assert!(
                        verdict.is_ok(),
                        "sim control stream delivered a message the allocator rejected: {verdict:?}"
                    );
                }
            } else {
                // Arrived at a server: a rate update.
                let server = (stream_id - CTRL_BASE * 2) as usize;
                if let Some((flow, gbps)) = self.agents[server].on_rate_update(&msg) {
                    let now = self.now;
                    let mut actions = Vec::new();
                    if let Some(entry) = self.flows.get_mut(&flow) {
                        entry.conn.set_pace(gbps, now, &mut actions);
                    }
                    self.run_actions(flow, actions);
                }
            }
        }
        self.ctrl_chunk = chunk;
        self.ctrl_msgs = msgs;
    }

    fn on_alloc_tick(&mut self) {
        let interval = self.cfg.flowtune.tick_interval_ps;
        self.queue.push(self.now + interval, Event::AllocTick);
        let Some(alloc) = &mut self.alloc else {
            return;
        };
        let updates = alloc.tick();
        for (server, msg) in updates {
            self.ctrl_send(CTRL_BASE * 2 + server as u64, &msg);
        }
    }

    fn on_agent_poll(&mut self) {
        self.queue.push(self.now + 10 * US, Event::AgentPoll);
        let now = self.now;
        let n = self.agents.len();
        for s in 0..n {
            let ends = self.agents[s].poll(now);
            for msg in ends {
                self.ctrl_send(CTRL_BASE + s as u64, &msg);
            }
        }
    }

    fn on_xcp_interval(&mut self) {
        self.queue
            .push(self.now + self.cfg.xcp_interval_ps, Event::XcpInterval);
        for port in &mut self.ports {
            let cap = port.capacity_bps;
            if let Some(xcp) = &mut port.xcp {
                xcp.roll_interval(cap);
            }
        }
    }

    fn on_metrics_sample(&mut self) {
        self.queue
            .push(self.now + self.cfg.sample_interval_ps, Event::MetricsSample);
        let servers = self.fabric.config().server_count();
        let spr = self.fabric.config().servers_per_rack;
        // Sample a rotating subset of real paths: for each rack, one
        // intra-rack (2-hop) and one cross-rack (4-hop) path delay.
        let rotor = self.sample_rotor;
        self.sample_rotor += 1;
        let delay = |ports: &Vec<Port>, l: LinkId| -> u64 {
            let p = &ports[l.index()];
            tx_time_ps_u64(p.queue.len_bytes(), p.capacity_bps)
        };
        for rack in 0..self.fabric.config().racks {
            let s0 = rack * spr + rotor % spr;
            let s1 = rack * spr + (rotor + 1) % spr;
            if s0 == s1 {
                continue;
            }
            // 2-hop path: s0 → ToR → s1.
            let d2 = delay(&self.ports, self.fabric.host_up_link(s0))
                + delay(&self.ports, self.fabric.host_down_link(s1));
            self.metrics.queue_delay_samples.push((2, d2));
            // 4-hop path to the "mirror" server.
            let dsrv = (s0 + servers / 2) % servers;
            if self.fabric.rack_of_server(dsrv) != self.fabric.rack_of_server(s0) {
                let path = self
                    .fabric
                    .path(s0, dsrv, FlowId((rotor * 131 + rack) as u64));
                let d4: u64 = path.iter().map(|l| delay(&self.ports, l)).sum();
                self.metrics.queue_delay_samples.push((4, d4));
            }
        }
    }

    // ------------------------------------------------------ flow lifecycle

    fn on_flow_arrival(&mut self, index: usize) {
        let spec = self.arrivals[index];
        let path = self
            .fabric
            .path(spec.src as usize, spec.dst as usize, FlowId(spec.flow));
        let rev = self
            .fabric
            .path(spec.dst as usize, spec.src as usize, FlowId(spec.flow));
        let topo = self.fabric.topology();
        let base_latency_ps = self.fabric.path_latency_ps(&path);
        let bottleneck_bps = path
            .iter()
            .map(|l| topo.link(l).capacity_bps)
            .min()
            .unwrap();
        let sized = spec.stop_ps.is_none();
        let mut conn = Conn::new(
            spec.flow,
            TransportConfig::data_default(self.cfg.scheme.cc_kind()),
            path.links().to_vec(),
            rev.links().to_vec(),
            sized.then_some(spec.bytes),
        );
        let mut actions = Vec::new();
        let now = self.now;
        conn.on_app_data(spec.bytes, now, &mut actions);
        self.flows.insert(
            spec.flow,
            FlowEntry {
                conn,
                src: spec.src,
                start_ps: now,
                size: sized.then_some(spec.bytes),
                done: false,
                is_ctrl: false,
                base_latency_ps,
                bottleneck_bps,
            },
        );
        self.run_actions(spec.flow, actions);
        if self.cfg.scheme == Scheme::Flowtune {
            let start =
                self.agents[spec.src as usize].on_backlog(spec.flow, spec.dst, spec.bytes, now);
            if let Some(msg) = start {
                self.ctrl_send(CTRL_BASE + spec.src as u64, &msg);
            }
        }
    }

    fn on_flow_stop(&mut self, flow: u64) {
        let now = self.now;
        let Some(entry) = self.flows.get_mut(&flow) else {
            return;
        };
        // Truncate the open-ended stream at what has been sent so far;
        // the flow finishes once that prefix is delivered.
        let cut = entry.conn.snd_nxt();
        if cut == 0 {
            entry.done = true;
            return;
        }
        entry.conn.app_limit = cut;
        entry.conn.size = Some(cut);
        entry.size = Some(cut);
        let already_done = entry.conn.delivered >= cut && !entry.done;
        let src = entry.src;
        if already_done {
            self.complete_flow(flow, cut);
        }
        if self.cfg.scheme == Scheme::Flowtune {
            self.agents[src as usize].on_drained(flow, now);
        }
    }
}

/// Helper: `tx_time_ps` for u64 byte counts.
fn tx_time_ps_u64(bytes: u64, bps: u64) -> u64 {
    (u128::from(bytes) * 8 * 1_000_000_000_000u128 / u128::from(bps.max(1))) as u64
}

fn is_ctrl_flow(flow: u64) -> bool {
    flow >= CTRL_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(scheme: Scheme) -> SimConfig {
        let mut cfg = SimConfig::paper(scheme);
        // 2 racks × 4 servers keeps unit tests fast.
        cfg.clos = ClosConfig {
            racks: 2,
            servers_per_rack: 4,
            spines: 2,
            host_link_bps: 10_000_000_000,
            fabric_link_bps: 20_000_000_000,
            link_delay_ps: 1_500_000,
            server_delay_ps: 2_000_000,
            spine_delay_ps: 1_000_000,
            racks_per_block: 2,
        };
        cfg
    }

    #[test]
    fn single_flow_completes_near_ideal_every_scheme() {
        for scheme in Scheme::ALL {
            let mut sim = Simulation::new(small_cfg(scheme));
            let flow = sim.add_flow(0, 0, 5, 150_000); // ~104 packets, cross-rack
            sim.run_until(50 * MS);
            assert!(sim.flow_finished(flow), "{} did not finish", scheme.name());
            let rec = sim.metrics().fcts[0];
            assert!(
                rec.slowdown < 4.0,
                "{}: slowdown {} too far from ideal",
                scheme.name(),
                rec.slowdown
            );
        }
    }

    #[test]
    fn tiny_flow_every_scheme() {
        for scheme in Scheme::ALL {
            let mut sim = Simulation::new(small_cfg(scheme));
            let flow = sim.add_flow(0, 1, 6, 800); // 1 packet
            sim.run_until(20 * MS);
            assert!(sim.flow_finished(flow), "{}", scheme.name());
        }
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly_dctcp() {
        let mut sim = Simulation::new(small_cfg(Scheme::Dctcp));
        // Both flows into server 2: share its 10 G downlink.
        let a = sim.add_flow(0, 0, 2, 2_000_000);
        let b = sim.add_flow(0, 1, 2, 2_000_000);
        sim.run_until(100 * MS);
        assert!(sim.flow_finished(a) && sim.flow_finished(b));
        let fcts = &sim.metrics().fcts;
        let (fa, fb) = (fcts[0].fct_ps() as f64, fcts[1].fct_ps() as f64);
        let ratio = fa.max(fb) / fa.min(fb);
        assert!(ratio < 1.6, "unfair sharing: {fa} vs {fb}");
        // Sharing a 10 G link means each sees ≥ ~2× the ideal time.
        assert!(fcts[0].slowdown > 1.4);
    }

    #[test]
    fn flowtune_allocator_paces_two_senders_to_half_rate() {
        let mut sim = Simulation::new(small_cfg(Scheme::Flowtune));
        let a = sim.add_flow(0, 0, 2, 4_000_000);
        let b = sim.add_flow(0, 1, 2, 4_000_000);
        sim.run_until(100 * MS);
        assert!(sim.flow_finished(a) && sim.flow_finished(b));
        let stats = sim.allocator_stats().unwrap();
        assert_eq!(stats.starts, 2, "both flowlets notified");
        assert!(stats.updates_sent >= 2, "rates were assigned");
        assert_eq!(stats.ends, 2, "both flowlets ended");
        // Both complete in ~2× the solo time: shared 10 G downlink.
        for rec in &sim.metrics().fcts {
            assert!(
                rec.slowdown > 1.5 && rec.slowdown < 4.0,
                "slowdown {}",
                rec.slowdown
            );
        }
    }

    #[test]
    fn flowtune_completes_under_every_engine() {
        for engine in [
            Engine::Serial,
            Engine::Multicore { workers: 1 },
            Engine::Fastpass,
            Engine::Gradient,
            Engine::Serial.sharded(2),
        ] {
            let mut cfg = small_cfg(Scheme::Flowtune);
            cfg.engine = engine.clone();
            let mut sim = Simulation::new(cfg);
            let a = sim.add_flow(0, 0, 2, 1_000_000);
            let b = sim.add_flow(0, 1, 2, 1_000_000);
            sim.run_until(100 * MS);
            assert!(
                sim.flow_finished(a) && sim.flow_finished(b),
                "{} engine left flows unfinished",
                engine.name()
            );
            let stats = sim.allocator_stats().unwrap();
            assert_eq!(stats.starts, 2, "{}", engine.name());
            assert!(stats.updates_sent >= 2, "{}", engine.name());
        }
    }

    #[test]
    fn flowtune_single_flow_gets_fast_rate_allocation() {
        let mut sim = Simulation::new(small_cfg(Scheme::Flowtune));
        let flow = sim.add_flow(0, 0, 5, 1_500_000);
        sim.run_until(50 * MS);
        assert!(sim.flow_finished(flow));
        let rec = sim.metrics().fcts[0];
        // Paced at 9.9 G after one control RTT: close to ideal.
        assert!(rec.slowdown < 2.0, "slowdown {}", rec.slowdown);
        let stats = sim.allocator_stats().unwrap();
        assert!(stats.iterations > 0);
    }

    #[test]
    fn pfabric_prioritizes_short_flows() {
        let mut sim = Simulation::new(small_cfg(Scheme::Pfabric));
        // A long flow hogs the downlink; a short flow arrives mid-way.
        let long = sim.add_flow(0, 0, 2, 10_000_000);
        let short = sim.add_flow(2 * MS, 1, 2, 15_000);
        sim.run_until(200 * MS);
        assert!(sim.flow_finished(long) && sim.flow_finished(short));
        let short_rec = sim.metrics().fcts.iter().find(|r| r.flow == short).unwrap();
        assert!(
            short_rec.slowdown < 3.0,
            "short flow should cut ahead: {}",
            short_rec.slowdown
        );
    }

    #[test]
    fn overload_drops_with_droptail_not_with_flowtune() {
        // Three senders blast one receiver: DCTCP sheds load via
        // ECN+queue, pFabric drops aggressively; Flowtune's paced rates
        // keep drops at zero.
        let mut flowtune = Simulation::new(small_cfg(Scheme::Flowtune));
        for (i, src) in [0u16, 1, 3].iter().enumerate() {
            flowtune.add_flow(i as u64 * 100_000, *src, 2, 3_000_000);
        }
        flowtune.run_until(100 * MS);
        assert_eq!(
            flowtune.metrics().dropped_data_bytes,
            0,
            "Flowtune should not drop"
        );

        let mut pfabric = Simulation::new(small_cfg(Scheme::Pfabric));
        for (i, src) in [0u16, 1, 3].iter().enumerate() {
            pfabric.add_flow(i as u64 * 100_000, *src, 2, 3_000_000);
        }
        pfabric.run_until(100 * MS);
        assert!(
            pfabric.metrics().dropped_data_bytes > 0,
            "pFabric line-rate start must overflow its tiny buffers"
        );
    }

    #[test]
    fn open_flow_stops_and_completes() {
        let mut sim = Simulation::new(small_cfg(Scheme::Dctcp));
        let flow = sim.add_open_flow(0, 5 * MS, 0, 5);
        sim.run_until(100 * MS);
        assert!(sim.flow_finished(flow));
        let rec = &sim.metrics().fcts[0];
        assert!(rec.bytes > 0, "stopped flow recorded with sent size");
    }

    #[test]
    fn queue_samples_are_collected() {
        let mut sim = Simulation::new(small_cfg(Scheme::Dctcp));
        sim.add_flow(0, 0, 2, 5_000_000);
        sim.add_flow(0, 1, 2, 5_000_000);
        sim.run_until(20 * MS);
        let m = sim.metrics();
        assert!(m.queue_delay_samples.iter().any(|(h, _)| *h == 2));
        assert!(m.queue_delay_samples.iter().any(|(h, _)| *h == 4));
    }

    #[test]
    fn determinism_same_seedless_run_twice() {
        let run = || {
            let mut sim = Simulation::new(small_cfg(Scheme::Dctcp));
            sim.add_flow(0, 0, 2, 1_000_000);
            sim.add_flow(100_000, 1, 2, 700_000);
            sim.run_until(50 * MS);
            sim.metrics()
                .fcts
                .iter()
                .map(|r| (r.flow, r.end_ps))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn conservation_delivered_never_exceeds_offered() {
        let mut sim = Simulation::new(small_cfg(Scheme::SfqCodel));
        sim.add_flow(0, 0, 2, 1_000_000);
        sim.add_flow(0, 1, 2, 1_000_000);
        sim.run_until(100 * MS);
        assert!(sim.metrics().delivered_bytes <= 2_000_000);
    }
}
