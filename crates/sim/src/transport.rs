//! Endpoint transports.
//!
//! One connection state machine ([`Conn`]) parameterized by
//! [`CcKind`] covers every compared scheme:
//!
//! * **Reno** — NewReno-style slow start / congestion avoidance / fast
//!   retransmit; the control-plane transport (§6.2 runs allocator↔server
//!   messages over TCP with 20 µs minRTO / 30 µs maxRTO).
//! * **Dctcp** — Reno plus the DCTCP α estimator and proportional ECN
//!   window reduction (Alizadeh et al., SIGCOMM 2010).
//! * **Cubic** — the window growth used with sfqCoDel (the paper runs
//!   "Cubic-over-sfqCoDel").
//! * **Pfabric** — the minimal pFabric transport: fixed BDP window, no
//!   congestion control, priority = remaining bytes, small fixed RTO with
//!   go-back-N (probe mode is simplified away; see DESIGN.md).
//! * **Xcp** — window set by router feedback carried in headers.
//! * **FlowtunePaced** — starts as Reno ("servers start a regular TCP
//!   connection, and in parallel send a notification to the allocator"),
//!   and switches to open-window rate pacing on the first allocator
//!   update.
//!
//! The machine is sans-IO: every entry point appends [`Action`]s (send a
//! packet, arm a timer) that the simulator executes.

use std::collections::BTreeMap;

use flowtune_topo::LinkId;

use crate::packet::{Packet, PktKind, MSS};
use crate::time::PS_PER_SEC;

/// Congestion-control personality of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// NewReno.
    Reno,
    /// DCTCP (requires ECN-marking queues).
    Dctcp,
    /// Cubic.
    Cubic,
    /// pFabric minimal transport.
    Pfabric,
    /// XCP explicit control.
    Xcp,
    /// Flowtune endpoint: Reno until the first rate update, then paced.
    FlowtunePaced,
}

/// Transport tunables.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Congestion-control personality.
    pub kind: CcKind,
    /// Initial window, bytes.
    pub init_cwnd: f64,
    /// Minimum retransmission timeout, ps.
    pub min_rto_ps: u64,
    /// Maximum retransmission timeout, ps (`u64::MAX` = uncapped).
    pub max_rto_ps: u64,
    /// Initial RTT estimate used before the first sample, ps.
    pub init_rtt_ps: u64,
}

impl TransportConfig {
    /// Data-plane defaults for a 10 G fabric with ~22 µs 4-hop RTT.
    pub fn data_default(kind: CcKind) -> Self {
        let bdp: f64 = 10e9 / 8.0 * 22e-6; // ≈ 27.5 kB
        let init_cwnd = match kind {
            // pFabric sends at line rate from the first packet.
            CcKind::Pfabric => bdp.ceil(),
            // XCP starts conservatively (its routers hand out increases).
            CcKind::Xcp => 2.0 * MSS as f64,
            _ => 10.0 * MSS as f64,
        };
        Self {
            kind,
            init_cwnd,
            min_rto_ps: match kind {
                // pFabric: RTO ≈ 3×RTT.
                CcKind::Pfabric => 66_000_000,
                _ => 200_000_000, // 200 µs
            },
            max_rto_ps: u64::MAX,
            init_rtt_ps: 22_000_000,
        }
    }

    /// Control-plane defaults (§6.2: TCP with 20 µs minRTO, 30 µs
    /// maxRTO).
    pub fn control_default() -> Self {
        Self {
            kind: CcKind::Reno,
            init_cwnd: 10.0 * MSS as f64,
            min_rto_ps: 20_000_000,
            max_rto_ps: 30_000_000,
            init_rtt_ps: 14_000_000,
        }
    }
}

/// An instruction from the transport to the simulator.
#[derive(Debug, Clone)]
pub enum Action {
    /// Transmit this packet from the connection's source host.
    Send(Packet),
    /// (Re-)arm the RTO timer at this absolute time.
    ArmRto(u64),
    /// Arm the pacing timer at this absolute time.
    ArmPace(u64),
    /// All bytes are acknowledged — the sender is done.
    SenderDone,
}

const DCTCP_G: f64 = 1.0 / 16.0;

#[derive(Debug, Clone, Copy, Default)]
struct CubicState {
    w_max: f64,
    epoch_start_ps: u64,
    k: f64,
}

/// One reliable byte-stream connection (sender and receiver halves).
#[derive(Debug)]
pub struct Conn {
    /// Flow id (shared with packets).
    pub id: u64,
    cfg: TransportConfig,
    /// Forward (data) path and reverse (ACK) path.
    fwd: Vec<LinkId>,
    rev: Vec<LinkId>,
    /// Bytes the application has made available to send.
    pub app_limit: u64,
    /// Total flow size if known in advance (pFabric priorities, FCT).
    pub size: Option<u64>,

    // ---- sender ----
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    recover: u64,
    in_recovery: bool,
    srtt: f64,
    rttvar: f64,
    rto_ps: u64,
    /// Generation stamp: a popped timer event is valid only if its
    /// generation matches.
    pub rto_generation: u64,
    rtt_probe: Option<(u64, u64)>,
    /// Retransmitted-segment counter (stats).
    pub retransmits: u64,

    // ---- DCTCP ----
    dctcp_alpha: f64,
    win_acked: u64,
    win_marked: u64,
    win_end: u64,
    win_reduced: bool,

    // ---- Cubic ----
    cubic: CubicState,

    // ---- XCP ----
    xcp_rtt_ps: u64,

    // ---- Flowtune pacing ----
    paced_rate_bps: Option<f64>,
    pace_next_ps: u64,
    /// Pacing timer generation (same staleness scheme as RTO).
    pub pace_generation: u64,

    // ---- receiver ----
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u64>,
    /// Bytes delivered in order to the receiving application.
    pub delivered: u64,

    /// Set once every byte of a sized flow is acknowledged.
    pub sender_done: bool,
}

impl Conn {
    /// Creates a connection over the given forward/reverse paths. `size`
    /// is the flow length if known (data flows); control streams pass
    /// `None` and feed [`Conn::on_app_data`] incrementally.
    pub fn new(
        id: u64,
        cfg: TransportConfig,
        fwd: Vec<LinkId>,
        rev: Vec<LinkId>,
        size: Option<u64>,
    ) -> Self {
        Self {
            id,
            fwd,
            rev,
            app_limit: 0,
            size,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: cfg.init_cwnd,
            ssthresh: f64::MAX,
            dup_acks: 0,
            recover: 0,
            in_recovery: false,
            srtt: 0.0,
            rttvar: 0.0,
            rto_ps: cfg.min_rto_ps.max(cfg.init_rtt_ps * 2),
            rto_generation: 0,
            rtt_probe: None,
            retransmits: 0,
            dctcp_alpha: 0.0,
            win_acked: 0,
            win_marked: 0,
            win_end: 0,
            win_reduced: false,
            cubic: CubicState::default(),
            xcp_rtt_ps: cfg.init_rtt_ps,
            paced_rate_bps: None,
            pace_next_ps: 0,
            pace_generation: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            delivered: 0,
            sender_done: false,
            cfg,
        }
    }

    /// Current congestion window (bytes).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Smoothed RTT estimate (ps), 0 before the first sample.
    pub fn srtt_ps(&self) -> u64 {
        self.srtt as u64
    }

    /// Next byte the sender will transmit.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Bytes the sender still has to *transmit* (not counting in-flight).
    pub fn to_send(&self) -> u64 {
        self.app_limit.saturating_sub(self.snd_nxt)
    }

    /// Bytes not yet cumulatively acknowledged.
    pub fn outstanding(&self) -> u64 {
        self.snd_nxt.saturating_sub(self.snd_una)
    }

    /// The application appended `bytes` to the stream.
    pub fn on_app_data(&mut self, bytes: u64, now: u64, out: &mut Vec<Action>) {
        self.app_limit += bytes;
        self.pump(now, out);
    }

    /// Switches to allocator-paced mode at `gbps` (Flowtune rate update):
    /// the window opens and packets leave on the pacing clock.
    pub fn set_pace(&mut self, gbps: f64, now: u64, out: &mut Vec<Action>) {
        debug_assert_eq!(self.cfg.kind, CcKind::FlowtunePaced);
        let was_unpaced = self.paced_rate_bps.is_none();
        self.paced_rate_bps = Some(gbps * 1e9);
        self.cwnd = f64::MAX / 4.0;
        if was_unpaced {
            self.pace_next_ps = now;
        }
        self.pump(now, out);
    }

    /// The current pacing rate, if in paced mode.
    pub fn paced_rate_gbps(&self) -> Option<f64> {
        self.paced_rate_bps.map(|b| b / 1e9)
    }

    // ------------------------------------------------------------ sending

    fn make_segment(&mut self, seq: u64, now: u64) -> Packet {
        let payload = (self.app_limit - seq).min(MSS as u64) as u32;
        let mut pkt = Packet::new(self.id, PktKind::Data, seq, payload, &self.fwd);
        pkt.sent_ps = now;
        if self.cfg.kind == CcKind::Pfabric {
            // Priority: remaining bytes of the flow (SRPT).
            pkt.prio = self.size.unwrap_or(u64::MAX).saturating_sub(self.snd_una);
        }
        if self.cfg.kind == CcKind::Xcp {
            pkt.xcp_cwnd = self.cwnd;
            pkt.xcp_rtt = self.xcp_rtt_ps;
            pkt.xcp_feedback = f64::MAX; // routers take the min along the path
        }
        pkt
    }

    /// Emits whatever the window (or pacer) currently allows.
    pub fn pump(&mut self, now: u64, out: &mut Vec<Action>) {
        if self.paced_rate_bps.is_some() {
            self.pump_paced(now, out);
            return;
        }
        let mut sent_any = false;
        while self.snd_nxt < self.app_limit
            && (self.snd_nxt - self.snd_una) as f64 + MSS as f64 / 2.0 < self.cwnd
        {
            let pkt = self.make_segment(self.snd_nxt, now);
            self.snd_nxt += pkt.payload as u64;
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt, now));
            }
            out.push(Action::Send(pkt));
            sent_any = true;
        }
        if sent_any || self.outstanding() > 0 {
            self.arm_rto(now, out);
        }
    }

    fn pump_paced(&mut self, now: u64, out: &mut Vec<Action>) {
        let rate = self.paced_rate_bps.unwrap_or(0.0);
        if rate < 1.0 {
            return; // paused; a future rate update re-pumps
        }
        if self.snd_nxt >= self.app_limit {
            if self.outstanding() > 0 {
                self.arm_rto(now, out);
            }
            return;
        }
        if now >= self.pace_next_ps {
            let pkt = self.make_segment(self.snd_nxt, now);
            self.snd_nxt += pkt.payload as u64;
            let gap = (pkt.wire_bytes as f64 * 8.0 * PS_PER_SEC as f64 / rate) as u64;
            self.pace_next_ps = now.max(self.pace_next_ps) + gap;
            out.push(Action::Send(pkt));
            self.arm_rto(now, out);
            if self.snd_nxt < self.app_limit {
                self.pace_generation += 1;
                out.push(Action::ArmPace(self.pace_next_ps));
            }
        } else {
            self.pace_generation += 1;
            out.push(Action::ArmPace(self.pace_next_ps));
        }
    }

    /// Pacing timer fired (generation already validated by the sim).
    pub fn on_pace_timer(&mut self, now: u64, out: &mut Vec<Action>) {
        self.pump(now, out);
    }

    fn arm_rto(&mut self, now: u64, out: &mut Vec<Action>) {
        self.rto_generation += 1;
        out.push(Action::ArmRto(now + self.rto_ps));
    }

    // ------------------------------------------------------- receiver side

    /// Handles an arriving data packet at the receiver; returns the ACK
    /// to send back and appends nothing else. `self.delivered` advances
    /// by the in-order progress.
    pub fn on_data(&mut self, pkt: &Packet, now: u64) -> Packet {
        let end = pkt.seq + pkt.payload as u64;
        if end > self.rcv_nxt {
            if pkt.seq <= self.rcv_nxt {
                self.rcv_nxt = end;
                // Drain contiguous out-of-order segments.
                while let Some((&s, &e)) = self.ooo.first_key_value() {
                    if s <= self.rcv_nxt {
                        self.rcv_nxt = self.rcv_nxt.max(e);
                        self.ooo.remove(&s);
                    } else {
                        break;
                    }
                }
            } else {
                let entry = self.ooo.entry(pkt.seq).or_insert(end);
                *entry = (*entry).max(end);
            }
        }
        self.delivered = self.rcv_nxt;
        let mut ack = Packet::new(self.id, PktKind::Ack, self.rcv_nxt, 0, &self.rev);
        ack.sent_ps = now;
        // DCTCP's accurate per-packet ECE echo; harmless elsewhere.
        ack.ce = pkt.ce;
        // XCP: echo the (router-reduced) feedback to the sender.
        ack.xcp_feedback = pkt.xcp_feedback;
        ack
    }

    // --------------------------------------------------------- sender side

    /// Handles an arriving ACK at the sender.
    pub fn on_ack(&mut self, pkt: &Packet, now: u64, out: &mut Vec<Action>) {
        let ack = pkt.seq;
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            // Defensive: an ACK can never cover unsent bytes on a real
            // network; keep the invariant even against a broken peer.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.dup_acks = 0;
            // RTT sampling.
            if let Some((probe_seq, sent)) = self.rtt_probe {
                if ack >= probe_seq {
                    self.rtt_sample(now.saturating_sub(sent));
                    self.rtt_probe = None;
                }
            }
            if self.in_recovery && ack >= self.recover {
                self.in_recovery = false;
                self.cwnd = self.ssthresh;
            } else if self.in_recovery {
                // NewReno partial ACK: retransmit the next hole.
                let pkt = self.retransmit_segment(self.snd_una, now);
                out.push(Action::Send(pkt));
            }
            self.cc_on_ack(newly, pkt, now);
            if self.size.is_some_and(|s| self.snd_una >= s) && !self.sender_done {
                self.sender_done = true;
                self.rto_generation += 1; // cancel timer
                out.push(Action::SenderDone);
                return;
            }
            if self.outstanding() > 0 {
                self.arm_rto(now, out);
            } else {
                self.rto_generation += 1;
            }
        } else if ack == self.snd_una && self.outstanding() > 0 {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery && self.cfg.kind != CcKind::Pfabric {
                // Fast retransmit (pFabric relies on its tiny RTO instead).
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS as f64);
                self.cwnd = self.ssthresh;
                self.cubic_on_loss(now);
                let pkt = self.retransmit_segment(self.snd_una, now);
                out.push(Action::Send(pkt));
                self.arm_rto(now, out);
            }
        }
        self.pump(now, out);
    }

    fn retransmit_segment(&mut self, seq: u64, now: u64) -> Packet {
        self.retransmits += 1;
        self.rtt_probe = None; // Karn's rule
        self.make_segment(seq, now)
    }

    fn rtt_sample(&mut self, sample_ps: u64) {
        let s = sample_ps as f64;
        if self.srtt == 0.0 {
            self.srtt = s;
            self.rttvar = s / 2.0;
        } else {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - s).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * s;
        }
        let rto = (self.srtt + 4.0 * self.rttvar) as u64;
        self.rto_ps = rto.clamp(self.cfg.min_rto_ps, self.cfg.max_rto_ps);
        self.xcp_rtt_ps = self.srtt as u64;
    }

    fn cc_on_ack(&mut self, newly_acked: u64, ack: &Packet, now: u64) {
        match self.cfg.kind {
            CcKind::Reno | CcKind::FlowtunePaced => {
                if self.paced_rate_bps.is_some() {
                    return; // the allocator owns the rate
                }
                self.reno_growth(newly_acked);
            }
            CcKind::Dctcp => {
                self.dctcp_account(newly_acked, ack.ce);
                if !ack.ce {
                    self.reno_growth(newly_acked);
                }
            }
            CcKind::Cubic => {
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly_acked as f64;
                } else {
                    self.cubic_growth(now);
                }
            }
            CcKind::Pfabric => {} // no congestion control
            CcKind::Xcp => {
                // Router-computed Δcwnd rides in the echoed feedback.
                let fb = ack.xcp_feedback;
                if fb.is_finite() {
                    self.cwnd = (self.cwnd + fb).max(MSS as f64);
                }
            }
        }
    }

    fn reno_growth(&mut self, newly_acked: u64) {
        if self.in_recovery {
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += newly_acked as f64;
        } else {
            self.cwnd += (MSS as f64) * newly_acked as f64 / self.cwnd;
        }
    }

    fn dctcp_account(&mut self, newly_acked: u64, ce: bool) {
        self.win_acked += newly_acked;
        if ce {
            self.win_marked += newly_acked;
            if !self.win_reduced {
                // One proportional reduction per window of data.
                self.win_reduced = true;
                self.cwnd = (self.cwnd * (1.0 - self.dctcp_alpha / 2.0)).max(2.0 * MSS as f64);
            }
        }
        if self.snd_una >= self.win_end {
            let f = if self.win_acked > 0 {
                self.win_marked as f64 / self.win_acked as f64
            } else {
                0.0
            };
            self.dctcp_alpha = (1.0 - DCTCP_G) * self.dctcp_alpha + DCTCP_G * f;
            self.win_acked = 0;
            self.win_marked = 0;
            self.win_reduced = false;
            self.win_end = self.snd_nxt;
        }
    }

    fn cubic_on_loss(&mut self, now: u64) {
        if self.cfg.kind != CcKind::Cubic {
            return;
        }
        self.cubic.w_max = self.cwnd;
        self.cubic.epoch_start_ps = now;
        // K = cbrt(w_max·(1−β)/C), windows in MSS units, C = 0.4, β = 0.7.
        let wmax_mss = self.cubic.w_max / MSS as f64;
        self.cubic.k = (wmax_mss * 0.3 / 0.4).cbrt();
    }

    fn cubic_growth(&mut self, now: u64) {
        if self.cubic.epoch_start_ps == 0 {
            self.cubic.epoch_start_ps = now;
            self.cubic.w_max = self.cwnd;
            self.cubic.k = 0.0;
        }
        let t = (now - self.cubic.epoch_start_ps) as f64 / PS_PER_SEC as f64;
        let target_mss = 0.4 * (t - self.cubic.k).powi(3) + self.cubic.w_max / MSS as f64;
        let target = (target_mss * MSS as f64).max(self.cwnd + 0.01 * MSS as f64);
        // Approach the cubic target over roughly one RTT.
        self.cwnd += (target - self.cwnd) * 0.1;
    }

    /// RTO fired (generation already validated).
    pub fn on_rto(&mut self, now: u64, out: &mut Vec<Action>) {
        if self.outstanding() == 0 && self.to_send() == 0 {
            return;
        }
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS as f64);
        self.cwnd = if self.cfg.kind == CcKind::Pfabric {
            self.cfg.init_cwnd // pFabric never reduces its window
        } else if self.paced_rate_bps.is_some() {
            self.cwnd
        } else {
            MSS as f64
        };
        self.in_recovery = false;
        self.dup_acks = 0;
        self.cubic_on_loss(now);
        // Go-back-N: resend from the cumulative ACK point.
        self.snd_nxt = self.snd_una;
        self.retransmits += 1;
        self.rtt_probe = None;
        // Exponential backoff, capped.
        self.rto_ps = self
            .rto_ps
            .saturating_mul(2)
            .min(self.cfg.max_rto_ps.max(self.cfg.min_rto_ps));
        if self.paced_rate_bps.is_some() {
            // The pacer may be waiting far in the future; pull it in so
            // the retransmission leaves now.
            self.pace_next_ps = now;
        }
        self.pump(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    fn conn(kind: CcKind, size: Option<u64>) -> Conn {
        Conn::new(
            1,
            TransportConfig::data_default(kind),
            vec![l(0), l(1)],
            vec![l(2), l(3)],
            size,
        )
    }

    fn sent_packets(actions: &[Action]) -> Vec<Packet> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_window_limits_burst() {
        let mut c = conn(CcKind::Reno, Some(1_000_000));
        let mut out = Vec::new();
        c.on_app_data(1_000_000, 0, &mut out);
        let pkts = sent_packets(&out);
        assert_eq!(pkts.len(), 10, "IW = 10 MSS");
        assert_eq!(pkts[0].seq, 0);
        assert_eq!(pkts[1].seq, MSS as u64);
        assert!(out.iter().any(|a| matches!(a, Action::ArmRto(_))));
    }

    #[test]
    fn ack_slides_window_and_grows_slow_start() {
        let mut c = conn(CcKind::Reno, Some(1_000_000));
        let mut out = Vec::new();
        c.on_app_data(1_000_000, 0, &mut out);
        out.clear();
        let mut ack = Packet::new(1, PktKind::Ack, 3 * MSS as u64, 0, &[l(2)]);
        ack.sent_ps = 0;
        c.on_ack(&ack, 22_000_000, &mut out);
        // Slow start: 3 MSS acked → cwnd grows by 3 MSS → 6 new segments.
        assert_eq!(sent_packets(&out).len(), 6);
        assert!(c.cwnd() > 12.9 * MSS as f64);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut c = conn(CcKind::Reno, Some(10_000));
        let seg = |seq: u64| {
            let mut p = Packet::new(1, PktKind::Data, seq, MSS, &[l(0)]);
            p.sent_ps = 0;
            p
        };
        let a1 = c.on_data(&seg(MSS as u64), 10); // out of order
        assert_eq!(a1.seq, 0, "dup ack at 0");
        let a2 = c.on_data(&seg(0), 20);
        assert_eq!(a2.seq, 2 * MSS as u64, "hole filled, cumulative jump");
        assert_eq!(c.delivered, 2 * MSS as u64);
    }

    #[test]
    fn triple_dup_ack_fast_retransmits() {
        let mut c = conn(CcKind::Reno, Some(100_000));
        let mut out = Vec::new();
        c.on_app_data(100_000, 0, &mut out);
        out.clear();
        let dup = Packet::new(1, PktKind::Ack, 0, 0, &[l(2)]);
        c.on_ack(&dup, 100, &mut out);
        c.on_ack(&dup, 200, &mut out);
        assert!(sent_packets(&out).is_empty(), "two dups: nothing yet");
        c.on_ack(&dup, 300, &mut out);
        let pkts = sent_packets(&out);
        assert!(!pkts.is_empty(), "third dup triggers retransmit");
        assert_eq!(pkts[0].seq, 0);
        assert_eq!(c.retransmits, 1);
    }

    #[test]
    fn rto_goes_back_n_and_backs_off() {
        let mut c = conn(CcKind::Reno, Some(100_000));
        let mut out = Vec::new();
        c.on_app_data(100_000, 0, &mut out);
        out.clear();
        let rto_before = c.rto_ps;
        c.on_rto(1_000_000, &mut out);
        let pkts = sent_packets(&out);
        assert_eq!(pkts[0].seq, 0, "go-back-N from snd_una");
        assert_eq!(c.cwnd(), MSS as f64, "collapse to 1 MSS");
        assert!(c.rto_ps >= rto_before * 2 || c.rto_ps == c.cfg.max_rto_ps);
    }

    #[test]
    fn sized_flow_reports_sender_done() {
        let mut c = conn(CcKind::Reno, Some(2000));
        let mut out = Vec::new();
        c.on_app_data(2000, 0, &mut out);
        out.clear();
        let ack = Packet::new(1, PktKind::Ack, 2000, 0, &[l(2)]);
        c.on_ack(&ack, 30_000_000, &mut out);
        assert!(c.sender_done);
        assert!(out.iter().any(|a| matches!(a, Action::SenderDone)));
    }

    #[test]
    fn dctcp_alpha_tracks_mark_fraction() {
        let mut c = conn(CcKind::Dctcp, Some(10_000_000));
        let mut out = Vec::new();
        c.on_app_data(10_000_000, 0, &mut out);
        // Ack everything marked, window after window: alpha → 1.
        for i in 1..200u64 {
            out.clear();
            let mut ack = Packet::new(1, PktKind::Ack, i * MSS as u64, 0, &[l(2)]);
            ack.ce = true;
            c.on_ack(&ack, i * 1_000_000, &mut out);
        }
        assert!(c.dctcp_alpha > 0.5, "alpha {}", c.dctcp_alpha);
        // Marked ACKs shrink, never grow, the window.
        assert!(c.cwnd() <= 10.0 * MSS as f64);
    }

    #[test]
    fn dctcp_unmarked_acks_grow_window() {
        let mut c = conn(CcKind::Dctcp, Some(10_000_000));
        let mut out = Vec::new();
        c.on_app_data(10_000_000, 0, &mut out);
        let w0 = c.cwnd();
        out.clear();
        let ack = Packet::new(1, PktKind::Ack, 5 * MSS as u64, 0, &[l(2)]);
        c.on_ack(&ack, 22_000_000, &mut out);
        assert!(c.cwnd() > w0);
        assert_eq!(c.dctcp_alpha, 0.0);
    }

    #[test]
    fn pfabric_priority_is_remaining_bytes() {
        let mut c = conn(CcKind::Pfabric, Some(100_000));
        let mut out = Vec::new();
        c.on_app_data(100_000, 0, &mut out);
        let pkts = sent_packets(&out);
        assert!(!pkts.is_empty());
        assert_eq!(pkts[0].prio, 100_000, "nothing acked yet");
        // Ack ten segments; priorities of later packets must drop to the
        // new remaining size.
        out.clear();
        let acked = 10 * MSS as u64;
        let ack = Packet::new(1, PktKind::Ack, acked, 0, &[l(2)]);
        c.on_ack(&ack, 22_000_000, &mut out);
        let pkts = sent_packets(&out);
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.prio == 100_000 - acked));
    }

    #[test]
    fn pfabric_rto_keeps_line_rate_window() {
        let mut c = conn(CcKind::Pfabric, Some(1_000_000));
        let mut out = Vec::new();
        c.on_app_data(1_000_000, 0, &mut out);
        let w0 = c.cwnd();
        out.clear();
        c.on_rto(1_000_000, &mut out);
        assert_eq!(c.cwnd(), w0, "pFabric has no congestion control");
    }

    #[test]
    fn xcp_feedback_moves_window_both_ways() {
        let mut c = conn(CcKind::Xcp, Some(10_000_000));
        let mut out = Vec::new();
        c.on_app_data(10_000_000, 0, &mut out);
        let w0 = c.cwnd();
        out.clear();
        let mut ack = Packet::new(1, PktKind::Ack, MSS as u64, 0, &[l(2)]);
        ack.xcp_feedback = 3000.0;
        c.on_ack(&ack, 22_000_000, &mut out);
        assert!((c.cwnd() - (w0 + 3000.0)).abs() < 1e-6);
        let mut ack2 = Packet::new(1, PktKind::Ack, 2 * MSS as u64, 0, &[l(2)]);
        ack2.xcp_feedback = -100_000.0;
        c.on_ack(&ack2, 44_000_000, &mut out);
        assert_eq!(c.cwnd(), MSS as f64, "floored at 1 MSS");
    }

    #[test]
    fn flowtune_paces_at_the_allocated_rate() {
        let mut c = conn(CcKind::FlowtunePaced, Some(1_000_000));
        let mut out = Vec::new();
        c.on_app_data(1_000_000, 0, &mut out);
        out.clear();
        // Allocator grants 10 Gbit/s.
        c.set_pace(10.0, 1_000_000, &mut out);
        let pkts = sent_packets(&out);
        assert_eq!(pkts.len(), 1, "pacing releases one packet at a time");
        let arm = out.iter().find_map(|a| match a {
            Action::ArmPace(t) => Some(*t),
            _ => None,
        });
        // Next credit after 1500 B at 10 G = 1.2 µs.
        assert_eq!(arm, Some(1_000_000 + 1_200_000));
    }

    #[test]
    fn flowtune_rate_change_respaces() {
        let mut c = conn(CcKind::FlowtunePaced, Some(10_000_000));
        let mut out = Vec::new();
        c.on_app_data(10_000_000, 0, &mut out);
        out.clear();
        c.set_pace(10.0, 0, &mut out);
        out.clear();
        c.on_pace_timer(1_200_000, &mut out);
        assert_eq!(sent_packets(&out).len(), 1);
        // Rate halves → gap doubles for subsequent packets.
        out.clear();
        c.set_pace(5.0, 2_400_000, &mut out);
        let arm = out
            .iter()
            .filter_map(|a| match a {
                Action::ArmPace(t) => Some(*t),
                _ => None,
            })
            .next_back()
            .unwrap();
        assert_eq!(arm, 2_400_000 + 2_400_000);
    }

    #[test]
    fn control_profile_has_paper_rto_bounds() {
        let cfg = TransportConfig::control_default();
        assert_eq!(cfg.min_rto_ps, 20_000_000);
        assert_eq!(cfg.max_rto_ps, 30_000_000);
        let mut c = Conn::new(9, cfg, vec![l(0)], vec![l(1)], None);
        let mut out = Vec::new();
        c.on_app_data(100, 0, &mut out);
        // Backoff can never exceed the 30 µs cap.
        for _ in 0..10 {
            out.clear();
            c.on_rto(1_000_000, &mut out);
        }
        assert!(c.rto_ps <= 30_000_000);
    }

    #[test]
    fn app_limited_stream_sends_increments() {
        let mut c = Conn::new(
            9,
            TransportConfig::control_default(),
            vec![l(0)],
            vec![l(1)],
            None,
        );
        let mut out = Vec::new();
        c.on_app_data(16, 0, &mut out);
        let pkts = sent_packets(&out);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload, 16);
        out.clear();
        c.on_app_data(6, 10, &mut out);
        let pkts = sent_packets(&out);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].seq, 16);
        assert_eq!(pkts[0].payload, 6);
    }
}
