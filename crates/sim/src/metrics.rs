//! Measurement: flow completion times, queue-delay samples, drops,
//! throughput time series, fairness.

use std::collections::HashMap;

/// One completed flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FctRecord {
    /// Flow id.
    pub flow: u64,
    /// Flow size, application bytes.
    pub bytes: u64,
    /// Arrival at the sender (ps).
    pub start_ps: u64,
    /// Last byte delivered in order at the receiver (ps).
    pub end_ps: u64,
    /// Completion time normalized by the empty-network time for the same
    /// size and path (§6.5's normalization); ≥ 1 up to measurement noise.
    pub slowdown: f64,
    /// Size in full packets (for the Figure 8 bins).
    pub packets: u64,
}

impl FctRecord {
    /// Raw flow completion time, ps.
    pub fn fct_ps(&self) -> u64 {
        self.end_ps - self.start_ps
    }

    /// Figure 8 size-bin label for this flow.
    pub fn size_bin(&self) -> &'static str {
        match self.packets {
            0 | 1 => "1 packet",
            2..=10 => "1-10 packets",
            11..=100 => "10-100 packets",
            101..=1000 => "100-1000 packets",
            _ => "large",
        }
    }
}

/// All measurements of one simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Completed flows.
    pub fcts: Vec<FctRecord>,
    /// Queue-delay samples (ps), tagged by hop count of the sampled port
    /// ("2 hops" = host-facing ports, "4 hops" = fabric ports; Figure 9
    /// reports both).
    pub queue_delay_samples: Vec<(u8, u64)>,
    /// Total bytes dropped, by cause (queue overflow, AQM).
    pub dropped_bytes: u64,
    /// Dropped data bytes only (Figure 10 counts data).
    pub dropped_data_bytes: u64,
    /// Total application bytes delivered in order.
    pub delivered_bytes: u64,
    /// Control-plane wire bytes to the allocator.
    pub ctrl_bytes_to_alloc: u64,
    /// Control-plane wire bytes from the allocator.
    pub ctrl_bytes_from_alloc: u64,
    /// Per-flow delivered-byte time series in fixed bins (Figure 4);
    /// enabled selectively because it is memory-hungry.
    pub throughput_bins: HashMap<u64, Vec<u64>>,
    /// Bin width for `throughput_bins`, ps.
    pub throughput_bin_ps: u64,
}

impl Metrics {
    /// Fresh metrics; `throughput_bin_ps` of 0 disables the time series.
    pub fn new(throughput_bin_ps: u64) -> Self {
        Self {
            throughput_bin_ps,
            ..Self::default()
        }
    }

    /// Records delivered application bytes (and the Figure-4 series if
    /// enabled).
    pub fn on_delivered(&mut self, flow: u64, bytes: u64, now_ps: u64) {
        self.delivered_bytes += bytes;
        if let Some(bin) = now_ps.checked_div(self.throughput_bin_ps) {
            let bin = bin as usize;
            let series = self.throughput_bins.entry(flow).or_default();
            if series.len() <= bin {
                series.resize(bin + 1, 0);
            }
            series[bin] += bytes;
        }
    }

    /// The p-th percentile (0–100) of completed-flow slowdowns within a
    /// size bin; `None` if the bin is empty.
    pub fn p_slowdown(&self, bin: &str, p: f64) -> Option<f64> {
        let mut v: Vec<f64> = self
            .fcts
            .iter()
            .filter(|r| r.size_bin() == bin)
            .map(|r| r.slowdown)
            .collect();
        percentile(&mut v, p)
    }

    /// The p-th percentile (0–100) of *raw* flow completion time (ps)
    /// within a size bin; `None` if the bin is empty. The slowdown
    /// percentile ([`Metrics::p_slowdown`]) is the paper's Figure-8
    /// normalization; the raw quantity is what the scenario runner's
    /// per-phase p99 reports, so the two surfaces stay comparable.
    pub fn p_fct_ps(&self, bin: &str, p: f64) -> Option<u64> {
        let mut v: Vec<f64> = self
            .fcts
            .iter()
            .filter(|r| r.size_bin() == bin)
            .map(|r| r.fct_ps() as f64)
            .collect();
        percentile(&mut v, p).map(|x| x as u64)
    }

    /// The p-th percentile of queue delay (ps) over samples with the
    /// given hop tag.
    pub fn p_queue_delay(&self, hops: u8, p: f64) -> Option<u64> {
        let mut v: Vec<f64> = self
            .queue_delay_samples
            .iter()
            .filter(|(h, _)| *h == hops)
            .map(|(_, d)| *d as f64)
            .collect();
        percentile(&mut v, p).map(|x| x as u64)
    }

    /// Mean per-flow proportional-fairness score `log₂(rate)`, rates in
    /// Gbit/s over each flow's lifetime (Figure 11 plots differences of
    /// this quantity between schemes, so the unit cancels).
    pub fn fairness_score(&self) -> f64 {
        let scores: Vec<f64> = self
            .fcts
            .iter()
            .filter(|r| r.end_ps > r.start_ps)
            .map(|r| {
                let gbps = r.bytes as f64 * 8.0 / ((r.end_ps - r.start_ps) as f64 / 1e12) / 1e9;
                gbps.log2()
            })
            .collect();
        if scores.is_empty() {
            return f64::NAN;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// Dropped data expressed in Gbit/s over `duration_ps` (Figure 10).
    pub fn drop_gbps(&self, duration_ps: u64) -> f64 {
        self.dropped_data_bytes as f64 * 8.0 / (duration_ps as f64 / 1e12) / 1e9
    }
}

/// Nearest-rank percentile of an unsorted sample.
pub fn percentile(v: &mut [f64], p: f64) -> Option<f64> {
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    Some(v[rank.min(v.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(flow: u64, packets: u64, slowdown: f64) -> FctRecord {
        FctRecord {
            flow,
            bytes: packets * 1442,
            start_ps: 0,
            end_ps: 1_000_000,
            slowdown,
            packets,
        }
    }

    #[test]
    fn size_bins_match_figure8() {
        assert_eq!(rec(1, 1, 1.0).size_bin(), "1 packet");
        assert_eq!(rec(1, 5, 1.0).size_bin(), "1-10 packets");
        assert_eq!(rec(1, 50, 1.0).size_bin(), "10-100 packets");
        assert_eq!(rec(1, 500, 1.0).size_bin(), "100-1000 packets");
        assert_eq!(rec(1, 5000, 1.0).size_bin(), "large");
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&mut v, 99.0), Some(99.0));
        // Median of 1..=100 rounds to either neighbour of 50.5.
        let p50 = percentile(&mut v, 50.0).unwrap();
        assert!((p50 - 50.5).abs() <= 0.5, "{p50}");
        assert_eq!(percentile(&mut v, 100.0), Some(100.0));
        assert_eq!(percentile(&mut [], 50.0), None);
    }

    #[test]
    fn p99_slowdown_by_bin() {
        let mut m = Metrics::new(0);
        for i in 0..100 {
            m.fcts.push(rec(i, 1, 1.0 + i as f64));
        }
        m.fcts.push(rec(1000, 50, 42.0));
        let p99 = m.p_slowdown("1 packet", 99.0).unwrap();
        assert!((p99 - 99.0).abs() < 1.5);
        assert_eq!(m.p_slowdown("10-100 packets", 99.0), Some(42.0));
        assert_eq!(m.p_slowdown("large", 99.0), None);
    }

    #[test]
    fn p_fct_by_bin_uses_raw_completion_times() {
        let mut m = Metrics::new(0);
        for i in 0..100u64 {
            m.fcts.push(FctRecord {
                flow: i,
                bytes: 1442,
                start_ps: 1_000,
                end_ps: 1_000 + (i + 1) * 1_000_000,
                slowdown: 1.0,
                packets: 1,
            });
        }
        assert_eq!(m.p_fct_ps("1 packet", 100.0), Some(100_000_000));
        let p50 = m.p_fct_ps("1 packet", 50.0).unwrap();
        assert!((50_000_000..=51_000_000).contains(&p50), "{p50}");
        assert_eq!(m.p_fct_ps("large", 99.0), None);
    }

    #[test]
    fn throughput_bins_accumulate() {
        let mut m = Metrics::new(100);
        m.on_delivered(7, 10, 50);
        m.on_delivered(7, 20, 150);
        m.on_delivered(7, 5, 160);
        assert_eq!(m.throughput_bins[&7], vec![10, 25]);
        assert_eq!(m.delivered_bytes, 35);
    }

    #[test]
    fn disabled_series_records_totals_only() {
        let mut m = Metrics::new(0);
        m.on_delivered(7, 10, 50);
        assert!(m.throughput_bins.is_empty());
        assert_eq!(m.delivered_bytes, 10);
    }

    #[test]
    fn fairness_score_mean_log_rate() {
        let mut m = Metrics::new(0);
        // 1 Gbit/s for 1 ms → log2(1) = 0.
        m.fcts.push(FctRecord {
            flow: 1,
            bytes: 125_000,
            start_ps: 0,
            end_ps: 1_000_000_000,
            slowdown: 1.0,
            packets: 87,
        });
        // 2 Gbit/s → log2(2) = 1.
        m.fcts.push(FctRecord {
            flow: 2,
            bytes: 250_000,
            start_ps: 0,
            end_ps: 1_000_000_000,
            slowdown: 1.0,
            packets: 174,
        });
        assert!((m.fairness_score() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn drop_rate_units() {
        let mut m = Metrics::new(0);
        m.dropped_data_bytes = 125_000_000; // 1 Gbit
        assert!((m.drop_gbps(1_000_000_000_000) - 1.0).abs() < 1e-9);
    }
}
