//! Simulation time: integer picoseconds.
//!
//! Picoseconds keep serialization arithmetic exact (one bit at 40 Gbit/s
//! is 25 ps) while a `u64` still spans ~213 days — ample for sub-second
//! experiments.

/// One microsecond in picoseconds.
pub const US: u64 = 1_000_000;
/// One millisecond in picoseconds.
pub const MS: u64 = 1_000_000_000;
/// One second in picoseconds.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// Picoseconds to transmit `bytes` at `bps` bits/s (exact, 128-bit
/// intermediate).
#[inline]
pub fn tx_time_ps(bytes: u32, bps: u64) -> u64 {
    (u128::from(bytes) * 8 * u128::from(PS_PER_SEC) / u128::from(bps)) as u64
}

/// Picoseconds to seconds, for reporting.
#[inline]
pub fn to_secs(ps: u64) -> f64 {
    ps as f64 / PS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtu_at_10g_is_1200ns() {
        assert_eq!(tx_time_ps(1500, 10_000_000_000), 1_200_000);
    }

    #[test]
    fn ack_at_40g() {
        assert_eq!(tx_time_ps(64, 40_000_000_000), 12_800);
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(1000 * US, MS);
        assert_eq!(1000 * MS, PS_PER_SEC);
        assert!((to_secs(PS_PER_SEC) - 1.0).abs() < 1e-12);
    }
}
