//! Per-port queue disciplines — the switch-side half of each compared
//! scheme.
//!
//! | scheme        | queue                                            |
//! |---------------|--------------------------------------------------|
//! | Flowtune      | plain DropTail (queues stay near-empty by design)|
//! | DCTCP         | DropTail + ECN mark above threshold K            |
//! | pFabric       | tiny buffer, drop-largest-priority, SRPT dequeue |
//! | Cubic+sfqCoDel| hashed sub-queues, CoDel AQM, DRR service        |
//! | XCP           | DropTail + per-interval aggregate feedback       |

use std::collections::VecDeque;

use crate::packet::{Packet, PktKind, MTU};

/// Result of offering a packet to a queue: the packets that got dropped
/// in the process (possibly the offered one, possibly a buffered victim).
#[derive(Debug, Default)]
pub struct EnqueueOutcome {
    /// Dropped packets, for loss accounting and (at hosts) loss recovery.
    pub dropped: Vec<Packet>,
}

/// Result of asking a queue for the next packet to transmit: CoDel may
/// drop packets while searching for one worth sending.
#[derive(Debug, Default)]
pub struct DequeueOutcome {
    /// The packet to transmit, if any.
    pub pkt: Option<Packet>,
    /// Packets the AQM dropped during this dequeue.
    pub dropped: Vec<Packet>,
}

/// A port's queue discipline (enum-dispatched for speed and easy
/// scheme-specific state access).
#[derive(Debug)]
pub enum Queue {
    /// FIFO with a byte limit.
    DropTail(DropTail),
    /// FIFO + ECN marking above an instantaneous threshold (DCTCP's K).
    Ecn(EcnQueue),
    /// pFabric priority queue.
    Pfabric(PfabricQueue),
    /// Stochastic-fair CoDel.
    SfqCodel(SfqCodel),
}

impl Queue {
    /// Offers a packet at time `now`.
    pub fn enqueue(&mut self, mut pkt: Packet, now_ps: u64) -> EnqueueOutcome {
        pkt.enq_ps = now_ps;
        match self {
            Queue::DropTail(q) => q.enqueue(pkt),
            Queue::Ecn(q) => q.enqueue(pkt),
            Queue::Pfabric(q) => q.enqueue(pkt),
            Queue::SfqCodel(q) => q.enqueue(pkt),
        }
    }

    /// Takes the next packet to transmit at time `now`.
    pub fn dequeue(&mut self, now_ps: u64) -> DequeueOutcome {
        match self {
            Queue::DropTail(q) => q.dequeue(),
            Queue::Ecn(q) => q.dequeue(),
            Queue::Pfabric(q) => q.dequeue(),
            Queue::SfqCodel(q) => q.dequeue(now_ps),
        }
    }

    /// Queued bytes (wire bytes).
    pub fn len_bytes(&self) -> u64 {
        match self {
            Queue::DropTail(q) => q.bytes,
            Queue::Ecn(q) => q.inner.bytes,
            Queue::Pfabric(q) => q.bytes,
            Queue::SfqCodel(q) => q.bytes,
        }
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len_bytes() == 0
    }
}

// ---------------------------------------------------------------- DropTail

/// FIFO with a byte cap.
#[derive(Debug)]
pub struct DropTail {
    q: VecDeque<Packet>,
    bytes: u64,
    limit_bytes: u64,
}

impl DropTail {
    /// A FIFO holding at most `limit_bytes` of wire bytes.
    pub fn new(limit_bytes: u64) -> Self {
        Self {
            q: VecDeque::new(),
            bytes: 0,
            limit_bytes,
        }
    }

    fn enqueue(&mut self, pkt: Packet) -> EnqueueOutcome {
        if self.bytes + pkt.wire_bytes as u64 > self.limit_bytes {
            return EnqueueOutcome { dropped: vec![pkt] };
        }
        self.bytes += pkt.wire_bytes as u64;
        self.q.push_back(pkt);
        EnqueueOutcome::default()
    }

    fn dequeue(&mut self) -> DequeueOutcome {
        let pkt = self.q.pop_front();
        if let Some(p) = &pkt {
            self.bytes -= p.wire_bytes as u64;
        }
        DequeueOutcome {
            pkt,
            dropped: Vec::new(),
        }
    }
}

// --------------------------------------------------------------------- ECN

/// DropTail + ECN: marks CE when the instantaneous queue at enqueue time
/// is at or above threshold K — DCTCP's single-parameter AQM.
#[derive(Debug)]
pub struct EcnQueue {
    inner: DropTail,
    mark_threshold_bytes: u64,
}

impl EcnQueue {
    /// K expressed in bytes (the DCTCP guideline is ~65 full packets at
    /// 10 Gbit/s).
    pub fn new(limit_bytes: u64, mark_threshold_bytes: u64) -> Self {
        Self {
            inner: DropTail::new(limit_bytes),
            mark_threshold_bytes,
        }
    }

    fn enqueue(&mut self, mut pkt: Packet) -> EnqueueOutcome {
        if self.inner.bytes >= self.mark_threshold_bytes && pkt.kind == PktKind::Data {
            pkt.ce = true;
        }
        self.inner.enqueue(pkt)
    }

    fn dequeue(&mut self) -> DequeueOutcome {
        self.inner.dequeue()
    }
}

// ----------------------------------------------------------------- pFabric

/// pFabric's priority queue: a very small buffer; on overflow the packet
/// with the *largest* priority value (most remaining bytes) is evicted;
/// dequeue serves the smallest (priority, seq) — shortest remaining
/// processing time.
#[derive(Debug)]
pub struct PfabricQueue {
    q: Vec<Packet>,
    bytes: u64,
    limit_bytes: u64,
}

impl PfabricQueue {
    /// pFabric uses very shallow buffers (~2×BDP; 36 kB at 10 G).
    pub fn new(limit_bytes: u64) -> Self {
        Self {
            q: Vec::new(),
            bytes: 0,
            limit_bytes,
        }
    }

    fn enqueue(&mut self, pkt: Packet) -> EnqueueOutcome {
        let mut dropped = Vec::new();
        self.bytes += pkt.wire_bytes as u64;
        self.q.push(pkt);
        while self.bytes > self.limit_bytes {
            // Evict the worst packet (max priority value; FIFO-late among
            // ties so earlier packets of the same flow survive).
            let worst = self
                .q
                .iter()
                .enumerate()
                .max_by_key(|(i, p)| (p.prio, p.seq, *i))
                .map(|(i, _)| i)
                .expect("queue cannot be empty while over limit");
            let victim = self.q.remove(worst);
            self.bytes -= victim.wire_bytes as u64;
            dropped.push(victim);
        }
        EnqueueOutcome { dropped }
    }

    fn dequeue(&mut self) -> DequeueOutcome {
        if self.q.is_empty() {
            return DequeueOutcome::default();
        }
        let best = self
            .q
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.prio, p.seq, *i))
            .map(|(i, _)| i)
            .unwrap();
        let pkt = self.q.remove(best);
        self.bytes -= pkt.wire_bytes as u64;
        DequeueOutcome {
            pkt: Some(pkt),
            dropped: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------- sfqCoDel

/// CoDel per-bucket state (Nichols & Jacobson, "Controlling Queue Delay").
#[derive(Debug, Clone, Default)]
struct CodelState {
    first_above_ps: u64,
    drop_next_ps: u64,
    count: u32,
    dropping: bool,
}

#[derive(Debug, Default)]
struct Bucket {
    q: VecDeque<Packet>,
    bytes: u64,
    codel: CodelState,
    deficit: i64,
    active: bool,
}

/// Stochastic-fair CoDel: flows hash into buckets, buckets are served
/// deficit-round-robin, each bucket runs the CoDel control law.
#[derive(Debug)]
pub struct SfqCodel {
    buckets: Vec<Bucket>,
    /// DRR service order of active buckets.
    order: VecDeque<usize>,
    bytes: u64,
    limit_bytes: u64,
    target_ps: u64,
    interval_ps: u64,
    quantum: i64,
}

impl SfqCodel {
    /// `buckets` hashed sub-queues with the given CoDel `target`/`interval`
    /// and an overall byte cap (overflow evicts from the longest bucket —
    /// "drop from the fattest flow").
    pub fn new(buckets: usize, limit_bytes: u64, target_ps: u64, interval_ps: u64) -> Self {
        assert!(buckets.is_power_of_two(), "bucket count must be 2^k");
        Self {
            buckets: (0..buckets).map(|_| Bucket::default()).collect(),
            order: VecDeque::new(),
            bytes: 0,
            limit_bytes,
            target_ps,
            interval_ps,
            quantum: MTU as i64,
        }
    }

    fn bucket_of(&self, flow: u64) -> usize {
        (flowtune_topo::clos::splitmix64(flow) % self.buckets.len() as u64) as usize
    }

    fn enqueue(&mut self, pkt: Packet) -> EnqueueOutcome {
        let b = self.bucket_of(pkt.flow);
        self.bytes += pkt.wire_bytes as u64;
        self.buckets[b].bytes += pkt.wire_bytes as u64;
        self.buckets[b].q.push_back(pkt);
        if !self.buckets[b].active {
            self.buckets[b].active = true;
            self.buckets[b].deficit = self.quantum;
            self.order.push_back(b);
        }
        let mut dropped = Vec::new();
        while self.bytes > self.limit_bytes {
            // Evict from the longest bucket's head.
            let fattest = (0..self.buckets.len())
                .max_by_key(|&i| self.buckets[i].bytes)
                .unwrap();
            if let Some(victim) = self.buckets[fattest].q.pop_front() {
                self.buckets[fattest].bytes -= victim.wire_bytes as u64;
                self.bytes -= victim.wire_bytes as u64;
                dropped.push(victim);
            } else {
                break;
            }
        }
        EnqueueOutcome { dropped }
    }

    /// CoDel's `control_law`: inverse-sqrt drop spacing.
    fn control_law(interval_ps: u64, t: u64, count: u32) -> u64 {
        t + (interval_ps as f64 / (count.max(1) as f64).sqrt()) as u64
    }

    /// Takes the head of bucket `b`, applying the CoDel dropping state
    /// machine. Returns (packet-to-forward, drops).
    fn codel_dequeue(&mut self, b: usize, now: u64, dropped: &mut Vec<Packet>) -> Option<Packet> {
        loop {
            let target = self.target_ps;
            let interval = self.interval_ps;
            let bucket = &mut self.buckets[b];
            let Some(pkt) = bucket.q.pop_front() else {
                bucket.codel.dropping = false;
                return None;
            };
            bucket.bytes -= pkt.wire_bytes as u64;
            self.bytes -= pkt.wire_bytes as u64;
            let sojourn = now.saturating_sub(pkt.enq_ps);
            let st = &mut bucket.codel;
            if sojourn < target || bucket.bytes <= MTU as u64 {
                // Below target: leave dropping state.
                st.first_above_ps = 0;
                st.dropping = false;
                return Some(pkt);
            }
            if st.first_above_ps == 0 {
                st.first_above_ps = now + interval;
                return Some(pkt);
            }
            if !st.dropping {
                if now >= st.first_above_ps {
                    // Enter dropping state: drop this packet.
                    st.dropping = true;
                    st.count = if st.count > 2 && now < st.drop_next_ps + 16 * interval {
                        st.count - 2
                    } else {
                        1
                    };
                    st.drop_next_ps = Self::control_law(interval, now, st.count);
                    dropped.push(pkt);
                    continue;
                }
                return Some(pkt);
            }
            // In dropping state.
            if now >= st.drop_next_ps {
                st.count += 1;
                st.drop_next_ps = Self::control_law(interval, st.drop_next_ps, st.count);
                dropped.push(pkt);
                continue;
            }
            return Some(pkt);
        }
    }

    fn dequeue(&mut self, now: u64) -> DequeueOutcome {
        let mut dropped = Vec::new();
        // DRR over active buckets.
        let mut guard = self.order.len() * 2 + 2;
        while let Some(&b) = self.order.front() {
            guard -= 1;
            if guard == 0 {
                break;
            }
            if self.buckets[b].q.is_empty() {
                self.order.pop_front();
                self.buckets[b].active = false;
                continue;
            }
            if self.buckets[b].deficit <= 0 {
                self.buckets[b].deficit += self.quantum;
                self.order.rotate_left(1);
                continue;
            }
            if let Some(pkt) = self.codel_dequeue(b, now, &mut dropped) {
                self.buckets[b].deficit -= pkt.wire_bytes as i64;
                return DequeueOutcome {
                    pkt: Some(pkt),
                    dropped,
                };
            }
            // Bucket drained by CoDel drops.
            self.order.pop_front();
            self.buckets[b].active = false;
        }
        DequeueOutcome { pkt: None, dropped }
    }
}

// ------------------------------------------------------------- XCP router

/// Per-port XCP control state (Katabi et al., SIGCOMM 2002), recomputed
/// every control interval. Per-packet feedback is an equal split of the
/// aggregate φ — a documented simplification of XCP's per-flow fair
/// split; it preserves the conservative ramp-up and near-empty queues the
/// paper observes.
#[derive(Debug, Clone)]
pub struct XcpPort {
    /// α — spare-bandwidth gain (0.4 in the XCP paper).
    pub alpha: f64,
    /// β — queue-drain gain (0.226).
    pub beta: f64,
    /// Control interval, ps (≈ mean RTT).
    pub interval_ps: u64,
    /// Bytes of data that arrived in the current interval.
    pub input_bytes: u64,
    /// Data packets seen in the current interval.
    pub input_packets: u64,
    /// Minimum queue observed in the current interval (persistent queue).
    pub min_queue_bytes: u64,
    /// Feedback budget per data packet for the *next* interval (bytes of
    /// cwnd change, positive or negative).
    pub per_packet_feedback: f64,
}

impl XcpPort {
    /// Fresh state with the standard gains.
    pub fn new(interval_ps: u64) -> Self {
        Self {
            alpha: 0.4,
            beta: 0.226,
            interval_ps,
            input_bytes: 0,
            input_packets: 0,
            min_queue_bytes: u64::MAX,
            per_packet_feedback: 0.0,
        }
    }

    /// Records a data packet passing through.
    pub fn on_data(&mut self, wire_bytes: u32, queue_bytes: u64) {
        self.input_bytes += wire_bytes as u64;
        self.input_packets += 1;
        self.min_queue_bytes = self.min_queue_bytes.min(queue_bytes);
    }

    /// Closes the interval: computes aggregate feedback φ and the equal
    /// per-packet split for the next interval.
    pub fn roll_interval(&mut self, capacity_bps: u64) {
        let d = self.interval_ps as f64 / 1e12;
        let capacity_bytes = capacity_bps as f64 / 8.0 * d;
        let spare = capacity_bytes - self.input_bytes as f64;
        let q = if self.min_queue_bytes == u64::MAX {
            0.0
        } else {
            self.min_queue_bytes as f64
        };
        let phi = self.alpha * spare - self.beta * q;
        let pkts = self.input_packets.max(1) as f64;
        self.per_packet_feedback = phi / pkts;
        self.input_bytes = 0;
        self.input_packets = 0;
        self.min_queue_bytes = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PktKind, ACK_SIZE};
    use flowtune_topo::LinkId;

    fn data(flow: u64, seq: u64, prio: u64) -> Packet {
        let mut p = Packet::new(flow, PktKind::Data, seq, MTU - 58, &[LinkId(0)]);
        p.prio = prio;
        p
    }

    #[test]
    fn droptail_fifo_and_limit() {
        let mut q = Queue::DropTail(DropTail::new(3 * MTU as u64));
        for i in 0..3 {
            assert!(q.enqueue(data(1, i, 0), 0).dropped.is_empty());
        }
        let out = q.enqueue(data(1, 3, 0), 0);
        assert_eq!(out.dropped.len(), 1, "tail dropped");
        assert_eq!(out.dropped[0].seq, 3);
        assert_eq!(q.dequeue(0).pkt.unwrap().seq, 0);
        assert_eq!(q.dequeue(0).pkt.unwrap().seq, 1);
        assert_eq!(q.len_bytes(), MTU as u64);
    }

    #[test]
    fn ecn_marks_above_threshold_only() {
        let mut q = Queue::Ecn(EcnQueue::new(100 * MTU as u64, 2 * MTU as u64));
        q.enqueue(data(1, 0, 0), 0);
        q.enqueue(data(1, 1, 0), 0);
        q.enqueue(data(1, 2, 0), 0); // queue ≥ 2 MTU at this enqueue
        assert!(!q.dequeue(0).pkt.unwrap().ce);
        assert!(!q.dequeue(0).pkt.unwrap().ce);
        assert!(q.dequeue(0).pkt.unwrap().ce, "third packet marked");
    }

    #[test]
    fn ecn_never_marks_acks() {
        let mut q = Queue::Ecn(EcnQueue::new(100 * MTU as u64, 0));
        let ack = Packet::new(1, PktKind::Ack, 10, 0, &[LinkId(0)]);
        q.enqueue(ack, 0);
        assert!(!q.dequeue(0).pkt.unwrap().ce);
    }

    #[test]
    fn pfabric_serves_srpt_and_evicts_worst() {
        let mut q = Queue::Pfabric(PfabricQueue::new(3 * MTU as u64));
        q.enqueue(data(1, 0, 50_000), 0);
        q.enqueue(data(2, 0, 1_000), 0);
        q.enqueue(data(3, 0, 10_000), 0);
        // Overflow: the prio-50k packet is evicted, not the newcomer.
        let out = q.enqueue(data(4, 0, 2_000), 0);
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].flow, 1);
        // Dequeue order: 1k, 2k, 10k.
        assert_eq!(q.dequeue(0).pkt.unwrap().flow, 2);
        assert_eq!(q.dequeue(0).pkt.unwrap().flow, 4);
        assert_eq!(q.dequeue(0).pkt.unwrap().flow, 3);
    }

    #[test]
    fn pfabric_same_flow_in_seq_order() {
        let mut q = Queue::Pfabric(PfabricQueue::new(10 * MTU as u64));
        q.enqueue(data(1, 3000, 500), 0);
        q.enqueue(data(1, 0, 500), 0);
        q.enqueue(data(1, 1500, 500), 0);
        assert_eq!(q.dequeue(0).pkt.unwrap().seq, 0);
        assert_eq!(q.dequeue(0).pkt.unwrap().seq, 1500);
        assert_eq!(q.dequeue(0).pkt.unwrap().seq, 3000);
    }

    #[test]
    fn sfqcodel_separates_flows() {
        let mut q = Queue::SfqCodel(SfqCodel::new(
            1024,
            1 << 20,
            500 * crate::time::US,
            10 * crate::time::MS,
        ));
        // Flow 1 dumps 10 packets, flow 2 one packet; DRR should serve
        // flow 2 within the first couple of dequeues, not after all of
        // flow 1.
        for i in 0..10 {
            q.enqueue(data(1, i * 1500, 0), 0);
        }
        q.enqueue(data(2, 0, 0), 0);
        let mut first_two = Vec::new();
        for _ in 0..2 {
            first_two.push(q.dequeue(1000).pkt.unwrap().flow);
        }
        assert!(
            first_two.contains(&2),
            "fair queuing interleaves: {first_two:?}"
        );
    }

    #[test]
    fn sfqcodel_codel_drops_persistent_queue() {
        let target = 100 * crate::time::US;
        let interval = crate::time::MS;
        let mut q = SfqCodel::new(16, 1 << 30, target, interval);
        // Keep a standing queue: enqueue at t=0, dequeue far later so
        // sojourn ≫ target for longer than interval.
        for i in 0..200 {
            q.enqueue(data(1, i * 1500, 0));
        }
        let mut dropped = 0;
        let mut t = 2 * interval;
        for _ in 0..100 {
            let out = q.dequeue(t);
            dropped += out.dropped.len();
            t += 50 * crate::time::US;
        }
        assert!(dropped > 0, "CoDel must drop on a persistent queue");
    }

    #[test]
    fn sfqcodel_overflow_hits_fattest_flow() {
        let mut q = SfqCodel::new(16, 5 * MTU as u64, crate::time::US, crate::time::MS);
        for i in 0..5 {
            q.enqueue(data(1, i * 1500, 0));
        }
        let out = q.enqueue(data(2, 0, 0));
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].flow, 1, "victim is the fat flow");
    }

    #[test]
    fn xcp_feedback_positive_when_underutilized() {
        let mut x = XcpPort::new(20 * crate::time::US);
        x.on_data(1500, 0);
        x.roll_interval(10_000_000_000);
        assert!(x.per_packet_feedback > 0.0, "{}", x.per_packet_feedback);
    }

    #[test]
    fn xcp_feedback_negative_when_overdriven() {
        let mut x = XcpPort::new(20 * crate::time::US);
        // 10 G for 20 µs = 25 000 bytes capacity; offer 40 000 + queue.
        for _ in 0..27 {
            x.on_data(1500, 30_000);
        }
        x.roll_interval(10_000_000_000);
        assert!(x.per_packet_feedback < 0.0, "{}", x.per_packet_feedback);
    }

    #[test]
    fn ack_size_constant_sane() {
        const { assert!(ACK_SIZE >= 64) }
    }
}
