//! Packets.

use flowtune_topo::LinkId;

/// Maximum hops of any path in the fabric (host→ToR→spine→ToR→host).
pub const MAX_HOPS: usize = 4;

/// Ethernet MTU carried by data packets (headers included, as in ns2's
/// byte accounting).
pub const MTU: u32 = 1500;
/// TCP/IP + Ethernet header bytes inside each data packet; the rest is
/// application payload.
pub const HEADER: u32 = 58;
/// Maximum segment size: application bytes per full packet.
pub const MSS: u32 = MTU - HEADER;
/// ACK / minimum frame size.
pub const ACK_SIZE: u32 = 64;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktKind {
    /// Application data: `[seq, seq + payload)` of the flow's byte
    /// stream.
    Data,
    /// Cumulative acknowledgment up to `seq`.
    Ack,
}

/// A packet in flight. Kept `Copy`-cheap: the path is inlined (≤ 4 hops).
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// The flow (or control stream) this packet belongs to.
    pub flow: u64,
    /// Data: first byte offset. Ack: cumulative ack offset.
    pub seq: u64,
    /// Application payload bytes (0 for pure ACKs).
    pub payload: u32,
    /// Total size on the wire, headers included.
    pub wire_bytes: u32,
    /// Data or ACK.
    pub kind: PktKind,
    /// pFabric priority: remaining flow bytes at send time (lower =
    /// higher priority). Unused by other schemes.
    pub prio: u64,
    /// ECN: Congestion Experienced mark (set by queues, echoed by ACKs).
    pub ce: bool,
    /// XCP: per-packet feedback field (Δ window in bytes, router-written
    /// on data, echoed on ACKs).
    pub xcp_feedback: f64,
    /// XCP: sender's current cwnd (bytes) and RTT estimate (ps), read by
    /// routers to compute fair per-packet feedback.
    pub xcp_cwnd: f64,
    /// XCP RTT estimate, ps.
    pub xcp_rtt: u64,
    /// When the packet left the sender host (for latency accounting).
    pub sent_ps: u64,
    /// When the packet entered the current queue (CoDel sojourn time).
    pub enq_ps: u64,
    /// The remaining route: `path[hop..path_len]` are still to traverse.
    pub path: [LinkId; MAX_HOPS],
    /// Number of valid entries in `path`.
    pub path_len: u8,
    /// Next hop index.
    pub hop: u8,
}

impl Packet {
    /// Builds a packet over `path` (1–4 links).
    pub fn new(flow: u64, kind: PktKind, seq: u64, payload: u32, path: &[LinkId]) -> Self {
        assert!(!path.is_empty() && path.len() <= MAX_HOPS, "bad path");
        let mut p = [LinkId(u32::MAX); MAX_HOPS];
        p[..path.len()].copy_from_slice(path);
        let wire_bytes = match kind {
            PktKind::Data => (payload + HEADER).max(ACK_SIZE),
            PktKind::Ack => ACK_SIZE,
        };
        Self {
            flow,
            seq,
            payload,
            wire_bytes,
            kind,
            prio: u64::MAX,
            ce: false,
            xcp_feedback: 0.0,
            xcp_cwnd: 0.0,
            xcp_rtt: 0,
            sent_ps: 0,
            enq_ps: 0,
            path: p,
            path_len: path.len() as u8,
            hop: 0,
        }
    }

    /// The link this packet traverses next, or `None` at the destination.
    pub fn next_link(&self) -> Option<LinkId> {
        if self.hop < self.path_len {
            Some(self.path[self.hop as usize])
        } else {
            None
        }
    }

    /// Advances to the next hop.
    pub fn advance(&mut self) {
        debug_assert!(self.hop < self.path_len);
        self.hop += 1;
    }

    /// Whether the packet has reached its final node.
    pub fn at_destination(&self) -> bool {
        self.hop >= self.path_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn data_packet_sizes() {
        let p = Packet::new(1, PktKind::Data, 0, MSS, &[l(0), l(1)]);
        assert_eq!(p.wire_bytes, MTU);
        let small = Packet::new(1, PktKind::Data, 0, 1, &[l(0)]);
        assert_eq!(small.wire_bytes, ACK_SIZE, "min frame");
    }

    #[test]
    fn ack_is_min_frame() {
        let p = Packet::new(1, PktKind::Ack, 500, 0, &[l(0)]);
        assert_eq!(p.wire_bytes, ACK_SIZE);
    }

    #[test]
    fn hop_progression() {
        let mut p = Packet::new(1, PktKind::Data, 0, 100, &[l(3), l(7), l(9)]);
        assert_eq!(p.next_link(), Some(l(3)));
        p.advance();
        assert_eq!(p.next_link(), Some(l(7)));
        p.advance();
        p.advance();
        assert!(p.at_destination());
        assert_eq!(p.next_link(), None);
    }

    #[test]
    #[should_panic(expected = "bad path")]
    fn empty_path_rejected() {
        let _ = Packet::new(1, PktKind::Data, 0, 0, &[]);
    }
}
