//! Property-based tests over the NUM solvers and normalizers.
//!
//! Random instances are generated as: `n_links` links with capacities in
//! [1, 100] Gbit/s and `n_flows` flows, each crossing a random non-empty
//! subset of links with a random weight. Invariants checked:
//!
//! 1. F-NORM and U-NORM never over-allocate any link (the §4 safety
//!    argument), whatever the input rates.
//! 2. NED converges on random instances, the fixed point satisfies KKT,
//!    and prices/rates stay non-negative and finite.
//! 3. NED and Gradient agree on the optimum (same primal rates) when each
//!    is run to convergence — they solve the same convex program.
//! 4. Warm-started NED after removing a flow re-converges.
//! 5. F-NORM's total throughput dominates U-NORM's.

use flowtune_num::normalize::{f_norm, total_throughput, u_norm};
use flowtune_num::solver::{kkt_residual, solve};
use flowtune_num::{Gradient, Ned, NumProblem, SolverState, Utility};
use flowtune_topo::LinkId;
use proptest::prelude::*;

/// Strategy: a random instance with 1–6 links and 1–12 flows.
fn instance() -> impl Strategy<Value = NumProblem> {
    (1usize..=6).prop_flat_map(|n_links| {
        let caps = proptest::collection::vec(1.0f64..100.0, n_links);
        let flows = proptest::collection::vec(
            (
                proptest::collection::btree_set(0..n_links, 1..=n_links.min(3)),
                0.1f64..10.0,
            ),
            1..=12,
        );
        (caps, flows).prop_map(|(caps, flows)| {
            let mut p = NumProblem::new(caps);
            for (links, w) in flows {
                let links: Vec<LinkId> = links.into_iter().map(|i| LinkId(i as u32)).collect();
                p.add_flow(links, Utility::log(w));
            }
            p
        })
    })
}

/// Strategy: an instance paired with arbitrary (possibly infeasible)
/// non-negative rates, one per flow slot.
fn instance_with_rates() -> impl Strategy<Value = (NumProblem, Vec<f64>)> {
    instance().prop_flat_map(|p| {
        let slots = p.flow_slots();
        (
            Just(p),
            proptest::collection::vec(0.0f64..200.0, slots..=slots),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalizers_never_overallocate((problem, rates) in instance_with_rates()) {
        for norm in [f_norm(&problem, &rates), u_norm(&problem, &rates)] {
            for (load, &c) in problem.link_loads(&norm).iter().zip(problem.capacities()) {
                prop_assert!(*load <= c * (1.0 + 1e-9), "load {load} > cap {c}");
            }
        }
    }

    #[test]
    fn f_norm_dominates_u_norm_in_throughput((problem, rates) in instance_with_rates()) {
        let tf = total_throughput(&problem, &f_norm(&problem, &rates));
        let tu = total_throughput(&problem, &u_norm(&problem, &rates));
        prop_assert!(tf >= tu * (1.0 - 1e-9), "f-norm {tf} < u-norm {tu}");
    }

    #[test]
    fn ned_converges_and_satisfies_kkt(problem in instance()) {
        let mut s = SolverState::new(&problem);
        let report = solve(&mut Ned::new(0.4), &problem, &mut s, 20_000, 1e-7);
        prop_assert!(report.converged, "{report:?}");
        prop_assert!(kkt_residual(&problem, &s) < 1e-6);
        prop_assert!(s.prices.iter().all(|&p| p >= 0.0 && p.is_finite()));
        prop_assert!(s.rates.iter().all(|&x| x >= 0.0 && x.is_finite()));
        // No flow exceeds its bottleneck line rate.
        for (i, _, _, x_max) in problem.iter_flows() {
            prop_assert!(s.rates[i] <= x_max * (1.0 + 1e-9));
        }
    }

    #[test]
    fn warm_restart_after_removal_reconverges(problem in instance()) {
        let mut problem = problem;
        let mut s = SolverState::new(&problem);
        let first = solve(&mut Ned::new(0.4), &problem, &mut s, 20_000, 1e-7);
        prop_assume!(first.converged);
        let active: Vec<_> = problem.iter_flows().map(|(i, ..)| i).collect();
        prop_assume!(active.len() > 1);
        problem.remove_flow(active[0]);
        let again = solve(&mut Ned::new(0.4), &problem, &mut s, 20_000, 1e-7);
        prop_assert!(again.converged, "{again:?}");
    }
}

proptest! {
    // The optimum-agreement property runs Gradient for up to 2M
    // iterations per case; keep the case count small so the whole suite
    // stays fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn optimizers_agree_on_the_optimum(problem in instance()) {
        let mut ned_state = SolverState::new(&problem);
        let ned = solve(&mut Ned::new(0.4), &problem, &mut ned_state, 50_000, 1e-8);
        prop_assume!(ned.converged);

        // Gradient with an instance-aware stable step.
        let c_max = problem.capacities().iter().fold(0.0f64, |a, &b| a.max(b));
        let mut grad_state = SolverState::new(&problem);
        let grad = solve(
            &mut Gradient::stable_for(c_max, 1.0, 0.1),
            &problem,
            &mut grad_state,
            2_000_000,
            1e-8,
        );
        prop_assume!(grad.converged);

        for (i, ..) in problem.iter_flows() {
            let (a, b) = (ned_state.rates[i], grad_state.rates[i]);
            prop_assert!(
                (a - b).abs() <= 1e-3 * a.max(b).max(1e-9),
                "flow {i}: NED {a} vs Gradient {b}"
            );
        }
    }
}
