//! Optimizer interface and the run-to-convergence driver.

use crate::problem::NumProblem;

/// Mutable dual/primal state shared by every optimizer: per-link prices and
/// per-flow-slot rates.
///
/// Prices are initialized to 1 "only once, when the system first starts"
/// (§3); across flowlet churn the same state is reused so the optimizer
/// warm-starts from the previous prices.
#[derive(Debug, Clone)]
pub struct SolverState {
    /// Dual variables (link prices), indexed by link.
    pub prices: Vec<f64>,
    /// Primal variables (flow rates), indexed by flow slot.
    pub rates: Vec<f64>,
}

impl SolverState {
    /// Fresh state for `problem`: all prices 1, all rates 0.
    pub fn new(problem: &NumProblem) -> Self {
        Self {
            prices: vec![1.0; problem.link_count()],
            rates: vec![0.0; problem.flow_slots()],
        }
    }

    /// Grows the state to match a problem that gained links or flow slots
    /// (new links start at price 1, new slots at rate 0). Never shrinks, so
    /// stable flow indices remain valid.
    pub fn fit(&mut self, problem: &NumProblem) {
        if self.prices.len() < problem.link_count() {
            self.prices.resize(problem.link_count(), 1.0);
        }
        if self.rates.len() < problem.flow_slots() {
            self.rates.resize(problem.flow_slots(), 0.0);
        }
    }
}

/// A dual-ascent NUM optimizer: one call to [`Optimizer::iterate`] performs
/// one rate update + one price update (one line of Algorithm 1's loop).
pub trait Optimizer {
    /// Human-readable algorithm name (used by benches and reports).
    fn name(&self) -> &'static str;

    /// Performs a single iteration, updating `state.rates` from current
    /// prices and then `state.prices` from the resulting link loads.
    fn iterate(&mut self, problem: &NumProblem, state: &mut SolverState);
}

/// Computes every active flow's rate from current prices: Algorithm 1's
/// rate-update step, `x_s = (U'_s)⁻¹(Σ_{ℓ∈L(s)} p_ℓ)`, with the path price
/// floored at the flow's line-rate kink (see [`crate::Utility::price_floor`]).
///
/// Shared by all optimizers (they differ only in the *price* update).
pub fn update_rates(problem: &NumProblem, prices: &[f64], rates: &mut [f64]) {
    for (i, links, utility, x_max) in problem.iter_flows() {
        let lambda: f64 = links.iter().map(|l| prices[l.index()]).sum();
        let lambda = lambda.max(utility.price_floor(x_max));
        rates[i] = utility.demand(lambda);
    }
}

/// KKT residual of the current allocation: the worst, capacity-relative
/// violation of complementary slackness over all *loaded* links —
/// `|G_ℓ|/c_ℓ` where the link is priced, `max(0, G_ℓ)/c_ℓ` where free.
/// Links carrying none of this instance's flows are skipped: their price
/// cannot affect the primal allocation. `G_ℓ` includes the problem's
/// exogenous background load ([`NumProblem::background_loads`]), matching
/// the optimizers' price updates, so a shard's subproblem converges when
/// *total* load meets capacity on its shared links.
pub fn kkt_residual(problem: &NumProblem, state: &SolverState) -> f64 {
    const PRICED: f64 = 1e-9;
    let loads = problem.link_loads(&state.rates);
    let background = problem.background_loads();
    let mut worst = 0.0f64;
    for (l, (&load, &c)) in loads.iter().zip(problem.capacities()).enumerate() {
        if load == 0.0 {
            continue;
        }
        let g = load + background.get(l).copied().unwrap_or(0.0) - c;
        let viol = if state.prices[l] > PRICED {
            g.abs()
        } else {
            g.max(0.0)
        };
        worst = worst.max(viol / c);
    }
    worst
}

/// Outcome of [`solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceReport {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Final KKT residual (see [`kkt_residual`]).
    pub residual: f64,
}

/// Runs `opt` until the KKT residual drops below `tol` or `max_iters` is
/// reached. The residual is checked every iteration, so the report's
/// iteration count is exactly how many price updates were needed — the
/// quantity the paper's convergence claims are about.
///
/// Because one iteration updates rates *from the previous prices* and then
/// updates prices (Algorithm 1's ordering), the driver re-derives rates
/// from the just-updated prices before measuring the residual; otherwise a
/// transient price overshoot could masquerade as a fixed point. On return,
/// `state.rates` is therefore always consistent with `state.prices`.
pub fn solve(
    opt: &mut dyn Optimizer,
    problem: &NumProblem,
    state: &mut SolverState,
    max_iters: usize,
    tol: f64,
) -> ConvergenceReport {
    state.fit(problem);
    let mut residual = kkt_residual(problem, state);
    for i in 0..max_iters {
        opt.iterate(problem, state);
        update_rates(problem, &state.prices, &mut state.rates);
        residual = kkt_residual(problem, state);
        if residual < tol {
            return ConvergenceReport {
                iterations: i + 1,
                converged: true,
                residual,
            };
        }
    }
    ConvergenceReport {
        iterations: max_iters,
        converged: false,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Utility;
    use flowtune_topo::LinkId;

    #[test]
    fn state_fit_grows_monotonically() {
        let mut p = NumProblem::new(vec![10.0]);
        let mut s = SolverState::new(&p);
        assert_eq!(s.prices, vec![1.0]);
        assert_eq!(s.rates.len(), 0);
        p.add_flow(vec![LinkId(0)], Utility::log(1.0));
        s.fit(&p);
        assert_eq!(s.rates.len(), 1);
        // fit never shrinks
        let before = s.rates.len();
        s.fit(&NumProblem::new(vec![10.0]));
        assert_eq!(s.rates.len(), before);
    }

    #[test]
    fn update_rates_caps_at_bottleneck() {
        let mut p = NumProblem::new(vec![10.0, 4.0]);
        p.add_flow(vec![LinkId(0), LinkId(1)], Utility::log(1.0));
        let mut rates = vec![0.0];
        // Zero prices: without the floor the demand would be infinite.
        update_rates(&p, &[0.0, 0.0], &mut rates);
        assert_eq!(rates, vec![4.0]);
        // High prices: plain demand.
        update_rates(&p, &[1.0, 1.0], &mut rates);
        assert!((rates[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kkt_residual_flags_overload_and_slackness() {
        let mut p = NumProblem::new(vec![10.0]);
        let f = p.add_flow(vec![LinkId(0)], Utility::log(1.0));
        let mut s = SolverState::new(&p);
        s.fit(&p);
        // Priced link, exactly at capacity: residual 0.
        s.prices[0] = 0.1;
        s.rates[f] = 10.0;
        assert!(kkt_residual(&p, &s) < 1e-12);
        // Priced link, overloaded by 50%.
        s.rates[f] = 15.0;
        assert!((kkt_residual(&p, &s) - 0.5).abs() < 1e-12);
        // Free link, underloaded: no violation.
        s.prices[0] = 0.0;
        s.rates[f] = 3.0;
        assert!(kkt_residual(&p, &s) < 1e-12);
    }
}
