//! Newton-Exact-Diagonal (NED), Algorithm 1 of the paper.
//!
//! NED's key observation: in a datacenter, the allocator can compute
//! *exactly* how the flows crossing a link will react to a change in that
//! link's price — the diagonal of the dual Hessian,
//! `H_ℓℓ = Σ_{s∈S(ℓ)} ∂x_s/∂p_ℓ` — because it knows every flow's utility
//! function. No network measurement is needed (unlike the Newton-like
//! method) and no full Hessian inversion (unlike Newton's method):
//!
//! * rate update: `x_s = (U'_s)⁻¹(Σ_{ℓ∈L(s)} p_ℓ)`
//! * price update: `p_ℓ ← max(0, p_ℓ − γ·H_ℓℓ⁻¹·G_ℓ)` where
//!   `G_ℓ = Σ_{s∈S(ℓ)} x_s − c_ℓ` is the link's over-allocation.
//!
//! [`NedRt`] is the real-time variant benchmarked in §6.6 ("NED-RT ...
//! single-point floating point operations and some numeric approximations
//! for speed"): `f32` arithmetic with a bit-trick reciprocal refined by two
//! Newton steps.

use crate::problem::NumProblem;
use crate::solver::{Optimizer, SolverState};
use crate::utility::Utility;

/// The Newton-Exact-Diagonal optimizer (double precision reference).
#[derive(Debug, Clone)]
pub struct Ned {
    gamma: f64,
    loads: Vec<f64>,
    hdiag: Vec<f64>,
}

impl Ned {
    /// Creates NED with step size `γ`. The paper uses γ = 1 as the nominal
    /// value (Algorithm 1) and γ = 0.4 in the network experiments, noting
    /// similar performance for γ ∈ [0.2, 1.5].
    ///
    /// # Panics
    /// Panics unless `0 < γ` and finite.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        Self {
            gamma,
            loads: Vec::new(),
            hdiag: Vec::new(),
        }
    }

    /// The step size γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl Default for Ned {
    /// γ = 1, the value Algorithm 1 suggests.
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl Optimizer for Ned {
    fn name(&self) -> &'static str {
        "NED"
    }

    fn iterate(&mut self, problem: &NumProblem, state: &mut SolverState) {
        state.fit(problem);
        let n_links = problem.link_count();
        self.loads.clear();
        self.loads.resize(n_links, 0.0);
        self.hdiag.clear();
        self.hdiag.resize(n_links, 0.0);

        // Rate update (eq. 3) + accumulation of G and the exact diagonal.
        for (i, links, utility, x_max) in problem.iter_flows() {
            let lambda: f64 = links.iter().map(|l| state.prices[l.index()]).sum();
            let lambda = lambda.max(utility.price_floor(x_max));
            let x = utility.demand(lambda);
            let dx = utility.demand_derivative(lambda);
            state.rates[i] = x;
            for l in links {
                self.loads[l.index()] += x;
                self.hdiag[l.index()] += dx;
            }
        }

        // Price update (eq. 4). Exogenous background load (other shards'
        // flows) joins the over-allocation term G, and their exported
        // Hessian diagonal joins H — without the latter, dividing the
        // *global* gradient by only the *local* diagonal scales the
        // Newton step by the shard count and destabilizes γ.
        let capacities = problem.capacities();
        let background = problem.background_loads();
        let background_h = problem.background_hessians();
        // Indexing four parallel arrays by `l`; a zip chain would bury
        // the equation.
        #[allow(clippy::needless_range_loop)]
        for l in 0..n_links {
            let h = self.hdiag[l];
            if h < 0.0 {
                let bg = background.get(l).copied().unwrap_or(0.0);
                let h = h + background_h.get(l).copied().unwrap_or(0.0);
                let g = self.loads[l] + bg - capacities[l];
                state.prices[l] = (state.prices[l] - self.gamma * g / h).max(0.0);
            } else {
                // No flow crosses this link, so its price carries no
                // information; decay it so a later flowlet doesn't start
                // from a stale, over-priced dual.
                state.prices[l] *= 0.5;
            }
        }
    }
}

/// Fast reciprocal for positive normal `f32`s: initial bit-trick estimate
/// (max ~10% error) refined by two Newton–Raphson steps to ~1e-5 relative
/// error. This is the "numeric approximation" of the RT implementations.
#[inline]
pub fn fast_recip(x: f32) -> f32 {
    debug_assert!(x > 0.0 && x.is_finite());
    let mut y = f32::from_bits(0x7ef3_11c3u32.wrapping_sub(x.to_bits()));
    y *= 2.0 - x * y;
    y *= 2.0 - x * y;
    y
}

/// Real-time NED: identical structure to [`Ned`] but single-precision
/// state and [`fast_recip`] in place of division for log utilities.
/// Trades ≤ ~1e-4 relative rate error for speed; Figure 12 shows its
/// over-allocation behaviour tracks double-precision NED.
#[derive(Debug, Clone)]
pub struct NedRt {
    gamma: f32,
    loads: Vec<f32>,
    hdiag: Vec<f32>,
}

impl NedRt {
    /// Creates NED-RT with step size `γ` (see [`Ned::new`]).
    ///
    /// # Panics
    /// Panics unless `0 < γ` and finite.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        Self {
            gamma,
            loads: Vec::new(),
            hdiag: Vec::new(),
        }
    }

    /// Single-precision demand: `w/λ` for log via [`fast_recip`], `powf`
    /// fallback for α-fair. Returns `(x, ∂x/∂λ)`.
    #[inline]
    fn demand_f32(utility: Utility, lambda: f32) -> (f32, f32) {
        match utility {
            Utility::Log { weight } => {
                let r = fast_recip(lambda);
                let x = weight as f32 * r;
                (x, -x * r)
            }
            Utility::AlphaFair { weight, alpha } => {
                let (w, a) = (weight as f32, alpha as f32);
                let x = (lambda / w).powf(-1.0 / a);
                let dx = -(1.0 / a) * (lambda / w).powf(-1.0 / a - 1.0) / w;
                (x, dx)
            }
        }
    }
}

impl Default for NedRt {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl Optimizer for NedRt {
    fn name(&self) -> &'static str {
        "NED-RT"
    }

    fn iterate(&mut self, problem: &NumProblem, state: &mut SolverState) {
        state.fit(problem);
        let n_links = problem.link_count();
        self.loads.clear();
        self.loads.resize(n_links, 0.0);
        self.hdiag.clear();
        self.hdiag.resize(n_links, 0.0);

        for (i, links, utility, x_max) in problem.iter_flows() {
            let lambda: f32 = links.iter().map(|l| state.prices[l.index()] as f32).sum();
            let lambda = lambda.max(utility.price_floor(x_max) as f32);
            let (x, dx) = Self::demand_f32(utility, lambda);
            state.rates[i] = x as f64;
            for l in links {
                self.loads[l.index()] += x;
                self.hdiag[l.index()] += dx;
            }
        }

        let capacities = problem.capacities();
        let background = problem.background_loads();
        let background_h = problem.background_hessians();
        // Same four-array price update as `Ned`, single-precision.
        #[allow(clippy::needless_range_loop)]
        for l in 0..n_links {
            let h = self.hdiag[l];
            if h < 0.0 {
                let bg = background.get(l).copied().unwrap_or(0.0) as f32;
                let h = h + background_h.get(l).copied().unwrap_or(0.0) as f32;
                let g = self.loads[l] + bg - capacities[l] as f32;
                // g / h computed as g * (−recip(−h)) to stay division-free.
                let step = self.gamma * g * -fast_recip(-h);
                state.prices[l] = (state.prices[l] - step as f64).max(0.0);
            } else {
                state.prices[l] *= 0.5;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{kkt_residual, solve};
    use flowtune_topo::LinkId;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn fast_recip_accuracy() {
        for &x in &[1e-4f32, 0.03, 0.5, 1.0, 7.0, 123.0, 9.5e4] {
            let err = (fast_recip(x) - 1.0 / x).abs() * x;
            assert!(err < 2e-5, "x={x} rel err={err}");
        }
    }

    #[test]
    fn single_link_equal_shares() {
        // 4 equal flows on a 10 Gbit/s link → 2.5 each; λ* = 4w/c.
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..4 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        let mut s = SolverState::new(&p);
        let report = solve(&mut Ned::default(), &p, &mut s, 200, 1e-9);
        assert!(report.converged, "{report:?}");
        for i in 0..4 {
            assert!((s.rates[i] - 2.5).abs() < 1e-6, "rate {}", s.rates[i]);
        }
        assert!((s.prices[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn single_link_weighted_shares() {
        // Weights 1 and 3 → 2.5 and 7.5 of a 10 G link.
        let mut p = NumProblem::new(vec![10.0]);
        let a = p.add_flow(vec![l(0)], Utility::log(1.0));
        let b = p.add_flow(vec![l(0)], Utility::log(3.0));
        let mut s = SolverState::new(&p);
        assert!(solve(&mut Ned::default(), &p, &mut s, 200, 1e-9).converged);
        assert!((s.rates[a] - 2.5).abs() < 1e-6);
        assert!((s.rates[b] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn parking_lot_proportional_fairness() {
        // Two unit links in series; one long flow over both, one short
        // flow per link. Proportional fairness: long = 1/3, shorts = 2/3.
        let mut p = NumProblem::new(vec![1.0, 1.0]);
        let long = p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
        let s0 = p.add_flow(vec![l(0)], Utility::log(1.0));
        let s1 = p.add_flow(vec![l(1)], Utility::log(1.0));
        let mut s = SolverState::new(&p);
        let r = solve(&mut Ned::default(), &p, &mut s, 500, 1e-9);
        assert!(r.converged, "{r:?}");
        assert!((s.rates[long] - 1.0 / 3.0).abs() < 1e-6);
        assert!((s.rates[s0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((s.rates[s1] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn heterogeneous_capacities_with_cap() {
        // Flow A uses links (10, 4); flow B uses link 0 only.
        // Optimum: B = 6, A = 4 (A pinned by the 4 G bottleneck).
        let mut p = NumProblem::new(vec![10.0, 4.0]);
        let a = p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
        let b = p.add_flow(vec![l(0)], Utility::log(1.0));
        let mut s = SolverState::new(&p);
        let r = solve(&mut Ned::default(), &p, &mut s, 500, 1e-9);
        assert!(r.converged, "{r:?}");
        assert!((s.rates[a] - 4.0).abs() < 1e-5, "a={}", s.rates[a]);
        assert!((s.rates[b] - 6.0).abs() < 1e-5, "b={}", s.rates[b]);
    }

    #[test]
    fn warm_start_beats_cold_start() {
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..8 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        let mut s = SolverState::new(&p);
        solve(&mut Ned::default(), &p, &mut s, 500, 1e-9);

        // One flow leaves; re-converge warm vs cold.
        p.remove_flow(0);
        let mut warm = s.clone();
        let warm_iters = solve(&mut Ned::default(), &p, &mut warm, 500, 1e-9).iterations;
        let mut cold = SolverState::new(&p);
        let cold_iters = solve(&mut Ned::default(), &p, &mut cold, 500, 1e-9).iterations;
        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} vs cold {cold_iters}"
        );
        assert!(warm_iters <= 10, "churn should re-converge fast");
    }

    #[test]
    fn gamma_range_from_paper_converges_on_single_bottleneck() {
        // §6.2: "for NED parameter γ in the range [0.2, 1.5], the network
        // exhibits similar performance". For single-bottleneck coupling
        // the update map's local contraction factor is |1 − γ|, so the
        // whole published range is stable.
        for &gamma in &[0.2, 0.4, 1.0, 1.5] {
            let mut p = NumProblem::new(vec![10.0]);
            for _ in 0..4 {
                p.add_flow(vec![l(0)], Utility::log(1.0));
            }
            let mut s = SolverState::new(&p);
            let r = solve(&mut Ned::new(gamma), &p, &mut s, 2000, 1e-8);
            assert!(r.converged, "gamma={gamma}: {r:?}");
            for i in 0..4 {
                assert!((s.rates[i] - 2.5).abs() < 1e-4, "gamma={gamma}");
            }
        }
    }

    #[test]
    fn multi_hop_coupling_caps_stable_gamma() {
        // With k-link paths the diagonal underestimates each flow's total
        // price sensitivity by ~k, so the contraction factor becomes
        // |1 − kγ|: on a symmetric 2-hop ring γ = 0.4 converges but
        // γ = 1.5 oscillates. (The simulations' γ = 0.4 sits safely below
        // the 4-hop limit.)
        let ring = || {
            let mut p = NumProblem::new(vec![10.0, 10.0, 10.0]);
            p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
            p.add_flow(vec![l(1), l(2)], Utility::log(1.0));
            p.add_flow(vec![l(2), l(0)], Utility::log(1.0));
            p
        };
        let p = ring();
        let mut s = SolverState::new(&p);
        let r = solve(&mut Ned::new(0.4), &p, &mut s, 2000, 1e-8);
        assert!(r.converged, "{r:?}");
        for i in 0..3 {
            assert!((s.rates[i] - 5.0).abs() < 1e-4);
        }
        let mut s = SolverState::new(&p);
        let r = solve(&mut Ned::new(1.5), &p, &mut s, 2000, 1e-8);
        assert!(!r.converged, "γ=1.5 should oscillate on 2-hop paths");
    }

    #[test]
    fn background_load_shrinks_own_share() {
        // One 10 G link carrying 2 own flows plus 5 G of exogenous
        // (other-shard) load: NED must price the link for the total and
        // converge the own flows to equal shares of the remaining 5 G.
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..2 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        p.set_background_loads(&[5.0]);
        let mut s = SolverState::new(&p);
        let r = solve(&mut Ned::new(0.4), &p, &mut s, 2000, 1e-8);
        assert!(r.converged, "{r:?}");
        for i in 0..2 {
            assert!((s.rates[i] - 2.5).abs() < 1e-5, "rate {}", s.rates[i]);
        }
        // Clearing the background restores the full link.
        p.set_background_loads(&[]);
        let r = solve(&mut Ned::new(0.4), &p, &mut s, 2000, 1e-8);
        assert!(r.converged, "{r:?}");
        for i in 0..2 {
            assert!((s.rates[i] - 5.0).abs() < 1e-5, "rate {}", s.rates[i]);
        }
    }

    #[test]
    fn background_hessian_tempers_the_newton_step() {
        // The background Hessian widens |H| so the price step shrinks —
        // the damping a shard needs when the background flows are *also*
        // re-optimizing against the shared price (in this static
        // instance it just slows convergence, which is the observable).
        // 2 own flows + 7.5 G background on a 10 G link; background
        // flows' exported diagonal −9.375 (6 flows at x = 1.25, w = 1).
        let build = |with_h: bool| {
            let mut p = NumProblem::new(vec![10.0]);
            for _ in 0..2 {
                p.add_flow(vec![l(0)], Utility::log(1.0));
            }
            p.set_background_loads(&[7.5]);
            if with_h {
                p.set_background_hessians(&[-9.375]);
            }
            p
        };
        // One iteration from the same state: the tempered step moves the
        // price strictly less.
        let mut fast = SolverState::new(&build(false));
        Ned::new(0.4).iterate(&build(false), &mut fast);
        let mut damped = SolverState::new(&build(true));
        Ned::new(0.4).iterate(&build(true), &mut damped);
        let move_fast = (fast.prices[0] - 1.0).abs();
        let move_damped = (damped.prices[0] - 1.0).abs();
        assert!(
            move_damped < move_fast,
            "background H must damp the step: {move_damped} vs {move_fast}"
        );
        // Both still converge to the same fixed point: own flows split
        // the residual 2.5 G equally.
        let p = build(true);
        let mut s = SolverState::new(&p);
        let r = solve(&mut Ned::new(0.4), &p, &mut s, 5000, 1e-8);
        assert!(r.converged, "{r:?}");
        for i in 0..2 {
            assert!((s.rates[i] - 1.25).abs() < 1e-5, "rate {}", s.rates[i]);
        }
    }

    #[test]
    fn prices_stay_nonnegative_and_empty_links_decay() {
        let mut p = NumProblem::new(vec![10.0, 10.0]);
        p.add_flow(vec![l(0)], Utility::log(1.0));
        let mut s = SolverState::new(&p);
        let mut ned = Ned::default();
        for _ in 0..50 {
            ned.iterate(&p, &mut s);
            assert!(s.prices.iter().all(|&x| x >= 0.0));
        }
        assert!(s.prices[1] < 1e-9, "unused link price should decay");
    }

    #[test]
    fn ned_rt_tracks_ned() {
        let mut p = NumProblem::new(vec![10.0, 25.0, 40.0]);
        p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
        p.add_flow(vec![l(1), l(2)], Utility::log(2.0));
        p.add_flow(vec![l(0)], Utility::log(1.0));
        p.add_flow(vec![l(2)], Utility::log(0.5));

        let mut s64 = SolverState::new(&p);
        solve(&mut Ned::default(), &p, &mut s64, 1000, 1e-10);
        let mut s32 = SolverState::new(&p);
        let r = solve(&mut NedRt::default(), &p, &mut s32, 1000, 1e-4);
        assert!(r.converged, "{r:?}");
        for i in 0..4 {
            let rel = (s64.rates[i] - s32.rates[i]).abs() / s64.rates[i];
            assert!(rel < 1e-2, "flow {i}: {} vs {}", s64.rates[i], s32.rates[i]);
        }
    }

    #[test]
    fn converges_within_a_few_iterations() {
        // The headline claim: convergence "within a few packets rather
        // than over several RTTs". On a fresh single-bottleneck instance
        // NED needs only a handful of iterations.
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..2 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        let mut s = SolverState::new(&p);
        let r = solve(&mut Ned::default(), &p, &mut s, 100, 1e-6);
        assert!(r.converged && r.iterations <= 25, "{r:?}");
    }

    #[test]
    fn residual_decreases_to_zero() {
        let mut p = NumProblem::new(vec![10.0, 10.0]);
        p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
        p.add_flow(vec![l(0)], Utility::log(1.0));
        let mut s = SolverState::new(&p);
        let mut ned = Ned::default();
        for _ in 0..200 {
            ned.iterate(&p, &mut s);
        }
        assert!(kkt_residual(&p, &s) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn bad_gamma_rejected() {
        let _ = Ned::new(0.0);
    }
}
