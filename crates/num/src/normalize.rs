//! Rate normalization (§4): turning the optimizer's (possibly momentarily
//! over-allocating) rates into rates the network can actually carry.
//!
//! While prices re-converge after flowlet churn, "there are momentary
//! spikes in throughput on some links". Instead of letting those become
//! queues (the REM approach), Flowtune scales the allocated rates down to
//! link capacities before sending them to endpoints:
//!
//! * **U-NORM** divides *every* flow by the worst link's utilization ratio
//!   — simple, preserves relative fairness, but one hot link throttles the
//!   whole network.
//! * **F-NORM** divides each flow by the worst ratio *on its own path* —
//!   per-flow work, loses exact fairness, but achieves >99.7% of optimal
//!   throughput (§6.6, Figure 13).
//!
//! Both guarantee feasibility: on any link ℓ,
//! `Σ_s x_s/ max_{m∈L(s)} r_m ≤ Σ_s x_s / r_ℓ = c_ℓ` (property-tested in
//! `tests/properties.rs`).

use crate::problem::NumProblem;

/// Which normalizer to run after each optimizer iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormKind {
    /// No normalization (Figure 12's configuration).
    None,
    /// Uniform normalization (§4.1).
    UNorm,
    /// Per-flow normalization (§4.2) — Flowtune's choice.
    #[default]
    FNorm,
}

/// Per-link utilization ratios `r_ℓ = (Σ_{s∈S(ℓ)} x_s + b_ℓ) / c_ℓ`,
/// where `b_ℓ` is the problem's exogenous background load
/// ([`NumProblem::background_loads`]; zero when unset). Including the
/// background keeps normalization capacity-safe when this instance is one
/// shard of a partitioned allocator: a shared link's ratio reflects the
/// whole network's load, not just this shard's.
pub fn utilization(problem: &NumProblem, rates: &[f64]) -> Vec<f64> {
    let mut loads = problem.link_loads(rates);
    add_background(problem, &mut loads);
    loads
        .iter()
        .zip(problem.capacities())
        .map(|(&load, &c)| load / c)
        .collect()
}

/// Element-wise add of the problem's background load (no-op when unset).
fn add_background(problem: &NumProblem, loads: &mut [f64]) {
    let bg = problem.background_loads();
    if !bg.is_empty() {
        for (l, b) in loads.iter_mut().zip(bg) {
            *l += b;
        }
    }
}

/// U-NORM (§4.1): scales all flows by `r* = max_ℓ r_ℓ` so the most
/// congested link runs exactly at capacity. Only links that carry traffic
/// participate in the max (the "straightforward to avoid division by zero"
/// caveat); if nothing is allocated the rates are returned unchanged.
///
/// Background load counts toward `r_ℓ` (via [`utilization`]): U-NORM's
/// ratio is deliberately *network-wide*, so in a partitioned allocator a
/// link hot with other shards' traffic throttles this shard's flows too —
/// every shard then divides by the same global `r*`, which is exactly
/// what an unpartitioned U-NORM would do (and §6.6's argument for
/// preferring F-NORM, which maxes only over each flow's own path).
pub fn u_norm(problem: &NumProblem, rates: &[f64]) -> Vec<f64> {
    let r_star = utilization(problem, rates)
        .into_iter()
        .fold(0.0f64, f64::max);
    if r_star == 0.0 {
        return rates.to_vec();
    }
    rates.iter().map(|&x| x / r_star).collect()
}

/// F-NORM (§4.2): scales each flow by the utilization ratio of its most
/// congested link, `x̄_s = x_s / max_{ℓ∈L(s)} r_ℓ`. Flows with zero rate
/// stay at zero.
pub fn f_norm(problem: &NumProblem, rates: &[f64]) -> Vec<f64> {
    let (mut ratios, mut out) = (Vec::new(), Vec::new());
    f_norm_into(problem, rates, &mut ratios, &mut out);
    out
}

/// [`f_norm`] into caller-provided buffers (`ratios` is scratch), so an
/// engine normalizing on every iteration of a 10 µs tick allocates
/// nothing after warm-up.
pub fn f_norm_into(problem: &NumProblem, rates: &[f64], ratios: &mut Vec<f64>, out: &mut Vec<f64>) {
    problem.link_loads_into(rates, ratios);
    add_background(problem, ratios);
    for (r, &c) in ratios.iter_mut().zip(problem.capacities()) {
        *r /= c;
    }
    out.clear();
    out.extend_from_slice(rates);
    for (i, links, ..) in problem.iter_flows() {
        if rates[i] == 0.0 {
            continue;
        }
        let worst = links
            .iter()
            .map(|l| ratios[l.index()])
            .fold(0.0f64, f64::max);
        debug_assert!(worst > 0.0, "flow with non-zero rate has zero-load links");
        out[i] = rates[i] / worst;
    }
}

/// Applies the selected normalizer.
pub fn apply(kind: NormKind, problem: &NumProblem, rates: &[f64]) -> Vec<f64> {
    match kind {
        NormKind::None => rates.to_vec(),
        NormKind::UNorm => u_norm(problem, rates),
        NormKind::FNorm => f_norm(problem, rates),
    }
}

/// Total network throughput `Σ_s x_s` over active flows — the numerator of
/// Figure 13's "fraction of optimal".
pub fn total_throughput(problem: &NumProblem, rates: &[f64]) -> f64 {
    problem.iter_flows().map(|(i, ..)| rates[i]).sum()
}

/// The proportional-fairness score `Σ_s log₂(x_s)` used by Figure 11.
/// Zero-rated flows contribute `-inf`, which is the honest score for a
/// starved flow.
pub fn fairness_score(problem: &NumProblem, rates: &[f64]) -> f64 {
    problem.iter_flows().map(|(i, ..)| rates[i].log2()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Utility;
    use flowtune_topo::LinkId;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    /// Two links (c=10, c=5); flow a on link0, flow b on both, flow c on
    /// link1. Rates chosen to over-allocate link1 (r=2.0) but not link0
    /// (r=0.7).
    fn fixture() -> (NumProblem, Vec<f64>) {
        let mut p = NumProblem::new(vec![10.0, 5.0]);
        p.add_flow(vec![l(0)], Utility::log(1.0)); // a: 3.0
        p.add_flow(vec![l(0), l(1)], Utility::log(1.0)); // b: 4.0
        p.add_flow(vec![l(1)], Utility::log(1.0)); // c: 6.0
        (p, vec![3.0, 4.0, 6.0])
    }

    #[test]
    fn utilization_ratios() {
        let (p, rates) = fixture();
        let r = utilization(&p, &rates);
        assert!((r[0] - 0.7).abs() < 1e-12);
        assert!((r[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn u_norm_scales_everything_by_worst_link() {
        let (p, rates) = fixture();
        let n = u_norm(&p, &rates);
        assert_eq!(n, vec![1.5, 2.0, 3.0]);
        // Relative sizes preserved (the fairness argument of §4.1).
        assert!((n[1] / n[0] - rates[1] / rates[0]).abs() < 1e-12);
    }

    #[test]
    fn f_norm_scales_per_flow() {
        let (p, rates) = fixture();
        let n = f_norm(&p, &rates);
        // a only crosses the uncongested link0 → scaled UP by 1/0.7;
        // b and c cross link1 (r = 2) → halved.
        assert!((n[0] - 3.0 / 0.7).abs() < 1e-12);
        assert_eq!(n[1], 2.0);
        assert_eq!(n[2], 3.0);
    }

    #[test]
    fn both_norms_are_capacity_safe() {
        let (p, rates) = fixture();
        for kind in [NormKind::UNorm, NormKind::FNorm] {
            let n = apply(kind, &p, &rates);
            for (load, &c) in p.link_loads(&n).iter().zip(p.capacities()) {
                assert!(*load <= c * (1.0 + 1e-12), "{kind:?}: {load} > {c}");
            }
        }
    }

    #[test]
    fn f_norm_throughput_dominates_u_norm() {
        // §6.6's point: "U-NORM scales flow throughput too aggressively".
        let (p, rates) = fixture();
        let tu = total_throughput(&p, &u_norm(&p, &rates));
        let tf = total_throughput(&p, &f_norm(&p, &rates));
        assert!(tf > tu, "f-norm {tf} vs u-norm {tu}");
    }

    #[test]
    fn zero_rates_stay_zero() {
        let mut p = NumProblem::new(vec![10.0]);
        p.add_flow(vec![l(0)], Utility::log(1.0));
        p.add_flow(vec![l(0)], Utility::log(1.0));
        let rates = vec![0.0, 8.0];
        assert_eq!(f_norm(&p, &rates)[0], 0.0);
        assert_eq!(u_norm(&p, &rates)[0], 0.0);
    }

    #[test]
    fn background_load_counts_toward_ratios() {
        let mut p = NumProblem::new(vec![10.0]);
        p.add_flow(vec![l(0)], Utility::log(1.0));
        let rates = vec![10.0];
        // Alone, the flow keeps its full rate...
        assert_eq!(f_norm(&p, &rates), vec![10.0]);
        // ...but with 10 G of other-shard load the link is 2× subscribed,
        // so F-NORM halves the flow and utilization reports the total.
        p.set_background_loads(&[10.0]);
        assert_eq!(utilization(&p, &rates), vec![2.0]);
        assert_eq!(f_norm(&p, &rates), vec![5.0]);
        assert_eq!(u_norm(&p, &rates), vec![5.0]);
    }

    #[test]
    fn all_zero_allocation_is_identity() {
        let (p, _) = fixture();
        let rates = vec![0.0; 3];
        assert_eq!(u_norm(&p, &rates), rates);
        assert_eq!(f_norm(&p, &rates), rates);
    }

    #[test]
    fn none_is_identity() {
        let (p, rates) = fixture();
        assert_eq!(apply(NormKind::None, &p, &rates), rates);
    }

    #[test]
    fn fairness_score_matches_hand_computation() {
        let (p, _) = fixture();
        let score = fairness_score(&p, &[2.0, 4.0, 8.0]);
        assert!((score - (1.0 + 2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn starved_flow_gives_minus_infinity_fairness() {
        let (p, _) = fixture();
        assert_eq!(fairness_score(&p, &[0.0, 1.0, 1.0]), f64::NEG_INFINITY);
    }
}
