//! Network Utility Maximization (NUM) solvers for Flowtune.
//!
//! The allocator's job (§3 of the paper) is to pick rates `x_s` maximizing
//! `Σ_s U_s(x_s)` subject to `Σ_{s∈S(ℓ)} x_s ≤ c_ℓ` for every link ℓ. This
//! crate implements the dual (price-based) machinery:
//!
//! * [`Utility`] — strictly concave utility functions (weighted log for
//!   proportional fairness, α-fair as an extension),
//! * [`NumProblem`] — a dynamic flow/link instance supporting online flowlet
//!   arrival and departure,
//! * [`Ned`] — the paper's contribution, **Newton-Exact-Diagonal**
//!   (Algorithm 1), plus the real-time `f32` variant [`NedRt`],
//! * baselines used in §6.6: [`Gradient`] projection (and [`GradientRt`]),
//!   [`Fgm`] (Beck et al.'s fast weighted gradient), and the
//!   measurement-based [`NewtonLike`] method of Athuraliya & Low,
//! * [`normalize`] — U-NORM and F-NORM rate normalization (§4),
//! * [`solver`] — a driver that runs any optimizer to convergence and
//!   reports residuals.
//!
//! # Units
//!
//! The solvers are unit-agnostic, but dual methods warm-start from prices
//! of 1 (§3: "link prices are all set to 1"), which converges fastest when
//! capacities are O(1)–O(100). Throughout this repository capacities and
//! rates are expressed in **Gbit/s** inside NUM instances; the system layer
//! converts to bits/s at the boundary.

#![forbid(unsafe_code)]

pub mod fgm;
pub mod gradient;
pub mod ned;
pub mod newton_like;
pub mod normalize;
pub mod problem;
pub mod solver;
pub mod utility;

pub use fgm::Fgm;
pub use gradient::{Gradient, GradientRt};
pub use ned::{Ned, NedRt};
pub use newton_like::NewtonLike;
pub use problem::{FlowIdx, NumProblem};
pub use solver::{solve, ConvergenceReport, Optimizer, SolverState};
pub use utility::Utility;
