//! Gradient projection (Low & Lapsley), the classic first-order dual
//! method: `p_ℓ ← max(0, p_ℓ + γ·G_ℓ)`.
//!
//! "Gradient's shortcoming is that it doesn't know how sensitive flows are
//! to a price change, so it must update prices very gently (i.e., γ must be
//! small)" (§3) — γ here is an absolute step in price-per-unit-rate, so a
//! safe value depends on the instance scale, unlike NED's dimensionless γ.

use crate::ned::fast_recip;
use crate::problem::NumProblem;
use crate::solver::{Optimizer, SolverState};
use crate::utility::Utility;

/// Gradient projection with a fixed step size (double precision).
#[derive(Debug, Clone)]
pub struct Gradient {
    gamma: f64,
    loads: Vec<f64>,
}

impl Gradient {
    /// Creates gradient projection with step `γ`.
    ///
    /// # Panics
    /// Panics unless `0 < γ` and finite.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        Self {
            gamma,
            loads: Vec::new(),
        }
    }

    /// A step size that is stable for instances with capacities around
    /// `c_typ` and flow counts per link around `n_typ`: the dual gradient's
    /// curvature near the optimum is `≈ Σ_s w/λ² ≈ c²/(n·w)`, so we take a
    /// conservative fraction of `2/L`.
    pub fn stable_for(c_typ: f64, n_typ: f64, w_typ: f64) -> Self {
        Self::new(0.5 * n_typ * w_typ / (c_typ * c_typ))
    }
}

impl Default for Gradient {
    /// Step suitable for ~10 Gbit/s-scale instances with unit weights.
    fn default() -> Self {
        Self::stable_for(10.0, 2.0, 1.0)
    }
}

impl Optimizer for Gradient {
    fn name(&self) -> &'static str {
        "Gradient"
    }

    fn iterate(&mut self, problem: &NumProblem, state: &mut SolverState) {
        state.fit(problem);
        self.loads.clear();
        self.loads.resize(problem.link_count(), 0.0);
        for (i, links, utility, x_max) in problem.iter_flows() {
            let lambda: f64 = links.iter().map(|l| state.prices[l.index()]).sum();
            let lambda = lambda.max(utility.price_floor(x_max));
            let x = utility.demand(lambda);
            state.rates[i] = x;
            for l in links {
                self.loads[l.index()] += x;
            }
        }
        // Background load (a partitioned allocator's other shards) joins
        // the gradient but not the carries-own-traffic test: a link this
        // instance's flows don't cross needs no price signal from it.
        // `background_hessians` is deliberately ignored — a first-order
        // step has no sensitivity term to fold it into, which is also why
        // sharding never rescales this method's effective γ.
        let background = problem.background_loads();
        for (l, &c) in problem.capacities().iter().enumerate() {
            if self.loads[l] > 0.0 {
                let bg = background.get(l).copied().unwrap_or(0.0);
                let g = self.loads[l] + bg - c;
                state.prices[l] = (state.prices[l] + self.gamma * g).max(0.0);
            } else {
                state.prices[l] *= 0.5;
            }
        }
    }
}

/// Real-time gradient projection: `f32` arithmetic and [`fast_recip`] for
/// log-utility demands (the Gradient-RT series of Figure 12).
#[derive(Debug, Clone)]
pub struct GradientRt {
    gamma: f32,
    loads: Vec<f32>,
}

impl GradientRt {
    /// Creates gradient-RT with step `γ`.
    ///
    /// # Panics
    /// Panics unless `0 < γ` and finite.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        Self {
            gamma,
            loads: Vec::new(),
        }
    }
}

impl Default for GradientRt {
    fn default() -> Self {
        Self::new(Gradient::default().gamma as f32)
    }
}

impl Optimizer for GradientRt {
    fn name(&self) -> &'static str {
        "Gradient-RT"
    }

    fn iterate(&mut self, problem: &NumProblem, state: &mut SolverState) {
        state.fit(problem);
        self.loads.clear();
        self.loads.resize(problem.link_count(), 0.0);
        for (i, links, utility, x_max) in problem.iter_flows() {
            let lambda: f32 = links.iter().map(|l| state.prices[l.index()] as f32).sum();
            let lambda = lambda.max(utility.price_floor(x_max) as f32);
            let x = match utility {
                Utility::Log { weight } => weight as f32 * fast_recip(lambda),
                u => u.demand(lambda as f64) as f32,
            };
            state.rates[i] = x as f64;
            for l in links {
                self.loads[l.index()] += x;
            }
        }
        let background = problem.background_loads();
        for (l, &c) in problem.capacities().iter().enumerate() {
            if self.loads[l] > 0.0 {
                let bg = background.get(l).copied().unwrap_or(0.0) as f32;
                let g = self.loads[l] + bg - c as f32;
                state.prices[l] = (state.prices[l] + (self.gamma * g) as f64).max(0.0);
            } else {
                state.prices[l] *= 0.5;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use flowtune_topo::LinkId;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn gradient_reaches_the_same_optimum_as_ned() {
        let mut p = NumProblem::new(vec![10.0, 10.0]);
        let a = p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
        let b = p.add_flow(vec![l(0)], Utility::log(1.0));
        let c = p.add_flow(vec![l(1)], Utility::log(1.0));
        let mut s = SolverState::new(&p);
        let r = solve(&mut Gradient::default(), &p, &mut s, 50_000, 1e-7);
        assert!(r.converged, "{r:?}");
        assert!((s.rates[a] - 10.0 / 3.0).abs() < 1e-3);
        assert!((s.rates[b] - 20.0 / 3.0).abs() < 1e-3);
        assert!((s.rates[c] - 20.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn gradient_is_slower_than_ned() {
        // §3's whole argument: first-order updates need far more
        // iterations than NED's diagonally-scaled Newton step.
        let build = || {
            let mut p = NumProblem::new(vec![10.0]);
            for _ in 0..5 {
                p.add_flow(vec![l(0)], Utility::log(1.0));
            }
            p
        };
        let p = build();
        let mut s1 = SolverState::new(&p);
        let ned = solve(&mut crate::Ned::default(), &p, &mut s1, 100_000, 1e-6);
        let mut s2 = SolverState::new(&p);
        let grad = solve(&mut Gradient::default(), &p, &mut s2, 100_000, 1e-6);
        assert!(ned.converged && grad.converged);
        assert!(
            grad.iterations > 3 * ned.iterations,
            "gradient {} vs ned {}",
            grad.iterations,
            ned.iterations
        );
    }

    #[test]
    fn gradient_rt_tracks_gradient() {
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..4 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        let mut s = SolverState::new(&p);
        let r = solve(&mut GradientRt::default(), &p, &mut s, 100_000, 1e-4);
        assert!(r.converged, "{r:?}");
        for i in 0..4 {
            assert!((s.rates[i] - 2.5).abs() < 0.05, "{}", s.rates[i]);
        }
    }

    #[test]
    fn background_load_shrinks_own_share() {
        // Same subproblem shape a sharded allocator hands its gradient
        // engines: own flows compete with exogenous other-shard load.
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..2 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        p.set_background_loads(&[5.0]);
        let mut s = SolverState::new(&p);
        let r = solve(&mut Gradient::default(), &p, &mut s, 100_000, 1e-6);
        assert!(r.converged, "{r:?}");
        for i in 0..2 {
            assert!((s.rates[i] - 2.5).abs() < 1e-2, "rate {}", s.rates[i]);
        }
    }

    #[test]
    fn oversized_step_oscillates() {
        // Documents the instability the paper warns about: a too-large γ
        // never settles.
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..3 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        let mut s = SolverState::new(&p);
        let r = solve(&mut Gradient::new(7.0), &p, &mut s, 5_000, 1e-6);
        assert!(!r.converged, "{r:?}");
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn bad_gamma_rejected() {
        let _ = Gradient::new(-1.0);
    }
}
