//! FGM — the Fast Weighted Gradient Method of Beck, Nedić, Ozdaglar and
//! Teboulle ("A Gradient Method for Network Resource Allocation Problems",
//! IEEE TCNS 2014), one of Figure 12's baselines.
//!
//! FGM is a Nesterov-accelerated projected gradient on the dual, with the
//! step on each link scaled by a Lipschitz upper bound `L_ℓ` on that
//! link's dual curvature. As the paper notes (§8), FGM "uses a crude upper
//! bound on the convexity of the utility function as a proxy for H_ℓℓ":
//! for `U = w log x` on rates capped at `x_max`, `|∂x/∂λ| = w/λ² ≤
//! x_max²/w`, so `L_ℓ = Σ_{s∈S(ℓ)} x_max_s²/w_s`.
//!
//! The momentum sequence assumes a *static* problem; under flowlet churn
//! the extrapolated prices chase a moving target, which is why §6.6 finds
//! that FGM "does not handle the stream of updates well, and its
//! allocations become unrealistic at even moderate loads". We deliberately
//! do not reset momentum on churn, to reproduce that behaviour; call
//! [`Fgm::reset_momentum`] to study the (better-behaved) restarted variant.

use crate::problem::NumProblem;
use crate::solver::{Optimizer, SolverState};

/// The fast weighted gradient method.
#[derive(Debug, Clone, Default)]
pub struct Fgm {
    /// Extrapolated price sequence `y_k` (empty until first iterate).
    y: Vec<f64>,
    /// Previous projected prices `p_{k−1}`.
    p_prev: Vec<f64>,
    /// Momentum scalar `t_k`.
    t: f64,
    loads: Vec<f64>,
    lipschitz: Vec<f64>,
}

impl Fgm {
    /// Creates FGM (no tunables: steps come from the Lipschitz bounds).
    pub fn new() -> Self {
        Self {
            t: 1.0,
            ..Self::default()
        }
    }

    /// Forgets the momentum history (Nesterov restart). The paper's
    /// experiments run *without* restarts; the ablation benches compare.
    pub fn reset_momentum(&mut self) {
        self.t = 1.0;
        self.y.clear();
        self.p_prev.clear();
    }
}

impl Optimizer for Fgm {
    fn name(&self) -> &'static str {
        "FGM"
    }

    fn iterate(&mut self, problem: &NumProblem, state: &mut SolverState) {
        state.fit(problem);
        let n = problem.link_count();
        if self.t == 0.0 {
            self.t = 1.0;
        }
        if self.y.len() != n {
            self.y = state.prices.clone();
            self.p_prev = state.prices.clone();
        }
        self.loads.clear();
        self.loads.resize(n, 0.0);
        self.lipschitz.clear();
        self.lipschitz.resize(n, 0.0);

        // Demands at the extrapolated prices y_k.
        for (i, links, utility, x_max) in problem.iter_flows() {
            let lambda: f64 = links.iter().map(|l| self.y[l.index()]).sum();
            let lambda = lambda.max(utility.price_floor(x_max));
            let x = utility.demand(lambda);
            state.rates[i] = x;
            let crude = x_max * x_max / utility.weight();
            for l in links {
                self.loads[l.index()] += x;
                self.lipschitz[l.index()] += crude;
            }
        }

        // Projected step from y, then Nesterov extrapolation.
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * self.t * self.t).sqrt());
        let beta = (self.t - 1.0) / t_next;
        for (l, &c) in problem.capacities().iter().enumerate() {
            let p_new = if self.loads[l] > 0.0 {
                let g = self.loads[l] - c;
                (self.y[l] + g / self.lipschitz[l]).max(0.0)
            } else {
                state.prices[l] * 0.5
            };
            self.y[l] = p_new + beta * (p_new - self.p_prev[l]);
            self.p_prev[l] = p_new;
            state.prices[l] = p_new;
        }
        self.t = t_next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use crate::utility::Utility;
    use flowtune_topo::LinkId;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn fgm_converges_on_a_static_instance() {
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..4 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        let mut s = SolverState::new(&p);
        let r = solve(&mut Fgm::new(), &p, &mut s, 200_000, 1e-5);
        assert!(r.converged, "{r:?}");
        for i in 0..4 {
            assert!((s.rates[i] - 2.5).abs() < 1e-2, "{}", s.rates[i]);
        }
    }

    #[test]
    fn fgm_accelerates_over_plain_gradient_far_from_optimum() {
        // Both first-order; the accelerated method should need fewer
        // iterations at equal (conservative) step scaling.
        let build = || {
            let mut p = NumProblem::new(vec![40.0]);
            for _ in 0..8 {
                p.add_flow(vec![l(0)], Utility::log(1.0));
            }
            p
        };
        let p = build();
        let mut s1 = SolverState::new(&p);
        let fgm = solve(&mut Fgm::new(), &p, &mut s1, 500_000, 1e-5);
        // Plain gradient with the same (Lipschitz) step 1/L = w/(n·xmax²).
        let gamma = 1.0 / (8.0 * 40.0 * 40.0);
        let mut s2 = SolverState::new(&p);
        let grad = solve(&mut crate::Gradient::new(gamma), &p, &mut s2, 500_000, 1e-5);
        assert!(fgm.converged && grad.converged, "{fgm:?} {grad:?}");
        assert!(
            fgm.iterations < grad.iterations,
            "fgm {} vs gradient {}",
            fgm.iterations,
            grad.iterations
        );
    }

    #[test]
    fn fgm_lags_rising_load_and_overallocates() {
        // Reproduces §6.6's observation in miniature ("FGM does not handle
        // the stream of updates well"): start both optimizers at their
        // equilibrium, then stream in new flowlets. NED re-prices each
        // event in a couple of iterations; FGM's crude-Lipschitz steps
        // cannot raise prices fast enough, so over-allocation persists and
        // its cumulative total is far larger.
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..2 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        let mut fgm = Fgm::new();
        let mut ned = crate::Ned::new(0.4);
        let mut sf = SolverState::new(&p);
        let mut sn = SolverState::new(&p);
        assert!(solve(&mut fgm, &p, &mut sf, 500_000, 1e-6).converged);
        assert!(solve(&mut ned, &p, &mut sn, 500_000, 1e-6).converged);

        let mut total_fgm = 0.0f64;
        let mut total_ned = 0.0f64;
        for round in 0..120 {
            if round % 2 == 0 {
                p.add_flow(vec![l(0)], Utility::log(1.0));
            }
            sf.fit(&p);
            sn.fit(&p);
            fgm.iterate(&p, &mut sf);
            crate::solver::update_rates(&p, &sf.prices, &mut sf.rates);
            ned.iterate(&p, &mut sn);
            crate::solver::update_rates(&p, &sn.prices, &mut sn.rates);
            total_fgm += p.total_overallocation(&sf.rates);
            total_ned += p.total_overallocation(&sn.rates);
        }
        assert!(
            total_fgm > 2.0 * total_ned,
            "fgm {total_fgm} should overshoot more than ned {total_ned}"
        );
    }

    #[test]
    fn reset_momentum_restarts_cleanly() {
        let mut p = NumProblem::new(vec![10.0]);
        p.add_flow(vec![l(0)], Utility::log(1.0));
        let mut fgm = Fgm::new();
        let mut s = SolverState::new(&p);
        for _ in 0..10 {
            fgm.iterate(&p, &mut s);
        }
        fgm.reset_momentum();
        let r = solve(&mut fgm, &p, &mut s, 100_000, 1e-5);
        assert!(r.converged);
    }
}
