//! The Newton-like method of Athuraliya & Low ("Optimization Flow Control
//! with Newton-like Algorithm", Telecom Systems 2000).
//!
//! Like NED it scales each link's price step by an estimate of the dual
//! curvature `H_ℓℓ`, but — crucially — it *estimates* that value from
//! observed throughput reactions to past price changes instead of
//! computing it from the utility functions: "it uses network measurements
//! to estimate its value. These measurements increase convergence time and
//! have associated error; we have found the algorithm is unstable in
//! several settings" (§8). The finite-difference slope is smoothed with an
//! exponential moving average, mirroring the original algorithm's averaged
//! throughput measurements.

use crate::problem::NumProblem;
use crate::solver::{Optimizer, SolverState};

/// Newton-like dual method with measured curvature.
#[derive(Debug, Clone)]
pub struct NewtonLike {
    gamma: f64,
    /// EWMA smoothing factor for the curvature estimate.
    beta: f64,
    /// Estimated H_ℓℓ (≤ −`H_FLOOR`), per link.
    h_est: Vec<f64>,
    prev_g: Vec<f64>,
    prev_p: Vec<f64>,
    loads: Vec<f64>,
    primed: bool,
}

/// Curvature estimates are clamped to `[-H_CEIL, -H_FLOOR]` so a noisy
/// finite difference cannot produce an explosive or sign-flipped step.
const H_FLOOR: f64 = 1e-6;
const H_CEIL: f64 = 1e12;

impl NewtonLike {
    /// Creates the method with step `γ` and measurement smoothing `β`.
    ///
    /// # Panics
    /// Panics unless `0 < γ` finite and `0 < β ≤ 1`.
    pub fn new(gamma: f64, beta: f64) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Self {
            gamma,
            beta,
            h_est: Vec::new(),
            prev_g: Vec::new(),
            prev_p: Vec::new(),
            loads: Vec::new(),
            primed: false,
        }
    }
}

impl Default for NewtonLike {
    fn default() -> Self {
        Self::new(0.5, 0.3)
    }
}

impl Optimizer for NewtonLike {
    fn name(&self) -> &'static str {
        "Newton-like"
    }

    fn iterate(&mut self, problem: &NumProblem, state: &mut SolverState) {
        state.fit(problem);
        let n = problem.link_count();
        if self.h_est.len() < n {
            self.h_est.resize(n, -1.0);
            self.prev_g.resize(n, 0.0);
            self.prev_p.resize(n, 0.0);
        }
        self.loads.clear();
        self.loads.resize(n, 0.0);

        for (i, links, utility, x_max) in problem.iter_flows() {
            let lambda: f64 = links.iter().map(|l| state.prices[l.index()]).sum();
            let lambda = lambda.max(utility.price_floor(x_max));
            let x = utility.demand(lambda);
            state.rates[i] = x;
            for l in links {
                self.loads[l.index()] += x;
            }
        }

        for (l, &c) in problem.capacities().iter().enumerate() {
            if self.loads[l] == 0.0 {
                state.prices[l] *= 0.5;
                continue;
            }
            let g = self.loads[l] - c;
            if self.primed {
                let dp = state.prices[l] - self.prev_p[l];
                if dp.abs() > 1e-12 {
                    let slope = (g - self.prev_g[l]) / dp;
                    if slope < 0.0 {
                        self.h_est[l] = (1.0 - self.beta) * self.h_est[l] + self.beta * slope;
                    }
                    // Positive slopes are cross-link interference noise —
                    // the measured reaction went the "wrong" way — and are
                    // discarded, as the original algorithm's averaging
                    // effectively does.
                }
            }
            let h = self.h_est[l].clamp(-H_CEIL, -H_FLOOR);
            self.prev_g[l] = g;
            self.prev_p[l] = state.prices[l];
            state.prices[l] = (state.prices[l] - self.gamma * g / h).max(0.0);
        }
        self.primed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use crate::utility::Utility;
    use flowtune_topo::LinkId;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn converges_on_single_link() {
        let mut p = NumProblem::new(vec![10.0]);
        for _ in 0..3 {
            p.add_flow(vec![l(0)], Utility::log(1.0));
        }
        let mut s = SolverState::new(&p);
        let r = solve(&mut NewtonLike::default(), &p, &mut s, 100_000, 1e-5);
        assert!(r.converged, "{r:?}");
        for i in 0..3 {
            assert!((s.rates[i] - 10.0 / 3.0).abs() < 1e-2);
        }
    }

    #[test]
    fn slower_than_ned_due_to_measurement() {
        let build = || {
            let mut p = NumProblem::new(vec![10.0, 10.0]);
            p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
            p.add_flow(vec![l(0)], Utility::log(1.0));
            p.add_flow(vec![l(1)], Utility::log(1.0));
            p
        };
        let p = build();
        let mut s1 = SolverState::new(&p);
        let ned = solve(&mut crate::Ned::default(), &p, &mut s1, 100_000, 1e-6);
        let mut s2 = SolverState::new(&p);
        let nl = solve(&mut NewtonLike::default(), &p, &mut s2, 100_000, 1e-6);
        assert!(ned.converged && nl.converged, "{ned:?} {nl:?}");
        assert!(
            nl.iterations > ned.iterations,
            "newton-like {} vs ned {}",
            nl.iterations,
            ned.iterations
        );
    }

    #[test]
    fn estimates_stay_negative() {
        let mut p = NumProblem::new(vec![10.0]);
        p.add_flow(vec![l(0)], Utility::log(1.0));
        let mut s = SolverState::new(&p);
        let mut opt = NewtonLike::default();
        for _ in 0..100 {
            opt.iterate(&p, &mut s);
            assert!(opt.h_est[0] < 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn bad_beta_rejected() {
        let _ = NewtonLike::new(0.5, 0.0);
    }
}
