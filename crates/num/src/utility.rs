//! Flow utility functions.
//!
//! NED admits "any utility function U_s that is strictly concave,
//! differentiable, and monotonically increasing" (§3). The quantities each
//! algorithm needs are `U'`, its inverse `(U')⁻¹` (the demand function:
//! given a path price, the selfishly optimal rate), and the derivative of
//! the inverse (the flow's price sensitivity, which NED sums into the exact
//! Hessian diagonal).

/// A strictly concave, differentiable, monotonically increasing utility.
///
/// An enum rather than a trait so the optimizer inner loops are free of
/// dynamic dispatch; different flows may still use different variants
/// ("different flows can have different utility functions", §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Utility {
    /// `U(x) = w·log x` — weighted proportional fairness (the paper's
    /// objective; §3: "the logarithmic utility function ... will optimize
    /// weighted proportional fairness").
    Log {
        /// Weight `w > 0`.
        weight: f64,
    },
    /// `U(x) = w·x^(1−α)/(1−α)`, `α > 0`, `α ≠ 1` — the α-fair family
    /// (α→1 recovers `Log`; α=2 approximates minimum potential delay
    /// fairness). An extension beyond the paper's experiments, exercised
    /// by the ablation benches.
    AlphaFair {
        /// Weight `w > 0`.
        weight: f64,
        /// Fairness parameter `α`.
        alpha: f64,
    },
}

impl Utility {
    /// Weighted-log utility with the given weight.
    ///
    /// # Panics
    /// Panics unless `weight > 0` and finite.
    pub fn log(weight: f64) -> Self {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be > 0");
        Utility::Log { weight }
    }

    /// α-fair utility.
    ///
    /// # Panics
    /// Panics unless `weight > 0`, `alpha > 0`, `alpha ≠ 1` (use
    /// [`Utility::log`] for α = 1).
    pub fn alpha_fair(weight: f64, alpha: f64) -> Self {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be > 0");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be > 0");
        assert!(alpha != 1.0, "alpha = 1 is Utility::log");
        Utility::AlphaFair { weight, alpha }
    }

    /// The weight `w`.
    #[inline]
    pub fn weight(&self) -> f64 {
        match *self {
            Utility::Log { weight } | Utility::AlphaFair { weight, .. } => weight,
        }
    }

    /// `U(x)`.
    #[inline]
    pub fn utility(&self, x: f64) -> f64 {
        match *self {
            Utility::Log { weight } => weight * x.ln(),
            Utility::AlphaFair { weight, alpha } => weight * x.powf(1.0 - alpha) / (1.0 - alpha),
        }
    }

    /// Marginal utility `U'(x)`.
    #[inline]
    pub fn marginal(&self, x: f64) -> f64 {
        match *self {
            Utility::Log { weight } => weight / x,
            Utility::AlphaFair { weight, alpha } => weight * x.powf(-alpha),
        }
    }

    /// Demand function `(U')⁻¹(λ)`: the rate a selfish flow picks when its
    /// path price is `λ` (Algorithm 1's rate update, eq. 3).
    #[inline]
    pub fn demand(&self, lambda: f64) -> f64 {
        match *self {
            Utility::Log { weight } => weight / lambda,
            Utility::AlphaFair { weight, alpha } => (lambda / weight).powf(-1.0 / alpha),
        }
    }

    /// Price sensitivity `((U')⁻¹)'(λ) = ∂x/∂λ ≤ 0` — the flow's
    /// contribution to the exact Hessian diagonal (Algorithm 1's
    /// `∂x_s(p)/∂p_ℓ`).
    #[inline]
    pub fn demand_derivative(&self, lambda: f64) -> f64 {
        match *self {
            Utility::Log { weight } => -weight / (lambda * lambda),
            Utility::AlphaFair { weight, alpha } => {
                -(1.0 / alpha) * (lambda / weight).powf(-1.0 / alpha - 1.0) / weight
            }
        }
    }

    /// The path price at which the demand equals `x_max` — the "kink"
    /// price below which a flow is capped by its bottleneck line rate. The
    /// optimizers floor each flow's path price here, which is equivalent to
    /// adding the (redundant) constraint `x_s ≤ x_max` to the program and
    /// keeps the Hessian diagonal strictly negative on loaded links.
    #[inline]
    pub fn price_floor(&self, x_max: f64) -> f64 {
        self.marginal(x_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn log_demand_inverts_marginal() {
        let u = Utility::log(2.5);
        for &x in &[0.01, 1.0, 7.3, 100.0] {
            let lambda = u.marginal(x);
            assert!((u.demand(lambda) - x).abs() < EPS * x);
        }
    }

    #[test]
    fn alpha_fair_demand_inverts_marginal() {
        let u = Utility::alpha_fair(1.5, 2.0);
        for &x in &[0.01, 1.0, 7.3, 100.0] {
            let lambda = u.marginal(x);
            assert!((u.demand(lambda) - x).abs() < 1e-7 * x);
        }
    }

    #[test]
    fn demand_derivative_matches_finite_difference() {
        for u in [Utility::log(1.0), Utility::alpha_fair(2.0, 0.5)] {
            for &lambda in &[0.1, 1.0, 10.0] {
                let h = 1e-6 * lambda;
                let fd = (u.demand(lambda + h) - u.demand(lambda - h)) / (2.0 * h);
                let an = u.demand_derivative(lambda);
                assert!(
                    (fd - an).abs() < 1e-4 * an.abs(),
                    "{u:?} λ={lambda}: fd={fd} an={an}"
                );
            }
        }
    }

    #[test]
    fn demand_is_decreasing_and_negative_derivative() {
        for u in [Utility::log(1.0), Utility::alpha_fair(1.0, 3.0)] {
            assert!(u.demand(1.0) > u.demand(2.0));
            assert!(u.demand_derivative(1.0) < 0.0);
        }
    }

    #[test]
    fn utility_is_concave_increasing() {
        for u in [Utility::log(1.0), Utility::alpha_fair(1.0, 2.0)] {
            let (a, b, c) = (u.utility(1.0), u.utility(2.0), u.utility(3.0));
            assert!(b > a && c > b, "increasing");
            assert!(b - a > c - b, "concave (diminishing returns)");
        }
    }

    #[test]
    fn price_floor_caps_demand() {
        let u = Utility::log(1.0);
        let x_max = 10.0;
        let floor = u.price_floor(x_max);
        assert!((u.demand(floor) - x_max).abs() < EPS);
        // Below the floor, demand would exceed the cap.
        assert!(u.demand(floor * 0.5) > x_max);
    }

    #[test]
    fn log_weight_scales_demand() {
        let u1 = Utility::log(1.0);
        let u3 = Utility::log(3.0);
        assert!((u3.demand(0.5) - 3.0 * u1.demand(0.5)).abs() < EPS);
        assert_eq!(u3.weight(), 3.0);
    }

    #[test]
    #[should_panic(expected = "weight must be > 0")]
    fn zero_weight_rejected() {
        let _ = Utility::log(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha = 1")]
    fn alpha_one_rejected() {
        let _ = Utility::alpha_fair(1.0, 1.0);
    }
}
