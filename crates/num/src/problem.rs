//! Dynamic NUM problem instances.
//!
//! The optimizer "works in an online setting: when the set of flows
//! changes, the optimizer does not start afresh, but rather updates the
//! previous prices with the new flow configuration" (§4). [`NumProblem`]
//! therefore supports O(path length) flow insertion and O(1) removal with
//! stable indices, so solver state (prices, per-flow rates) survives churn.

use flowtune_topo::LinkId;

use crate::utility::Utility;

/// Stable index of a flow within a [`NumProblem`]. Indices are reused
/// after removal (slot semantics), mirroring how an allocator reuses flow
/// table entries.
pub type FlowIdx = usize;

#[derive(Debug, Clone)]
pub(crate) struct FlowEntry {
    pub links: Vec<LinkId>,
    pub utility: Utility,
    /// Bottleneck capacity: `min_{ℓ∈L(s)} c_ℓ`. Demands are capped here via
    /// the price floor (see [`Utility::price_floor`]).
    pub x_max: f64,
}

/// A NUM instance: link capacities plus a dynamic set of flows, each with
/// a path (set of links) and a utility function.
#[derive(Debug, Clone)]
pub struct NumProblem {
    capacities: Vec<f64>,
    flows: Vec<Option<FlowEntry>>,
    free: Vec<FlowIdx>,
    active: usize,
    /// Exogenous per-link load (same units as rates) contributed by flows
    /// *outside* this instance — e.g. the other shards of a partitioned
    /// allocator. Empty means none; optimizers and normalizers add it to
    /// their own link loads when pricing and when computing utilization
    /// ratios, so this instance prices shared links for their true total
    /// load.
    background: Vec<f64>,
    /// Exogenous per-link Hessian diagonal (`Σ ∂x/∂p ≤ 0`) of the flows
    /// behind [`NumProblem::background_loads`]. Second-order optimizers
    /// (NED) add it to their own diagonal so the Newton step reflects
    /// *every* flow's price sensitivity — without it a shard dividing the
    /// global gradient by only its own diagonal takes steps `N×` too
    /// large at `N` shards. First-order methods (gradient projection)
    /// ignore it.
    background_h: Vec<f64>,
}

impl NumProblem {
    /// Creates an instance over `capacities` (indexed by [`LinkId`]) with
    /// no flows.
    ///
    /// # Panics
    /// Panics if any capacity is not strictly positive and finite (§3
    /// requires "the capacity of each link is strictly positive and
    /// finite").
    pub fn new(capacities: Vec<f64>) -> Self {
        assert!(
            capacities.iter().all(|&c| c > 0.0 && c.is_finite()),
            "capacities must be strictly positive and finite"
        );
        Self {
            capacities,
            flows: Vec::new(),
            free: Vec::new(),
            active: 0,
            background: Vec::new(),
            background_h: Vec::new(),
        }
    }

    /// Sets the exogenous per-link background load (indexed by
    /// [`LinkId`], same units as rates). An empty slice clears it. The
    /// load is *additive*: optimizers price each link for
    /// `own load + background`, and the normalizers compute utilization
    /// ratios over the same total — which is how a partitioned allocator
    /// makes each partition see the whole network's load on shared links.
    ///
    /// # Panics
    /// Panics if `loads` is non-empty and not exactly one entry per link,
    /// or contains a negative or non-finite value.
    pub fn set_background_loads(&mut self, loads: &[f64]) {
        assert!(
            loads.is_empty() || loads.len() == self.capacities.len(),
            "background loads must cover every link ({} != {})",
            loads.len(),
            self.capacities.len()
        );
        assert!(
            loads.iter().all(|&x| x >= 0.0 && x.is_finite()),
            "background loads must be finite and non-negative"
        );
        self.background.clear();
        self.background.extend_from_slice(loads);
    }

    /// The exogenous per-link background load (empty when none is set).
    pub fn background_loads(&self) -> &[f64] {
        &self.background
    }

    /// Sets the exogenous per-link Hessian diagonal accompanying the
    /// background load (see the field docs); an empty slice clears it.
    ///
    /// # Panics
    /// Panics if `hdiag` is non-empty and not exactly one entry per link,
    /// or contains a positive or non-finite value (demand curves slope
    /// down: `∂x/∂p ≤ 0`).
    pub fn set_background_hessians(&mut self, hdiag: &[f64]) {
        assert!(
            hdiag.is_empty() || hdiag.len() == self.capacities.len(),
            "background hessians must cover every link ({} != {})",
            hdiag.len(),
            self.capacities.len()
        );
        assert!(
            hdiag.iter().all(|&x| x <= 0.0 && x.is_finite()),
            "background hessians must be finite and non-positive"
        );
        self.background_h.clear();
        self.background_h.extend_from_slice(hdiag);
    }

    /// The exogenous per-link Hessian diagonal (empty when none is set).
    pub fn background_hessians(&self) -> &[f64] {
        &self.background_h
    }

    /// Adds a flow over `links` with the given utility; returns its stable
    /// index.
    ///
    /// # Panics
    /// Panics if `links` is empty or references an unknown link.
    pub fn add_flow(&mut self, links: Vec<LinkId>, utility: Utility) -> FlowIdx {
        assert!(!links.is_empty(), "a flow must traverse at least one link");
        let x_max = links
            .iter()
            .map(|l| {
                assert!(l.index() < self.capacities.len(), "unknown link {l}");
                self.capacities[l.index()]
            })
            .fold(f64::INFINITY, f64::min);
        let entry = FlowEntry {
            links,
            utility,
            x_max,
        };
        self.active += 1;
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.flows[idx].is_none());
                self.flows[idx] = Some(entry);
                idx
            }
            None => {
                self.flows.push(Some(entry));
                self.flows.len() - 1
            }
        }
    }

    /// Removes a flow. Its index may be reused by later insertions.
    ///
    /// # Panics
    /// Panics if the flow does not exist (double removal is a caller bug).
    pub fn remove_flow(&mut self, idx: FlowIdx) {
        assert!(
            self.flows.get(idx).is_some_and(Option::is_some),
            "flow {idx} not active"
        );
        self.flows[idx] = None;
        self.free.push(idx);
        self.active -= 1;
    }

    /// Number of currently active flows.
    pub fn flow_count(&self) -> usize {
        self.active
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.capacities.len()
    }

    /// Upper bound (exclusive) of flow indices ever allocated; iteration
    /// and state vectors are sized to this.
    pub fn flow_slots(&self) -> usize {
        self.flows.len()
    }

    /// Link capacities, indexed by [`LinkId`].
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// The links of flow `idx`, or `None` if the slot is empty.
    pub fn flow_links(&self, idx: FlowIdx) -> Option<&[LinkId]> {
        self.flows.get(idx)?.as_ref().map(|f| f.links.as_slice())
    }

    /// The utility of flow `idx`, or `None` if the slot is empty.
    pub fn flow_utility(&self, idx: FlowIdx) -> Option<Utility> {
        self.flows.get(idx)?.as_ref().map(|f| f.utility)
    }

    /// The bottleneck capacity of flow `idx`.
    pub fn flow_x_max(&self, idx: FlowIdx) -> Option<f64> {
        self.flows.get(idx)?.as_ref().map(|f| f.x_max)
    }

    /// Iterates over `(index, links, utility, x_max)` of active flows, in
    /// slot order (deterministic).
    pub fn iter_flows(&self) -> impl Iterator<Item = (FlowIdx, &[LinkId], Utility, f64)> + '_ {
        self.flows.iter().enumerate().filter_map(|(i, f)| {
            f.as_ref()
                .map(|f| (i, f.links.as_slice(), f.utility, f.x_max))
        })
    }

    /// Per-link load (sum of active-flow rates), given per-slot `rates`.
    ///
    /// # Panics
    /// Panics if `rates` is shorter than [`NumProblem::flow_slots`].
    pub fn link_loads(&self, rates: &[f64]) -> Vec<f64> {
        let mut loads = Vec::new();
        self.link_loads_into(rates, &mut loads);
        loads
    }

    /// [`NumProblem::link_loads`] into a caller-provided buffer, for
    /// per-iteration callers that must not allocate.
    pub fn link_loads_into(&self, rates: &[f64], loads: &mut Vec<f64>) {
        loads.clear();
        loads.resize(self.capacities.len(), 0.0);
        for (i, links, ..) in self.iter_flows() {
            for l in links {
                loads[l.index()] += rates[i];
            }
        }
    }

    /// Total positive over-allocation `Σ_ℓ max(0, load_ℓ − c_ℓ)` — the
    /// quantity of Figure 12.
    pub fn total_overallocation(&self, rates: &[f64]) -> f64 {
        self.link_loads(rates)
            .iter()
            .zip(&self.capacities)
            .map(|(&load, &c)| (load - c).max(0.0))
            .sum()
    }

    /// The aggregate objective `Σ_s U_s(x_s)` over active flows. Rates of
    /// exactly zero contribute `-inf` for log utilities, as they should.
    pub fn objective(&self, rates: &[f64]) -> f64 {
        self.iter_flows()
            .map(|(i, _, u, _)| u.utility(rates[i]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn add_and_remove_reuses_slots() {
        let mut p = NumProblem::new(vec![10.0, 10.0]);
        let a = p.add_flow(vec![l(0)], Utility::log(1.0));
        let b = p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.flow_count(), 2);
        p.remove_flow(a);
        assert_eq!(p.flow_count(), 1);
        let c = p.add_flow(vec![l(1)], Utility::log(2.0));
        assert_eq!(c, a, "slot reused");
        assert_eq!(p.flow_slots(), 2);
        assert_eq!(p.flow_utility(c), Some(Utility::log(2.0)));
    }

    #[test]
    fn x_max_is_bottleneck() {
        let mut p = NumProblem::new(vec![10.0, 4.0, 7.0]);
        let f = p.add_flow(vec![l(0), l(1), l(2)], Utility::log(1.0));
        assert_eq!(p.flow_x_max(f), Some(4.0));
    }

    #[test]
    fn loads_and_overallocation() {
        let mut p = NumProblem::new(vec![10.0, 5.0]);
        p.add_flow(vec![l(0)], Utility::log(1.0));
        p.add_flow(vec![l(0), l(1)], Utility::log(1.0));
        let rates = vec![8.0, 4.0];
        assert_eq!(p.link_loads(&rates), vec![12.0, 4.0]);
        assert!((p.total_overallocation(&rates) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn removed_flows_do_not_load_links() {
        let mut p = NumProblem::new(vec![10.0]);
        let a = p.add_flow(vec![l(0)], Utility::log(1.0));
        let b = p.add_flow(vec![l(0)], Utility::log(1.0));
        p.remove_flow(a);
        let rates = vec![100.0, 3.0];
        assert_eq!(p.link_loads(&rates), vec![3.0]);
        assert_eq!(p.iter_flows().count(), 1);
        assert_eq!(p.flow_links(a), None);
        assert_eq!(p.flow_links(b), Some(&[l(0)][..]));
    }

    #[test]
    fn objective_sums_utilities() {
        let mut p = NumProblem::new(vec![10.0]);
        p.add_flow(vec![l(0)], Utility::log(1.0));
        p.add_flow(vec![l(0)], Utility::log(2.0));
        let rates = vec![std::f64::consts::E, 1.0];
        assert!((p.objective(&rates) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn background_loads_roundtrip_and_clear() {
        let mut p = NumProblem::new(vec![10.0, 5.0]);
        assert!(p.background_loads().is_empty());
        p.set_background_loads(&[1.0, 2.0]);
        assert_eq!(p.background_loads(), &[1.0, 2.0]);
        p.set_background_loads(&[]);
        assert!(p.background_loads().is_empty());
    }

    #[test]
    #[should_panic(expected = "cover every link")]
    fn background_loads_must_cover_every_link() {
        let mut p = NumProblem::new(vec![10.0, 5.0]);
        p.set_background_loads(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_background_load_rejected() {
        let mut p = NumProblem::new(vec![10.0]);
        p.set_background_loads(&[-1.0]);
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn double_remove_panics() {
        let mut p = NumProblem::new(vec![1.0]);
        let a = p.add_flow(vec![l(0)], Utility::log(1.0));
        p.remove_flow(a);
        p.remove_flow(a);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn unknown_link_rejected() {
        let mut p = NumProblem::new(vec![1.0]);
        p.add_flow(vec![l(5)], Utility::log(1.0));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn non_finite_capacity_rejected() {
        let _ = NumProblem::new(vec![f64::INFINITY]);
    }
}
