//! The receiver side of the async peer runtime: one thread per remote
//! peer drains that peer's [`Receiver`] half into a per-peer mailbox
//! the moment frames arrive, so the tick loop's exchange barrier never
//! blocks on a socket — it looks at what the mailboxes already hold and
//! decides per peer whether to wait, install, or degrade.
//!
//! Layering (one [`ShardPeer`](crate::ShardPeer), `n`-peer mesh):
//!
//! ```text
//!  wire ──► Receiver(peer 0) ──► thread 0 ──► Mailbox 0 ─┐
//!  wire ──► Receiver(peer 2) ──► thread 1 ──► Mailbox 1 ─┼─► barrier
//!  wire ──► Receiver(peer 3) ──► thread 2 ──► Mailbox 2 ─┘   (tick loop)
//! ```
//!
//! Threads follow the `WorkerPool` idioms from `flowtune-alloc`: they
//! are spawned once, park in a bounded-timeout receive so a shutdown
//! flag is honored promptly, and are joined on drop. Frame buffers
//! cycle through a shared [`BufferPool`] — the barrier returns every
//! buffer it drains, the threads take them back for the next frame —
//! so the steady-state receive path allocates nothing.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::pool::BufferPool;
use crate::transport::Receiver;

/// How long a receiver thread's blocking receive lasts before it
/// re-checks the shutdown flag. A frame's arrival interrupts the wait
/// immediately; this only bounds how long `drop` waits for a thread
/// whose peer is silent.
const SHUTDOWN_POLL: Duration = Duration::from_millis(25);

/// What a mailbox poll produced.
#[derive(Debug)]
pub enum Polled {
    /// The next frame, in arrival order. Return the buffer via
    /// [`RecvRuntime::recycle`] once drained.
    Frame(Vec<u8>),
    /// No frame arrived before the deadline (the peer is merely slow).
    Empty,
    /// No frame is buffered and none can arrive: the receiver thread
    /// exited. [`RecvRuntime::take_failure`] tells why.
    Closed,
}

#[derive(Debug, Default)]
struct MailboxState {
    frames: VecDeque<Vec<u8>>,
    rx_bytes: u64,
    rx_frames: u64,
    /// The receiver thread's terminal failure, held for
    /// [`RecvRuntime::take_failure`].
    failed: Option<io::Error>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Mailbox {
    state: Mutex<MailboxState>,
    cv: Condvar,
}

#[derive(Debug)]
struct Shared {
    boxes: Vec<Mailbox>,
    pool: Mutex<BufferPool>,
    shutdown: AtomicBool,
}

/// A poisoned mailbox means a receiver thread panicked mid-deposit; the
/// counters and queue are still structurally sound, so recovering the
/// guard beats poisoning the whole control plane.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    fn pool_get(&self, len_hint: usize) -> Vec<u8> {
        lock(&self.pool).get(len_hint)
    }

    fn pool_put(&self, buf: Vec<u8>) {
        lock(&self.pool).put(buf);
    }
}

/// One peer's receiver runtime: the threads and mailboxes behind a
/// `ShardPeer`'s non-blocking exchange barrier (see the module docs).
#[derive(Debug)]
pub struct RecvRuntime {
    shared: Arc<Shared>,
    /// Remote shard id per mailbox slot, ascending.
    peers: Vec<u16>,
    threads: Vec<JoinHandle<()>>,
}

impl RecvRuntime {
    /// Spawn one receiver thread per receive half. Mailbox slots come
    /// out in the order of `rxs` (ascending remote shard id when the
    /// halves come from [`Transport::split`](crate::Transport::split)).
    pub fn spawn<R: Receiver>(rxs: Vec<R>) -> Self {
        let peers: Vec<u16> = rxs.iter().map(Receiver::remote_peer).collect();
        let shared = Arc::new(Shared {
            boxes: rxs.iter().map(|_| Mailbox::default()).collect(),
            pool: Mutex::new(BufferPool::new()),
            shutdown: AtomicBool::new(false),
        });
        let threads = rxs
            .into_iter()
            .enumerate()
            .map(|(slot, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || receive_loop(rx, &shared, slot))
            })
            .collect();
        RecvRuntime {
            shared,
            peers,
            threads,
        }
    }

    /// Remote shard ids in mailbox-slot order.
    pub fn peers(&self) -> &[u16] {
        &self.peers
    }

    /// Pop the next frame from `slot`'s mailbox without blocking.
    pub fn try_pop(&self, slot: usize) -> Polled {
        self.pop_with(slot, None)
    }

    /// Pop the next frame from `slot`'s mailbox, waiting until
    /// `deadline` for one to arrive.
    pub fn pop_deadline(&self, slot: usize, deadline: Instant) -> Polled {
        self.pop_with(slot, Some(deadline))
    }

    fn pop_with(&self, slot: usize, deadline: Option<Instant>) -> Polled {
        let Some(mb) = self.shared.boxes.get(slot) else {
            return Polled::Closed;
        };
        let mut st = lock(&mb.state);
        loop {
            if let Some(frame) = st.frames.pop_front() {
                return Polled::Frame(frame);
            }
            if st.closed {
                return Polled::Closed;
            }
            let Some(deadline) = deadline else {
                return Polled::Empty;
            };
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Polled::Empty;
            }
            st = match mb.cv.wait_timeout(st, left) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Return a drained frame buffer to the pool for the receiver
    /// threads to reuse.
    pub fn recycle(&self, buf: Vec<u8>) {
        self.shared.pool_put(buf);
    }

    /// Cumulative `(rx_bytes, rx_frames)` deposited into `slot`'s
    /// mailbox — counted at arrival, whether or not the barrier has
    /// drained them yet.
    pub fn rx_counters(&self, slot: usize) -> (u64, u64) {
        match self.shared.boxes.get(slot) {
            Some(mb) => {
                let st = lock(&mb.state);
                (st.rx_bytes, st.rx_frames)
            }
            None => (0, 0),
        }
    }

    /// Take `slot`'s terminal receive failure, if its thread has exited
    /// with one. Subsequent calls return `None`.
    pub fn take_failure(&self, slot: usize) -> Option<io::Error> {
        let mb = self.shared.boxes.get(slot)?;
        lock(&mb.state).failed.take()
    }
}

impl Drop for RecvRuntime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            // A receiver thread's own panics are contained by its loop;
            // a join failure here means a bug in this module, and the
            // tick loop's state is gone anyway.
            let _ = t.join();
        }
    }
}

fn receive_loop<R: Receiver>(mut rx: R, shared: &Shared, slot: usize) {
    let Some(mb) = shared.boxes.get(slot) else {
        return;
    };
    let mut buf = shared.pool_get(1024);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            shared.pool_put(buf);
            return;
        }
        match rx.recv(&mut buf, SHUTDOWN_POLL) {
            Ok(None) => {}
            Ok(Some(bytes)) => {
                // Swap in a recycled buffer before handing the filled
                // one over; the barrier recycles it back once drained.
                let next = shared.pool_get(buf.len().max(64));
                let frame = std::mem::replace(&mut buf, next);
                let mut st = lock(&mb.state);
                st.frames.push_back(frame);
                st.rx_bytes += bytes;
                st.rx_frames += 1;
                drop(st);
                mb.cv.notify_all();
            }
            Err(e) => {
                shared.pool_put(buf);
                let mut st = lock(&mb.state);
                st.failed = Some(e);
                st.closed = true;
                drop(st);
                mb.cv.notify_all();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{mem_mesh, Sender, Transport};

    #[test]
    fn frames_arrive_in_mailboxes_without_the_consumer_receiving() {
        let mut endpoints = mem_mesh(3);
        let c = endpoints.pop().unwrap();
        let b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        let (_a_tx, a_rxs) = a.split().unwrap();
        let (mut b_tx, _b_rxs) = b.split().unwrap();
        let (mut c_tx, _c_rxs) = c.split().unwrap();
        let rt = RecvRuntime::spawn(a_rxs);
        assert_eq!(rt.peers(), &[1, 2]);
        b_tx.send(0, &[0xB0; 32]).unwrap();
        c_tx.send(0, &[0xC0; 48]).unwrap();
        c_tx.send(0, &[0xC1; 48]).unwrap();
        // Frames land per peer, in order, counted at arrival.
        let deadline = Instant::now() + Duration::from_secs(2);
        let Polled::Frame(f) = rt.pop_deadline(0, deadline) else {
            panic!("frame from shard 1 never arrived");
        };
        assert_eq!(f, [0xB0; 32]);
        rt.recycle(f);
        for expect in [[0xC0; 48], [0xC1; 48]] {
            let Polled::Frame(f) = rt.pop_deadline(1, deadline) else {
                panic!("frame from shard 2 never arrived");
            };
            assert_eq!(f, expect);
            rt.recycle(f);
        }
        // Nothing else is buffered; an expired deadline reports Empty.
        assert!(matches!(rt.try_pop(0), Polled::Empty));
        assert!(matches!(rt.pop_deadline(1, Instant::now()), Polled::Empty));
        let (bytes, frames) = rt.rx_counters(1);
        assert_eq!(frames, 2);
        assert!(bytes > 0);
        assert!(rt.take_failure(0).is_none());
    }

    #[test]
    fn drop_joins_the_receiver_threads_promptly() {
        let mut endpoints = mem_mesh(2);
        let _b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        let (_a_tx, a_rxs) = a.split().unwrap();
        let rt = RecvRuntime::spawn(a_rxs);
        let begun = Instant::now();
        drop(rt);
        // One silent peer: the thread notices the flag within one
        // shutdown-poll window (plus scheduling slack).
        assert!(
            begun.elapsed() < Duration::from_secs(2),
            "drop took {:?}",
            begun.elapsed()
        );
    }
}
