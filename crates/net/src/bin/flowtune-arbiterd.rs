//! `flowtune-arbiterd` — one shard of the distributed Flowtune control
//! plane as an OS process, plus a `--demo` launcher that spawns a whole
//! N-process cluster and checks it against the unsharded optimum.
//!
//! Peer mode (`--shard I --shards N`) joins the mesh over the chosen
//! transport, feeds its contiguous-placement share of the demo's
//! cross-shard incast workload (the same one the repository's
//! `cross_shard_incast` test pins), drives `--ticks` allocator ticks
//! with the wire exchange every `--exchange-every` ticks, and prints
//! machine-readable `key=value` lines: each owned flow's converged rate
//! (with its exact bit pattern), the shard's exchange / wire counters,
//! and one `lag` line per remote peer with the staleness view
//! (`behind`/`peak`/`fresh_round`) the async barrier kept.
//!
//! For latency-fault drills, `FLOWTUNE_PEER_DELAY=shard:ms:rounds`
//! makes the named shard sleep `ms` before each of its first `rounds`
//! ticks; demo mode passes the variable through to its children and
//! then asserts the healthy peers both kept ticking and reported the
//! laggard's staleness.
//!
//! Demo mode (`--demo N`) spawns N peer processes of itself, computes
//! the unsharded reference allocation in-process, and asserts what the
//! paper's §5 aggregation promises one level up: every flow's rate
//! matches the unsharded service within the update-threshold tolerance,
//! no link is over-subscribed, real bytes moved on the wire, and no
//! frame was dropped as undecodable.

use std::io::{self, Write};
use std::process::{Command, Stdio};
use std::time::Duration;

use flowtune::{AllocatorService, ExchangeConfig, FlowtuneConfig, Placement};
use flowtune_net::{tcp_connect, uds_connect, ShardPeer, Transport};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};

/// The demo workload, shared verbatim with `tests/cross_shard_incast.rs`:
/// 4 sources per block of a 2-block fabric, all sending to server 15.
const SOURCES: [u16; 8] = [0, 1, 2, 3, 8, 9, 10, 11];
const RECEIVER: u16 = 15;

const USAGE: &str = "flowtune-arbiterd: distributed Flowtune shard peer / demo launcher

Peer mode (one process per shard):
  flowtune-arbiterd --shard I --shards N [options]

Demo mode (spawns an N-process cluster of itself, checks convergence):
  flowtune-arbiterd --demo N [options]

Options:
  --shard I            this peer's shard id (peer mode)
  --shards N           total shards in the cluster (peer mode)
  --demo N             launch N peer processes and verify the result
  --transport T        uds | tcp (default uds; demo and peer mode)
  --dir PATH           socket directory for uds (peer mode; demo makes its own)
  --base-port P        first TCP port, peer i binds P+i (tcp; demo probes one)
  --ticks N            allocator ticks to run (default 400)
  --exchange-every K   exchange cadence in ticks (default 1)
  --timeout-ms M       round timeout waited on fresh peers (default 1000)
  --max-behind B       stale rounds before a peer is waited on again;
                       0 disables the bound (default 8)
  --help               this text

Environment:
  FLOWTUNE_PEER_DELAY=shard:ms:rounds
                       the named shard sleeps ms before each of its
                       first rounds ticks (latency-fault injection;
                       demo mode forwards it to its children)
";

#[derive(Debug, Clone)]
struct Opts {
    shard: Option<u16>,
    shards: u16,
    demo: Option<u16>,
    transport: String,
    dir: String,
    base_port: u16,
    ticks: u64,
    exchange_every: u64,
    timeout_ms: u64,
    max_behind: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            shard: None,
            shards: 0,
            demo: None,
            transport: "uds".to_string(),
            dir: String::new(),
            base_port: 0,
            ticks: 400,
            exchange_every: 1,
            timeout_ms: 1000,
            max_behind: ExchangeConfig::default().max_rounds_behind,
        }
    }
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--shard" => {
                opts.shard = Some(
                    value("--shard")?
                        .parse()
                        .map_err(|e| format!("--shard: {e}"))?,
                )
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--demo" => {
                opts.demo = Some(
                    value("--demo")?
                        .parse()
                        .map_err(|e| format!("--demo: {e}"))?,
                )
            }
            "--transport" => opts.transport = value("--transport")?,
            "--dir" => opts.dir = value("--dir")?,
            "--base-port" => {
                opts.base_port = value("--base-port")?
                    .parse()
                    .map_err(|e| format!("--base-port: {e}"))?
            }
            "--ticks" => {
                opts.ticks = value("--ticks")?
                    .parse()
                    .map_err(|e| format!("--ticks: {e}"))?
            }
            "--exchange-every" => {
                opts.exchange_every = value("--exchange-every")?
                    .parse()
                    .map_err(|e| format!("--exchange-every: {e}"))?
            }
            "--timeout-ms" => {
                opts.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--max-behind" => {
                opts.max_behind = value("--max-behind")?
                    .parse()
                    .map_err(|e| format!("--max-behind: {e}"))?
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if !matches!(opts.transport.as_str(), "uds" | "tcp") {
        return Err(format!(
            "--transport {} (expected uds or tcp)",
            opts.transport
        ));
    }
    Ok(opts)
}

fn fabric() -> TwoTierClos {
    TwoTierClos::build(ClosConfig::multicore(2, 2, 4))
}

fn config(exchange_every: u64) -> FlowtuneConfig {
    FlowtuneConfig {
        exchange_every,
        ..FlowtuneConfig::default()
    }
}

fn start(fabric: &TwoTierClos, token: u32, src: u16, dst: u16) -> Message {
    let spine = fabric.ecmp_spine(src as usize, dst as usize, FlowId(u64::from(token)));
    Message::FlowletStart {
        token: Token::new(token),
        src,
        dst,
        size_hint: 1_000_000,
        weight_q8: 256,
        spine: spine as u8,
    }
}

/// The demo's flow set: `(token, src)` pairs, token = 1-based index.
fn incast_flows() -> Vec<(u32, u16)> {
    SOURCES
        .iter()
        .enumerate()
        .map(|(i, &src)| (i as u32 + 1, src))
        .collect()
}

// ---------------------------------------------------------------- peer

/// Parse `FLOWTUNE_PEER_DELAY`'s `shard:ms:rounds` spec.
fn parse_delay_spec(spec: &str) -> Result<(u16, u64, u64), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [shard, ms, rounds] = parts.as_slice() else {
        return Err(format!("delay spec {spec:?} is not shard:ms:rounds"));
    };
    Ok((
        shard.parse().map_err(|e| format!("delay shard: {e}"))?,
        ms.parse().map_err(|e| format!("delay ms: {e}"))?,
        rounds.parse().map_err(|e| format!("delay rounds: {e}"))?,
    ))
}

/// This shard's injected latency fault, if `FLOWTUNE_PEER_DELAY` names
/// it: the sleep to take before each of the first `rounds` ticks.
fn peer_delay(shard: u16) -> io::Result<Option<(Duration, u64)>> {
    let Ok(spec) = std::env::var("FLOWTUNE_PEER_DELAY") else {
        return Ok(None);
    };
    let (target, ms, rounds) =
        parse_delay_spec(&spec).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    Ok((target == shard).then_some((Duration::from_millis(ms), rounds)))
}

fn run_peer_on<T: Transport>(transport: T, opts: &Opts) -> io::Result<()> {
    let fabric = fabric();
    let svc = AllocatorService::new(&fabric, config(opts.exchange_every));
    let exchange = ExchangeConfig::from_flowtune(&config(opts.exchange_every))
        .round_timeout(Duration::from_millis(opts.timeout_ms))
        .max_rounds_behind(opts.max_behind);
    let mut peer = ShardPeer::new(svc, transport, exchange)?;
    let delay = peer_delay(peer.shard())?;
    let placement = Placement::contiguous(fabric.config().server_count(), opts.shards as usize);
    let mine: Vec<(u32, u16)> = incast_flows()
        .into_iter()
        .filter(|&(_, src)| placement.shard_of(src) == usize::from(peer.shard()))
        .collect();
    for &(token, src) in &mine {
        peer.on_message(start(&fabric, token, src, RECEIVER))
            .expect("demo workload is well-formed");
    }
    for tick in 0..opts.ticks {
        if let Some((pause, rounds)) = delay {
            if tick < rounds {
                std::thread::sleep(pause);
            }
        }
        peer.tick()?;
    }
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for &(token, _) in &mine {
        let rate = peer
            .service()
            .flow_rate_gbps(Token::new(token))
            .expect("fed flow is active");
        writeln!(
            out,
            "rate token={token} gbps={rate} bits={:016x}",
            rate.to_bits()
        )?;
    }
    let st = peer.exchange_stats();
    let wire = peer.wire_stats();
    writeln!(
        out,
        "stats shard={} rounds={} logical_bytes={} decode_errors={} tx_bytes={} rx_bytes={} tx_frames={} rx_frames={} late_rounds={}",
        peer.shard(),
        st.exchange_rounds,
        st.exchange_bytes,
        st.exchange_decode_errors,
        wire.tx_bytes,
        wire.rx_bytes,
        wire.tx_frames,
        wire.rx_frames,
        wire.late_rounds,
    )?;
    for l in &wire.peers {
        writeln!(
            out,
            "lag peer={} behind={} peak={} fresh_round={} rx_bytes={} rx_frames={}",
            l.peer,
            l.rounds_behind,
            l.peak_rounds_behind,
            l.last_fresh_round,
            l.rx_bytes,
            l.rx_frames,
        )?;
    }
    Ok(())
}

fn run_peer(opts: &Opts) -> io::Result<()> {
    let shard = opts.shard.expect("peer mode needs --shard");
    assert!(
        shard < opts.shards,
        "--shard {shard} out of range for --shards {}",
        opts.shards
    );
    match opts.transport.as_str() {
        "uds" => {
            assert!(!opts.dir.is_empty(), "uds transport needs --dir");
            let t = uds_connect(std::path::Path::new(&opts.dir), shard, opts.shards)?;
            run_peer_on(t, opts)
        }
        "tcp" => {
            assert!(opts.base_port != 0, "tcp transport needs --base-port");
            let t = tcp_connect(opts.base_port, shard, opts.shards)?;
            run_peer_on(t, opts)
        }
        other => unreachable!("transport {other} was validated at parse time"),
    }
}

// ---------------------------------------------------------------- demo

#[derive(Debug, Default)]
struct PeerReport {
    rates: Vec<(u32, f64)>,
    tx_bytes: u64,
    rx_bytes: u64,
    decode_errors: u64,
    late_rounds: u64,
    rounds: u64,
    logical_bytes: u64,
    /// `(peer, rounds_behind, peak_rounds_behind)` per remote peer.
    lags: Vec<(u16, u64, u64)>,
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
}

fn parse_report(stdout: &str, report: &mut PeerReport) -> Result<(), String> {
    for line in stdout.lines() {
        if line.starts_with("rate ") {
            let token: u32 = field(line, "token")
                .ok_or("rate line without token")?
                .parse()
                .map_err(|e| format!("token: {e}"))?;
            let bits =
                u64::from_str_radix(field(line, "bits").ok_or("rate line without bits")?, 16)
                    .map_err(|e| format!("bits: {e}"))?;
            report.rates.push((token, f64::from_bits(bits)));
        } else if line.starts_with("stats ") {
            let get = |key: &str| -> Result<u64, String> {
                field(line, key)
                    .ok_or_else(|| format!("stats line without {key}"))?
                    .parse()
                    .map_err(|e| format!("{key}: {e}"))
            };
            report.rounds = get("rounds")?;
            report.logical_bytes = get("logical_bytes")?;
            report.decode_errors = get("decode_errors")?;
            report.tx_bytes = get("tx_bytes")?;
            report.rx_bytes = get("rx_bytes")?;
            report.late_rounds = get("late_rounds")?;
        } else if line.starts_with("lag ") {
            let get = |key: &str| -> Result<u64, String> {
                field(line, key)
                    .ok_or_else(|| format!("lag line without {key}"))?
                    .parse()
                    .map_err(|e| format!("{key}: {e}"))
            };
            let peer = u16::try_from(get("peer")?).map_err(|e| format!("peer: {e}"))?;
            report.lags.push((peer, get("behind")?, get("peak")?));
        }
    }
    Ok(())
}

/// The unsharded reference: same workload, one service, same tick count.
fn unsharded_rates(ticks: u64) -> Vec<(u32, f64)> {
    let fabric = fabric();
    let mut svc = AllocatorService::new(&fabric, config(1));
    for &(token, src) in &incast_flows() {
        svc.on_message(start(&fabric, token, src, RECEIVER))
            .expect("demo workload is well-formed");
    }
    for _ in 0..ticks {
        svc.tick();
    }
    incast_flows()
        .iter()
        .map(|&(token, _)| {
            (
                token,
                svc.flow_rate_gbps(Token::new(token)).expect("flow active"),
            )
        })
        .collect()
}

/// Probe a run of `n` free loopback ports and return the base.
fn probe_tcp_base(n: u16) -> io::Result<u16> {
    for _ in 0..16 {
        let probe = std::net::TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let base = probe.local_addr()?.port();
        drop(probe);
        if base.checked_add(n).is_none() {
            continue;
        }
        let holds: Vec<_> = (0..n)
            .map(|i| std::net::TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, base + i)))
            .collect();
        if holds.iter().all(Result::is_ok) {
            return Ok(base);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::AddrInUse,
        "no free loopback port run found",
    ))
}

fn run_demo(opts: &Opts) -> Result<(), String> {
    let n = opts.demo.expect("demo mode needs --demo");
    assert!(n >= 1, "--demo needs at least one shard");
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = std::env::temp_dir().join(format!("flowtune-arbiterd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let base_port = if opts.transport == "tcp" {
        if opts.base_port != 0 {
            opts.base_port
        } else {
            probe_tcp_base(n).map_err(|e| format!("port probe: {e}"))?
        }
    } else {
        0
    };

    println!(
        "demo: {n} {} peers x {} ticks, exchange every {}",
        opts.transport, opts.ticks, opts.exchange_every
    );
    let mut children = Vec::new();
    for shard in 0..n {
        let mut cmd = Command::new(&exe);
        cmd.arg("--shard")
            .arg(shard.to_string())
            .arg("--shards")
            .arg(n.to_string())
            .arg("--transport")
            .arg(&opts.transport)
            .arg("--ticks")
            .arg(opts.ticks.to_string())
            .arg("--exchange-every")
            .arg(opts.exchange_every.to_string())
            .arg("--timeout-ms")
            .arg(opts.timeout_ms.to_string())
            .arg("--max-behind")
            .arg(opts.max_behind.to_string())
            .stdout(Stdio::piped());
        if opts.transport == "uds" {
            cmd.arg("--dir").arg(&dir);
        } else {
            cmd.arg("--base-port").arg(base_port.to_string());
        }
        children.push(
            cmd.spawn()
                .map_err(|e| format!("spawn shard {shard}: {e}"))?,
        );
    }

    let mut reports = Vec::new();
    let mut failed = false;
    for (shard, child) in children.into_iter().enumerate() {
        let output = child
            .wait_with_output()
            .map_err(|e| format!("wait shard {shard}: {e}"))?;
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        if !output.status.success() {
            eprintln!("shard {shard} exited with {}:\n{stdout}", output.status);
            failed = true;
            continue;
        }
        let mut report = PeerReport::default();
        parse_report(&stdout, &mut report).map_err(|e| format!("shard {shard}: {e}"))?;
        reports.push(report);
    }
    let _ = std::fs::remove_dir_all(&dir);
    if failed {
        return Err("a shard process failed".to_string());
    }

    // Gather the distributed rates and check them against the unsharded
    // reference the tentpole promises (tolerance: the repository's
    // cross_shard_incast criterion).
    let reference = unsharded_rates(opts.ticks);
    let mut distributed: Vec<(u32, f64)> = reports.iter().flat_map(|r| r.rates.clone()).collect();
    distributed.sort_unstable_by_key(|&(t, _)| t);
    if distributed.len() != reference.len() {
        return Err(format!(
            "expected {} flows across peers, got {}",
            reference.len(),
            distributed.len()
        ));
    }
    let fabric = fabric();
    let cfg = config(opts.exchange_every);
    let tol = cfg.update_threshold;
    let mut ok = true;
    for (&(token, a), &(dt, b)) in reference.iter().zip(&distributed) {
        assert_eq!(token, dt, "token sets must match");
        let pass = (a - b).abs() <= tol * a.max(1.0);
        println!(
            "check token={token} unsharded={a:.4} distributed={b:.4} {}",
            if pass { "ok" } else { "FAIL" }
        );
        ok &= pass;
    }

    // Feasibility: sum each flow's endpoint-visible rate over its path;
    // no link may exceed its capacity.
    let mut loads = vec![0.0f64; fabric.topology().link_count()];
    for &(token, rate) in &distributed {
        let src = SOURCES[(token - 1) as usize];
        let spine = fabric.ecmp_spine(src as usize, RECEIVER as usize, FlowId(u64::from(token)));
        let path = fabric.path_via_spine(src as usize, RECEIVER as usize, spine);
        for link in path.iter() {
            loads[link.index()] += rate;
        }
    }
    let over = fabric
        .topology()
        .links()
        .iter()
        .enumerate()
        .map(|(l, link)| (loads[l] / (link.capacity_bps as f64 / 1e9)) - 1.0)
        .fold(0.0f64, f64::max);
    println!(
        "check worst_oversubscription={over:.2e} {}",
        if over <= 1e-6 { "ok" } else { "FAIL" }
    );
    ok &= over <= 1e-6;

    // Wire health: real bytes moved (for any actual multi-peer run) and
    // nothing arrived undecodable.
    let tx: u64 = reports.iter().map(|r| r.tx_bytes).sum();
    let rx: u64 = reports.iter().map(|r| r.rx_bytes).sum();
    let decode_errors: u64 = reports.iter().map(|r| r.decode_errors).sum();
    let late: u64 = reports.iter().map(|r| r.late_rounds).sum();
    let logical: u64 = reports.iter().map(|r| r.logical_bytes).sum();
    println!("wire tx_bytes={tx} rx_bytes={rx} logical_bytes={logical} decode_errors={decode_errors} late_rounds={late}");
    if n > 1 {
        let wire_ok = tx > 0 && rx > 0;
        println!(
            "check wire_bytes_nonzero {}",
            if wire_ok { "ok" } else { "FAIL" }
        );
        ok &= wire_ok;
    }
    let decode_ok = decode_errors == 0;
    println!(
        "check decode_errors_zero {}",
        if decode_ok { "ok" } else { "FAIL" }
    );
    ok &= decode_ok;

    // The cluster-wide staleness view: for each shard, the worst any
    // other peer ever observed of it.
    let mut peak = vec![0u64; n as usize];
    for report in &reports {
        for &(peer, _, p) in &report.lags {
            if let Some(slot) = peak.get_mut(usize::from(peer)) {
                *slot = (*slot).max(p);
            }
        }
    }
    for (shard, p) in peak.iter().enumerate() {
        println!("lag shard={shard} peak_behind={p}");
    }

    // Latency drill: when a delay was injected, the healthy peers must
    // have finished anyway (they did — we parsed their reports) AND
    // flagged the laggard's staleness instead of stalling behind it.
    if let Ok(spec) = std::env::var("FLOWTUNE_PEER_DELAY") {
        let (laggard, ms, rounds) = parse_delay_spec(&spec)?;
        if n > 1 && laggard < n && ms > 0 && rounds > 0 {
            // A sleep much longer than the round timeout must register
            // at least one missed barrier per slept round; a milder one
            // at least shows up once.
            let floor = if ms >= 2 * opts.timeout_ms { rounds } else { 1 };
            let seen = peak[usize::from(laggard)];
            let lag_ok = seen >= floor;
            println!(
                "check laggard_flagged shard={laggard} peak_behind={seen} floor={floor} {}",
                if lag_ok { "ok" } else { "FAIL" }
            );
            ok &= lag_ok;
        }
    }

    if ok {
        println!("demo: PASS");
        Ok(())
    } else {
        Err("demo assertions failed".to_string())
    }
}

fn main() {
    let opts = match parse_opts() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("flowtune-arbiterd: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if opts.demo.is_some() {
        if let Err(e) = run_demo(&opts) {
            eprintln!("flowtune-arbiterd: {e}");
            std::process::exit(1);
        }
    } else if opts.shard.is_some() {
        if let Err(e) = run_peer(&opts) {
            eprintln!("flowtune-arbiterd: {e}");
            std::process::exit(1);
        }
    } else {
        eprintln!("flowtune-arbiterd: pass --shard I --shards N or --demo N\n\n{USAGE}");
        std::process::exit(2);
    }
}
