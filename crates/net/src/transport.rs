//! Transports that carry exchange frames between shard peers.
//!
//! A [`Transport`] moves already-encoded exchange frames (see
//! [`flowtune_proto::exchange`]) between the peers of one cluster and
//! reports the **on-wire** cost of doing so — the frame bytes plus the
//! 4-byte length prefix ([`framed_wire_bytes`]) — separately from the
//! *logical* hub-model accounting kept in
//! `ServiceStats::exchange_bytes`. Three implementations:
//!
//! * [`MemTransport`] — an in-process mesh of queues, one per directed
//!   peer pair, recycling frame buffers through a [`BufferPool`]. The
//!   reference: a peer cluster over it is bit-for-bit identical to the
//!   in-process `ShardedService`.
//! * [`UdsTransport`] — length-prefixed frames over Unix-domain stream
//!   sockets; the multi-process single-host deployment.
//! * [`TcpTransport`] — the same framing over TCP (`TCP_NODELAY` set),
//!   for peers on different hosts.
//!
//! The socket transports share one generic engine,
//! [`SocketTransport`], over anything that implements [`FrameStream`].
//! Mesh setup is symmetric: peer `i` listens, dials every lower-id
//! peer, and accepts from every higher-id one; a 2-byte hello carrying
//! the dialer's shard id identifies each accepted stream.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use flowtune_proto::exchange::framed_wire_bytes;

use crate::pool::BufferPool;

/// How long mesh constructors keep retrying dials and accepts before
/// giving up on a peer that never showed.
pub const SETUP_TIMEOUT: Duration = Duration::from_secs(10);

/// What went wrong moving a frame. Constructing a variant never
/// allocates — the boxing happens only when one crosses into an
/// [`io::Error`] on the (cold) failure path, which keeps `send`/`recv`
/// allocation-free in the steady state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer id is out of range or names this endpoint itself.
    NoSuchPeer {
        /// The offending peer id.
        peer: u16,
    },
    /// No stream is connected to that peer.
    NotConnected {
        /// The peer without a stream.
        peer: u16,
    },
    /// A shared lock was poisoned by a panicking thread.
    Poisoned {
        /// Which shared structure the lock guards.
        what: &'static str,
    },
    /// The frame does not fit the u32 length prefix.
    FrameTooLarge {
        /// The frame length that overflowed.
        len: usize,
    },
    /// The peer stalled mid-frame past the retry budget.
    TornFrame,
    /// The peer closed the stream mid-frame.
    PeerClosed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TransportError::NoSuchPeer { peer } => write!(f, "no peer {peer} in the mesh"),
            TransportError::NotConnected { peer } => write!(f, "no stream to peer {peer}"),
            TransportError::Poisoned { what } => write!(f, "{what} lock poisoned"),
            TransportError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the u32 length prefix")
            }
            TransportError::TornFrame => write!(f, "torn frame: peer stalled mid-frame"),
            TransportError::PeerClosed => write!(f, "peer closed the stream mid-frame"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<TransportError> for io::Error {
    fn from(e: TransportError) -> io::Error {
        let kind = match e {
            TransportError::NoSuchPeer { .. } | TransportError::FrameTooLarge { .. } => {
                io::ErrorKind::InvalidInput
            }
            TransportError::NotConnected { .. } => io::ErrorKind::NotConnected,
            TransportError::Poisoned { .. } => io::ErrorKind::Other,
            TransportError::TornFrame => io::ErrorKind::TimedOut,
            TransportError::PeerClosed => io::ErrorKind::UnexpectedEof,
        };
        io::Error::new(kind, e)
    }
}

/// The send half of a split [`Transport`]: ships whole frames to any
/// peer. A [`Receiver`] on the other side yields exactly the bytes of
/// one `send`, in order, per directed peer pair. Reports on-wire bytes
/// ([`framed_wire_bytes`] of the frame length) so a peer can account
/// what its transport actually moved.
pub trait Sender: std::fmt::Debug + Send {
    /// This endpoint's shard id.
    fn shard(&self) -> u16;

    /// Total peers in the mesh, this endpoint included.
    fn peers(&self) -> usize;

    /// Ship one frame to peer `to`, returning its on-wire bytes.
    ///
    /// # Errors
    /// An [`io::Error`] from the underlying channel; the frame may or
    /// may not have been delivered.
    fn send(&mut self, to: u16, frame: &[u8]) -> io::Result<u64>;
}

/// The receive half of a split [`Transport`] for **one** remote peer:
/// the unit a receiver thread owns. Splitting per peer is what lets the
/// mailbox runtime block on every peer concurrently — no peer's silence
/// can stall another peer's frames.
pub trait Receiver: std::fmt::Debug + Send + 'static {
    /// The remote peer this half receives from.
    fn remote_peer(&self) -> u16;

    /// Receive the next frame into `buf` (cleared first), returning its
    /// on-wire bytes — or `None` when `timeout` elapsed before a frame
    /// *started* arriving.
    ///
    /// # Errors
    /// An [`io::Error`] from the underlying channel, including a
    /// timeout that struck mid-frame (a torn frame is a peer failure,
    /// not a late round).
    fn recv(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> io::Result<Option<u64>>;
}

/// One unsplit endpoint of a frame mesh. Splitting yields the
/// [`Sender`] half the tick loop keeps and one [`Receiver`] half per
/// remote peer for the receiver threads; the mem/UDS/TCP meshes all
/// feed the mailbox layer through exactly this seam.
pub trait Transport: std::fmt::Debug + Send {
    /// The send half this endpoint splits into.
    type Tx: Sender;
    /// The per-peer receive half this endpoint splits into.
    type Rx: Receiver;

    /// This endpoint's shard id.
    fn shard(&self) -> u16;

    /// Total peers in the mesh, this endpoint included.
    fn peers(&self) -> usize;

    /// Consume the endpoint into its send half and one receive half per
    /// remote peer, in ascending shard order (this endpoint's own slot
    /// skipped).
    ///
    /// # Errors
    /// Duplicating a socket handle for the receive half failed.
    fn split(self) -> io::Result<(Self::Tx, Vec<Self::Rx>)>;
}

// ---------------------------------------------------------------- memory

/// The shared state of an in-process mesh: one FIFO per directed peer
/// pair, plus the buffer pool frames are recycled through.
#[derive(Debug)]
struct MemMesh {
    n: usize,
    /// Queue `from * n + to`, each with the condvar its receiver waits
    /// on.
    links: Vec<(Mutex<VecDeque<Vec<u8>>>, Condvar)>,
    pool: Mutex<BufferPool>,
}

/// One endpoint of an in-process mesh built by [`mem_mesh`].
#[derive(Debug)]
pub struct MemTransport {
    mesh: Arc<MemMesh>,
    me: u16,
}

/// Build an `n`-peer in-process mesh and return its endpoints in shard
/// order. Endpoints may be moved to different threads; each directed
/// pair is an independent FIFO.
///
/// # Panics
/// Panics if `n` is 0 or exceeds `u16` range.
pub fn mem_mesh(n: usize) -> Vec<MemTransport> {
    assert!(n > 0, "a mesh needs at least one peer");
    assert!(u16::try_from(n).is_ok(), "too many peers for u16 ids");
    let mesh = Arc::new(MemMesh {
        n,
        links: (0..n * n)
            .map(|_| (Mutex::new(VecDeque::new()), Condvar::new()))
            .collect(),
        pool: Mutex::new(BufferPool::new()),
    });
    (0..n as u16)
        .map(|me| MemTransport {
            mesh: Arc::clone(&mesh),
            me,
        })
        .collect()
}

impl MemTransport {
    /// Buffer-pool `(hits, misses)` across the whole mesh — a warm
    /// exchange recycles every frame buffer it ships.
    pub fn pool_stats(&self) -> (u64, u64) {
        mesh_pool_stats(&self.mesh)
    }
}

fn mesh_pool_stats(mesh: &MemMesh) -> (u64, u64) {
    let pool = mesh.pool.lock().expect("pool poisoned");
    (pool.hits(), pool.misses())
}

/// The send half of a [`MemTransport`].
#[derive(Debug)]
pub struct MemSender {
    mesh: Arc<MemMesh>,
    me: u16,
}

/// The receive half of a [`MemTransport`] for one remote peer.
#[derive(Debug)]
pub struct MemReceiver {
    mesh: Arc<MemMesh>,
    me: u16,
    from: u16,
}

impl MemSender {
    /// Buffer-pool `(hits, misses)` across the whole mesh — a warm
    /// exchange recycles every frame buffer it ships.
    pub fn pool_stats(&self) -> (u64, u64) {
        mesh_pool_stats(&self.mesh)
    }
}

impl Transport for MemTransport {
    type Tx = MemSender;
    type Rx = MemReceiver;

    fn shard(&self) -> u16 {
        self.me
    }

    fn peers(&self) -> usize {
        self.mesh.n
    }

    fn split(self) -> io::Result<(MemSender, Vec<MemReceiver>)> {
        let rxs = (0..self.mesh.n as u16)
            .filter(|&from| from != self.me)
            .map(|from| MemReceiver {
                mesh: Arc::clone(&self.mesh),
                me: self.me,
                from,
            })
            .collect();
        let tx = MemSender {
            mesh: self.mesh,
            me: self.me,
        };
        Ok((tx, rxs))
    }
}

impl Sender for MemSender {
    fn shard(&self) -> u16 {
        self.me
    }

    fn peers(&self) -> usize {
        self.mesh.n
    }

    fn send(&mut self, to: u16, frame: &[u8]) -> io::Result<u64> {
        let n = self.mesh.n;
        if usize::from(to) >= n || to == self.me {
            return Err(TransportError::NoSuchPeer { peer: to }.into());
        }
        let mut msg = self
            .mesh
            .pool
            .lock()
            .map_err(|_| TransportError::Poisoned { what: "frame pool" })?
            .get(frame.len());
        msg.extend_from_slice(frame);
        // flowtune-lint: allow(panic, "bounded: to < n checked above, links holds n*n queues")
        let (queue, cv) = &self.mesh.links[usize::from(self.me) * n + usize::from(to)];
        queue
            .lock()
            .map_err(|_| TransportError::Poisoned { what: "peer queue" })?
            .push_back(msg);
        cv.notify_one();
        Ok(framed_wire_bytes(frame.len()))
    }
}

impl Receiver for MemReceiver {
    fn remote_peer(&self) -> u16 {
        self.from
    }

    fn recv(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> io::Result<Option<u64>> {
        let n = self.mesh.n;
        // flowtune-lint: allow(panic, "bounded: from < n held by construction, links holds n*n queues")
        let (queue, cv) = &self.mesh.links[usize::from(self.from) * n + usize::from(self.me)];
        let deadline = Instant::now() + timeout;
        let mut q = queue
            .lock()
            .map_err(|_| TransportError::Poisoned { what: "peer queue" })?;
        let msg = loop {
            if let Some(msg) = q.pop_front() {
                break msg;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            let (guard, wait) = cv
                .wait_timeout(q, left)
                .map_err(|_| TransportError::Poisoned { what: "peer queue" })?;
            q = guard;
            if wait.timed_out() && q.is_empty() {
                return Ok(None);
            }
        };
        drop(q);
        buf.clear();
        buf.extend_from_slice(&msg);
        let bytes = framed_wire_bytes(msg.len());
        self.mesh
            .pool
            .lock()
            .map_err(|_| TransportError::Poisoned { what: "frame pool" })?
            .put(msg);
        Ok(Some(bytes))
    }
}

// ---------------------------------------------------------------- socket

/// A bidirectional byte stream a [`SocketTransport`] can frame over:
/// Unix-domain or TCP stream sockets.
pub trait FrameStream: Read + Write + Send + std::fmt::Debug + 'static {
    /// Set the stream's read timeout (`None` = block forever).
    ///
    /// # Errors
    /// An [`io::Error`] from the socket layer.
    fn set_stream_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Duplicate the handle: both halves refer to the same underlying
    /// socket, which is what lets a receiver thread read while the tick
    /// loop writes (stream sockets are full-duplex).
    ///
    /// # Errors
    /// An [`io::Error`] from the socket layer.
    fn try_clone_stream(&self) -> io::Result<Self>
    where
        Self: Sized;
}

impl FrameStream for UnixStream {
    fn set_stream_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
}

impl FrameStream for TcpStream {
    fn set_stream_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
}

/// Did this read error mean "the timeout elapsed" (as opposed to a real
/// failure)? Both kinds occur depending on platform and socket family.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// How many consecutive mid-frame timeouts a read tolerates before
/// declaring the frame torn. A peer that started a frame finishes it
/// within a few timeout windows or is considered failed.
const MID_FRAME_RETRIES: u32 = 100;

/// Length-prefixed framing (u32 big-endian, then the frame) over one
/// [`FrameStream`] per peer. Built by [`uds_connect`] / [`tcp_connect`]
/// (one process per peer) or [`uds_mesh`] / [`tcp_mesh`] (all peers in
/// one process, for tests and benches).
#[derive(Debug)]
pub struct SocketTransport<S: FrameStream> {
    me: u16,
    /// Stream to each peer, `None` at the own index.
    streams: Vec<Option<S>>,
}

/// [`SocketTransport`] over Unix-domain sockets.
pub type UdsTransport = SocketTransport<UnixStream>;

/// [`SocketTransport`] over TCP (`TCP_NODELAY`; a frame per exchange
/// round must not sit in Nagle's buffer).
pub type TcpTransport = SocketTransport<TcpStream>;

/// The send half of a [`SocketTransport`]: the write side of every
/// peer's stream.
#[derive(Debug)]
pub struct SocketSender<S: FrameStream> {
    me: u16,
    /// Stream to each peer, `None` at the own index.
    streams: Vec<Option<S>>,
}

/// The receive half of a [`SocketTransport`] for one remote peer: a
/// duplicated handle of that peer's stream, read side only.
#[derive(Debug)]
pub struct SocketReceiver<S: FrameStream> {
    from: u16,
    stream: S,
    /// The read timeout currently applied to the socket, so a steady
    /// polling cadence costs one syscall, not one per poll.
    applied_timeout: Option<Duration>,
}

impl<S: FrameStream> SocketSender<S> {
    fn stream(&mut self, peer: u16) -> io::Result<&mut S> {
        self.streams
            .get_mut(usize::from(peer))
            .and_then(Option::as_mut)
            .ok_or_else(|| TransportError::NotConnected { peer }.into())
    }
}

/// Read exactly `out.len()` bytes. `None` means the timeout elapsed
/// before the first byte (only allowed when `allow_empty` — the start
/// of a frame); a timeout mid-buffer retries up to
/// [`MID_FRAME_RETRIES`] times and then errors (a torn frame).
fn read_full<S: FrameStream>(
    s: &mut S,
    out: &mut [u8],
    allow_empty: bool,
) -> io::Result<Option<()>> {
    let mut got = 0usize;
    let mut stalls = 0u32;
    while got < out.len() {
        // flowtune-lint: allow(panic, "bounded: got < out.len() holds by the loop condition")
        match s.read(&mut out[got..]) {
            Ok(0) => return Err(TransportError::PeerClosed.into()),
            Ok(k) => {
                got += k;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if got == 0 && allow_empty {
                    return Ok(None);
                }
                stalls += 1;
                if stalls > MID_FRAME_RETRIES {
                    return Err(TransportError::TornFrame.into());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(()))
}

impl<S: FrameStream> Transport for SocketTransport<S> {
    type Tx = SocketSender<S>;
    type Rx = SocketReceiver<S>;

    fn shard(&self) -> u16 {
        self.me
    }

    fn peers(&self) -> usize {
        self.streams.len()
    }

    fn split(self) -> io::Result<(SocketSender<S>, Vec<SocketReceiver<S>>)> {
        let mut rxs = Vec::new();
        for (from, slot) in self.streams.iter().enumerate() {
            if let Some(s) = slot {
                rxs.push(SocketReceiver {
                    from: from as u16,
                    stream: s.try_clone_stream()?,
                    applied_timeout: None,
                });
            }
        }
        let tx = SocketSender {
            me: self.me,
            streams: self.streams,
        };
        Ok((tx, rxs))
    }
}

impl<S: FrameStream> Sender for SocketSender<S> {
    fn shard(&self) -> u16 {
        self.me
    }

    fn peers(&self) -> usize {
        self.streams.len()
    }

    fn send(&mut self, to: u16, frame: &[u8]) -> io::Result<u64> {
        let len = u32::try_from(frame.len())
            .map_err(|_| TransportError::FrameTooLarge { len: frame.len() })?;
        let s = self.stream(to)?;
        s.write_all(&len.to_be_bytes())?;
        s.write_all(frame)?;
        s.flush()?;
        Ok(framed_wire_bytes(frame.len()))
    }
}

impl<S: FrameStream> Receiver for SocketReceiver<S> {
    fn remote_peer(&self) -> u16 {
        self.from
    }

    fn recv(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> io::Result<Option<u64>> {
        // A zero read timeout means "block forever" to the socket
        // layer; clamp to the smallest real window instead.
        let timeout = Some(timeout.max(Duration::from_millis(1)));
        if self.applied_timeout != timeout {
            self.stream.set_stream_timeout(timeout)?;
            self.applied_timeout = timeout;
        }
        let mut prefix = [0u8; 4];
        if read_full(&mut self.stream, &mut prefix, true)?.is_none() {
            return Ok(None);
        }
        let len = u32::from_be_bytes(prefix) as usize;
        buf.clear();
        buf.resize(len, 0);
        read_full(&mut self.stream, buf, false)?;
        Ok(Some(framed_wire_bytes(len)))
    }
}

/// Accept loop shared by the socket families: poll `accept` until
/// `expect` peers with ids above `me` have dialed in and identified
/// themselves with a 2-byte hello.
fn accept_highers<S: FrameStream, L>(
    listener: &L,
    accept: impl Fn(&L) -> io::Result<S>,
    streams: &mut [Option<S>],
    me: u16,
    deadline: Instant,
) -> io::Result<()> {
    let peers = streams.len() as u16;
    let expect = usize::from(peers - 1 - me);
    let mut accepted = 0;
    while accepted < expect {
        match accept(listener) {
            Ok(mut s) => {
                s.set_stream_timeout(Some(SETUP_TIMEOUT))?;
                let mut hello = [0u8; 2];
                read_full(&mut s, &mut hello, false)?;
                let who = u16::from_be_bytes(hello);
                if who <= me || who >= peers {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "peer hello names shard {who}, expected one in {}..{peers}",
                            me + 1
                        ),
                    ));
                }
                let slot = &mut streams[usize::from(who)];
                if slot.is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shard {who} dialed twice"),
                    ));
                }
                *slot = Some(s);
                accepted += 1;
            }
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("only {accepted}/{expect} higher peers dialed in"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Dial with retries until `deadline` — the lower-id peer may not have
/// bound its listener yet.
fn dial_until<S>(deadline: Instant, connect: impl Fn() -> io::Result<S>) -> io::Result<S> {
    loop {
        match connect() {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// The socket path peer `shard` listens on under `dir`.
pub fn uds_socket_path(dir: &Path, shard: u16) -> std::path::PathBuf {
    dir.join(format!("peer{shard}.sock"))
}

/// Join (or bootstrap) a Unix-domain socket mesh as shard `shard` of
/// `peers`: bind `dir/peer<shard>.sock`, dial every lower-id peer
/// (retrying until it binds), accept every higher-id one. Blocks until
/// the mesh is fully connected or [`SETUP_TIMEOUT`] expires.
///
/// # Errors
/// Binding, dialing or accepting failed, or a peer never showed.
///
/// # Panics
/// Panics if `shard >= peers` or `peers` is 0.
pub fn uds_connect(dir: &Path, shard: u16, peers: u16) -> io::Result<UdsTransport> {
    assert!(peers > 0, "a mesh needs at least one peer");
    assert!(
        shard < peers,
        "shard {shard} out of range for {peers} peers"
    );
    let deadline = Instant::now() + SETUP_TIMEOUT;
    let path = uds_socket_path(dir, shard);
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path)?;
    listener.set_nonblocking(true)?;
    let mut streams: Vec<Option<UnixStream>> = (0..peers).map(|_| None).collect();
    for j in 0..shard {
        let peer_path = uds_socket_path(dir, j);
        let mut s = dial_until(deadline, || UnixStream::connect(&peer_path))?;
        s.write_all(&shard.to_be_bytes())?;
        s.flush()?;
        streams[usize::from(j)] = Some(s);
    }
    accept_highers(
        &listener,
        |l: &UnixListener| {
            let (s, _) = l.accept()?;
            s.set_nonblocking(false)?;
            Ok(s)
        },
        &mut streams,
        shard,
        deadline,
    )?;
    Ok(SocketTransport { me: shard, streams })
}

/// [`uds_connect`] with every loopback peer on `127.0.0.1:base_port +
/// shard` instead of a socket file. `TCP_NODELAY` is set on every
/// stream.
///
/// # Errors
/// Binding, dialing or accepting failed, or a peer never showed.
///
/// # Panics
/// Panics if `shard >= peers` or `peers` is 0.
pub fn tcp_connect(base_port: u16, shard: u16, peers: u16) -> io::Result<TcpTransport> {
    assert!(peers > 0, "a mesh needs at least one peer");
    assert!(
        shard < peers,
        "shard {shard} out of range for {peers} peers"
    );
    let deadline = Instant::now() + SETUP_TIMEOUT;
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, base_port + shard))?;
    listener.set_nonblocking(true)?;
    let mut streams: Vec<Option<TcpStream>> = (0..peers).map(|_| None).collect();
    for j in 0..shard {
        let addr = (Ipv4Addr::LOCALHOST, base_port + j);
        let mut s = dial_until(deadline, || TcpStream::connect(addr))?;
        s.set_nodelay(true)?;
        s.write_all(&shard.to_be_bytes())?;
        s.flush()?;
        streams[usize::from(j)] = Some(s);
    }
    accept_highers(
        &listener,
        |l: &TcpListener| {
            let (s, _) = l.accept()?;
            s.set_nonblocking(false)?;
            s.set_nodelay(true)?;
            Ok(s)
        },
        &mut streams,
        shard,
        deadline,
    )?;
    Ok(SocketTransport { me: shard, streams })
}

/// Build a whole Unix-domain socket mesh inside one process (a thread
/// per peer runs [`uds_connect`]; dialing and accepting concurrently is
/// what avoids the bootstrap deadlock). For tests and benches.
///
/// # Errors
/// Any peer's [`uds_connect`] failed.
///
/// # Panics
/// Panics if `n` is 0 or a setup thread panicked.
pub fn uds_mesh(dir: &Path, n: u16) -> io::Result<Vec<UdsTransport>> {
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let dir = dir.to_path_buf();
            std::thread::spawn(move || uds_connect(&dir, i, n))
        })
        .collect();
    handles
        .into_iter()
        // A panic in a setup thread is a bug in this module, not a peer
        // failure; propagating it is the honest report.
        .map(|h| h.join().expect("mesh setup thread panicked"))
        .collect()
}

/// [`uds_mesh`] over loopback TCP at `base_port..base_port + n`.
///
/// # Errors
/// Any peer's [`tcp_connect`] failed.
///
/// # Panics
/// Panics if `n` is 0 or a setup thread panicked.
pub fn tcp_mesh(base_port: u16, n: u16) -> io::Result<Vec<TcpTransport>> {
    let handles: Vec<_> = (0..n)
        .map(|i| std::thread::spawn(move || tcp_connect(base_port, i, n)))
        .collect();
    handles
        .into_iter()
        // A panic in a setup thread is a bug in this module, not a peer
        // failure; propagating it is the honest report.
        .map(|h| h.join().expect("mesh setup thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_pair<T: Transport>(a: T, b: T) {
        // Split both endpoints into their halves: the send half plus
        // one receive half per remote peer (here exactly one each).
        let (mut a_tx, mut a_rxs) = a.split().unwrap();
        let (mut b_tx, mut b_rxs) = b.split().unwrap();
        let a_rx = &mut a_rxs[0]; // receives from shard 1
        let b_rx = &mut b_rxs[0]; // receives from shard 0
        assert_eq!(a_rx.remote_peer(), 1);
        assert_eq!(b_rx.remote_peer(), 0);
        let frame = vec![0xA5u8; 300];
        let sent = a_tx.send(1, &frame).unwrap();
        assert_eq!(sent, framed_wire_bytes(300));
        let mut buf = Vec::new();
        let got = b_rx
            .recv(&mut buf, Duration::from_secs(2))
            .unwrap()
            .expect("frame was sent");
        assert_eq!(got, sent);
        assert_eq!(buf, frame);
        // The reverse direction is independent.
        b_tx.send(0, &[1, 2, 3]).unwrap();
        let mut buf2 = Vec::new();
        a_rx.recv(&mut buf2, Duration::from_secs(2)).unwrap();
        assert_eq!(buf2, [1, 2, 3]);
        // An empty timeout window reports a late round, not an error.
        assert_eq!(
            a_rx.recv(&mut buf2, Duration::from_millis(5)).unwrap(),
            None
        );
    }

    #[test]
    fn mem_mesh_roundtrips_and_times_out() {
        let mut endpoints = mem_mesh(2);
        let b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        roundtrip_pair(a, b);
    }

    #[test]
    fn mem_mesh_preserves_frame_order_and_recycles_buffers() {
        let mut endpoints = mem_mesh(2);
        let b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        let (mut a_tx, _a_rxs) = a.split().unwrap();
        let (_b_tx, mut b_rxs) = b.split().unwrap();
        let b_rx = &mut b_rxs[0];
        let mut buf = Vec::new();
        for round in 0..10u8 {
            a_tx.send(1, &[round; 64]).unwrap();
            b_rx.recv(&mut buf, Duration::from_secs(1)).unwrap();
            assert_eq!(buf, [round; 64]);
        }
        let (hits, misses) = a_tx.pool_stats();
        assert!(hits >= 8, "warm frames must recycle: {hits} hits");
        assert!(misses <= 2, "{misses} misses");
    }

    #[test]
    fn mem_mesh_rejects_self_and_out_of_range_peers() {
        let mut endpoints = mem_mesh(2);
        let a = endpoints.remove(0);
        let (mut tx, rxs) = a.split().unwrap();
        assert!(tx.send(0, &[1]).is_err(), "self-send");
        assert!(tx.send(7, &[1]).is_err(), "out of range");
        // The split yields no receive half for the own slot — only the
        // one remote peer's.
        assert_eq!(rxs.len(), 1);
        assert_eq!(rxs[0].remote_peer(), 1);
    }

    #[test]
    fn uds_mesh_roundtrips() {
        let dir = std::env::temp_dir().join(format!("flowtune-uds-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut endpoints = uds_mesh(&dir, 2).unwrap();
        let b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        roundtrip_pair(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uds_three_peer_mesh_is_fully_connected() {
        let dir = std::env::temp_dir().join(format!("flowtune-uds3-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mesh = uds_mesh(&dir, 3).unwrap();
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for t in mesh {
            let (tx, rx) = t.split().unwrap();
            txs.push(tx);
            rxs.push(rx);
        }
        // Every ordered pair carries its own frames.
        let mut buf = Vec::new();
        for from in 0..3u16 {
            for to in 0..3u16 {
                if from == to {
                    continue;
                }
                let payload = [from as u8, to as u8, 0xEE];
                txs[usize::from(from)].send(to, &payload).unwrap();
                let rx = rxs[usize::from(to)]
                    .iter_mut()
                    .find(|r| r.remote_peer() == from)
                    .expect("a receive half per remote peer");
                rx.recv(&mut buf, Duration::from_secs(2))
                    .unwrap()
                    .expect("frame was sent");
                assert_eq!(buf, payload);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_mesh_roundtrips() {
        // Find a free base port pair, racing rarely enough for a test:
        // bind an ephemeral listener, reuse its port as the base.
        let mut endpoints = None;
        for _ in 0..10 {
            let probe = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
            let base = probe.local_addr().unwrap().port();
            drop(probe);
            if let Ok(m) = tcp_mesh(base, 2) {
                endpoints = Some(m);
                break;
            }
        }
        let mut endpoints = endpoints.expect("no free port pair after 10 probes");
        let b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        roundtrip_pair(a, b);
    }
}
