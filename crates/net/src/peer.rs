//! One shard of the distributed control plane: a full
//! [`AllocatorService`] plus the exchange protocol run over a real
//! [`Transport`].
//!
//! A [`ShardPeer`] is the distributed twin of one shard inside the
//! in-process `ShardedService`: it owns the same [`ExchangeCore`]
//! state machine, so an exchange round is the same three calls —
//! export-and-broadcast ([`ShardPeer::tick_export`]), apply every
//! peer's frame, install ([`ShardPeer::exchange_finish`]) — with the
//! frames now crossing a wire instead of a `Vec` slice. When every
//! peer's frame for the round arrives in time, the arithmetic is
//! bit-for-bit identical to the in-process service; when a peer's frame
//! is **late or lost**, the round installs from the last state that
//! peer shipped (the replica simply is not updated), the miss is
//! counted in [`WireStats::late_rounds`], and the next frame that does
//! arrive heals the replica — the same degrade-to-stale-background
//! behavior a larger exchange cadence produces on purpose.
//!
//! The peer reports two byte counts: the *logical* hub-model accounting
//! (`ServiceStats::exchange_bytes`, identical to in-process) and the
//! actual on-wire bytes its transport moved ([`WireStats`]), frame
//! headers, record tags and length prefixes included.

use std::io;
use std::time::Duration;

use flowtune::{AllocatorService, ExchangeCore, FlowMigration, ServiceError, ServiceStats};
use flowtune_alloc::{RateAllocator, SerialAllocator};
use flowtune_proto::exchange::{
    decode_header, encode_header, encode_record, FrameHeader, FrameKind, Record, RecordIter,
};
use flowtune_proto::{Message, Token};

use crate::transport::Transport;

/// On-wire counters of one peer's transport use (separate from the
/// logical `ServiceStats::exchange_bytes` accounting — see the module
/// docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Bytes shipped to peers (length prefixes included).
    pub tx_bytes: u64,
    /// Bytes received from peers (length prefixes included).
    pub rx_bytes: u64,
    /// Frames shipped.
    pub tx_frames: u64,
    /// Frames received.
    pub rx_frames: u64,
    /// Exchange rounds in which at least one peer's frame missed the
    /// round timeout and the round installed from last-shipped state.
    pub late_rounds: u64,
}

/// One shard's allocator service plus its side of the wire exchange.
#[derive(Debug)]
pub struct ShardPeer<T: Transport, E: RateAllocator = SerialAllocator> {
    svc: AllocatorService<E>,
    core: ExchangeCore,
    transport: T,
    exchange_every: u64,
    round_timeout: Duration,
    ticks: u64,
    /// An exchange round was exported this tick and awaits
    /// [`ShardPeer::exchange_finish`].
    round_due: bool,
    // Reusable export/frame scratch: the encode path allocates nothing
    // once these are warm.
    loads: Vec<f64>,
    hessians: Vec<f64>,
    prices: Vec<f64>,
    frame_buf: Vec<u8>,
    recv_buf: Vec<u8>,
    /// This peer's exchange counters (rounds, logical bytes, decode
    /// errors) — the distributed share of what the in-process routing
    /// layer counts centrally.
    local: ServiceStats,
    wire: WireStats,
}

impl<T: Transport, E: RateAllocator> ShardPeer<T, E> {
    /// Wrap `svc` as the shard `transport.shard()` peer of a
    /// `transport.peers()`-shard cluster. The exchange cadence and
    /// delta filter come from the service's configuration;
    /// `round_timeout` bounds how long [`ShardPeer::exchange_finish`]
    /// waits per peer before falling back to last-installed state.
    pub fn new(svc: AllocatorService<E>, transport: T, round_timeout: Duration) -> Self {
        let cfg = svc.config();
        let core = ExchangeCore::new(transport.shard(), transport.peers(), cfg.exchange_delta_eps);
        ShardPeer {
            svc,
            core,
            transport,
            exchange_every: cfg.exchange_every,
            round_timeout,
            ticks: 0,
            round_due: false,
            loads: Vec::new(),
            hessians: Vec::new(),
            prices: Vec::new(),
            frame_buf: Vec::new(),
            recv_buf: Vec::new(),
            local: ServiceStats::default(),
            wire: WireStats::default(),
        }
    }

    /// This peer's shard id.
    pub fn shard(&self) -> u16 {
        self.transport.shard()
    }

    /// Total peers in the cluster, this one included.
    pub fn peers(&self) -> usize {
        self.transport.peers()
    }

    /// Ticks driven so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The wrapped allocator service (message intake for flows this
    /// shard owns goes through here).
    pub fn service(&self) -> &AllocatorService<E> {
        &self.svc
    }

    /// Mutable access to the wrapped service.
    pub fn service_mut(&mut self) -> &mut AllocatorService<E> {
        &mut self.svc
    }

    /// Hand an endpoint notification to this shard's service.
    ///
    /// # Errors
    /// The service's [`ServiceError`]; the message is dropped and
    /// counted.
    pub fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        self.svc.on_message(msg)
    }

    /// On-wire transport counters.
    pub fn wire_stats(&self) -> WireStats {
        self.wire
    }

    /// This peer's exchange counters alone (logical bytes, rounds,
    /// decode errors) — what a cluster aggregates across peers.
    pub fn exchange_stats(&self) -> ServiceStats {
        self.local
    }

    /// The service's counters plus this peer's exchange counters — the
    /// per-shard slice of what `ShardedService::stats` reports for the
    /// whole in-process cluster.
    pub fn stats(&self) -> ServiceStats {
        let mut total = self.svc.stats();
        total.exchange_rounds += self.local.exchange_rounds;
        total.exchange_bytes += self.local.exchange_bytes;
        total.exchange_decode_errors += self.local.exchange_decode_errors;
        total
    }

    /// Phase 1 of a tick: run the service's allocator tick and, when an
    /// exchange round is due, export this shard's link state, encode
    /// one frame and broadcast it to every peer. Returns the tick's
    /// rate-update stream. Must be followed by
    /// [`ShardPeer::exchange_finish`] before the next tick.
    ///
    /// # Errors
    /// A transport send failed; the tick's allocator work is done, the
    /// exchange round is abandoned.
    pub fn tick_export(&mut self) -> io::Result<Vec<(u16, Message)>> {
        self.ticks += 1;
        let updates = self.svc.tick();
        let due = self.exchange_every > 0
            && self.transport.peers() > 1
            && self.ticks.is_multiple_of(self.exchange_every);
        self.round_due = due;
        if due {
            self.svc.link_loads_into(&mut self.loads);
            self.svc.link_hessians_into(&mut self.hessians);
            self.svc.link_prices_into(&mut self.prices);
            self.frame_buf.clear();
            self.core.begin_round(
                self.ticks,
                &self.loads,
                &self.hessians,
                &self.prices,
                &mut self.frame_buf,
            );
            self.broadcast_frame_buf()?;
        }
        Ok(updates)
    }

    /// Phase 2 of a tick: collect every peer's frame for the round
    /// (draining any older frames first), apply them to the replicas,
    /// and install the recomputed aggregation into the service. A peer
    /// whose frame does not arrive within the round timeout is skipped
    /// for the round — the install proceeds from the last background
    /// state that peer shipped, and [`WireStats::late_rounds`] counts
    /// the miss. Corrupt frames are counted in
    /// `ServiceStats::exchange_decode_errors` and dropped. A no-op
    /// when no round is due.
    ///
    /// # Errors
    /// A transport receive failed (a torn frame or closed stream —
    /// timeouts are handled, not errors).
    pub fn exchange_finish(&mut self) -> io::Result<()> {
        if !self.round_due {
            return Ok(());
        }
        self.round_due = false;
        let me = self.transport.shard();
        for p in 0..self.transport.peers() as u16 {
            if p == me {
                continue;
            }
            loop {
                match self
                    .transport
                    .recv(p, &mut self.recv_buf, self.round_timeout)?
                {
                    None => {
                        // Late round: install from this peer's
                        // last-shipped state; its next frame heals the
                        // replica.
                        self.wire.late_rounds += 1;
                        break;
                    }
                    Some(bytes) => {
                        self.wire.rx_bytes += bytes;
                        self.wire.rx_frames += 1;
                        let round = match decode_header(&self.recv_buf) {
                            Ok(header) => header.round,
                            Err(_) => {
                                self.local.exchange_decode_errors += 1;
                                continue;
                            }
                        };
                        if self.core.apply_frame(&self.recv_buf).is_err() {
                            self.local.exchange_decode_errors += 1;
                        }
                        if round >= self.ticks {
                            break;
                        }
                        // An older round's frame (we fell behind or the
                        // peer recovered): applied for its state, keep
                        // draining toward the current round.
                    }
                }
            }
        }
        if let Some(bytes) = self.core.install(&mut self.svc) {
            self.local.exchange_rounds += 1;
            self.local.exchange_bytes += bytes;
        }
        Ok(())
    }

    /// One whole tick: [`ShardPeer::tick_export`] +
    /// [`ShardPeer::exchange_finish`]. For lockstep drivers; split the
    /// phases when overlapping several peers in one thread.
    ///
    /// # Errors
    /// Either phase's transport error.
    pub fn tick(&mut self) -> io::Result<Vec<(u16, Message)>> {
        let updates = self.tick_export()?;
        self.exchange_finish()?;
        Ok(updates)
    }

    /// Announce a placement epoch: broadcast an epoch frame carrying
    /// this shard's leaving flows (each with the shard that adopts it)
    /// and mark the exchange for a catch-up resync, exactly as the
    /// in-process `ShardedService::replace` does. The counterpart
    /// [`ShardPeer::gather_epoch`] must run on every peer.
    ///
    /// # Errors
    /// A transport send failed.
    pub fn broadcast_epoch(
        &mut self,
        epoch: u64,
        leavers: &[(FlowMigration, u16)],
    ) -> io::Result<()> {
        self.frame_buf.clear();
        encode_header(
            &FrameHeader {
                kind: FrameKind::Epoch,
                shard: self.transport.shard(),
                round: self.ticks,
                n_links: 0,
                active: false,
                has_hessians: false,
            },
            &mut self.frame_buf,
        );
        encode_record(&Record::EpochBegin { epoch }, false, &mut self.frame_buf);
        for &(m, dst_shard) in leavers {
            encode_record(
                &Record::Migration {
                    token: m.token.get(),
                    src: m.src,
                    dst: m.dst,
                    weight_q8: m.weight_q8,
                    spine: m.spine,
                    dst_shard,
                },
                false,
                &mut self.frame_buf,
            );
        }
        self.broadcast_frame_buf()?;
        self.core.request_resync();
        Ok(())
    }

    /// Collect one epoch frame from every peer, appending the
    /// migrations addressed to this shard to `adopt` (unsorted; the
    /// caller orders and adopts them). Stray state frames received
    /// while waiting are applied to the replicas as usual.
    ///
    /// # Errors
    /// A transport failure, or a peer whose epoch frame never arrived
    /// within the round timeout — an epoch is a barrier, so unlike a
    /// state round it cannot proceed without everyone.
    pub fn gather_epoch(&mut self, adopt: &mut Vec<FlowMigration>) -> io::Result<()> {
        let me = self.transport.shard();
        for p in 0..self.transport.peers() as u16 {
            if p == me {
                continue;
            }
            loop {
                match self
                    .transport
                    .recv(p, &mut self.recv_buf, self.round_timeout)?
                {
                    None => {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("epoch frame from shard {p} never arrived"),
                        ))
                    }
                    Some(bytes) => {
                        self.wire.rx_bytes += bytes;
                        self.wire.rx_frames += 1;
                        let (header, records) = match RecordIter::new(&self.recv_buf) {
                            Ok(decoded) => decoded,
                            Err(_) => {
                                self.local.exchange_decode_errors += 1;
                                continue;
                            }
                        };
                        if header.kind != FrameKind::Epoch {
                            if self.core.apply_frame(&self.recv_buf).is_err() {
                                self.local.exchange_decode_errors += 1;
                            }
                            continue;
                        }
                        for record in records {
                            match record {
                                Ok(Record::Migration {
                                    token,
                                    src,
                                    dst,
                                    weight_q8,
                                    spine,
                                    dst_shard,
                                }) if dst_shard == me => adopt.push(FlowMigration {
                                    token: Token::new(token),
                                    src,
                                    dst,
                                    weight_q8,
                                    spine,
                                }),
                                Ok(_) => {}
                                Err(_) => {
                                    self.local.exchange_decode_errors += 1;
                                    break;
                                }
                            }
                        }
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    fn broadcast_frame_buf(&mut self) -> io::Result<()> {
        let me = self.transport.shard();
        for p in 0..self.transport.peers() as u16 {
            if p == me {
                continue;
            }
            let bytes = self.transport.send(p, &self.frame_buf)?;
            self.wire.tx_bytes += bytes;
            self.wire.tx_frames += 1;
        }
        Ok(())
    }
}
