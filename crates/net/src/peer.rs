//! One shard of the distributed control plane: a full
//! [`AllocatorService`] plus the exchange protocol run over a real
//! [`Transport`] — receiver-driven, so a slow peer degrades its own
//! freshness instead of stalling everyone's tick.
//!
//! A [`ShardPeer`] is the distributed twin of one shard inside the
//! in-process `ShardedService`: it owns the same [`ExchangeCore`]
//! state machine, so an exchange round is the same shape — export and
//! broadcast, apply every peer's frame, install — with the frames now
//! crossing a wire instead of a `Vec` slice. The phases are an explicit
//! session type: [`ShardPeer::begin_round`] ticks the allocator and
//! broadcasts this shard's frame, and the [`ExchangeRound`] it returns
//! must be [`finish`](ExchangeRound::finish)ed before the next tick —
//! the borrow makes misordering a compile error.
//!
//! Receiving is asynchronous: a [`RecvRuntime`] thread per remote peer
//! drains that peer's frames into a mailbox as they arrive, and the
//! barrier inside [`ExchangeRound::finish`] installs **the freshest
//! state each mailbox holds** rather than blocking per socket:
//!
//! * a peer that was fresh last round is waited for (up to the round
//!   timeout) — in a healthy cluster frames are already buffered and
//!   the wait is a mailbox handoff, which is what keeps the on-time
//!   path bit-for-bit identical to the old blocking lockstep;
//! * a peer that already missed a barrier is only *polled* — its missed
//!   rounds cost nothing, the round installs from the last state it
//!   shipped, and [`WireStats`] reports how far behind it is
//!   ([`PeerLag::rounds_behind`]);
//! * a peer that has been stale for
//!   [`ExchangeConfig::max_rounds_behind`] consecutive barriers is
//!   waited for again each round, so a free-running cluster cannot
//!   drift unboundedly ahead of a laggard's state.
//!
//! The peer reports two byte counts: the *logical* hub-model accounting
//! (`ServiceStats::exchange_bytes`, identical to in-process) and the
//! actual on-wire bytes its transport moved ([`WireStats`]), frame
//! headers, record tags and length prefixes included — now with a
//! per-peer receive/staleness breakdown.

use std::io;
use std::time::Instant;

use flowtune::{
    AllocatorService, ExchangeConfig, ExchangeCore, FlowMigration, ServiceError, ServiceStats,
};
use flowtune_alloc::{RateAllocator, SerialAllocator};
use flowtune_proto::exchange::{
    decode_header, encode_header, encode_record, FrameHeader, FrameKind, Record, RecordIter,
};
use flowtune_proto::{Message, Token};

use crate::runtime::{Polled, RecvRuntime};
use crate::transport::{Sender, Transport, TransportError};

/// What went wrong driving a peer's exchange. Layered over
/// [`TransportError`]: transport-level faults keep their typed cause,
/// OS-level ones carry the raw [`io::Error`], and the
/// `From<PeerError> for io::Error` shim lets callers that still speak
/// `io::Result` migrate incrementally.
#[derive(Debug)]
pub enum PeerError {
    /// The transport failed moving a frame to or from `peer`.
    Transport {
        /// The remote peer involved.
        peer: u16,
        /// The typed transport-level cause.
        error: TransportError,
    },
    /// An OS-level I/O failure on the link to `peer`.
    Io {
        /// The remote peer involved.
        peer: u16,
        /// The raw cause.
        error: io::Error,
    },
    /// `peer`'s epoch frame never arrived. An epoch is a barrier —
    /// unlike a state round it cannot degrade to stale state.
    EpochTimeout {
        /// The peer whose epoch frame is missing.
        peer: u16,
    },
    /// `peer`'s receiver thread is gone and its mailbox is empty; the
    /// terminal cause was already reported.
    ReceiverGone {
        /// The peer whose receive path died.
        peer: u16,
    },
    /// Splitting the transport into its halves failed at construction.
    Setup {
        /// The raw cause.
        error: io::Error,
    },
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Transport { peer, error } => write!(f, "peer {peer}: {error}"),
            PeerError::Io { peer, error } => write!(f, "peer {peer}: {error}"),
            PeerError::EpochTimeout { peer } => {
                write!(f, "epoch frame from peer {peer} never arrived")
            }
            PeerError::ReceiverGone { peer } => {
                write!(f, "receive path to peer {peer} is gone")
            }
            PeerError::Setup { error } => write!(f, "transport split failed: {error}"),
        }
    }
}

impl std::error::Error for PeerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PeerError::Transport { error, .. } => Some(error),
            PeerError::Io { error, .. } | PeerError::Setup { error } => Some(error),
            PeerError::EpochTimeout { .. } | PeerError::ReceiverGone { .. } => None,
        }
    }
}

impl From<PeerError> for io::Error {
    fn from(e: PeerError) -> io::Error {
        let kind = match &e {
            PeerError::Transport { error, .. } => io::Error::from(*error).kind(),
            PeerError::Io { error, .. } | PeerError::Setup { error } => error.kind(),
            PeerError::EpochTimeout { .. } => io::ErrorKind::TimedOut,
            PeerError::ReceiverGone { .. } => io::ErrorKind::BrokenPipe,
        };
        io::Error::new(kind, e)
    }
}

/// Re-type an `io::Error` from a transport call: recover the
/// [`TransportError`] it carries when there is one.
fn io_to_peer(peer: u16, e: io::Error) -> PeerError {
    match e.get_ref().and_then(|r| r.downcast_ref::<TransportError>()) {
        Some(&error) => PeerError::Transport { peer, error },
        None => PeerError::Io { peer, error: e },
    }
}

/// One remote peer's receive/staleness view, as reported in
/// [`WireStats::peers`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerLag {
    /// The remote peer's shard id.
    pub peer: u16,
    /// Consecutive exchange barriers this peer has missed. `0` means it
    /// was fresh at the latest barrier.
    pub rounds_behind: u64,
    /// The worst `rounds_behind` observed over the peer's lifetime —
    /// the high-water mark a post-run report reads after the laggard
    /// has recovered.
    pub peak_rounds_behind: u64,
    /// The last round (tick number) at which this peer's frame arrived
    /// in time for the barrier.
    pub last_fresh_round: u64,
    /// Bytes received from this peer (length prefixes included),
    /// counted at mailbox arrival.
    pub rx_bytes: u64,
    /// Frames received from this peer, counted at mailbox arrival.
    pub rx_frames: u64,
}

/// On-wire counters of one peer's transport use (separate from the
/// logical `ServiceStats::exchange_bytes` accounting — see the module
/// docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Bytes shipped to peers (length prefixes included).
    pub tx_bytes: u64,
    /// Bytes received from peers (length prefixes included).
    pub rx_bytes: u64,
    /// Frames shipped.
    pub tx_frames: u64,
    /// Frames received.
    pub rx_frames: u64,
    /// Exchange rounds in which at least one peer's frame missed the
    /// barrier and the round installed from last-shipped state.
    pub late_rounds: u64,
    /// Per-remote-peer receive and staleness breakdown, ascending by
    /// shard id.
    pub peers: Vec<PeerLag>,
}

impl WireStats {
    /// How many consecutive barriers `peer` has missed, or `None` if
    /// `peer` is not a remote peer of this endpoint.
    pub fn rounds_behind(&self, peer: u16) -> Option<u64> {
        self.peers
            .iter()
            .find(|l| l.peer == peer)
            .map(|l| l.rounds_behind)
    }

    /// The worst staleness across remote peers (0 when everyone was
    /// fresh at the latest barrier).
    pub fn max_rounds_behind(&self) -> u64 {
        self.peers
            .iter()
            .map(|l| l.rounds_behind)
            .max()
            .unwrap_or(0)
    }

    /// The worst staleness any remote peer ever reached (the high-water
    /// mark survives recovery).
    pub fn max_peak_rounds_behind(&self) -> u64 {
        self.peers
            .iter()
            .map(|l| l.peak_rounds_behind)
            .max()
            .unwrap_or(0)
    }
}

/// Per-slot staleness bookkeeping behind [`PeerLag`].
#[derive(Debug, Clone, Copy, Default)]
struct SlotLag {
    rounds_behind: u64,
    peak_rounds_behind: u64,
    last_fresh_round: u64,
    /// Newest state-frame round ever applied from this peer. Carried
    /// across barriers: a free-running peer's frame for round `T+1` can
    /// be swept up during barrier `T`, and must still satisfy barrier
    /// `T+1` when it comes.
    freshest_round: u64,
}

/// One shard's allocator service plus its side of the wire exchange.
#[derive(Debug)]
pub struct ShardPeer<T: Transport, E: RateAllocator = SerialAllocator> {
    svc: AllocatorService<E>,
    core: ExchangeCore,
    tx: T::Tx,
    rt: RecvRuntime,
    exchange: ExchangeConfig,
    ticks: u64,
    /// An exchange round was exported this tick and awaits its barrier.
    round_due: bool,
    // Reusable export/frame scratch: the encode path allocates nothing
    // once these are warm.
    loads: Vec<f64>,
    hessians: Vec<f64>,
    prices: Vec<f64>,
    frame_buf: Vec<u8>,
    /// Per-mailbox-slot staleness bookkeeping.
    lag: Vec<SlotLag>,
    /// Epoch frames the barrier set aside for [`ShardPeer::gather_epoch`],
    /// per mailbox slot.
    epoch_stash: Vec<std::collections::VecDeque<Vec<u8>>>,
    /// This peer's exchange counters (rounds, logical bytes, decode
    /// errors) — the distributed share of what the in-process routing
    /// layer counts centrally.
    local: ServiceStats,
    /// Send-side wire counters; the receive side lives in the runtime's
    /// mailboxes.
    tx_bytes: u64,
    tx_frames: u64,
    late_rounds: u64,
}

impl<T: Transport, E: RateAllocator> ShardPeer<T, E> {
    /// Wrap `svc` as the shard `transport.shard()` peer of a
    /// `transport.peers()`-shard cluster, splitting the transport and
    /// spawning the receiver runtime. The exchange cadence, delta
    /// filter, barrier timeout and staleness bound all come from
    /// `exchange` ([`ExchangeConfig::from_flowtune`] lifts them from a
    /// service's flat config).
    ///
    /// # Errors
    /// [`PeerError::Setup`] when splitting the transport fails.
    pub fn new(
        svc: AllocatorService<E>,
        transport: T,
        exchange: ExchangeConfig,
    ) -> Result<Self, PeerError> {
        let shard = transport.shard();
        let peers = transport.peers();
        let core = ExchangeCore::new(shard, peers, exchange.delta_eps);
        let (tx, rxs) = transport
            .split()
            .map_err(|error| PeerError::Setup { error })?;
        let slots = rxs.len();
        let rt = RecvRuntime::spawn(rxs);
        Ok(ShardPeer {
            svc,
            core,
            tx,
            rt,
            exchange,
            ticks: 0,
            round_due: false,
            loads: Vec::new(),
            hessians: Vec::new(),
            prices: Vec::new(),
            frame_buf: Vec::new(),
            lag: vec![SlotLag::default(); slots],
            epoch_stash: (0..slots)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            local: ServiceStats::default(),
            tx_bytes: 0,
            tx_frames: 0,
            late_rounds: 0,
        })
    }

    /// This peer's shard id.
    pub fn shard(&self) -> u16 {
        self.tx.shard()
    }

    /// Total peers in the cluster, this one included.
    pub fn peers(&self) -> usize {
        self.tx.peers()
    }

    /// Ticks driven so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The exchange configuration this peer runs under.
    pub fn exchange_config(&self) -> ExchangeConfig {
        self.exchange
    }

    /// The wrapped allocator service (message intake for flows this
    /// shard owns goes through here).
    pub fn service(&self) -> &AllocatorService<E> {
        &self.svc
    }

    /// Mutable access to the wrapped service.
    pub fn service_mut(&mut self) -> &mut AllocatorService<E> {
        &mut self.svc
    }

    /// Hand an endpoint notification to this shard's service.
    ///
    /// # Errors
    /// The service's [`ServiceError`]; the message is dropped and
    /// counted.
    pub fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        self.svc.on_message(msg)
    }

    /// On-wire transport counters, including the per-peer
    /// receive/staleness breakdown.
    pub fn wire_stats(&self) -> WireStats {
        let mut ws = WireStats {
            tx_bytes: self.tx_bytes,
            tx_frames: self.tx_frames,
            late_rounds: self.late_rounds,
            rx_bytes: 0,
            rx_frames: 0,
            peers: Vec::with_capacity(self.lag.len()),
        };
        for (slot, (&peer, lag)) in self.rt.peers().iter().zip(&self.lag).enumerate() {
            let (rx_bytes, rx_frames) = self.rt.rx_counters(slot);
            ws.rx_bytes += rx_bytes;
            ws.rx_frames += rx_frames;
            ws.peers.push(PeerLag {
                peer,
                rounds_behind: lag.rounds_behind,
                peak_rounds_behind: lag.peak_rounds_behind,
                last_fresh_round: lag.last_fresh_round,
                rx_bytes,
                rx_frames,
            });
        }
        ws
    }

    /// This peer's exchange counters alone (logical bytes, rounds,
    /// decode errors) — what a cluster aggregates across peers.
    pub fn exchange_stats(&self) -> ServiceStats {
        self.local
    }

    /// The service's counters plus this peer's exchange counters — the
    /// per-shard slice of what `ShardedService::stats` reports for the
    /// whole in-process cluster.
    pub fn stats(&self) -> ServiceStats {
        let mut total = self.svc.stats();
        total.exchange_rounds += self.local.exchange_rounds;
        total.exchange_bytes += self.local.exchange_bytes;
        total.exchange_decode_errors += self.local.exchange_decode_errors;
        total
    }

    /// Start one tick: run the allocator, and when an exchange round is
    /// due, export this shard's link state and broadcast it. The
    /// returned [`ExchangeRound`] borrows this peer until
    /// [`finish`](ExchangeRound::finish)ed — the barrier and install
    /// happen there, and no second round can begin meanwhile.
    ///
    /// # Errors
    /// A [`PeerError`] from a broadcast send (the tick's allocator work
    /// is done, the round is abandoned) or from a previous round left
    /// unfinished (it is caught up first).
    pub fn begin_round(&mut self) -> Result<ExchangeRound<'_, T, E>, PeerError> {
        let updates = self.tick_export()?;
        Ok(ExchangeRound {
            peer: self,
            updates,
        })
    }

    /// One whole tick: allocator, broadcast, barrier, install. For
    /// lockstep drivers; use [`ShardPeer::begin_round`] to overlap
    /// several peers' phases in one thread.
    ///
    /// # Errors
    /// Either phase's [`PeerError`].
    pub fn tick(&mut self) -> Result<Vec<(u16, Message)>, PeerError> {
        self.begin_round()?.finish()
    }

    /// [`ShardPeer::tick`] into a caller-owned buffer: `out` is cleared
    /// and receives the tick's rate-update stream. In the converged
    /// steady state (no updates) this allocates nothing.
    ///
    /// # Errors
    /// Either phase's [`PeerError`]; `out` holds the tick's updates
    /// even when the barrier fails.
    pub fn tick_into(&mut self, out: &mut Vec<(u16, Message)>) -> Result<(), PeerError> {
        out.clear();
        let mut updates = self.tick_export()?;
        out.append(&mut updates);
        self.exchange_finish()
    }

    /// Phase 1: catch up an unfinished round, tick the service, and
    /// when a round is due, export + broadcast.
    pub(crate) fn tick_export(&mut self) -> Result<Vec<(u16, Message)>, PeerError> {
        // A dropped ExchangeRound leaves its barrier pending; run it
        // before starting the next tick so rounds never interleave.
        self.exchange_finish()?;
        self.ticks += 1;
        let updates = self.svc.tick();
        let due = self.exchange.every > 0
            && self.tx.peers() > 1
            && self.ticks.is_multiple_of(self.exchange.every);
        self.round_due = due;
        if due {
            self.svc.link_loads_into(&mut self.loads);
            self.svc.link_hessians_into(&mut self.hessians);
            self.svc.link_prices_into(&mut self.prices);
            self.frame_buf.clear();
            self.core.begin_round(
                self.ticks,
                &self.loads,
                &self.hessians,
                &self.prices,
                &mut self.frame_buf,
            );
            self.broadcast_frame_buf()?;
        }
        Ok(updates)
    }

    /// Phase 2: the staleness-aware barrier. For each remote peer,
    /// install the freshest state its mailbox holds — waiting only for
    /// peers that were fresh last round (or are past the staleness
    /// bound), polling the rest — then install the recomputed
    /// aggregation into the service. A no-op when no round is due.
    pub(crate) fn exchange_finish(&mut self) -> Result<(), PeerError> {
        if !self.round_due {
            return Ok(());
        }
        self.round_due = false;
        let target = self.ticks;
        for slot in 0..self.lag.len() {
            self.collect_slot(slot, target)?;
        }
        if let Some(bytes) = self.core.install(&mut self.svc) {
            self.local.exchange_rounds += 1;
            self.local.exchange_bytes += bytes;
        }
        Ok(())
    }

    /// Drain one peer's mailbox: apply every buffered state frame in
    /// arrival order (the replica ends on the freshest), set epoch
    /// frames aside, and decide fresh/stale from the newest round seen
    /// once the mailbox runs dry.
    fn collect_slot(&mut self, slot: usize, target: u64) -> Result<(), PeerError> {
        let Some(&peer) = self.rt.peers().get(slot) else {
            return Ok(());
        };
        let (behind, mut freshest) = match self.lag.get(slot) {
            Some(l) => (l.rounds_behind, l.freshest_round),
            None => return Ok(()),
        };
        let throttle = self.exchange.max_rounds_behind;
        // Fresh peers are waited for — in a healthy cluster their frame
        // is already buffered and the wait is a mailbox handoff. A peer
        // that already missed a barrier is only polled, so its missed
        // rounds cost nothing; once it is `max_rounds_behind` barriers
        // behind we wait again every round, bounding the drift.
        let wait = behind == 0 || (throttle > 0 && behind >= throttle);
        let deadline = Instant::now() + self.exchange.round_timeout;
        loop {
            let polled = if wait && freshest < target {
                self.rt.pop_deadline(slot, deadline)
            } else {
                // Target reached (or peer not waited for): sweep
                // whatever else is already buffered so a recovering
                // peer's backlog drains in one barrier, not one frame
                // per round.
                self.rt.try_pop(slot)
            };
            match polled {
                Polled::Empty => break,
                Polled::Closed => {
                    // The peer's stream ended. A round its final frame
                    // already satisfied still completes (the normal
                    // shutdown race: the peer sent its last round and
                    // exited); the first barrier the closure leaves
                    // unsatisfied surfaces it as an error.
                    if freshest >= target {
                        break;
                    }
                    return Err(self.closed_error(slot, peer));
                }
                Polled::Frame(frame) => {
                    let header = match decode_header(&frame) {
                        Ok(h) => h,
                        Err(_) => {
                            self.local.exchange_decode_errors += 1;
                            self.rt.recycle(frame);
                            continue;
                        }
                    };
                    if header.kind == FrameKind::Epoch {
                        // An epoch announcement racing the tick stream;
                        // gather_epoch consumes it.
                        if let Some(stash) = self.epoch_stash.get_mut(slot) {
                            stash.push_back(frame);
                        }
                        continue;
                    }
                    let round = header.round;
                    if self.core.apply_frame(&frame).is_err() {
                        self.local.exchange_decode_errors += 1;
                    }
                    self.rt.recycle(frame);
                    freshest = freshest.max(round);
                }
            }
        }
        if let Some(l) = self.lag.get_mut(slot) {
            l.freshest_round = freshest;
            if freshest >= target {
                l.rounds_behind = 0;
                l.last_fresh_round = target;
            } else {
                // Stale round (even if older catch-up frames arrived):
                // install from this peer's last-shipped state; its next
                // frame heals the replica.
                l.rounds_behind += 1;
                l.peak_rounds_behind = l.peak_rounds_behind.max(l.rounds_behind);
                self.late_rounds += 1;
            }
        }
        Ok(())
    }

    /// The error for a closed mailbox: the thread's recorded failure if
    /// it is still unclaimed, the generic receiver-gone otherwise.
    fn closed_error(&self, slot: usize, peer: u16) -> PeerError {
        match self.rt.take_failure(slot) {
            Some(e) => io_to_peer(peer, e),
            None => PeerError::ReceiverGone { peer },
        }
    }

    /// Announce a placement epoch: broadcast an epoch frame carrying
    /// this shard's leaving flows (each with the shard that adopts it)
    /// and mark the exchange for a catch-up resync, exactly as the
    /// in-process `ShardedService::replace` does. The counterpart
    /// [`ShardPeer::gather_epoch`] must run on every peer.
    ///
    /// # Errors
    /// A [`PeerError`] from a broadcast send.
    pub fn broadcast_epoch(
        &mut self,
        epoch: u64,
        leavers: &[(FlowMigration, u16)],
    ) -> Result<(), PeerError> {
        self.frame_buf.clear();
        encode_header(
            &FrameHeader {
                kind: FrameKind::Epoch,
                shard: self.tx.shard(),
                round: self.ticks,
                n_links: 0,
                active: false,
                has_hessians: false,
            },
            &mut self.frame_buf,
        );
        encode_record(&Record::EpochBegin { epoch }, false, &mut self.frame_buf);
        for &(m, dst_shard) in leavers {
            encode_record(
                &Record::Migration {
                    token: m.token.get(),
                    src: m.src,
                    dst: m.dst,
                    weight_q8: m.weight_q8,
                    spine: m.spine,
                    dst_shard,
                },
                false,
                &mut self.frame_buf,
            );
        }
        self.broadcast_frame_buf()?;
        self.core.request_resync();
        Ok(())
    }

    /// Collect one epoch frame from every peer, appending the
    /// migrations addressed to this shard to `adopt` (unsorted; the
    /// caller orders and adopts them). Stray state frames received
    /// while waiting are applied to the replicas as usual.
    ///
    /// # Errors
    /// A [`PeerError`]; an epoch is a barrier, so unlike a state round
    /// a peer whose epoch frame never arrives is
    /// [`PeerError::EpochTimeout`], not a late round.
    pub fn gather_epoch(&mut self, adopt: &mut Vec<FlowMigration>) -> Result<(), PeerError> {
        let me = self.tx.shard();
        for slot in 0..self.lag.len() {
            let Some(&peer) = self.rt.peers().get(slot) else {
                continue;
            };
            let deadline = Instant::now() + self.exchange.round_timeout;
            loop {
                let frame = match self.epoch_stash.get_mut(slot).and_then(|s| s.pop_front()) {
                    Some(f) => f,
                    None => match self.rt.pop_deadline(slot, deadline) {
                        Polled::Frame(f) => f,
                        Polled::Empty => return Err(PeerError::EpochTimeout { peer }),
                        Polled::Closed => return Err(self.closed_error(slot, peer)),
                    },
                };
                let (header, records) = match RecordIter::new(&frame) {
                    Ok(decoded) => decoded,
                    Err(_) => {
                        self.local.exchange_decode_errors += 1;
                        self.rt.recycle(frame);
                        continue;
                    }
                };
                if header.kind != FrameKind::Epoch {
                    if self.core.apply_frame(&frame).is_err() {
                        self.local.exchange_decode_errors += 1;
                    }
                    self.rt.recycle(frame);
                    continue;
                }
                for record in records {
                    match record {
                        Ok(Record::Migration {
                            token,
                            src,
                            dst,
                            weight_q8,
                            spine,
                            dst_shard,
                        }) if dst_shard == me => adopt.push(FlowMigration {
                            token: Token::new(token),
                            src,
                            dst,
                            weight_q8,
                            spine,
                        }),
                        Ok(_) => {}
                        Err(_) => {
                            self.local.exchange_decode_errors += 1;
                            break;
                        }
                    }
                }
                self.rt.recycle(frame);
                break;
            }
        }
        Ok(())
    }

    fn broadcast_frame_buf(&mut self) -> Result<(), PeerError> {
        let me = self.tx.shard();
        for p in 0..self.tx.peers() as u16 {
            if p == me {
                continue;
            }
            let bytes = self
                .tx
                .send(p, &self.frame_buf)
                .map_err(|e| io_to_peer(p, e))?;
            self.tx_bytes += bytes;
            self.tx_frames += 1;
        }
        Ok(())
    }
}

/// One in-flight exchange round: the session between
/// [`ShardPeer::begin_round`] (allocator tick + broadcast, already
/// done) and the barrier + install in [`ExchangeRound::finish`]. The
/// exclusive borrow of the peer makes starting a second round before
/// finishing this one a compile error; a round dropped unfinished is
/// caught up by the peer's next tick.
#[must_use = "finish() runs the exchange barrier; dropping delays it to the next tick"]
#[derive(Debug)]
pub struct ExchangeRound<'p, T: Transport, E: RateAllocator = SerialAllocator> {
    peer: &'p mut ShardPeer<T, E>,
    updates: Vec<(u16, Message)>,
}

impl<T: Transport, E: RateAllocator> ExchangeRound<'_, T, E> {
    /// The rate-update stream produced by this round's allocator tick.
    pub fn updates(&self) -> &[(u16, Message)] {
        &self.updates
    }

    /// Move this round's updates into `out` (appended), leaving the
    /// round's own list empty — for callers recycling one buffer
    /// across ticks.
    pub fn take_updates_into(&mut self, out: &mut Vec<(u16, Message)>) {
        out.append(&mut self.updates);
    }

    /// Run the staleness-aware barrier and install the round, returning
    /// the tick's updates.
    ///
    /// # Errors
    /// A [`PeerError`] from the receive path.
    pub fn finish(self) -> Result<Vec<(u16, Message)>, PeerError> {
        self.peer.exchange_finish()?;
        Ok(self.updates)
    }
}
