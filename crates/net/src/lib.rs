//! # Flowtune distributed control plane
//!
//! Shard peers and the link-state exchange protocol on a real wire.
//!
//! The core crate's `ShardedService` partitions the allocator across
//! shards inside one process; this crate takes the next step and puts
//! the shards in separate processes (or hosts). The pieces:
//!
//! * [`Transport`] — a connected mesh endpoint that [`Transport::split`]s
//!   into a [`Sender`] half (kept by the tick thread) and one [`Receiver`]
//!   half per remote peer (each moved onto its own receiver thread).
//!   Three implementations: the in-process [`MemTransport`] mesh (the
//!   bit-for-bit reference), length-prefixed Unix-domain sockets
//!   ([`UdsTransport`]) and TCP ([`TcpTransport`]).
//! * [`RecvRuntime`] — the async peer runtime: one thread per remote
//!   peer drains its receiver into a per-peer mailbox, so frames are
//!   pulled off the wire the moment they arrive instead of when the
//!   tick loop gets around to a blocking `recv`. Frame buffers recycle
//!   through a shared [`BufferPool`], keeping the steady state
//!   allocation-free.
//! * [`ShardPeer`] — one shard's `AllocatorService` plus its side of
//!   the exchange (the same `ExchangeCore` the in-process service
//!   runs). [`ShardPeer::begin_round`] opens an [`ExchangeRound`] that
//!   broadcasts this shard's frame; [`ExchangeRound::finish`] is a
//!   staleness-aware barrier over the mailboxes: a peer that was fresh
//!   last round is awaited up to the configured round timeout, a peer
//!   already behind is only polled (its frames install whenever they
//!   arrive), and a peer behind by `max_rounds_behind` rounds is
//!   awaited again so the lag stays bounded. Stale rounds install from
//!   last-shipped state; per-peer [`PeerLag`] (current and peak
//!   `rounds_behind`) is surfaced through [`WireStats`].
//! * [`PeerCluster`] — a `TickDriver` over a set of peers, replicating
//!   the in-process routing layer exactly; when every frame is on time
//!   it is bit-for-bit identical to `ShardedService`, over every
//!   transport.
//! * `flowtune-arbiterd` (this crate's binary) — one shard peer per
//!   process, plus a `--demo` launcher that spawns an N-process
//!   cluster, checks it converges to the unsharded optimum, reports
//!   per-peer staleness, and (via `FLOWTUNE_PEER_DELAY=shard:ms:rounds`)
//!   doubles as a latency-injection drill.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod peer;
pub mod pool;
pub mod runtime;
pub mod transport;

pub use cluster::PeerCluster;
pub use peer::{ExchangeRound, PeerError, PeerLag, ShardPeer, WireStats};
pub use pool::BufferPool;
pub use runtime::{Polled, RecvRuntime};
pub use transport::{
    mem_mesh, tcp_connect, tcp_mesh, uds_connect, uds_mesh, uds_socket_path, FrameStream,
    MemReceiver, MemSender, MemTransport, Receiver, Sender, SocketReceiver, SocketSender,
    SocketTransport, TcpTransport, Transport, UdsTransport,
};
