//! # Flowtune distributed control plane
//!
//! Shard peers and the link-state exchange protocol on a real wire.
//!
//! The core crate's `ShardedService` partitions the allocator across
//! shards inside one process; this crate takes the next step and puts
//! the shards in separate processes (or hosts). The pieces:
//!
//! * [`Transport`] — moves encoded exchange frames between peers and
//!   reports on-wire bytes. Three implementations: the in-process
//!   [`MemTransport`] mesh (the bit-for-bit reference), length-prefixed
//!   Unix-domain sockets ([`UdsTransport`]) and TCP
//!   ([`TcpTransport`]).
//! * [`BufferPool`] — size-classed recycling for frame buffers in
//!   flight, so the steady-state exchange allocates nothing.
//! * [`ShardPeer`] — one shard's `AllocatorService` plus its side of
//!   the exchange (the same `ExchangeCore` the in-process service
//!   runs), tolerating late or lost rounds by installing from
//!   last-shipped state.
//! * [`PeerCluster`] — a lockstep `TickDriver` over a set of peers,
//!   replicating the in-process routing layer exactly; over
//!   [`MemTransport`] it is bit-for-bit identical to `ShardedService`.
//! * `flowtune-arbiterd` (this crate's binary) — one shard peer per
//!   process, plus a `--demo` launcher that spawns an N-process
//!   cluster and checks it converges to the unsharded optimum.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod peer;
pub mod pool;
pub mod transport;

pub use cluster::PeerCluster;
pub use peer::{ShardPeer, WireStats};
pub use pool::BufferPool;
pub use transport::{
    mem_mesh, tcp_connect, tcp_mesh, uds_connect, uds_mesh, uds_socket_path, FrameStream,
    MemTransport, SocketTransport, TcpTransport, Transport, UdsTransport,
};
