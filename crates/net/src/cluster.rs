//! A whole distributed control plane driven in lockstep from one
//! thread: the [`TickDriver`] face over a set of [`ShardPeer`]s.
//!
//! [`PeerCluster`] replicates the in-process `ShardedService` routing
//! layer exactly — `FlowletStart`s route by source endpoint through a
//! [`Placement`], token-addressed messages follow a token→peer table,
//! duplicates and strays are disposed of (and counted) at the routing
//! layer — while the exchange itself runs through each peer's
//! [`Transport`]. Over the in-memory transport the whole construction
//! is **bit-for-bit identical** to `ShardedService`: same update
//! streams, same rates, same stats (pinned by the repository's sharded
//! equivalence tests). Over sockets it is the single-process harness
//! the benches use to price the wire.
//!
//! A cluster tick is split-phase across the peers — every peer runs
//! [`ShardPeer::begin_round`] (tick + broadcast) before any peer's
//! [`ExchangeRound`](crate::ExchangeRound) is finished (collect + install) — so peers never
//! deadlock waiting for a frame a later peer has not produced yet, and
//! the lockstep schedule reproduces the in-process barrier.

use std::collections::HashMap;

use flowtune::{
    merge_by_token_into, FlowMigration, Placement, ServiceError, ServiceStats, TickDriver,
};
use flowtune_alloc::{RateAllocator, SerialAllocator};
use flowtune_proto::{Message, Token};
use flowtune_topo::TwoTierClos;

use crate::peer::{PeerError, PeerLag, ShardPeer, WireStats};
use crate::transport::Transport;

/// N [`ShardPeer`]s behind one [`TickDriver`] face (see the module
/// docs).
#[derive(Debug)]
pub struct PeerCluster<T: Transport, E: RateAllocator = SerialAllocator> {
    peers: Vec<ShardPeer<T, E>>,
    /// token → peer, for `FlowletEnd` routing and rate queries.
    route: HashMap<Token, u32>,
    placement: Placement,
    /// Routing-layer counters (duplicates, unknown ends, strays) —
    /// identical to the in-process routing layer's share of the stats.
    local: ServiceStats,
    /// Monotonic placement-epoch counter for [`PeerCluster::replace`].
    epoch: u64,
    /// Per-peer update-stream scratch, reused across ticks so a quiet
    /// tick allocates nothing.
    streams: Vec<Vec<(u16, Message)>>,
}

impl<T: Transport, E: RateAllocator> PeerCluster<T, E> {
    /// Assemble a cluster from peers under the default contiguous
    /// placement. Peers must arrive in shard order and agree with
    /// their transports on the cluster size.
    ///
    /// # Panics
    /// Panics if `peers` is empty or a peer's shard id or peer count
    /// disagrees with its position.
    pub fn from_peers(peers: Vec<ShardPeer<T, E>>) -> Self {
        assert!(!peers.is_empty(), "a cluster needs at least one peer");
        let servers = peers[0].service().fabric().config().server_count();
        let placement = Placement::contiguous(servers, peers.len());
        Self::with_placement(peers, placement)
    }

    /// [`PeerCluster::from_peers`] with an explicit endpoint→shard
    /// [`Placement`].
    ///
    /// # Panics
    /// Panics if `peers` is empty, a peer disagrees with its position
    /// or the cluster size, or the placement's shape does not match.
    pub fn with_placement(peers: Vec<ShardPeer<T, E>>, placement: Placement) -> Self {
        assert!(!peers.is_empty(), "a cluster needs at least one peer");
        for (i, peer) in peers.iter().enumerate() {
            assert_eq!(
                usize::from(peer.shard()),
                i,
                "peer {i} claims shard {}",
                peer.shard()
            );
            assert_eq!(
                peer.peers(),
                peers.len(),
                "peer {i}'s transport spans {} peers, cluster has {}",
                peer.peers(),
                peers.len()
            );
        }
        let servers = peers[0].service().fabric().config().server_count();
        assert_eq!(
            placement.servers(),
            servers,
            "placement must cover exactly the fabric's servers"
        );
        assert_eq!(
            placement.shard_count(),
            peers.len(),
            "placement must map onto exactly the cluster's peers"
        );
        let streams = peers.iter().map(|_| Vec::new()).collect();
        PeerCluster {
            peers,
            route: HashMap::new(),
            placement,
            local: ServiceStats::default(),
            epoch: 0,
            streams,
        }
    }

    /// Number of peers (= shards).
    pub fn shard_count(&self) -> usize {
        self.peers.len()
    }

    /// Read access to the peers, in shard order.
    pub fn peers(&self) -> &[ShardPeer<T, E>] {
        &self.peers
    }

    /// The endpoint→shard mapping currently routing `FlowletStart`s.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The peer an active flowlet is registered with.
    pub fn shard_for_token(&self, token: Token) -> Option<usize> {
        self.route.get(&token).map(|&s| s as usize)
    }

    /// One lockstep tick of the whole cluster: every peer ticks and
    /// broadcasts, then every peer runs its exchange barrier and
    /// installs, then the per-peer update streams are k-way merged into
    /// one token-ordered stream (same merge as the in-process service).
    ///
    /// # Errors
    /// The first [`PeerError`] encountered; the tick's update stream is
    /// dropped.
    pub fn try_tick(&mut self) -> Result<Vec<(u16, Message)>, PeerError> {
        // flowtune-lint: allow(hot-path-alloc, "owned-stream convenience entry; steady-state drivers use try_tick_into")
        let mut out = Vec::new();
        self.try_tick_into(&mut out)?;
        Ok(out)
    }

    /// [`PeerCluster::try_tick`] into a caller-owned buffer: `out` is
    /// cleared and receives the merged update stream. In the converged
    /// steady state (no updates) this allocates nothing.
    ///
    /// # Errors
    /// The first [`PeerError`] encountered; the tick's update stream is
    /// dropped.
    pub fn try_tick_into(&mut self, out: &mut Vec<(u16, Message)>) -> Result<(), PeerError> {
        out.clear();
        for (peer, stream) in self.peers.iter_mut().zip(self.streams.iter_mut()) {
            stream.clear();
            let mut updates = peer.tick_export()?;
            stream.append(&mut updates);
        }
        for peer in &mut self.peers {
            peer.exchange_finish()?;
        }
        merge_by_token_into(&mut self.streams, out);
        Ok(())
    }

    /// Installs a new [`Placement`] — a distributed **re-placement
    /// epoch**. Each peer extracts the flows the new placement takes
    /// from it (ascending token order) and broadcasts them in an epoch
    /// frame; every peer gathers the frames, adopts the migrations
    /// addressed to it (ascending token order), and marks its exchange
    /// for a catch-up resync. Functionally equivalent to the
    /// in-process `ShardedService::replace` — migrated flows re-enter
    /// at the initial rate and re-converge under their new shard's
    /// prices — though not bit-for-bit (extraction interleaves per
    /// peer, not in one global token order). Returns the number of
    /// flows migrated.
    ///
    /// # Errors
    /// A [`PeerError`]; an epoch is a barrier, so a missing peer frame
    /// is an error, not a late round.
    ///
    /// # Panics
    /// Panics if the placement's shape does not match this cluster.
    pub fn replace(&mut self, placement: Placement) -> Result<usize, PeerError> {
        assert_eq!(
            placement.servers(),
            self.placement.servers(),
            "replacement must cover the same server space"
        );
        assert_eq!(
            placement.shard_count(),
            self.peers.len(),
            "replacement must map onto the same peer count"
        );
        self.epoch += 1;
        // flowtune-lint: allow(float-determinism, "snapshot is sorted by token before any flow moves")
        let mut tokens: Vec<(Token, u32)> = self.route.iter().map(|(&t, &s)| (t, s)).collect();
        tokens.sort_unstable_by_key(|&(t, _)| t);
        let mut leavers: Vec<Vec<(FlowMigration, u16)>> = vec![Vec::new(); self.peers.len()];
        let mut moved = 0;
        for (token, old) in tokens {
            let src = self.peers[old as usize]
                .service()
                .flow_source(token)
                .expect("routed token must be registered with its peer");
            let new = placement.shard_of(src) as u32;
            if new == old {
                continue;
            }
            let migration = self.peers[old as usize]
                .service_mut()
                .extract_flow(token)
                .expect("routed token must be extractable");
            leavers[old as usize].push((migration, new as u16));
            self.route.insert(token, new);
            moved += 1;
        }
        let epoch = self.epoch;
        for (peer, leaving) in self.peers.iter_mut().zip(&leavers) {
            peer.broadcast_epoch(epoch, leaving)?;
        }
        let mut adopt = Vec::new();
        for peer in &mut self.peers {
            adopt.clear();
            peer.gather_epoch(&mut adopt)?;
            adopt.sort_unstable_by_key(|m| m.token);
            for m in adopt.drain(..) {
                peer.service_mut()
                    .adopt_flow(m)
                    .expect("tokens are unique across peers");
            }
        }
        self.placement = placement;
        Ok(moved)
    }

    /// The peers' on-wire transport counters: totals summed, plus the
    /// cluster-level staleness view — one [`PeerLag`] per shard, with
    /// `rounds_behind`/`last_fresh_round` the worst any other peer
    /// observed of it and the receive counters summed across observers.
    pub fn wire_stats(&self) -> WireStats {
        let mut total = WireStats::default();
        let mut lags: Vec<PeerLag> = (0..self.peers.len() as u16)
            .map(|peer| PeerLag {
                peer,
                ..PeerLag::default()
            })
            .collect();
        for peer in &self.peers {
            let w = peer.wire_stats();
            total.tx_bytes += w.tx_bytes;
            total.rx_bytes += w.rx_bytes;
            total.tx_frames += w.tx_frames;
            total.rx_frames += w.rx_frames;
            total.late_rounds += w.late_rounds;
            for l in &w.peers {
                let Some(agg) = lags.get_mut(usize::from(l.peer)) else {
                    continue;
                };
                agg.rounds_behind = agg.rounds_behind.max(l.rounds_behind);
                agg.peak_rounds_behind = agg.peak_rounds_behind.max(l.peak_rounds_behind);
                agg.last_fresh_round = agg.last_fresh_round.max(l.last_fresh_round);
                agg.rx_bytes += l.rx_bytes;
                agg.rx_frames += l.rx_frames;
            }
        }
        total.peers = lags;
        total
    }
}

impl<T: Transport, E: RateAllocator> TickDriver for PeerCluster<T, E> {
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        match msg {
            Message::FlowletStart { token, src, .. } => {
                if self.route.contains_key(&token) {
                    // Cross-shard duplicate detection lives here — the
                    // original may be registered with a different peer
                    // than the one `src` routes to.
                    self.local.bytes_in += msg.encoded_len() as u64;
                    self.local.rejected += 1;
                    return Err(ServiceError::DuplicateToken(token));
                }
                let shard = self.placement.shard_of(src);
                self.peers[shard].on_message(msg)?;
                self.route.insert(token, shard as u32);
                Ok(())
            }
            Message::FlowletEnd { token } => match self.route.remove(&token) {
                Some(shard) => self.peers[shard as usize].on_message(msg),
                None => {
                    self.local.bytes_in += msg.encoded_len() as u64;
                    Ok(())
                }
            },
            Message::RateUpdate { .. } => {
                self.local.bytes_in += msg.encoded_len() as u64;
                self.local.rejected += 1;
                Err(ServiceError::UnexpectedRateUpdate)
            }
        }
    }

    /// # Panics
    /// Panics on a peer failure; use [`PeerCluster::try_tick`] for an
    /// error instead.
    fn tick(&mut self) -> Vec<(u16, Message)> {
        match self.try_tick() {
            Ok(updates) => updates,
            Err(e) => panic!("cluster peer failed: {e}"),
        }
    }

    fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        let &shard = self.route.get(&token)?;
        self.peers[shard as usize].service().flow_rate_gbps(token)
    }

    fn active_flows(&self) -> usize {
        self.route.len()
    }

    fn stats(&self) -> ServiceStats {
        let mut total = self.local;
        // Exchange rounds are a cluster-wide event every peer counts
        // once; the in-process service counts them once in total, so
        // aggregate as the max, while logical bytes — each peer's own
        // out + in share — sum, exactly as the in-process install loop
        // sums them.
        let mut rounds = 0;
        for peer in &self.peers {
            let ServiceStats {
                starts,
                ends,
                updates_sent,
                updates_suppressed,
                bytes_in,
                bytes_out,
                iterations,
                rejected,
                exchange_rounds,
                exchange_bytes,
                exchange_decode_errors,
                dirty_flows,
                dirty_links,
            } = peer.stats();
            total.starts += starts;
            total.ends += ends;
            total.updates_sent += updates_sent;
            total.updates_suppressed += updates_suppressed;
            total.bytes_in += bytes_in;
            total.bytes_out += bytes_out;
            total.iterations += iterations;
            total.rejected += rejected;
            total.exchange_bytes += exchange_bytes;
            total.exchange_decode_errors += exchange_decode_errors;
            total.dirty_flows += dirty_flows;
            total.dirty_links += dirty_links;
            rounds = rounds.max(exchange_rounds);
        }
        total.exchange_rounds += rounds;
        total
    }

    fn link_loads(&self) -> Vec<f64> {
        let exports: Vec<Vec<f64>> = self
            .peers
            .iter()
            .map(|p| p.service().link_loads())
            .collect();
        let n_links = exports.iter().map(Vec::len).max().unwrap_or(0);
        let mut total = vec![0.0; n_links];
        for export in exports.iter().filter(|e| !e.is_empty()) {
            debug_assert_eq!(export.len(), n_links, "short peer export");
            for (acc, x) in total.iter_mut().zip(export) {
                *acc += x;
            }
        }
        total
    }

    fn fabric(&self) -> &TwoTierClos {
        self.peers[0].service().fabric()
    }

    fn engine_name(&self) -> &'static str {
        "peer-cluster"
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use flowtune::{AllocatorService, ExchangeConfig, FlowtuneConfig, ShardedService};
    use flowtune_topo::{ClosConfig, TwoTierClos};

    use super::*;
    use crate::transport::mem_mesh;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::multicore(2, 2, 4))
    }

    fn start(token: u32, src: u16, dst: u16) -> Message {
        Message::FlowletStart {
            token: Token::new(token),
            src,
            dst,
            size_hint: 100_000,
            weight_q8: 256,
            spine: 1,
        }
    }

    fn cluster(
        fabric: &TwoTierClos,
        cfg: FlowtuneConfig,
        n: usize,
    ) -> PeerCluster<crate::transport::MemTransport> {
        let exchange = ExchangeConfig::from_flowtune(&cfg).round_timeout(Duration::from_secs(5));
        let peers = mem_mesh(n)
            .into_iter()
            .map(|t| {
                ShardPeer::new(AllocatorService::new(fabric, cfg), t, exchange)
                    .expect("mem transport splits infallibly")
            })
            .collect();
        PeerCluster::from_peers(peers)
    }

    #[test]
    fn mem_cluster_matches_in_process_sharded_service_bit_for_bit() {
        let f = fabric();
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            ..FlowtuneConfig::default()
        };
        let mut reference = ShardedService::new(&f, cfg, 2);
        let mut distributed = cluster(&f, cfg, 2);
        // A cross-shard incast onto server 15 plus a disjoint flow.
        for (t, src, dst) in [(1u32, 0u16, 15u16), (2, 8, 15), (3, 1, 15), (4, 2, 6)] {
            reference.on_message(start(t, src, dst)).unwrap();
            distributed.on_message(start(t, src, dst)).unwrap();
        }
        for round in 0..60 {
            let a = reference.tick();
            let b = distributed.tick();
            assert_eq!(a, b, "update streams diverged at tick {round}");
        }
        for t in [1u32, 2, 3, 4] {
            assert_eq!(
                reference.flow_rate_gbps(Token::new(t)).map(f64::to_bits),
                distributed.flow_rate_gbps(Token::new(t)).map(f64::to_bits),
                "token {t}"
            );
        }
        assert_eq!(reference.stats(), distributed.stats());
        let wire = distributed.wire_stats();
        assert!(wire.tx_bytes > 0, "frames crossed the transport");
        assert_eq!(wire.tx_frames, wire.rx_frames, "lockstep loses nothing");
        assert_eq!(wire.late_rounds, 0);
    }

    #[test]
    fn routing_layer_counts_duplicates_and_strays_like_in_process() {
        let f = fabric();
        let mut c = cluster(&f, FlowtuneConfig::default(), 2);
        c.on_message(start(7, 0, 12)).unwrap();
        let err = c.on_message(start(7, 12, 0)).unwrap_err();
        assert_eq!(err, ServiceError::DuplicateToken(Token::new(7)));
        assert_eq!(
            c.on_message(Message::RateUpdate {
                token: Token::new(5),
                rate: flowtune_proto::Rate16::encode(1.0),
            }),
            Err(ServiceError::UnexpectedRateUpdate)
        );
        c.on_message(Message::FlowletEnd {
            token: Token::new(99),
        })
        .unwrap();
        let st = c.stats();
        assert_eq!(st.rejected, 2);
        assert_eq!(st.starts, 1);
        assert_eq!(st.ends, 0);
        assert_eq!(c.active_flows(), 1);
    }

    #[test]
    fn replace_migrates_flows_over_epoch_frames() {
        let f = fabric();
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            ..FlowtuneConfig::default()
        };
        let mut c = cluster(&f, cfg, 2);
        c.on_message(start(1, 0, 12)).unwrap(); // shard 0
        c.on_message(start(2, 8, 4)).unwrap(); // shard 1
        for _ in 0..50 {
            c.tick();
        }
        // Swap the shards' ranges: both flows migrate, over the wire.
        let mut m = flowtune::placement::TrafficMatrix::new(2);
        m.add(1, 1, 100.0);
        m.add(0, 0, 1.0);
        let reversed = Placement::traffic(16, 8, 2, &m, false);
        let moved = c.replace(reversed).unwrap();
        assert_eq!(moved, 2);
        assert_eq!(c.shard_for_token(Token::new(1)), Some(1));
        assert_eq!(c.shard_for_token(Token::new(2)), Some(0));
        assert_eq!(c.active_flows(), 2);
        // The cluster keeps operating and both flows re-converge.
        for _ in 0..200 {
            c.tick();
        }
        for t in [1u32, 2] {
            let rate = c.flow_rate_gbps(Token::new(t)).unwrap();
            assert!((rate - 39.6).abs() < 0.2, "token {t}: {rate}");
        }
        // New starts route by the new placement.
        c.on_message(start(3, 0, 12)).unwrap();
        assert_eq!(c.shard_for_token(Token::new(3)), Some(1));
    }

    #[test]
    fn single_peer_cluster_never_exchanges() {
        let f = fabric();
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            ..FlowtuneConfig::default()
        };
        let mut c = cluster(&f, cfg, 1);
        c.on_message(start(1, 0, 12)).unwrap();
        for _ in 0..5 {
            c.tick();
        }
        let st = c.stats();
        assert_eq!(st.exchange_rounds, 0);
        assert_eq!(st.exchange_bytes, 0);
        assert_eq!(c.wire_stats().tx_frames, 0);
    }
}
