//! A size-classed buffer pool for exchange frames in flight.
//!
//! The in-memory transport hands every frame it ships to the receiving
//! queue as an owned `Vec<u8>`; recycling those vectors through a pool
//! keeps the steady-state exchange free of per-message allocation —
//! the same discipline the in-process exchange gets from its one flat
//! reusable buffer. Buffers are grouped into power-of-two size classes:
//! every buffer stored in class `c` has capacity at least `2^c`, so a
//! [`BufferPool::get`] for any capacity up to that is satisfied without
//! touching the allocator.

/// Buffers stored per size class; beyond this, returned buffers are
/// dropped instead of pooled (a backstop against bursts, not a tuning
/// knob — steady-state exchange traffic needs one buffer per in-flight
/// frame).
const MAX_PER_CLASS: usize = 64;

/// Size classes tracked (class `c` holds buffers of capacity `≥ 2^c`);
/// requests beyond `2^MAX_CLASSES` bytes are served unpooled.
const MAX_CLASSES: usize = 28;

/// A size-classed free list of `Vec<u8>` buffers (see the module docs).
#[derive(Debug, Default)]
pub struct BufferPool {
    classes: Vec<Vec<Vec<u8>>>,
    hits: u64,
    misses: u64,
}

/// The class a request of `capacity` bytes is served from: the smallest
/// power of two that covers it.
fn class_for_get(capacity: usize) -> usize {
    capacity.next_power_of_two().trailing_zeros() as usize
}

/// The class a returned buffer is stored in: the largest power of two
/// its capacity covers, so every stored buffer satisfies every get from
/// its class.
fn class_for_put(capacity: usize) -> usize {
    (usize::BITS - 1 - capacity.leading_zeros()) as usize
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            classes: (0..=MAX_CLASSES).map(|_| Vec::new()).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// A cleared buffer with capacity at least `capacity` — recycled
    /// when the matching class has one, freshly allocated otherwise.
    pub fn get(&mut self, capacity: usize) -> Vec<u8> {
        let class = class_for_get(capacity.max(1));
        if let Some(free) = self.classes.get_mut(class) {
            if let Some(mut buf) = free.pop() {
                buf.clear();
                self.hits += 1;
                return buf;
            }
        }
        self.misses += 1;
        Vec::with_capacity(capacity.max(1).next_power_of_two())
    }

    /// Return a buffer to the pool (dropped when its class is full or
    /// its capacity is off the tracked scale).
    pub fn put(&mut self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = class_for_put(buf.capacity());
        if let Some(free) = self.classes.get_mut(class) {
            if free.len() < MAX_PER_CLASS {
                free.push(buf);
            }
        }
    }

    /// Gets served by recycling a pooled buffer.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Gets that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_within_a_class() {
        let mut pool = BufferPool::new();
        let mut buf = pool.get(100);
        assert!(buf.capacity() >= 100);
        assert_eq!(pool.misses(), 1);
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        pool.put(buf);
        // Same class: the recycled buffer comes back cleared with its
        // capacity intact.
        let again = pool.get(100);
        assert_eq!(pool.hits(), 1);
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);
    }

    #[test]
    fn a_stored_buffer_always_covers_its_class() {
        let mut pool = BufferPool::new();
        // A 100-byte-capacity buffer lands in class 6 (2^6 = 64 ≤ 100),
        // so a get for ≤ 64 bytes may recycle it and a get for 128 may
        // not.
        pool.put(Vec::with_capacity(100));
        let small = pool.get(64);
        assert_eq!(pool.hits(), 1);
        assert!(small.capacity() >= 64);
        pool.put(small);
        let large = pool.get(128);
        assert!(large.capacity() >= 128);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn put_floor_get_ceil_invariant_holds_under_racing_receivers() {
        use std::sync::{Arc, Mutex};

        // The class math that makes pooling sound: a put files a buffer
        // under the largest power of two its capacity covers (floor), a
        // get looks up the smallest power of two covering the request
        // (ceil) — so anything a get finds in its class is big enough.
        for cap in 1usize..=4096 {
            let stored = class_for_put(cap);
            assert!(1usize << stored <= cap, "put floor broke at {cap}");
            let served = class_for_get(cap);
            assert!(1usize << served >= cap, "get ceil broke at {cap}");
        }

        // And the end-to-end form the receiver threads rely on: threads
        // racing put/get through the shared pool never receive a buffer
        // shorter than they asked for, whatever interleaving the
        // scheduler picks.
        let pool = Arc::new(Mutex::new(BufferPool::new()));
        let workers: Vec<_> = (0..4u64)
            .map(|seed| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    for _ in 0..2_000 {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let want = 1 + (rng as usize % 2048);
                        let buf = pool.lock().unwrap().get(want);
                        assert!(
                            buf.capacity() >= want,
                            "pool handed back {} bytes for a {want}-byte get",
                            buf.capacity()
                        );
                        pool.lock().unwrap().put(buf);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("pool worker panicked");
        }
        let p = pool.lock().unwrap();
        assert_eq!(p.hits() + p.misses(), 4 * 2_000);
    }

    #[test]
    fn class_overflow_drops_instead_of_growing() {
        let mut pool = BufferPool::new();
        for _ in 0..(MAX_PER_CLASS + 10) {
            pool.put(Vec::with_capacity(256));
        }
        let stored = pool.classes[class_for_put(256)].len();
        assert_eq!(stored, MAX_PER_CLASS);
        // Zero-capacity buffers are never pooled.
        pool.put(Vec::new());
        assert_eq!(pool.classes[0].len(), 0);
    }
}
