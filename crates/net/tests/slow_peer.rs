//! Sustained slow-peer degradation: one peer of a two-shard mem-mesh
//! cluster sleeps 10× the round timeout before each of five consecutive
//! ticks. The async runtime's promises under that fault:
//!
//! * the healthy peer pays the round timeout once (the barrier that
//!   detects the laggard) and then keeps ticking without blocking —
//!   stale rounds install from last-shipped state;
//! * its `WireStats` report the injected staleness (`rounds_behind`
//!   climbing through the delayed rounds, the peak surviving recovery);
//! * the degraded cluster never over-subscribes a link — frozen state
//!   freezes rates, it does not inflate them;
//! * once the laggard recovers, the cluster reconverges to the
//!   unsharded optimum.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flowtune::{AllocatorService, ExchangeConfig, FlowtuneConfig, Placement};
use flowtune_net::{mem_mesh, MemTransport, ShardPeer};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};

/// The repo's cross-shard incast workload: four sources per block of a
/// two-block fabric, all sending to server 15.
const SOURCES: [u16; 8] = [0, 1, 2, 3, 8, 9, 10, 11];
const RECEIVER: u16 = 15;
const TICKS: u64 = 200;
const ROUND_TIMEOUT: Duration = Duration::from_millis(40);
/// 10× the round timeout, before each delayed tick.
const DELAY: Duration = Duration::from_millis(400);
const DELAY_FROM: u64 = 50;
const DELAY_ROUNDS: u64 = 5;

fn fabric() -> TwoTierClos {
    TwoTierClos::build(ClosConfig::multicore(2, 2, 4))
}

fn start(fabric: &TwoTierClos, token: u32, src: u16, dst: u16) -> Message {
    let spine = fabric.ecmp_spine(src as usize, dst as usize, FlowId(u64::from(token)));
    Message::FlowletStart {
        token: Token::new(token),
        src,
        dst,
        size_hint: 1_000_000,
        weight_q8: 256,
        spine: spine as u8,
    }
}

/// `(token, src)` per flow, token = 1-based index into [`SOURCES`].
fn flows() -> Vec<(u32, u16)> {
    SOURCES
        .iter()
        .enumerate()
        .map(|(i, &src)| (i as u32 + 1, src))
        .collect()
}

/// Worst relative link over-subscription for the given endpoint rates.
fn worst_oversubscription(fabric: &TwoTierClos, rates: &[(u32, f64)]) -> f64 {
    let mut loads = vec![0.0f64; fabric.topology().link_count()];
    for &(token, rate) in rates {
        let src = SOURCES[(token - 1) as usize];
        let spine = fabric.ecmp_spine(src as usize, RECEIVER as usize, FlowId(u64::from(token)));
        let path = fabric.path_via_spine(src as usize, RECEIVER as usize, spine);
        for link in path.iter() {
            loads[link.index()] += rate;
        }
    }
    fabric
        .topology()
        .links()
        .iter()
        .enumerate()
        .map(|(l, link)| (loads[l] / (link.capacity_bps as f64 / 1e9)) - 1.0)
        .fold(f64::MIN, f64::max)
}

#[test]
fn five_delayed_rounds_degrade_gracefully_and_reconverge() {
    let fabric = fabric();
    let cfg = FlowtuneConfig {
        exchange_every: 1,
        ..FlowtuneConfig::default()
    };
    let exchange = ExchangeConfig::from_flowtune(&cfg).round_timeout(ROUND_TIMEOUT);
    let mut mesh = mem_mesh(2).into_iter();
    let t0 = mesh.next().expect("mesh endpoint 0");
    let t1 = mesh.next().expect("mesh endpoint 1");
    let mut healthy = ShardPeer::new(AllocatorService::new(&fabric, cfg), t0, exchange)
        .expect("mem transport splits infallibly");
    let mut laggard = ShardPeer::new(AllocatorService::new(&fabric, cfg), t1, exchange)
        .expect("mem transport splits infallibly");

    let placement = Placement::contiguous(fabric.config().server_count(), 2);
    let mut healthy_flows = Vec::new();
    let mut laggard_flows = Vec::new();
    for (token, src) in flows() {
        if placement.shard_of(src) == 0 {
            healthy_flows.push((token, src));
            healthy
                .on_message(start(&fabric, token, src, RECEIVER))
                .unwrap();
        } else {
            laggard_flows.push((token, src));
            laggard
                .on_message(start(&fabric, token, src, RECEIVER))
                .unwrap();
        }
    }

    // The laggard publishes its endpoint-visible rates after every tick
    // so the healthy thread can assemble a whole-cluster feasibility
    // snapshot mid-degradation.
    let published: Arc<Mutex<Vec<(u32, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let publish = Arc::clone(&published);
    let lag_tokens: Vec<u32> = laggard_flows.iter().map(|&(t, _)| t).collect();
    let laggard_thread = std::thread::spawn(move || -> ShardPeer<MemTransport> {
        for tick in 0..TICKS {
            if (DELAY_FROM..DELAY_FROM + DELAY_ROUNDS).contains(&tick) {
                std::thread::sleep(DELAY);
            }
            laggard.tick().expect("laggard tick");
            let mut snap = publish.lock().unwrap();
            snap.clear();
            for &t in &lag_tokens {
                let rate = laggard
                    .service()
                    .flow_rate_gbps(Token::new(t))
                    .expect("laggard flow active");
                snap.push((t, rate));
            }
        }
        laggard
    });

    let mut durations = Vec::with_capacity(TICKS as usize);
    let mut behind_after = Vec::with_capacity(TICKS as usize);
    let mut degraded_feasibility: Option<f64> = None;
    for _ in 0..TICKS {
        let begun = Instant::now();
        healthy.tick().expect("healthy peer tick");
        durations.push(begun.elapsed());
        let ws = healthy.wire_stats();
        behind_after.push(ws.max_rounds_behind());
        if degraded_feasibility.is_none() && ws.max_rounds_behind() >= 2 {
            // Mid-degradation snapshot: this peer's current rates plus
            // the laggard's last-published ones.
            let mut rates: Vec<(u32, f64)> = published.lock().unwrap().clone();
            for &(t, _) in &healthy_flows {
                let rate = healthy
                    .service()
                    .flow_rate_gbps(Token::new(t))
                    .expect("healthy flow active");
                rates.push((t, rate));
            }
            assert_eq!(rates.len(), SOURCES.len(), "snapshot covers every flow");
            degraded_feasibility = Some(worst_oversubscription(&fabric, &rates));
        }
    }
    let laggard = laggard_thread.join().expect("laggard thread");

    // Staleness reporting: the healthy peer flagged every delayed round
    // and recovered afterwards.
    let ws = healthy.wire_stats();
    assert!(
        ws.max_peak_rounds_behind() >= DELAY_ROUNDS,
        "peak rounds_behind {} must cover the {DELAY_ROUNDS} delayed rounds",
        ws.max_peak_rounds_behind()
    );
    assert!(
        ws.late_rounds >= DELAY_ROUNDS,
        "late_rounds {} must count the delayed rounds",
        ws.late_rounds
    );
    assert_eq!(
        ws.max_rounds_behind(),
        0,
        "the laggard must be fresh again once it recovers"
    );
    assert_eq!(*behind_after.last().unwrap(), 0);

    // Non-blocking degradation: once the laggard is detected (one
    // barrier pays the round timeout, exactly as lockstep would), the
    // following stale rounds cost nothing until the bounded-lag
    // throttle engages. The rounds that climb `rounds_behind` through
    // 2..=5 are the pre-throttle ones — each must come in far under the
    // timeout, where the lockstep runtime would have blocked the full
    // timeout on every one.
    let mut windowed = Vec::new();
    for (i, &behind) in behind_after.iter().enumerate() {
        if (2..=DELAY_ROUNDS).contains(&behind) && i > 0 && behind_after[i - 1] == behind - 1 {
            windowed.push(durations[i]);
        }
    }
    assert!(
        windowed.len() >= (DELAY_ROUNDS - 1) as usize,
        "expected the staleness counter to climb through 2..={DELAY_ROUNDS}: {behind_after:?}"
    );
    for (k, d) in windowed.iter().enumerate() {
        assert!(
            *d < ROUND_TIMEOUT / 2,
            "stale round {} of the window blocked for {d:?} (timeout {ROUND_TIMEOUT:?})",
            k + 2
        );
    }
    // And no tick — detection and throttled rounds included — ever
    // blocks past one barrier timeout (plus scheduling slack).
    for (i, d) in durations.iter().enumerate() {
        assert!(
            *d < ROUND_TIMEOUT * 3,
            "tick {i} blocked for {d:?} (barrier bound {ROUND_TIMEOUT:?})"
        );
    }

    // Feasibility during degradation: frozen exchange state freezes
    // rates; it must not inflate them into over-subscription.
    let over = degraded_feasibility.expect("the degradation window was observed");
    assert!(
        over <= 1e-6,
        "a link over-subscribed by {over:.2e} while degraded"
    );

    // Reconvergence: after recovery the cluster lands on the unsharded
    // optimum (same criterion as the arbiterd demo).
    let mut reference = AllocatorService::new(&fabric, cfg);
    for (token, src) in flows() {
        reference
            .on_message(start(&fabric, token, src, RECEIVER))
            .unwrap();
    }
    for _ in 0..TICKS {
        reference.tick();
    }
    let tol = cfg.update_threshold;
    for (token, src) in flows() {
        let expect = reference.flow_rate_gbps(Token::new(token)).unwrap();
        let peer = if placement.shard_of(src) == 0 {
            &healthy
        } else {
            &laggard
        };
        let got = peer.service().flow_rate_gbps(Token::new(token)).unwrap();
        assert!(
            (expect - got).abs() <= tol * expect.max(1.0),
            "token {token}: unsharded {expect} vs recovered cluster {got}"
        );
    }
}
