//! Runs the `flowtune-arbiterd --demo` launcher end-to-end: two real
//! shard processes exchanging over Unix-domain sockets must converge
//! to the unsharded optimum with real bytes on the wire. This is the
//! same invocation the CI smoke row uses.

use std::process::Command;

#[test]
fn two_process_uds_demo_converges() {
    let out = Command::new(env!("CARGO_BIN_EXE_flowtune-arbiterd"))
        .args(["--demo", "2", "--ticks", "400"])
        .output()
        .expect("launch flowtune-arbiterd");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "demo failed ({}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    assert!(
        stdout.contains("demo: PASS"),
        "demo did not report PASS:\n{stdout}"
    );
}
