//! Pins the tentpole's allocation discipline: after warm-up, an
//! exchange round's encode + decode path (delta-filter, frame append,
//! record walk, replica update) touches the heap zero times. The frame
//! goes into one flat reusable buffer and the receiver's replicas are
//! grown once; steady-state rounds only overwrite.
//!
//! A counting `#[global_allocator]` makes the claim checkable without
//! tooling: it counts every `alloc`/`realloc`/`alloc_zeroed` while the
//! measured window is open. This lives in its own integration-test
//! binary so the counter sees nothing but this test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use flowtune::ExchangeCore;

struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const LINKS: usize = 48;
const WARM_ROUNDS: u64 = 5;
const MEASURED_ROUNDS: u64 = 50;

#[test]
fn steady_state_exchange_round_allocates_nothing() {
    let mut a = ExchangeCore::new(0, 2, 0.0);
    let mut b = ExchangeCore::new(1, 2, 0.0);

    let mut loads_a = vec![1.0f64; LINKS];
    let mut loads_b = vec![2.0f64; LINKS];
    let hessians: Vec<f64> = vec![0.5; LINKS];
    let prices: Vec<f64> = vec![0.25; LINKS];

    // One generously pre-reserved flat buffer per side — the same
    // discipline ShardPeer and ShardedService use.
    let mut frame_a: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut frame_b: Vec<u8> = Vec::with_capacity(64 * 1024);

    let mut round = 0u64;
    let mut exchange = |a: &mut ExchangeCore,
                        b: &mut ExchangeCore,
                        loads_a: &[f64],
                        loads_b: &[f64],
                        frame_a: &mut Vec<u8>,
                        frame_b: &mut Vec<u8>| {
        round += 1;
        frame_a.clear();
        frame_b.clear();
        a.begin_round(round, loads_a, &hessians, &prices, frame_a);
        b.begin_round(round, loads_b, &hessians, &prices, frame_b);
        a.apply_frame(frame_b).expect("peer frame decodes");
        b.apply_frame(frame_a).expect("peer frame decodes");
    };

    // Warm-up: first rounds size the last-shipped tables, the replicas
    // and the frame buffers.
    for r in 0..WARM_ROUNDS {
        for load in loads_a.iter_mut().chain(loads_b.iter_mut()) {
            *load += 0.01 * (r + 1) as f64;
        }
        exchange(
            &mut a,
            &mut b,
            &loads_a,
            &loads_b,
            &mut frame_a,
            &mut frame_b,
        );
    }

    // Measured window: every load moves every round, so every entry is
    // re-shipped — the worst case for the encode path.
    ALLOCS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    for r in 0..MEASURED_ROUNDS {
        for load in loads_a.iter_mut().chain(loads_b.iter_mut()) {
            *load += 0.001 * (r + 1) as f64;
        }
        exchange(
            &mut a,
            &mut b,
            &loads_a,
            &loads_b,
            &mut frame_a,
            &mut frame_b,
        );
    }
    ENABLED.store(false, Ordering::Relaxed);

    let allocs = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        allocs, 0,
        "steady-state exchange rounds must not allocate ({allocs} allocations over {MEASURED_ROUNDS} rounds)"
    );
}
