//! Pins the steady-state allocation discipline of the hot paths:
//!
//! * an exchange round's encode + decode path (delta-filter, frame
//!   append, record walk, replica update) touches the heap zero times
//!   after warm-up — the frame goes into one flat reusable buffer and
//!   the receiver's replicas are grown once, steady-state rounds only
//!   overwrite;
//! * a quiet allocator service tick — engine iteration, changed-rate
//!   export, update filtering — touches the heap zero times after
//!   warm-up, with the incremental engine on or off, including the
//!   periodic full-sweep ticks and `rates_into` reads of every rate;
//! * a converged peer cluster over the mem transport — send path,
//!   receiver threads, mailboxes, barrier, install, k-way merge —
//!   recycles every frame buffer through the pools and ticks without
//!   touching the heap (`PeerCluster::try_tick_into`).
//!
//! A counting `#[global_allocator]` makes the claims checkable without
//! tooling: it counts every `alloc`/`realloc`/`alloc_zeroed` while the
//! measured window is open. This lives in its own integration-test
//! binary so the counter sees nothing but these tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use flowtune::{AllocatorService, ExchangeCore, FlowtuneConfig};
use flowtune_proto::{Message, Token};
use flowtune_topo::{ClosConfig, TwoTierClos};

struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const LINKS: usize = 48;
const WARM_ROUNDS: u64 = 5;
const MEASURED_ROUNDS: u64 = 50;

/// The counter window is process-global, so tests that open it must not
/// overlap (cargo runs `#[test]`s concurrently by default).
static WINDOW: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn steady_state_exchange_round_allocates_nothing() {
    let _window = WINDOW.lock().unwrap();
    let mut a = ExchangeCore::new(0, 2, 0.0);
    let mut b = ExchangeCore::new(1, 2, 0.0);

    let mut loads_a = vec![1.0f64; LINKS];
    let mut loads_b = vec![2.0f64; LINKS];
    let hessians: Vec<f64> = vec![0.5; LINKS];
    let prices: Vec<f64> = vec![0.25; LINKS];

    // One generously pre-reserved flat buffer per side — the same
    // discipline ShardPeer and ShardedService use.
    let mut frame_a: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut frame_b: Vec<u8> = Vec::with_capacity(64 * 1024);

    let mut round = 0u64;
    let mut exchange = |a: &mut ExchangeCore,
                        b: &mut ExchangeCore,
                        loads_a: &[f64],
                        loads_b: &[f64],
                        frame_a: &mut Vec<u8>,
                        frame_b: &mut Vec<u8>| {
        round += 1;
        frame_a.clear();
        frame_b.clear();
        a.begin_round(round, loads_a, &hessians, &prices, frame_a);
        b.begin_round(round, loads_b, &hessians, &prices, frame_b);
        a.apply_frame(frame_b).expect("peer frame decodes");
        b.apply_frame(frame_a).expect("peer frame decodes");
    };

    // Warm-up: first rounds size the last-shipped tables, the replicas
    // and the frame buffers.
    for r in 0..WARM_ROUNDS {
        for load in loads_a.iter_mut().chain(loads_b.iter_mut()) {
            *load += 0.01 * (r + 1) as f64;
        }
        exchange(
            &mut a,
            &mut b,
            &loads_a,
            &loads_b,
            &mut frame_a,
            &mut frame_b,
        );
    }

    // Measured window: every load moves every round, so every entry is
    // re-shipped — the worst case for the encode path.
    ALLOCS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    for r in 0..MEASURED_ROUNDS {
        for load in loads_a.iter_mut().chain(loads_b.iter_mut()) {
            *load += 0.001 * (r + 1) as f64;
        }
        exchange(
            &mut a,
            &mut b,
            &loads_a,
            &loads_b,
            &mut frame_a,
            &mut frame_b,
        );
    }
    ENABLED.store(false, Ordering::Relaxed);

    let allocs = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        allocs, 0,
        "steady-state exchange rounds must not allocate ({allocs} allocations over {MEASURED_ROUNDS} rounds)"
    );
}

#[test]
fn steady_state_allocator_tick_allocates_nothing() {
    let _window = WINDOW.lock().unwrap();
    let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
    for incremental in [true, false] {
        let cfg = FlowtuneConfig {
            incremental,
            // Small cadence so the measured window provably crosses
            // full-sweep ticks — the worst case for the export path
            // (every worker drains) must be allocation-free too.
            full_sweep_every: 8,
            ..FlowtuneConfig::default()
        };
        let mut svc = AllocatorService::new(&fabric, cfg);
        let mut token = 0u32;
        for src in 0..16u16 {
            for k in 0..2u16 {
                let dst = (src + 5 + 3 * k) % 16;
                token += 1;
                let spine = fabric.ecmp_spine(
                    src as usize,
                    dst as usize,
                    flowtune_topo::FlowId(token as u64),
                );
                svc.on_message(Message::FlowletStart {
                    token: Token::new(token),
                    src,
                    dst,
                    size_hint: 1_000_000,
                    weight_q8: 256,
                    spine: spine as u8,
                })
                .unwrap();
            }
        }
        let mut rates = Vec::new();
        // Warm-up: converge the trajectory (so ticks are quiet and the
        // update filter suppresses everything) and size every reusable
        // buffer — export scratch, changed-set scratch, the rates vec.
        for _ in 0..300 {
            svc.tick();
        }
        svc.rates_into(&mut rates);
        assert_eq!(rates.len(), 32);

        ALLOCS.store(0, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
        for _ in 0..MEASURED_ROUNDS {
            let updates = svc.tick();
            assert!(updates.is_empty(), "quiet ticks must suppress updates");
            svc.rates_into(&mut rates);
        }
        ENABLED.store(false, Ordering::Relaxed);

        let allocs = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            allocs, 0,
            "steady-state allocator ticks must not allocate \
             (incremental={incremental}: {allocs} allocations over {MEASURED_ROUNDS} ticks)"
        );
        assert_eq!(rates.len(), 32);
    }
}

#[test]
fn steady_state_peer_cluster_tick_allocates_nothing() {
    use std::time::Duration;

    use flowtune::{ExchangeConfig, TickDriver};
    use flowtune_net::{mem_mesh, PeerCluster, ShardPeer};
    use flowtune_topo::FlowId;

    let _window = WINDOW.lock().unwrap();
    let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
    let cfg = FlowtuneConfig {
        exchange_every: 1,
        ..FlowtuneConfig::default()
    };
    let exchange = ExchangeConfig::from_flowtune(&cfg).round_timeout(Duration::from_secs(5));
    let peers: Vec<_> = mem_mesh(2)
        .into_iter()
        .map(|t| {
            ShardPeer::new(AllocatorService::new(&fabric, cfg), t, exchange)
                .expect("mem transport splits infallibly")
        })
        .collect();
    let mut cluster = PeerCluster::from_peers(peers);
    let mut token = 0u32;
    for src in 0..16u16 {
        let dst = (src + 5) % 16;
        token += 1;
        let spine = fabric.ecmp_spine(src as usize, dst as usize, FlowId(token as u64));
        cluster
            .on_message(Message::FlowletStart {
                token: Token::new(token),
                src,
                dst,
                size_hint: 1_000_000,
                weight_q8: 256,
                spine: spine as u8,
            })
            .unwrap();
    }
    let mut out = Vec::new();
    // Warm-up: converge (quiet ticks, empty update streams) and size
    // every reusable buffer — frame scratch, mailbox queues, the frame
    // pools on both the send and receive side.
    for _ in 0..300 {
        cluster.try_tick_into(&mut out).expect("warm-up tick");
    }

    ALLOCS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    for _ in 0..MEASURED_ROUNDS {
        cluster.try_tick_into(&mut out).expect("measured tick");
        assert!(out.is_empty(), "quiet cluster ticks must suppress updates");
    }
    ENABLED.store(false, Ordering::Relaxed);

    let allocs = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        allocs, 0,
        "steady-state peer cluster ticks must not allocate \
         ({allocs} allocations over {MEASURED_ROUNDS} ticks, receiver threads included)"
    );
}
