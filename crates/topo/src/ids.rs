//! Strongly-typed identifiers.
//!
//! All network entities are referred to by dense indices so hot paths (the
//! NED inner loop, the simulator event loop) can use flat `Vec` storage.
//! Newtypes keep the index spaces from being mixed up.

use std::fmt;

/// Identifies a node (server, ToR switch, spine switch, or the allocator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Identifies a rack (equivalently, its ToR switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u16);

/// Identifies a block: a group of racks that the multicore allocator treats
/// as one unit (§5, Figure 2 — "Groups of network racks form blocks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u16);

/// Identifies a flow (a five-tuple in a real deployment). Flowlets of the
/// same flow reuse the flow's id; the allocator tracks whichever flowlets
/// are currently active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

macro_rules! impl_id {
    ($name:ident, $inner:ty) => {
        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v as $inner)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

impl_id!(NodeId, u32);
impl_id!(LinkId, u32);
impl_id!(RackId, u16);
impl_id!(BlockId, u16);
impl_id!(FlowId, u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        assert_eq!(NodeId::from(42usize).index(), 42);
        assert_eq!(LinkId(7).index(), 7);
        assert_eq!(RackId::from(3u16).index(), 3);
        assert_eq!(BlockId(1).index(), 1);
        assert_eq!(FlowId(9).index(), 9);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(NodeId(5).to_string(), "NodeId(5)");
        assert_eq!(FlowId(11).to_string(), "FlowId(11)");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(LinkId(1) < LinkId(2));
        assert!(NodeId(0) < NodeId(10));
    }
}
