//! Generic directed topology graph.

use crate::ids::{LinkId, NodeId};
use crate::link::{Link, LinkDir};

/// Role of a node in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An endpoint host.
    Server,
    /// Top-of-rack switch.
    Tor,
    /// Spine/aggregation switch.
    Spine,
    /// The centralized Flowtune allocator machine.
    Allocator,
}

/// A node with its role and a per-node forwarding delay.
///
/// §6.2 gives 2 µs server delay and calibrates the topology to a 14 µs
/// 2-hop / 22 µs 4-hop RTT; with 1.5 µs links that decomposes into a 2 µs
/// server delay, 0 ToR delay, and 1 µs spine forwarding delay (see
/// `ClosConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Dense identifier; equals this node's position in `Topology::nodes`.
    pub id: NodeId,
    /// Role of the node.
    pub kind: NodeKind,
    /// Per-node forwarding/processing delay in picoseconds, applied once
    /// per traversal by the simulator.
    pub delay_ps: u64,
}

/// A directed graph of nodes and capacitated links.
///
/// `Topology` is deliberately dumb: it stores nodes, links, and adjacency,
/// and answers lookups. Routing policy lives in the builders (e.g.
/// [`crate::clos::TwoTierClos`]) because it depends on the fabric type.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing link ids per node, in insertion order.
    out_links: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, delay_ps: u64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, kind, delay_ps });
        self.out_links.push(Vec::new());
        id
    }

    /// Adds a unidirectional link and returns its id.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is out of range, if they are equal, or if
    /// the capacity is zero (§3 requires strictly positive capacities).
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity_bps: u64,
        delay_ps: u64,
        dir: LinkDir,
    ) -> LinkId {
        assert!(src.index() < self.nodes.len(), "src node out of range");
        assert!(dst.index() < self.nodes.len(), "dst node out of range");
        assert_ne!(src, dst, "self-loop links are not allowed");
        assert!(capacity_bps > 0, "link capacity must be strictly positive");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            src,
            dst,
            capacity_bps,
            delay_ps,
            dir,
        });
        self.out_links[src.index()].push(id);
        id
    }

    /// All nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, indexed by [`LinkId`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks up a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Outgoing links of `node`.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_links[node.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The outgoing link from `src` to `dst`, if one exists.
    ///
    /// Linear in the out-degree of `src`, which is constant for servers and
    /// bounded by the spine count for switches.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out_links[src.index()]
            .iter()
            .copied()
            .find(|&l| self.links[l.index()].dst == dst)
    }

    /// Capacities of all links in bits/s, indexed by [`LinkId`] — the form
    /// the NUM solvers consume.
    pub fn capacities_bps(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.capacity_bps as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, 2_000_000);
        let b = t.add_node(NodeKind::Tor, 0);
        let c = t.add_node(NodeKind::Server, 2_000_000);
        t.add_link(a, b, 10_000_000_000, 1_500_000, LinkDir::Up);
        t.add_link(b, c, 10_000_000_000, 1_500_000, LinkDir::Down);
        (t, a, b, c)
    }

    #[test]
    fn build_and_lookup() {
        let (t, a, b, c) = tiny();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.node(a).kind, NodeKind::Server);
        assert_eq!(t.node(b).kind, NodeKind::Tor);
        assert_eq!(t.out_links(a), &[LinkId(0)]);
        assert_eq!(t.out_links(b), &[LinkId(1)]);
        assert_eq!(t.out_links(c), &[] as &[LinkId]);
        assert_eq!(t.link(LinkId(0)).src, a);
        assert_eq!(t.link(LinkId(0)).dst, b);
    }

    #[test]
    fn find_link_works() {
        let (t, a, b, c) = tiny();
        assert_eq!(t.find_link(a, b), Some(LinkId(0)));
        assert_eq!(t.find_link(b, c), Some(LinkId(1)));
        assert_eq!(t.find_link(a, c), None);
        assert_eq!(t.find_link(c, b), None);
    }

    #[test]
    fn capacities_vector_matches_links() {
        let (t, ..) = tiny();
        assert_eq!(t.capacities_bps(), vec![1e10, 1e10]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_capacity_rejected() {
        let (mut t, a, b, _) = tiny();
        t.add_link(b, a, 0, 1, LinkDir::Down);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let (mut t, a, ..) = tiny();
        t.add_link(a, a, 1, 1, LinkDir::Up);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_node_rejected() {
        let (mut t, a, ..) = tiny();
        t.add_link(a, NodeId(99), 1, 1, LinkDir::Up);
    }
}
