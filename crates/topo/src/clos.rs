//! Two-tier full-bisection Clos (leaf–spine) fabric builder.
//!
//! This is the topology of the paper's evaluation (§6.2): "a two-tier
//! full-bisection topology with 4 spine switches connected to 9 racks of 16
//! servers each, where servers are connected with a 10 Gbits/s link" — the
//! same topology as pFabric's evaluation, in which the leaf–spine links run
//! at 40 Gbit/s so the fabric has full bisection bandwidth
//! (16 × 10 G up = 4 × 40 G).
//!
//! The builder also exposes the *block* structure of §5: racks are grouped
//! into blocks; every block owns one **upward LinkBlock** (its servers'
//! server→ToR links plus its ToRs' ToR→spine links) and one **downward
//! LinkBlock** (spine→ToR plus ToR→server links into the block). A flow
//! from block *i* to block *j* touches only up-LinkBlock *i* and
//! down-LinkBlock *j*, which is what makes the multicore partitioning
//! contention-free.

use crate::ids::{BlockId, FlowId, LinkId, NodeId, RackId};
use crate::link::LinkDir;
use crate::topology::{NodeKind, Topology};
use crate::Path;

/// Configuration for [`TwoTierClos`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClosConfig {
    /// Number of racks (= ToR switches).
    pub racks: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// Number of spine switches; every ToR connects to every spine.
    pub spines: usize,
    /// Capacity of server↔ToR links, bits/s.
    pub host_link_bps: u64,
    /// Capacity of ToR↔spine links, bits/s.
    pub fabric_link_bps: u64,
    /// Per-link propagation delay, picoseconds (paper: 1.5 µs).
    pub link_delay_ps: u64,
    /// Per-server processing delay, picoseconds (paper: 2 µs).
    pub server_delay_ps: u64,
    /// Per-spine forwarding delay, picoseconds. 1 µs reproduces the
    /// paper's 22 µs 4-hop RTT together with the delays above (ToRs add
    /// zero), see `rtt_ps` tests.
    pub spine_delay_ps: u64,
    /// Racks per allocator block (§5). Must divide `racks` exactly for
    /// block-aware operations; topologies that don't use the multicore
    /// allocator may set it to `racks`.
    pub racks_per_block: usize,
}

impl ClosConfig {
    /// The evaluation topology of §6.2: 9 racks × 16 servers, 4 spines,
    /// 10 G hosts / 40 G fabric, 14 µs 2-hop and 22 µs 4-hop RTTs.
    ///
    /// 9 racks do not split evenly into power-of-two blocks, so the
    /// simulator runs the allocator single-block; the multicore benchmarks
    /// use [`ClosConfig::multicore`] instead, mirroring how the paper
    /// benchmarks the allocator on larger Jupiter-like fabrics.
    pub fn paper_eval() -> Self {
        Self {
            racks: 9,
            servers_per_rack: 16,
            spines: 4,
            host_link_bps: 10_000_000_000,
            fabric_link_bps: 40_000_000_000,
            link_delay_ps: 1_500_000,
            server_delay_ps: 2_000_000,
            spine_delay_ps: 1_000_000,
            racks_per_block: 9,
        }
    }

    /// A fabric for allocator benchmarks (§6.1): `blocks` blocks of
    /// `racks_per_block` racks of `servers_per_rack` servers, 40 G links
    /// (the paper's table assumes 40 Gbit/s links).
    pub fn multicore(blocks: usize, racks_per_block: usize, servers_per_rack: usize) -> Self {
        Self {
            racks: blocks * racks_per_block,
            servers_per_rack,
            spines: 4,
            host_link_bps: 40_000_000_000,
            fabric_link_bps: 40_000_000_000 * servers_per_rack as u64 / 4,
            link_delay_ps: 1_500_000,
            server_delay_ps: 2_000_000,
            spine_delay_ps: 1_000_000,
            racks_per_block,
        }
    }

    /// Total number of servers.
    pub fn server_count(&self) -> usize {
        self.racks * self.servers_per_rack
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.racks / self.racks_per_block
    }
}

/// A built two-tier Clos fabric with id lookup tables and routing.
#[derive(Debug, Clone)]
pub struct TwoTierClos {
    cfg: ClosConfig,
    topo: Topology,
    servers: Vec<NodeId>,
    tors: Vec<NodeId>,
    spines: Vec<NodeId>,
    /// server index → server→ToR link.
    up_host: Vec<LinkId>,
    /// server index → ToR→server link.
    down_host: Vec<LinkId>,
    /// rack index × spine index → ToR→spine link.
    up_fabric: Vec<Vec<LinkId>>,
    /// spine index × rack index → spine→ToR link.
    down_fabric: Vec<Vec<LinkId>>,
    /// The allocator node and its control links, if attached.
    allocator: Option<AllocatorAttachment>,
}

/// The allocator machine and its 40 G control links to every spine (§6.2:
/// "The allocator is connected using a 40 Gbits/s link to each of the spine
/// switches").
#[derive(Debug, Clone)]
pub struct AllocatorAttachment {
    /// The allocator's node id.
    pub node: NodeId,
    /// allocator→spine links, by spine index.
    pub to_spine: Vec<LinkId>,
    /// spine→allocator links, by spine index.
    pub from_spine: Vec<LinkId>,
}

impl TwoTierClos {
    /// Builds the fabric.
    ///
    /// # Panics
    /// Panics if any dimension is zero or if `racks_per_block` does not
    /// divide `racks`.
    pub fn build(cfg: ClosConfig) -> Self {
        assert!(cfg.racks > 0 && cfg.servers_per_rack > 0 && cfg.spines > 0);
        assert!(
            cfg.racks_per_block > 0 && cfg.racks.is_multiple_of(cfg.racks_per_block),
            "racks_per_block must divide racks"
        );
        let mut topo = Topology::new();

        let spines: Vec<NodeId> = (0..cfg.spines)
            .map(|_| topo.add_node(NodeKind::Spine, cfg.spine_delay_ps))
            .collect();
        let tors: Vec<NodeId> = (0..cfg.racks)
            .map(|_| topo.add_node(NodeKind::Tor, 0))
            .collect();
        let servers: Vec<NodeId> = (0..cfg.server_count())
            .map(|_| topo.add_node(NodeKind::Server, cfg.server_delay_ps))
            .collect();

        let mut up_host = Vec::with_capacity(servers.len());
        let mut down_host = Vec::with_capacity(servers.len());
        for (i, &s) in servers.iter().enumerate() {
            let tor = tors[i / cfg.servers_per_rack];
            up_host.push(topo.add_link(s, tor, cfg.host_link_bps, cfg.link_delay_ps, LinkDir::Up));
            down_host.push(topo.add_link(
                tor,
                s,
                cfg.host_link_bps,
                cfg.link_delay_ps,
                LinkDir::Down,
            ));
        }

        let mut up_fabric = vec![Vec::with_capacity(cfg.spines); cfg.racks];
        let mut down_fabric = vec![Vec::with_capacity(cfg.racks); cfg.spines];
        for (r, &tor) in tors.iter().enumerate() {
            for (sp, &spine) in spines.iter().enumerate() {
                up_fabric[r].push(topo.add_link(
                    tor,
                    spine,
                    cfg.fabric_link_bps,
                    cfg.link_delay_ps,
                    LinkDir::Up,
                ));
                down_fabric[sp].push(topo.add_link(
                    spine,
                    tor,
                    cfg.fabric_link_bps,
                    cfg.link_delay_ps,
                    LinkDir::Down,
                ));
            }
        }

        Self {
            cfg,
            topo,
            servers,
            tors,
            spines,
            up_host,
            down_host,
            up_fabric,
            down_fabric,
            allocator: None,
        }
    }

    /// Attaches the allocator machine with 40 G links to every spine.
    /// Returns its node id. Idempotent: calling twice returns the same id.
    pub fn attach_allocator(&mut self) -> NodeId {
        if let Some(a) = &self.allocator {
            return a.node;
        }
        let node = self
            .topo
            .add_node(NodeKind::Allocator, self.cfg.server_delay_ps);
        let mut to_spine = Vec::with_capacity(self.spines.len());
        let mut from_spine = Vec::with_capacity(self.spines.len());
        for &sp in &self.spines {
            to_spine.push(self.topo.add_link(
                node,
                sp,
                40_000_000_000,
                self.cfg.link_delay_ps,
                LinkDir::Control,
            ));
            from_spine.push(self.topo.add_link(
                sp,
                node,
                40_000_000_000,
                self.cfg.link_delay_ps,
                LinkDir::Control,
            ));
        }
        self.allocator = Some(AllocatorAttachment {
            node,
            to_spine,
            from_spine,
        });
        node
    }

    /// The allocator attachment, if [`TwoTierClos::attach_allocator`] was called.
    pub fn allocator(&self) -> Option<&AllocatorAttachment> {
        self.allocator.as_ref()
    }

    /// The underlying graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration this fabric was built from.
    pub fn config(&self) -> &ClosConfig {
        &self.cfg
    }

    /// Node ids of all servers, indexed by server index.
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Node ids of all ToR switches, indexed by rack index.
    pub fn tors(&self) -> &[NodeId] {
        &self.tors
    }

    /// Node ids of all spines, indexed by spine index.
    pub fn spines(&self) -> &[NodeId] {
        &self.spines
    }

    /// The rack a server belongs to.
    pub fn rack_of_server(&self, server: usize) -> RackId {
        RackId((server / self.cfg.servers_per_rack) as u16)
    }

    /// The block a rack belongs to.
    pub fn block_of_rack(&self, rack: RackId) -> BlockId {
        BlockId((rack.index() / self.cfg.racks_per_block) as u16)
    }

    /// The block a server belongs to.
    pub fn block_of_server(&self, server: usize) -> BlockId {
        self.block_of_rack(self.rack_of_server(server))
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.cfg.block_count()
    }

    /// Deterministic ECMP spine choice for (src, dst, flow).
    ///
    /// Models a hash-based ECMP fabric: the allocator can recompute every
    /// flow's path from the same hash (§7 "Routing information can be
    /// computed from the network state: in ECMP-based networks, given the
    /// ECMP hash function").
    pub fn ecmp_spine(&self, src: usize, dst: usize, flow: FlowId) -> usize {
        let h = splitmix64(
            splitmix64(flow.0 ^ 0x9e37_79b9_7f4a_7c15) ^ ((src as u64) << 32) ^ dst as u64,
        );
        (h % self.cfg.spines as u64) as usize
    }

    /// The path of a flow from server `src` to server `dst`.
    ///
    /// Same-rack flows take 2 hops (server→ToR→server); all others take 4
    /// hops via the ECMP-chosen spine.
    ///
    /// # Panics
    /// Panics if `src == dst` or either index is out of range.
    pub fn path(&self, src: usize, dst: usize, flow: FlowId) -> Path {
        assert_ne!(src, dst, "a flow needs distinct endpoints");
        let src_rack = self.rack_of_server(src).index();
        let dst_rack = self.rack_of_server(dst).index();
        if src_rack == dst_rack {
            Path::new(vec![self.up_host[src], self.down_host[dst]])
        } else {
            let sp = self.ecmp_spine(src, dst, flow);
            Path::new(vec![
                self.up_host[src],
                self.up_fabric[src_rack][sp],
                self.down_fabric[sp][dst_rack],
                self.down_host[dst],
            ])
        }
    }

    /// The path of a flow through an explicitly-chosen spine — how the
    /// allocator reconstructs a path from the spine index carried in a
    /// `FlowletStart` notification (§7: the allocator must "know each
    /// flow's path"). Same-rack flows ignore `spine`.
    ///
    /// # Panics
    /// Panics if `src == dst`, any index is out of range, or `spine` is
    /// not a valid spine index for cross-rack flows.
    pub fn path_via_spine(&self, src: usize, dst: usize, spine: usize) -> Path {
        assert_ne!(src, dst, "a flow needs distinct endpoints");
        let src_rack = self.rack_of_server(src).index();
        let dst_rack = self.rack_of_server(dst).index();
        if src_rack == dst_rack {
            Path::new(vec![self.up_host[src], self.down_host[dst]])
        } else {
            Path::new(vec![
                self.up_host[src],
                self.up_fabric[src_rack][spine],
                self.down_fabric[spine][dst_rack],
                self.down_host[dst],
            ])
        }
    }

    /// Control path from server `src` to the allocator (3 links) via the
    /// ECMP-chosen spine.
    ///
    /// # Panics
    /// Panics if the allocator is not attached.
    pub fn path_to_allocator(&self, src: usize, flow: FlowId) -> Path {
        let a = self.allocator.as_ref().expect("allocator not attached");
        let rack = self.rack_of_server(src).index();
        let sp = self.ecmp_spine(src, usize::MAX, flow);
        Path::new(vec![
            self.up_host[src],
            self.up_fabric[rack][sp],
            a.from_spine[sp],
        ])
    }

    /// Control path from the allocator to server `dst` (3 links).
    ///
    /// # Panics
    /// Panics if the allocator is not attached.
    pub fn path_from_allocator(&self, dst: usize, flow: FlowId) -> Path {
        let a = self.allocator.as_ref().expect("allocator not attached");
        let rack = self.rack_of_server(dst).index();
        let sp = self.ecmp_spine(usize::MAX, dst, flow);
        Path::new(vec![
            a.to_spine[sp],
            self.down_fabric[sp][rack],
            self.down_host[dst],
        ])
    }

    /// The server→ToR access link of a server.
    pub fn host_up_link(&self, server: usize) -> LinkId {
        self.up_host[server]
    }

    /// The ToR→server access link of a server.
    pub fn host_down_link(&self, server: usize) -> LinkId {
        self.down_host[server]
    }

    /// All links of block `b`'s **upward LinkBlock**: server→ToR links of
    /// its servers and ToR→spine links of its racks (Figure 2a).
    pub fn up_linkblock(&self, b: BlockId) -> Vec<LinkId> {
        let mut out = Vec::new();
        for rack in self.racks_of_block(b) {
            let first = rack * self.cfg.servers_per_rack;
            for s in first..first + self.cfg.servers_per_rack {
                out.push(self.up_host[s]);
            }
            out.extend_from_slice(&self.up_fabric[rack]);
        }
        out
    }

    /// All links of block `b`'s **downward LinkBlock**: spine→ToR links
    /// toward its racks and ToR→server links of its servers (Figure 2b).
    pub fn down_linkblock(&self, b: BlockId) -> Vec<LinkId> {
        let mut out = Vec::new();
        for rack in self.racks_of_block(b) {
            for sp in 0..self.cfg.spines {
                out.push(self.down_fabric[sp][rack]);
            }
            let first = rack * self.cfg.servers_per_rack;
            for s in first..first + self.cfg.servers_per_rack {
                out.push(self.down_host[s]);
            }
        }
        out
    }

    /// Rack indices of block `b`.
    pub fn racks_of_block(&self, b: BlockId) -> std::ops::Range<usize> {
        let first = b.index() * self.cfg.racks_per_block;
        first..first + self.cfg.racks_per_block
    }

    /// One-way latency of a path in picoseconds, counting link propagation
    /// and per-node forwarding delays of the interior nodes plus both
    /// endpoints (matches the paper's RTT accounting, see tests).
    pub fn path_latency_ps(&self, path: &Path) -> u64 {
        let mut total = 0;
        // Source node delay.
        total += self.topo.node(self.topo.link(path.links()[0]).src).delay_ps;
        for l in path.iter() {
            let link = self.topo.link(l);
            total += link.delay_ps;
            total += self.topo.node(link.dst).delay_ps;
        }
        total
    }
}

/// SplitMix64: a tiny, high-quality deterministic mixer used for ECMP
/// hashing (no external dependency, identical results on every platform).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::paper_eval())
    }

    #[test]
    fn paper_eval_dimensions() {
        let f = eval_fabric();
        assert_eq!(f.servers().len(), 144);
        assert_eq!(f.tors().len(), 9);
        assert_eq!(f.spines().len(), 4);
        // links: 144*2 host + 9*4*2 fabric = 288 + 72 = 360
        assert_eq!(f.topology().link_count(), 360);
    }

    #[test]
    fn full_bisection() {
        let f = eval_fabric();
        let cfg = f.config();
        let up_host = cfg.servers_per_rack as u64 * cfg.host_link_bps;
        let up_fabric = cfg.spines as u64 * cfg.fabric_link_bps;
        assert_eq!(up_host, up_fabric, "paper fabric has full bisection");
    }

    #[test]
    fn same_rack_path_has_two_hops() {
        let f = eval_fabric();
        let p = f.path(0, 1, FlowId(7));
        assert_eq!(p.len(), 2);
        assert_eq!(p.links()[0], f.host_up_link(0));
        assert_eq!(p.links()[1], f.host_down_link(1));
    }

    #[test]
    fn cross_rack_path_has_four_hops() {
        let f = eval_fabric();
        let p = f.path(0, 143, FlowId(7));
        assert_eq!(p.len(), 4);
        let topo = f.topology();
        // Contiguity: each link starts where the previous ended.
        for w in p.links().windows(2) {
            assert_eq!(topo.link(w[0]).dst, topo.link(w[1]).src);
        }
        assert_eq!(topo.link(p.links()[0]).src, f.servers()[0]);
        assert_eq!(topo.link(p.links()[3]).dst, f.servers()[143]);
    }

    #[test]
    fn rtt_matches_paper() {
        // §6.2: 14 µs 2-hop RTT and 22 µs 4-hop RTT.
        let f = eval_fabric();
        let p2 = f.path(0, 1, FlowId(1));
        assert_eq!(2 * f.path_latency_ps(&p2), 14_000_000);
        let p4 = f.path(0, 143, FlowId(1));
        assert_eq!(2 * f.path_latency_ps(&p4), 22_000_000);
    }

    #[test]
    fn ecmp_is_deterministic_and_spreads() {
        let f = eval_fabric();
        let a = f.ecmp_spine(0, 100, FlowId(42));
        let b = f.ecmp_spine(0, 100, FlowId(42));
        assert_eq!(a, b);
        // Different flows between the same pair should hit >1 spine.
        let mut seen = std::collections::HashSet::new();
        for fl in 0..64 {
            seen.insert(f.ecmp_spine(0, 100, FlowId(fl)));
        }
        assert!(seen.len() > 1, "ECMP should spread across spines");
    }

    #[test]
    fn blocks_partition_racks() {
        let cfg = ClosConfig::multicore(4, 2, 8); // 8 racks, 4 blocks
        let f = TwoTierClos::build(cfg);
        assert_eq!(f.block_count(), 4);
        assert_eq!(f.block_of_server(0), BlockId(0));
        assert_eq!(f.block_of_server(15), BlockId(0)); // rack 1, block 0
        assert_eq!(f.block_of_server(16), BlockId(1)); // rack 2, block 1
        assert_eq!(f.racks_of_block(BlockId(3)), 6..8);
    }

    #[test]
    fn linkblocks_cover_all_data_links_exactly_once() {
        let cfg = ClosConfig::multicore(2, 2, 4);
        let f = TwoTierClos::build(cfg);
        let mut seen = std::collections::HashSet::new();
        for b in 0..f.block_count() {
            for l in f
                .up_linkblock(BlockId(b as u16))
                .into_iter()
                .chain(f.down_linkblock(BlockId(b as u16)))
            {
                assert!(seen.insert(l), "link {l} appears in two LinkBlocks");
            }
        }
        assert_eq!(seen.len(), f.topology().link_count());
    }

    #[test]
    fn linkblock_sizes_are_uniform() {
        // §5: "each LinkBlock contains exactly the same number of links".
        let cfg = ClosConfig::multicore(4, 3, 8);
        let f = TwoTierClos::build(cfg);
        let up0 = f.up_linkblock(BlockId(0)).len();
        let down0 = f.down_linkblock(BlockId(0)).len();
        for b in 1..f.block_count() {
            assert_eq!(f.up_linkblock(BlockId(b as u16)).len(), up0);
            assert_eq!(f.down_linkblock(BlockId(b as u16)).len(), down0);
        }
    }

    #[test]
    fn flow_touches_only_its_blocks() {
        let cfg = ClosConfig::multicore(4, 2, 8);
        let f = TwoTierClos::build(cfg);
        let src = 0; // block 0
        let dst = f.config().server_count() - 1; // last block
        let p = f.path(src, dst, FlowId(5));
        let up: std::collections::HashSet<_> =
            f.up_linkblock(f.block_of_server(src)).into_iter().collect();
        let down: std::collections::HashSet<_> = f
            .down_linkblock(f.block_of_server(dst))
            .into_iter()
            .collect();
        for l in p.iter() {
            assert!(
                up.contains(&l) || down.contains(&l),
                "path link outside the flow's two LinkBlocks"
            );
        }
    }

    #[test]
    fn allocator_paths() {
        let mut f = eval_fabric();
        let node = f.attach_allocator();
        assert_eq!(f.attach_allocator(), node, "idempotent");
        let topo = f.topology();
        let to = f.path_to_allocator(5, FlowId(1));
        assert_eq!(to.len(), 3);
        assert_eq!(topo.link(to.links()[2]).dst, node);
        let from = f.path_from_allocator(5, FlowId(1));
        assert_eq!(from.len(), 3);
        assert_eq!(topo.link(from.links()[0]).src, node);
        assert_eq!(topo.link(from.links()[2]).dst, f.servers()[5]);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn self_flow_rejected() {
        let f = eval_fabric();
        let _ = f.path(3, 3, FlowId(0));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_block_size_rejected() {
        let mut cfg = ClosConfig::paper_eval();
        cfg.racks_per_block = 2; // 9 racks not divisible by 2
        let _ = TwoTierClos::build(cfg);
    }
}
