//! Unidirectional capacitated links.

use crate::ids::{LinkId, NodeId};

/// Direction of a link relative to the Clos hierarchy.
///
/// The multicore allocator (§5) partitions links into *upward* LinkBlocks
/// (server→ToR and ToR→spine) and *downward* LinkBlocks (spine→ToR and
/// ToR→server): all updates to upward links of a block come only from flows
/// *sourced* in that block, and symmetrically for downward links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// Toward the spine layer: server→ToR or ToR→spine.
    Up,
    /// Toward the servers: spine→ToR or ToR→server.
    Down,
    /// Control-plane attachment (allocator↔spine); not part of any
    /// LinkBlock and never allocated by the optimizer.
    Control,
}

/// A unidirectional link with fixed capacity and propagation delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Dense identifier; equals this link's position in `Topology::links`.
    pub id: LinkId,
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Capacity in bits per second.
    pub capacity_bps: u64,
    /// Propagation delay in picoseconds.
    pub delay_ps: u64,
    /// Position in the Clos hierarchy.
    pub dir: LinkDir,
}

impl Link {
    /// Time to serialize `bytes` onto this link, in picoseconds.
    ///
    /// Computed as `bits * 1e12 / capacity` using 128-bit intermediates so
    /// it is exact for any realistic capacity (≥ 1 kbit/s) and size.
    #[inline]
    pub fn serialization_ps(&self, bytes: u32) -> u64 {
        let bits = u128::from(bytes) * 8;
        (bits * 1_000_000_000_000u128 / u128::from(self.capacity_bps)) as u64
    }

    /// Capacity expressed in bytes per picosecond × 10^12 (i.e. bytes/s).
    #[inline]
    pub fn capacity_bytes_per_sec(&self) -> f64 {
        self.capacity_bps as f64 / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(capacity_bps: u64) -> Link {
        Link {
            id: LinkId(0),
            src: NodeId(0),
            dst: NodeId(1),
            capacity_bps,
            delay_ps: 1_500_000, // 1.5 us
            dir: LinkDir::Up,
        }
    }

    #[test]
    fn serialization_time_10g_mtu() {
        // 1500 B at 10 Gbit/s = 1.2 us = 1_200_000 ps.
        let l = link(10_000_000_000);
        assert_eq!(l.serialization_ps(1500), 1_200_000);
    }

    #[test]
    fn serialization_time_40g_min_frame() {
        // 64 B at 40 Gbit/s = 12.8 ns = 12_800 ps.
        let l = link(40_000_000_000);
        assert_eq!(l.serialization_ps(64), 12_800);
    }

    #[test]
    fn serialization_zero_bytes_is_zero() {
        assert_eq!(link(10_000_000_000).serialization_ps(0), 0);
    }

    #[test]
    fn capacity_in_bytes() {
        assert_eq!(link(8_000_000_000).capacity_bytes_per_sec(), 1e9);
    }
}
