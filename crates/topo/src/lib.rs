//! Datacenter topology substrate for the Flowtune reproduction.
//!
//! The paper (§5, §6.2) evaluates Flowtune on two-tier full-bisection Clos
//! fabrics: racks of servers, one ToR switch per rack, and a layer of spine
//! switches with every ToR connected to every spine. This crate provides:
//!
//! * strongly-typed identifiers ([`NodeId`], [`LinkId`], [`RackId`],
//!   [`BlockId`], [`FlowId`]),
//! * a generic directed [`Topology`] graph of nodes and capacitated links,
//! * a [`TwoTierClos`] builder matching the paper's
//!   evaluation topology (9 racks × 16 servers × 4 spines at 10 Gbit/s),
//! * deterministic hash-based ECMP path resolution ([`clos::TwoTierClos::path`]),
//! * the rack→block grouping and upward/downward LinkBlock membership used
//!   by the multicore allocator (§5, Figure 2).
//!
//! Everything is deterministic: the same inputs always produce the same
//! paths, which the simulator and the allocator both rely on.

#![forbid(unsafe_code)]

pub mod clos;
pub mod ids;
pub mod link;
pub mod topology;

pub use clos::{ClosConfig, TwoTierClos};
pub use ids::{BlockId, FlowId, LinkId, NodeId, RackId};
pub use link::{Link, LinkDir};
pub use topology::{Node, NodeKind, Topology};

/// A loop-free path through the network: the ordered list of links a packet
/// traverses from source host to destination host.
///
/// Paths in a two-tier Clos have at most 4 links (host→ToR, ToR→spine,
/// spine→ToR, ToR→host), but the type supports arbitrary lengths so the NUM
/// solvers can also be exercised on synthetic topologies (parking-lot
/// chains, random graphs) in tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    links: Vec<LinkId>,
}

impl Path {
    /// Creates a path from an ordered list of links.
    ///
    /// # Panics
    /// Panics if `links` is empty: every flow traverses at least one link
    /// (§3: "Each flow passes through at least one link").
    pub fn new(links: Vec<LinkId>) -> Self {
        assert!(!links.is_empty(), "a path must traverse at least one link");
        Self { links }
    }

    /// The links of the path, in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of links (hops) in the path.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Paths are never empty; provided for clippy-completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the links of the path.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().copied()
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = LinkId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, LinkId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.links.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_basic_accessors() {
        let p = Path::new(vec![LinkId(3), LinkId(7)]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.links(), &[LinkId(3), LinkId(7)]);
        let collected: Vec<LinkId> = p.iter().collect();
        assert_eq!(collected, vec![LinkId(3), LinkId(7)]);
        let collected2: Vec<LinkId> = (&p).into_iter().collect();
        assert_eq!(collected2, collected);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_rejected() {
        let _ = Path::new(vec![]);
    }
}
