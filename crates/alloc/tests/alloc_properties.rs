//! Property tests over the block-decomposed allocator: random flow sets
//! and churn sequences on random power-of-two fabrics.

use flowtune_alloc::{AllocConfig, MulticoreAllocator, SerialAllocator};
use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Churn {
    blocks: usize,
    ops: Vec<Op>,
}

#[derive(Debug, Clone)]
enum Op {
    Add { src: usize, dst: usize, weight: f64 },
    Remove { nth: usize },
    Iterate { n: usize },
}

fn churn_strategy() -> impl Strategy<Value = Churn> {
    (prop_oneof![Just(1usize), Just(2), Just(4)]).prop_flat_map(|blocks| {
        let servers = blocks * 2 * 4; // racks_per_block=2, spr=4
        let op = prop_oneof![
            3 => (0..servers, 0..servers, 0.25f64..4.0).prop_map(|(src, dst, weight)| Op::Add {
                src,
                dst,
                weight
            }),
            1 => (0usize..64).prop_map(|nth| Op::Remove { nth }),
            2 => (1usize..12).prop_map(|n| Op::Iterate { n }),
        ];
        proptest::collection::vec(op, 1..40).prop_map(move |ops| Churn { blocks, ops })
    })
}

/// The operations both engines expose, as one object-safe surface.
trait Engine {
    fn add(&mut self, id: FlowId, src: usize, dst: usize, weight: f64, fabric: &TwoTierClos);
    fn remove(&mut self, id: FlowId) -> bool;
    fn iterate_n(&mut self, n: usize);
}

impl Engine for SerialAllocator {
    fn add(&mut self, id: FlowId, src: usize, dst: usize, weight: f64, fabric: &TwoTierClos) {
        self.add_flow(id, src, dst, weight, &fabric.path(src, dst, id));
    }
    fn remove(&mut self, id: FlowId) -> bool {
        self.remove_flow(id)
    }
    fn iterate_n(&mut self, n: usize) {
        self.run_iterations(n);
    }
}

impl Engine for MulticoreAllocator {
    fn add(&mut self, id: FlowId, src: usize, dst: usize, weight: f64, fabric: &TwoTierClos) {
        self.add_flow(id, src, dst, weight, &fabric.path(src, dst, id));
    }
    fn remove(&mut self, id: FlowId) -> bool {
        self.remove_flow(id)
    }
    fn iterate_n(&mut self, n: usize) {
        self.run_iterations(n);
    }
}

/// Applies the churn sequence; returns the live flow ids.
fn apply(churn: &Churn, fabric: &TwoTierClos, engine: &mut dyn Engine) -> Vec<FlowId> {
    let mut live: Vec<FlowId> = Vec::new();
    let mut next = 0u64;
    let servers = fabric.config().server_count();
    for op in &churn.ops {
        match *op {
            Op::Add { src, dst, weight } => {
                let dst = if dst == src { (dst + 1) % servers } else { dst };
                let id = FlowId(next);
                next += 1;
                engine.add(id, src, dst, weight, fabric);
                live.push(id);
            }
            Op::Remove { nth } => {
                if !live.is_empty() {
                    let id = live.remove(nth % live.len());
                    assert!(engine.remove(id));
                }
            }
            Op::Iterate { n } => engine.iterate_n(n),
        }
    }
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serial_and_parallel_agree_under_arbitrary_churn(churn in churn_strategy()) {
        let fabric = TwoTierClos::build(ClosConfig::multicore(churn.blocks, 2, 4));
        let cfg = AllocConfig::default();
        let mut serial = SerialAllocator::new(&fabric, cfg);
        let mut parallel = MulticoreAllocator::new(&fabric, cfg);

        apply(&churn, &fabric, &mut serial);
        apply(&churn, &fabric, &mut parallel);

        let a = serial.rates();
        let b = parallel.rates();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.rate.to_bits(), y.rate.to_bits());
            prop_assert_eq!(x.normalized.to_bits(), y.normalized.to_bits());
        }
    }

    #[test]
    fn rates_stay_finite_positive_and_capacity_safe(churn in churn_strategy()) {
        let fabric = TwoTierClos::build(ClosConfig::multicore(churn.blocks, 2, 4));
        let mut alloc = SerialAllocator::new(&fabric, AllocConfig::default());
        apply(&churn, &fabric, &mut alloc);
        alloc.run_iterations(3);

        // Reconstruct each live flow's path from its id (paths are a pure
        // function of (src, dst, id), but we only have ids here — so ask
        // the engine for the rates and rebuild paths by replaying adds).
        let mut replay = SerialAllocator::new(&fabric, AllocConfig::default());
        let live = apply(&churn, &fabric, &mut replay);
        let mut paths = std::collections::HashMap::new();
        let mut next = 0u64;
        let servers = fabric.config().server_count();
        for op in &churn.ops {
            if let Op::Add { src, dst, .. } = *op {
                let dst = if dst == src { (dst + 1) % servers } else { dst };
                let id = FlowId(next);
                next += 1;
                paths.insert(id, fabric.path(src, dst, id));
            }
        }
        let _ = live;

        let mut load = vec![0.0f64; fabric.topology().link_count()];
        for fr in alloc.rates() {
            prop_assert!(fr.rate.is_finite() && fr.rate > 0.0);
            prop_assert!(fr.normalized.is_finite() && fr.normalized >= 0.0);
            for link in paths[&fr.id].iter() {
                load[link.index()] += fr.normalized;
            }
        }
        for (l, link) in fabric.topology().links().iter().enumerate() {
            let cap = link.capacity_bps as f64 / 1e9;
            prop_assert!(
                load[l] <= cap * (1.0 + 1e-9),
                "link {l}: {} > {cap}",
                load[l]
            );
        }
    }
}
