//! Dirty-set tracking for incremental NED iterations.
//!
//! At production scale most ticks are quiet: a handful of flowlet
//! starts/ends against a steady mass of converged flows. A full sweep
//! re-prices every flow anyway. [`DirtySet`] records *which FlowBlock
//! workers could possibly produce different output* and lets the engine
//! skip the rest:
//!
//! * a worker is **rate-dirty** when a flow was added to or removed from
//!   it, or when the authoritative price of a link its flows traverse
//!   moved by more than `eps` since the worker last ran its rate pass
//!   (detected by diffing the freshly updated root prices against a
//!   per-link snapshot, or by an exchange install overwriting a dual);
//! * a worker is **norm-dirty** when a utilization ratio on a link its
//!   flows traverse moved by more than `eps` this iteration (F-NORM
//!   reads ratios, not prices).
//!
//! The correctness invariant is *output equivalence at `eps = 0`*: a
//! clean worker's accumulators and rates are bitwise what a recompute
//! would produce, because every input its kernels read (its flow set and
//! the prices/ratios at the offsets those flows traverse — tracked by
//! per-offset *touch counts*) is numerically unchanged since its last
//! recompute. Dirty workers re-run the full per-worker kernel
//! (`Accums::clear` + `rate_pass`), so accumulator clearing is *lazy*:
//! instead of a per-tick global `clear`, each worker's accumulators are
//! reset only in the iteration ("epoch") that actually recomputes it —
//! `DirtySet::iter` is that epoch counter.
//!
//! The aggregate/price-update/distribute phases cost `O(B²·L)` (links,
//! not flows) and run whenever any worker recomputed *or* any price or
//! ratio is still in motion (`DirtySet::moving`) — the NED price update
//! is not idempotent before convergence, so it must keep integrating
//! until the whole system is numerically stationary. Once no worker is
//! dirty and nothing moved beyond `eps` in the last diff, a quiet
//! iteration skips the link phases entirely (exact at `eps = 0`: a
//! markless diff means the update reproduced its input bitwise). Under a
//! positive `eps`, skipped updates accumulate bounded staleness; a
//! periodic full sweep (`full_sweep_every`) re-marks every worker to
//! rebuild all accumulators from scratch and bound the drift.

/// Dirty-state bookkeeping for one engine's B×B worker grid.
///
/// Owned by the engine's grid when
/// [`AllocConfig::incremental`](crate::AllocConfig::incremental) is set;
/// all mutation happens inside the engine's iterate/intake/install paths.
#[derive(Debug)]
pub struct DirtySet {
    /// Price/ratio movement at or below this threshold is ignored.
    pub(crate) eps: f64,
    /// Force-mark every worker each time `iter` hits a multiple of this
    /// (`0` = never).
    pub(crate) full_sweep_every: u64,
    /// Iterations run so far — the epoch counter behind the lazy
    /// accumulator clears and the full-sweep schedule.
    pub(crate) iter: u64,
    /// Grid dimension B.
    pub(crate) blocks: usize,
    /// Worker must re-run its rate pass next iteration.
    pub(crate) rate_dirty: Vec<bool>,
    /// Worker must re-run F-NORM this iteration (a traversed ratio
    /// moved); rebuilt during every diff phase.
    pub(crate) norm_dirty: Vec<bool>,
    /// Worker re-ran its rate pass *this* iteration (scratch).
    pub(crate) recomputed: Vec<bool>,
    /// Worker's rates/normalized may have changed since the last
    /// [`take_changed_rates`](crate::RateAllocator::take_changed_rates)
    /// drain (accumulates across iterations within a tick).
    pub(crate) export_dirty: Vec<bool>,
    /// Per worker, per upward-LinkBlock offset: how many of the worker's
    /// flows traverse that link. A price move only dirties workers whose
    /// count is positive — the others never read the moved price.
    pub(crate) up_touch: Vec<Vec<u32>>,
    /// Downward-LinkBlock touch counts.
    pub(crate) down_touch: Vec<Vec<u32>>,
    /// Per block: the upward root prices as of the last time each link
    /// was marked (diffs compare against these, with `> eps` hysteresis).
    pub(crate) prev_up_prices: Vec<Vec<f64>>,
    /// Downward root price snapshots.
    pub(crate) prev_down_prices: Vec<Vec<f64>>,
    /// Upward root utilization-ratio snapshots.
    pub(crate) prev_up_ratio: Vec<Vec<f64>>,
    /// Downward root utilization-ratio snapshots.
    pub(crate) prev_down_ratio: Vec<Vec<f64>>,
    /// Per block, per upward offset: marked by intake since the last
    /// iteration (observability: `dirty_link_ids`).
    pub(crate) intake_up: Vec<Vec<bool>>,
    /// Downward intake marks.
    pub(crate) intake_down: Vec<Vec<bool>>,
    /// Dedup'd `(up, block, offset)` list of the intake marks above, in
    /// first-marked order.
    pub(crate) intake_list: Vec<(bool, u32, u32)>,
    /// Some price or ratio is still in motion: the last diff phase saw a
    /// move beyond `eps` on *any* link — including links no flow touches
    /// (the decay branch keeps evolving an unloaded link's dual long
    /// after every touch count is zero) — or an exchange install
    /// overwrote a dual since. While set, the aggregate/price/distribute
    /// phases must keep running even with zero rate-dirty workers, or
    /// the frozen trajectory would diverge from the full sweep's the
    /// moment a new flow lands on one of those links.
    pub(crate) moving: bool,
    /// Cumulative count of flows whose rate pass was re-run.
    pub(crate) dirty_flows: u64,
    /// Cumulative count of (link, iteration) price moves beyond `eps`
    /// (root diffs and exchange installs).
    pub(crate) dirty_links: u64,
}

impl DirtySet {
    /// A fresh set over a `blocks`×`blocks` grid whose LinkBlocks hold
    /// `links_per_lb` links each. Every worker starts rate-dirty (the
    /// first iteration is a full sweep by construction) and the price
    /// snapshots start at the `PriceView::new` initial values.
    pub fn new(blocks: usize, links_per_lb: usize, eps: f64, full_sweep_every: u64) -> Self {
        let n = blocks * blocks;
        Self {
            eps,
            full_sweep_every,
            iter: 0,
            blocks,
            rate_dirty: vec![true; n],
            norm_dirty: vec![false; n],
            recomputed: vec![false; n],
            export_dirty: vec![false; n],
            up_touch: vec![vec![0; links_per_lb]; n],
            down_touch: vec![vec![0; links_per_lb]; n],
            // PriceView::new starts all prices at 1 and all ratios at 0.
            prev_up_prices: vec![vec![1.0; links_per_lb]; blocks],
            prev_down_prices: vec![vec![1.0; links_per_lb]; blocks],
            prev_up_ratio: vec![vec![0.0; links_per_lb]; blocks],
            prev_down_ratio: vec![vec![0.0; links_per_lb]; blocks],
            intake_up: vec![vec![false; links_per_lb]; blocks],
            intake_down: vec![vec![false; links_per_lb]; blocks],
            intake_list: Vec::new(),
            moving: true,
            dirty_flows: 0,
            dirty_links: 0,
        }
    }

    /// The movement threshold the set was built with.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Cumulative `(dirty_flows, dirty_links)` counters: flows whose rate
    /// pass re-ran, and per-iteration link price moves beyond `eps`.
    pub fn counters(&self) -> (u64, u64) {
        (self.dirty_flows, self.dirty_links)
    }

    /// Records a flow added to worker `w` traversing the given
    /// upward/downward offsets: bumps the touch counts, marks the worker
    /// rate-dirty, and marks the traversed links as intake-dirty.
    pub(crate) fn note_add(&mut self, w: usize, up: &[u32], down: &[u32]) {
        self.rate_dirty[w] = true;
        let b = self.blocks;
        for &o in up {
            self.up_touch[w][o as usize] += 1;
            self.mark_intake(true, (w / b) as u32, o);
        }
        for &o in down {
            self.down_touch[w][o as usize] += 1;
            self.mark_intake(false, (w % b) as u32, o);
        }
    }

    /// Records a flow removed from worker `w` (offsets as stored in its
    /// `BlockFlow`): decrements the touch counts, marks the worker
    /// rate-dirty, and marks the traversed links as intake-dirty.
    pub(crate) fn note_remove(&mut self, w: usize, up: &[u32], down: &[u32]) {
        self.rate_dirty[w] = true;
        let b = self.blocks;
        for &o in up {
            self.up_touch[w][o as usize] -= 1;
            self.mark_intake(true, (w / b) as u32, o);
        }
        for &o in down {
            self.down_touch[w][o as usize] -= 1;
            self.mark_intake(false, (w % b) as u32, o);
        }
    }

    /// Dedup-marks one link as intake-dirty.
    fn mark_intake(&mut self, up: bool, block: u32, offset: u32) {
        let grid = if up {
            &mut self.intake_up
        } else {
            &mut self.intake_down
        };
        let cell = &mut grid[block as usize][offset as usize];
        if !*cell {
            *cell = true;
            self.intake_list.push((up, block, offset));
        }
    }

    /// Clears the intake marks (called at the start of each iteration,
    /// after they have served their purpose of marking workers).
    pub(crate) fn drain_intake(&mut self) {
        for &(up, block, offset) in &self.intake_list {
            let grid = if up {
                &mut self.intake_up
            } else {
                &mut self.intake_down
            };
            grid[block as usize][offset as usize] = false;
        }
        self.intake_list.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_counts_follow_add_remove() {
        let mut ds = DirtySet::new(2, 4, 0.0, 0);
        ds.note_add(1, &[0, 2], &[3]);
        assert_eq!(ds.up_touch[1][0], 1);
        assert_eq!(ds.up_touch[1][2], 1);
        assert_eq!(ds.down_touch[1][3], 1);
        assert!(ds.rate_dirty[1]);
        // Worker 1 = (row 0, col 1): up block 0, down block 1.
        assert_eq!(
            ds.intake_list,
            vec![(true, 0, 0), (true, 0, 2), (false, 1, 3)]
        );
        // A second flow on a shared link dedups the intake mark.
        ds.note_add(1, &[0], &[3]);
        assert_eq!(ds.up_touch[1][0], 2);
        assert_eq!(ds.intake_list.len(), 3);
        ds.drain_intake();
        assert!(ds.intake_list.is_empty());
        ds.note_remove(1, &[0, 2], &[3]);
        assert_eq!(ds.up_touch[1][0], 1);
        assert_eq!(ds.up_touch[1][2], 0);
        assert_eq!(ds.intake_list.len(), 3, "remove re-marks its links");
    }

    #[test]
    fn counters_start_at_zero_and_workers_start_dirty() {
        let ds = DirtySet::new(4, 8, 1e-9, 16);
        assert_eq!(ds.counters(), (0, 0));
        assert!(ds.rate_dirty.iter().all(|&d| d));
        assert!(ds.export_dirty.iter().all(|&d| !d));
        assert_eq!(ds.eps(), 1e-9);
        assert_eq!(ds.prev_up_prices[0][0], 1.0);
        assert_eq!(ds.prev_up_ratio[0][0], 0.0);
    }
}
