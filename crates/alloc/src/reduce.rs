//! The Figure-3 aggregation/distribution schedule.
//!
//! Workers form a B×B grid (worker `(i, j)` owns FlowBlock src-block `i` →
//! dst-block `j`). Upward LinkBlock `i` is aggregated *along row i* onto
//! the main-diagonal worker `(i, i)`; downward LinkBlock `j` is aggregated
//! *along column j* onto the secondary-diagonal worker `(B−1−j, j)`. Both
//! use a binomial tree over the worker's *virtual index* `k` — its distance
//! from the diagonal along the row/column — so the whole grid finishes in
//! `log₂ B` steps: "n² processors require only log₂ n steps rather than
//! log₂ n²" (§5).
//!
//! Distribution runs the identical tree in reverse (receivers become
//! senders), so "distribution follows the reverse of the aggregation
//! pattern".

/// What a worker does for one LinkBlock in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Absorb the partial state of worker `from` (aggregation) or copy the
    /// authoritative state from worker `from` (distribution).
    Recv {
        /// Flat index (`i·B + j`) of the peer.
        from: usize,
    },
    /// This worker's buffer is consumed/read by `to`; it does nothing.
    Peer {
        /// Flat index of the peer that acts on this worker's buffer.
        to: usize,
    },
    /// Not involved in this step.
    Idle,
}

/// Number of tree steps for a B×B grid (`log₂ B`); B must be a power of
/// two.
pub fn steps(blocks: usize) -> usize {
    debug_assert!(blocks.is_power_of_two());
    blocks.trailing_zeros() as usize
}

/// Virtual index of worker `(i, j)` for its row's upward LinkBlock:
/// distance (mod B) from the main-diagonal worker `(i, i)`.
fn k_up(i: usize, j: usize, b: usize) -> usize {
    (j + b - i) % b
}

/// Virtual index of worker `(i, j)` for its column's downward LinkBlock:
/// distance (mod B) from the secondary-diagonal worker `(B−1−j, j)`.
fn k_down(i: usize, j: usize, b: usize) -> usize {
    let target_row = b - 1 - j;
    (i + b - target_row) % b
}

/// Flat worker index of the row-`i` worker with up-virtual-index `k`.
pub fn up_worker(i: usize, k: usize, b: usize) -> usize {
    i * b + (i + k) % b
}

/// Flat worker index of the column-`j` worker with down-virtual-index `k`.
pub fn down_worker(j: usize, k: usize, b: usize) -> usize {
    ((b - 1 - j + k) % b) * b + j
}

/// Binomial-tree role of virtual index `k` at aggregation step `s`.
fn tree_role(k: usize, s: usize) -> TreeRole {
    let span = 1usize << (s + 1);
    let half = 1usize << s;
    if k.is_multiple_of(span) {
        TreeRole::Root
    } else if k % span == half {
        TreeRole::Leaf
    } else {
        TreeRole::Out
    }
}

enum TreeRole {
    Root,
    Leaf,
    Out,
}

/// Aggregation role of worker `(i, j)` for its **upward** LinkBlock at
/// step `s`.
pub fn up_aggregate(i: usize, j: usize, b: usize, s: usize) -> Role {
    let k = k_up(i, j, b);
    match tree_role(k, s) {
        TreeRole::Root => Role::Recv {
            from: up_worker(i, k + (1 << s), b),
        },
        TreeRole::Leaf => Role::Peer {
            to: up_worker(i, k - (1 << s), b),
        },
        TreeRole::Out => Role::Idle,
    }
}

/// Aggregation role of worker `(i, j)` for its **downward** LinkBlock at
/// step `s`.
pub fn down_aggregate(i: usize, j: usize, b: usize, s: usize) -> Role {
    let k = k_down(i, j, b);
    match tree_role(k, s) {
        TreeRole::Root => Role::Recv {
            from: down_worker(j, k + (1 << s), b),
        },
        TreeRole::Leaf => Role::Peer {
            to: down_worker(j, k - (1 << s), b),
        },
        TreeRole::Out => Role::Idle,
    }
}

/// Distribution role at (descending) step `s`: the reverse of aggregation
/// — the step-`s` aggregation root now *feeds* its former leaf, so the
/// leaf reports `Recv` and the root `Peer`.
pub fn up_distribute(i: usize, j: usize, b: usize, s: usize) -> Role {
    match up_aggregate(i, j, b, s) {
        Role::Recv { from } => Role::Peer { to: from },
        Role::Peer { to } => Role::Recv { from: to },
        Role::Idle => Role::Idle,
    }
}

/// Distribution role for the downward LinkBlock at (descending) step `s`.
pub fn down_distribute(i: usize, j: usize, b: usize, s: usize) -> Role {
    match down_aggregate(i, j, b, s) {
        Role::Recv { from } => Role::Peer { to: from },
        Role::Peer { to } => Role::Recv { from: to },
        Role::Idle => Role::Idle,
    }
}

/// The main-diagonal worker that ends up owning upward LinkBlock `i`.
pub fn up_root(i: usize, b: usize) -> usize {
    i * b + i
}

/// The secondary-diagonal worker that ends up owning downward LinkBlock
/// `j`.
pub fn down_root(j: usize, b: usize) -> usize {
    (b - 1 - j) * b + j
}

/// Reduces `partials[k]` (indexed by virtual index) with the exact
/// pairwise order of the parallel tree; the result lands in
/// `partials[0]`. Used by the serial engine so serial and parallel sums
/// are bit-for-bit identical.
pub fn binomial_reduce_in_order<T, F: FnMut(&mut T, &T)>(partials: &mut [T], mut absorb: F)
where
    T: Sized,
{
    let b = partials.len();
    debug_assert!(b.is_power_of_two());
    for s in 0..steps(b) {
        let half = 1usize << s;
        let span = half * 2;
        for k in (0..b).step_by(span) {
            // Split so we can borrow receiver and sender disjointly.
            let (head, tail) = partials.split_at_mut(k + half);
            absorb(&mut head[k], &tail[0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate the aggregation for one LinkBlock kind and check every
    /// partial reaches the right diagonal exactly once.
    fn check_aggregation(b: usize, up: bool) {
        // Each worker starts holding the multiset {flat index} for each
        // LinkBlock it contributes to.
        let mut holdings: Vec<Vec<usize>> = (0..b * b).map(|w| vec![w]).collect();
        for s in 0..steps(b) {
            let mut moves = Vec::new();
            for i in 0..b {
                for j in 0..b {
                    let w = i * b + j;
                    let role = if up {
                        up_aggregate(i, j, b, s)
                    } else {
                        down_aggregate(i, j, b, s)
                    };
                    if let Role::Recv { from } = role {
                        moves.push((from, w));
                    }
                }
            }
            for (from, to) in moves {
                let taken = std::mem::take(&mut holdings[from]);
                holdings[to].extend(taken);
            }
        }
        for block in 0..b {
            let root = if up {
                up_root(block, b)
            } else {
                down_root(block, b)
            };
            let members: Vec<usize> = if up {
                (0..b).map(|j| block * b + j).collect()
            } else {
                (0..b).map(|i| i * b + block).collect()
            };
            let mut got = holdings[root].clone();
            got.sort_unstable();
            assert_eq!(got, members, "b={b} up={up} block={block}");
        }
    }

    #[test]
    fn aggregation_reaches_diagonals() {
        for b in [1, 2, 4, 8] {
            check_aggregation(b, true);
            check_aggregation(b, false);
        }
    }

    #[test]
    fn roots_are_on_the_diagonals() {
        let b = 4;
        for i in 0..b {
            assert_eq!(up_root(i, b), i * b + i);
            let dr = down_root(i, b);
            let (r, c) = (dr / b, dr % b);
            assert_eq!(r + c, b - 1, "secondary diagonal");
        }
    }

    #[test]
    fn roles_are_mutually_consistent() {
        // If w receives from v, then v must be a peer pointing at w.
        let b = 8;
        for s in 0..steps(b) {
            for i in 0..b {
                for j in 0..b {
                    if let Role::Recv { from } = up_aggregate(i, j, b, s) {
                        let (fi, fj) = (from / b, from % b);
                        assert_eq!(up_aggregate(fi, fj, b, s), Role::Peer { to: i * b + j });
                    }
                    if let Role::Recv { from } = down_aggregate(i, j, b, s) {
                        let (fi, fj) = (from / b, from % b);
                        assert_eq!(down_aggregate(fi, fj, b, s), Role::Peer { to: i * b + j });
                    }
                }
            }
        }
    }

    #[test]
    fn distribution_reaches_every_worker() {
        let b = 4;
        // Start with only the roots holding the result.
        let mut has_up = vec![false; b * b];
        for i in 0..b {
            has_up[up_root(i, b)] = true;
        }
        for s in (0..steps(b)).rev() {
            let mut grants = Vec::new();
            for i in 0..b {
                for j in 0..b {
                    if let Role::Recv { from } = up_distribute(i, j, b, s) {
                        grants.push((from, i * b + j));
                    }
                }
            }
            for (from, to) in grants {
                assert!(has_up[from], "distributing from a worker without data");
                has_up[to] = true;
            }
        }
        assert!(
            has_up.iter().all(|&x| x),
            "some worker missed the broadcast"
        );
    }

    #[test]
    fn binomial_reduce_matches_tree_order() {
        let mut partials: Vec<Vec<f64>> = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        binomial_reduce_in_order(&mut partials, |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        });
        assert_eq!(partials[0], vec![10.0, 100.0]);
    }

    #[test]
    fn single_block_grid_is_trivial() {
        assert_eq!(steps(1), 0);
        assert_eq!(up_root(0, 1), 0);
        assert_eq!(down_root(0, 1), 0);
    }
}
