//! The multicore engine: one OS thread per FlowBlock.
//!
//! Every phase boundary is a barrier; LinkBlock exchange happens through
//! per-worker mutexes, never holding two locks at once (the receiver copies
//! the peer's buffer out under the peer's lock, then merges under its own).
//! The phase structure per iteration is:
//!
//! 1. **rate pass** — private state only, no sharing;
//! 2. `log₂ B` **aggregation** steps (Figure 3) — up partials move along
//!    rows toward the main diagonal, down partials along columns toward the
//!    secondary diagonal;
//! 3. **price update** — only the 2B diagonal workers are active;
//! 4. `log₂ B` **distribution** steps — the reverse tree broadcasts fresh
//!    prices and utilization ratios;
//! 5. **F-NORM** — private state only.
//!
//! The engine produces *bit-for-bit* the same rates as
//! [`SerialAllocator`](crate::SerialAllocator): aggregation follows the
//! same pairwise summation order, and everything else is element-wise.
//!
//! When the grid has more FlowBlocks than the machine has cores, several
//! logical workers share one OS thread (the paper does the same: "we
//! divided all FlowBlocks into groups of 2-by-2, and put two adjacent
//! groups on each CPU"); phases remain globally barrier-synchronized, so
//! the aggregation schedule and therefore the arithmetic are unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use flowtune_topo::{FlowId, Path, TwoTierClos};

use crate::flowblock::{normalize_pass, price_update, rate_pass, FlowRate};
use crate::pool::WorkerPool;
use crate::reduce::{
    down_aggregate, down_distribute, down_root, steps, up_aggregate, up_distribute, up_root, Role,
};
use crate::serial::GridState;
use crate::AllocConfig;

/// The parallel allocator engine. Construction, flow add/remove, and rate
/// queries run on the caller's thread;
/// [`MulticoreAllocator::run_iterations`] drives the worker grid on a
/// persistent [`WorkerPool`] that parks between calls, so a 10 µs tick
/// cadence never pays thread spawn/join.
#[derive(Debug)]
pub struct MulticoreAllocator {
    grid: GridState,
    /// Worker-thread cap; `None` sizes to the host (cores, max 16).
    workers: Option<usize>,
    /// Parked worker threads, created on the first `run_iterations` call
    /// (the thread count depends on the grid and host) and reused for
    /// every call after.
    pool: Option<WorkerPool>,
}

impl MulticoreAllocator {
    /// Builds an allocator over `fabric`; the block count must be a power
    /// of two. Threads are sized to the host; see
    /// [`MulticoreAllocator::with_workers`] for an explicit count.
    pub fn new(fabric: &TwoTierClos, cfg: AllocConfig) -> Self {
        Self {
            grid: GridState::new(fabric, cfg),
            workers: None,
            pool: None,
        }
    }

    /// Builds an allocator that runs on exactly `workers` OS threads
    /// (clamped to the B² logical workers; `0` means size to the host).
    /// The thread count never changes the arithmetic — phases stay
    /// globally barrier-synchronized — only the parallelism.
    pub fn with_workers(fabric: &TwoTierClos, cfg: AllocConfig, workers: usize) -> Self {
        Self {
            grid: GridState::new(fabric, cfg),
            workers: (workers > 0).then_some(workers),
            pool: None,
        }
    }

    /// The configured worker-thread cap, if one was set.
    pub fn worker_cap(&self) -> Option<usize> {
        self.workers
    }

    /// Number of OS threads the persistent pool holds (caller slot
    /// included), once the first `run_iterations` call has sized it.
    pub fn pool_size(&self) -> Option<usize> {
        self.pool.as_ref().map(WorkerPool::size)
    }

    /// Registers a flow (see [`crate::SerialAllocator::add_flow`]).
    pub fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        self.grid.add_flow(id, src_server, dst_server, weight, path);
    }

    /// Deregisters a flow; returns whether it existed.
    pub fn remove_flow(&mut self, id: FlowId) -> bool {
        self.grid.remove_flow(id)
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.grid.flow_count()
    }

    /// All flows' current allocations (Gbit/s).
    pub fn rates(&self) -> Vec<FlowRate> {
        self.grid.rates()
    }

    /// [`MulticoreAllocator::rates`] into a caller-provided buffer
    /// (cleared first) — the allocation-free per-tick export.
    pub fn rates_into(&self, out: &mut Vec<FlowRate>) {
        self.grid.rates_into(out);
    }

    /// Drains the changed-rate set (see
    /// [`crate::RateAllocator::take_changed_rates`]).
    pub fn take_changed_rates(&mut self, out: &mut Vec<FlowRate>) -> bool {
        self.grid.take_changed_rates(out)
    }

    /// Cumulative `(dirty_flows, dirty_links)` counters, when running
    /// incrementally (see [`crate::RateAllocator::dirty_counters`]).
    pub fn dirty_counters(&self) -> Option<(u64, u64)> {
        self.grid.dirty_counters()
    }

    /// One flow's current allocation.
    pub fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        self.grid.flow_rate(id)
    }

    /// Runs `n` iterations across B² logical workers and returns the wall
    /// time spent *inside* the iteration loop (pool handoff excluded), so
    /// `elapsed / n` is the per-iteration allocator latency the §6.1 table
    /// reports. The OS threads come from a persistent [`WorkerPool`] that
    /// parks between calls — the first call pays thread spawn, subsequent
    /// ticks pay one lock + wakeup.
    // Worker loops index `cells[w]` because `w` also names the grid cell
    // in the tree-role lookups; an iterator would obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn run_iterations(&mut self, n: usize) -> Duration {
        if self.grid.cfg.incremental {
            // The incremental path is flow-sparse by design: on a quiet
            // tick almost every worker is skipped, so the per-phase work
            // is far below the barrier cost that makes the thread grid
            // pay. Run the shared single-threaded incremental iteration
            // — bit-for-bit the same arithmetic (it is the same code the
            // serial engine runs).
            let t0 = Instant::now();
            for _ in 0..n {
                self.grid.iterate();
            }
            return t0.elapsed();
        }
        let b = self.grid.layout.blocks();
        let n_workers = b * b;
        let tree_steps = steps(b);
        let gamma = self.grid.cfg.gamma;
        let f_norm = self.grid.cfg.f_norm;
        let layout = &self.grid.layout;
        let bg = &self.grid.bg;
        let bg_h = &self.grid.bg_h;

        // OS threads: one per FlowBlock up to the core count; beyond
        // that, logical workers are chunked onto threads.
        // Cap the thread count: beyond ~8 threads the barrier cost on
        // typical hosts outweighs the extra parallelism for the small
        // per-phase work (the paper's own profile: "Communication between
        // CPUs in the aggregate and distribute steps took more than half
        // of the runtime in all experiments").
        let cores = std::thread::available_parallelism().map_or(8, |c| c.get());
        let cap = self.workers.unwrap_or_else(|| cores.min(16));
        let n_threads = n_workers.min(cap).max(1);
        let chunk = n_workers.div_ceil(n_threads);

        // Move every worker's state under a mutex for the parallel phase.
        let cells: Vec<Mutex<crate::serial::WorkerCore>> =
            // flowtune-lint: allow(hot-path-alloc, "O(blocks) mutex wrap per call, amortized over n iterations")
            self.grid.workers.drain(..).map(Mutex::new).collect();
        let barrier = SpinBarrier::new(n_threads);
        let elapsed = Mutex::new(Duration::ZERO);

        // The grid shape is fixed at construction, so after the first call
        // the pool is always the right size and is reused as-is.
        if self.pool.as_ref().map(WorkerPool::size) != Some(n_threads) {
            self.pool = Some(WorkerPool::new(n_threads));
        }
        let pool = self.pool.as_mut().expect("pool was just sized");

        pool.run(&|t| {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n_workers);
            barrier.wait();
            let t0 = Instant::now();
            // Scratch buffers for copy-out exchange.
            let lpl = layout.links_per_lb();
            let mut buf_a = vec![0.0f64; lpl]; // flowtune-lint: allow(hot-path-alloc, "per-thread scratch, once per run not per iteration")
            let mut buf_b = vec![0.0f64; lpl]; // flowtune-lint: allow(hot-path-alloc, "per-thread scratch, once per run not per iteration")
            for _ in 0..n {
                // Phase 1: rate pass.
                for w in lo..hi {
                    let mut me = cells[w].lock();
                    let me = &mut *me;
                    me.acc.clear();
                    rate_pass(&me.flows, &me.view, &mut me.acc, &mut me.rates);
                }
                barrier.wait();

                // Phase 2: aggregation tree.
                for s in 0..tree_steps {
                    for w in lo..hi {
                        let (i, j) = (w / b, w % b);
                        if let Role::Recv { from } = up_aggregate(i, j, b, s) {
                            {
                                let peer = cells[from].lock();
                                buf_a.copy_from_slice(&peer.acc.up_load);
                                buf_b.copy_from_slice(&peer.acc.up_h);
                            }
                            let mut me = cells[w].lock();
                            for (x, y) in me.acc.up_load.iter_mut().zip(&buf_a) {
                                *x += y;
                            }
                            for (x, y) in me.acc.up_h.iter_mut().zip(&buf_b) {
                                *x += y;
                            }
                        }
                        if let Role::Recv { from } = down_aggregate(i, j, b, s) {
                            {
                                let peer = cells[from].lock();
                                buf_a.copy_from_slice(&peer.acc.down_load);
                                buf_b.copy_from_slice(&peer.acc.down_h);
                            }
                            let mut me = cells[w].lock();
                            for (x, y) in me.acc.down_load.iter_mut().zip(&buf_a) {
                                *x += y;
                            }
                            for (x, y) in me.acc.down_h.iter_mut().zip(&buf_b) {
                                *x += y;
                            }
                        }
                    }
                    barrier.wait();
                }

                // Phase 3: price update on the diagonal owners.
                for w in lo..hi {
                    let (i, j) = (w / b, w % b);
                    if w == up_root(i, b) {
                        let mut me = cells[w].lock();
                        let me = &mut *me;
                        price_update(
                            &me.acc.up_load,
                            &me.acc.up_h,
                            bg.as_ref().map(|bg| bg.up[i].as_slice()),
                            bg_h.as_ref().map(|bg| bg.up[i].as_slice()),
                            layout.up_capacity(i),
                            gamma,
                            &mut me.view.up_prices,
                            &mut me.view.up_ratio,
                        );
                    }
                    if w == down_root(j, b) {
                        let mut me = cells[w].lock();
                        let me = &mut *me;
                        price_update(
                            &me.acc.down_load,
                            &me.acc.down_h,
                            bg.as_ref().map(|bg| bg.down[j].as_slice()),
                            bg_h.as_ref().map(|bg| bg.down[j].as_slice()),
                            layout.down_capacity(j),
                            gamma,
                            &mut me.view.down_prices,
                            &mut me.view.down_ratio,
                        );
                    }
                }
                barrier.wait();

                // Phase 4: distribution (reverse tree).
                for s in (0..tree_steps).rev() {
                    for w in lo..hi {
                        let (i, j) = (w / b, w % b);
                        if let Role::Recv { from } = up_distribute(i, j, b, s) {
                            {
                                let peer = cells[from].lock();
                                buf_a.copy_from_slice(&peer.view.up_prices);
                                buf_b.copy_from_slice(&peer.view.up_ratio);
                            }
                            let mut me = cells[w].lock();
                            me.view.up_prices.copy_from_slice(&buf_a);
                            me.view.up_ratio.copy_from_slice(&buf_b);
                        }
                        if let Role::Recv { from } = down_distribute(i, j, b, s) {
                            {
                                let peer = cells[from].lock();
                                buf_a.copy_from_slice(&peer.view.down_prices);
                                buf_b.copy_from_slice(&peer.view.down_ratio);
                            }
                            let mut me = cells[w].lock();
                            me.view.down_prices.copy_from_slice(&buf_a);
                            me.view.down_ratio.copy_from_slice(&buf_b);
                        }
                    }
                    barrier.wait();
                }

                // Phase 5: normalization.
                for w in lo..hi {
                    let mut me = cells[w].lock();
                    let me = &mut *me;
                    if f_norm {
                        normalize_pass(&me.flows, &me.view, &me.rates, &mut me.normalized);
                    } else {
                        me.normalized.copy_from_slice(&me.rates);
                    }
                }
                barrier.wait();
            }
            if t == 0 {
                *elapsed.lock() = t0.elapsed();
            }
        });

        // flowtune-lint: allow(hot-path-alloc, "O(blocks) unwrap per call, amortized over n iterations")
        self.grid.workers = cells.into_iter().map(Mutex::into_inner).collect();
        let took = *elapsed.lock();
        took
    }

    /// Runs a single iteration (convenience wrapper; the persistent pool
    /// makes per-call overhead one park/unpark, not a thread spawn).
    pub fn iterate(&mut self) {
        self.run_iterations(1);
    }

    /// Own per-link loads (see [`crate::RateAllocator::link_loads`]).
    pub fn link_loads(&self) -> Vec<f64> {
        self.grid.link_loads()
    }

    /// [`MulticoreAllocator::link_loads`] into a caller-provided buffer
    /// (see [`crate::RateAllocator::link_loads_into`]).
    pub fn link_loads_into(&self, out: &mut Vec<f64>) {
        self.grid.link_loads_into(out);
    }

    /// Installs an exogenous per-link load priced alongside this engine's
    /// own flows (see [`crate::RateAllocator::set_background_loads`]).
    pub fn set_background_loads(&mut self, loads: &[f64]) {
        self.grid.set_background_loads(loads);
    }

    /// Current per-link duals (see [`crate::RateAllocator::link_prices`]).
    pub fn link_prices(&self) -> Vec<f64> {
        self.grid.link_prices()
    }

    /// [`MulticoreAllocator::link_prices`] into a caller-provided buffer
    /// (see [`crate::RateAllocator::link_prices_into`]).
    pub fn link_prices_into(&self, out: &mut Vec<f64>) {
        self.grid.link_prices_into(out);
    }

    /// Overwrites per-link duals; `NaN` entries keep the current price
    /// (see [`crate::RateAllocator::set_link_prices`]).
    pub fn set_link_prices(&mut self, prices: &[f64]) {
        self.grid.set_link_prices(prices);
    }

    /// Own per-link Hessian diagonal (see
    /// [`crate::RateAllocator::link_hessians`]).
    pub fn link_hessians(&self) -> Vec<f64> {
        self.grid.link_hessians()
    }

    /// [`MulticoreAllocator::link_hessians`] into a caller-provided
    /// buffer (see [`crate::RateAllocator::link_hessians_into`]).
    pub fn link_hessians_into(&self, out: &mut Vec<f64>) {
        self.grid.link_hessians_into(out);
    }

    /// Installs the exogenous per-link Hessian diagonal accompanying the
    /// background loads (see
    /// [`crate::RateAllocator::set_background_hessians`]).
    pub fn set_background_hessians(&mut self, hdiag: &[f64]) {
        self.grid.set_background_hessians(hdiag);
    }
}

/// Sense-reversing spin barrier: threads busy-wait (with periodic yields,
/// for oversubscribed grids) instead of parking on a condvar, keeping
/// phase-boundary latency in the sub-microsecond range the §6.1 numbers
/// depend on.
#[derive(Debug)]
struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        Self {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins = spins.wrapping_add(1);
            if spins < 500_000 {
                std::hint::spin_loop();
            } else {
                // Oversubscribed (more workers than cores): let the peers
                // run.
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SerialAllocator;
    use flowtune_topo::ClosConfig;

    /// Deterministic pseudo-random flow set over a fabric.
    fn spray_flows(
        fabric: &TwoTierClos,
        n: usize,
        mut add: impl FnMut(FlowId, usize, usize, f64, &Path),
    ) {
        let servers = fabric.config().server_count();
        for f in 0..n {
            let id = FlowId(f as u64);
            let src = (f * 7919) % servers;
            let mut dst = (f * 104_729 + 13) % servers;
            if dst == src {
                dst = (dst + 1) % servers;
            }
            let weight = 1.0 + (f % 4) as f64;
            let path = fabric.path(src, dst, id);
            add(id, src, dst, weight, &path);
        }
    }

    fn check_equivalence(blocks: usize) {
        let fabric = TwoTierClos::build(ClosConfig::multicore(blocks, 2, 4));
        let cfg = AllocConfig::default();
        let mut serial = SerialAllocator::new(&fabric, cfg);
        let mut parallel = MulticoreAllocator::new(&fabric, cfg);
        spray_flows(&fabric, 64, |id, s, d, w, p| {
            serial.add_flow(id, s, d, w, p)
        });
        spray_flows(&fabric, 64, |id, s, d, w, p| {
            parallel.add_flow(id, s, d, w, p)
        });
        serial.run_iterations(37);
        parallel.run_iterations(37);
        let a = serial.rates();
        let b = parallel.rates();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(
                x.rate.to_bits(),
                y.rate.to_bits(),
                "rate mismatch for {:?}: {} vs {}",
                x.id,
                x.rate,
                y.rate
            );
            assert_eq!(
                x.normalized.to_bits(),
                y.normalized.to_bits(),
                "normalized mismatch for {:?}",
                x.id
            );
        }
    }

    #[test]
    fn parallel_matches_serial_b2() {
        check_equivalence(2);
    }

    #[test]
    fn parallel_matches_serial_b4() {
        check_equivalence(4);
    }

    #[test]
    fn parallel_matches_serial_b8() {
        check_equivalence(8);
    }

    #[test]
    fn parallel_matches_serial_single_block() {
        check_equivalence(1);
    }

    #[test]
    fn parallel_matches_serial_with_background_load() {
        // The background-load path must keep the engines' bit-for-bit
        // contract: both split the same global vector into LinkBlock
        // slices and hand it to the same price-update kernel.
        let fabric = TwoTierClos::build(ClosConfig::multicore(4, 2, 4));
        let cfg = AllocConfig::default();
        let mut serial = SerialAllocator::new(&fabric, cfg);
        let mut parallel = MulticoreAllocator::new(&fabric, cfg);
        spray_flows(&fabric, 48, |id, s, d, w, p| {
            serial.add_flow(id, s, d, w, p)
        });
        spray_flows(&fabric, 48, |id, s, d, w, p| {
            parallel.add_flow(id, s, d, w, p)
        });
        let bg: Vec<f64> = (0..fabric.topology().link_count())
            .map(|l| ((l * 31 + 7) % 11) as f64)
            .collect();
        serial.set_background_loads(&bg);
        parallel.set_background_loads(&bg);
        let bg_h: Vec<f64> = bg.iter().map(|x| -x / 4.0).collect();
        serial.set_background_hessians(&bg_h);
        parallel.set_background_hessians(&bg_h);
        serial.run_iterations(37);
        parallel.run_iterations(37);
        let a = serial.rates();
        let b = parallel.rates();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.rate.to_bits(), y.rate.to_bits(), "{:?}", x.id);
            assert_eq!(x.normalized.to_bits(), y.normalized.to_bits());
        }
        // And the exports agree bit-for-bit too.
        for (x, y) in serial.link_loads().iter().zip(parallel.link_loads()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in serial.link_hessians().iter().zip(parallel.link_hessians()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn churn_between_parallel_runs() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        let cfg = AllocConfig::default();
        let mut alloc = MulticoreAllocator::new(&fabric, cfg);
        spray_flows(&fabric, 16, |id, s, d, w, p| alloc.add_flow(id, s, d, w, p));
        alloc.run_iterations(20);
        assert!(alloc.remove_flow(FlowId(0)));
        assert!(alloc.remove_flow(FlowId(5)));
        spray_flows(&fabric, 4, |id, s, d, w, p| {
            alloc.add_flow(FlowId(id.0 + 1000), s, d, w, p)
        });
        alloc.run_iterations(20);
        assert_eq!(alloc.flow_count(), 18);
        for r in alloc.rates() {
            assert!(r.rate.is_finite() && r.rate > 0.0);
            assert!(r.normalized.is_finite() && r.normalized >= 0.0);
        }
    }

    #[test]
    fn incremental_multicore_matches_full_serial() {
        // The multicore engine's incremental mode (which runs the shared
        // single-threaded incremental path) must stay bit-for-bit equal
        // to a full-sweep serial engine.
        let fabric = TwoTierClos::build(ClosConfig::multicore(4, 2, 4));
        let mut full = SerialAllocator::new(&fabric, AllocConfig::default());
        let mut inc = MulticoreAllocator::new(
            &fabric,
            AllocConfig {
                incremental: true,
                full_sweep_every: 16,
                ..AllocConfig::default()
            },
        );
        spray_flows(&fabric, 48, |id, s, d, w, p| full.add_flow(id, s, d, w, p));
        spray_flows(&fabric, 48, |id, s, d, w, p| inc.add_flow(id, s, d, w, p));
        full.run_iterations(37);
        inc.run_iterations(37);
        let a = full.rates();
        let b = inc.rates();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.rate.to_bits(), y.rate.to_bits(), "{:?}", x.id);
            assert_eq!(x.normalized.to_bits(), y.normalized.to_bits());
        }
        assert!(inc.dirty_counters().is_some());
    }

    #[test]
    fn returns_nonzero_elapsed() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        let mut alloc = MulticoreAllocator::new(&fabric, AllocConfig::default());
        spray_flows(&fabric, 8, |id, s, d, w, p| alloc.add_flow(id, s, d, w, p));
        let took = alloc.run_iterations(10);
        assert!(took > Duration::ZERO);
    }
}
