//! The multicore Flowtune allocator (§5 of the paper).
//!
//! A strawman parallel NED "which arbitrarily distributes flows to
//! different processors, will result in poor performance because ...
//! updates to a link from flows on different processors will cause
//! significant cache-coherence traffic". Flowtune instead partitions:
//!
//! * **flows** into a B×B grid of [FlowBlocks](flowblock) by (source
//!   block, destination block) — each owned by exactly one worker;
//! * **links** into B upward and B downward
//!   [LinkBlocks](layout::BlockLayout) — every flow of FlowBlock (i,j)
//!   touches only up-LinkBlock *i* and down-LinkBlock *j*.
//!
//! Each worker keeps *private copies* of the two LinkBlocks it needs. An
//! iteration runs entirely on private state, then the modified copies are
//! summed to authoritative copies on the grid diagonals in `log₂ B`
//! butterfly steps (Figure 3), prices are updated there (NED), and the
//! results — prices plus the per-link utilization ratios F-NORM needs —
//! are distributed back along the reverse pattern.
//!
//! Two interchangeable engines implement this, behind the
//! [`RateAllocator`] trait the control-plane service is generic over:
//!
//! * [`SerialAllocator`] — one thread, same arithmetic, same summation
//!   order; the reference the parallel engine is tested against
//!   (bit-for-bit) and the default engine of the network simulator.
//! * [`MulticoreAllocator`] — one OS thread per FlowBlock with barrier
//!   synchronization and mutex-protected buffer exchange, driven by a
//!   persistent [`WorkerPool`] that parks between ticks (no spawn/join
//!   on the 10 µs tick path); the engine the §6.1 throughput benchmarks
//!   run.
//!
//! Two more [`RateAllocator`]s serve as comparison baselines:
//! [`GradientAllocator`] (first-order gradient projection, §6.6 /
//! Figure 12) and `flowtune_fastpass::FastpassAdapter` (per-packet
//! timeslot arbitration, §6.1).

#![deny(missing_docs)]

pub mod dirty;
pub mod engine;
pub mod flowblock;
pub mod gradient;
pub mod layout;
pub mod parallel;
pub mod pool;
pub mod reduce;
pub mod serial;

pub use dirty::DirtySet;
pub use engine::{BoxEngine, RateAllocator};
pub use flowblock::{BlockFlow, FlowRate};
pub use gradient::GradientAllocator;
pub use layout::BlockLayout;
pub use parallel::MulticoreAllocator;
pub use pool::{FanOutError, WorkerPool};
pub use serial::SerialAllocator;

/// Configuration shared by both allocator engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocConfig {
    /// NED step size γ (Algorithm 1; the paper's simulations use 0.4).
    pub gamma: f64,
    /// Whether to F-NORM the rates after each iteration (§4.2). U-NORM is
    /// deliberately unsupported here: it needs a *global* max, which
    /// breaks the block decomposition — §4.2 notes F-NORM is the scheme
    /// that "reuses the multi-core design of NED".
    pub f_norm: bool,
    /// Fraction of each link's capacity made available to the optimizer.
    /// §6.4: "the allocator adjusts the available link capacities by the
    /// threshold; with a 0.01 threshold, the allocator would allocate 99%
    /// of link capacities."
    pub capacity_fraction: f64,
    /// Run iterations incrementally: a [`DirtySet`] tracks which
    /// FlowBlock workers saw a price move (beyond [`AllocConfig::dirty_eps`])
    /// on a link their flows traverse, or had flows added/removed, and the
    /// rate/normalize passes touch only those. With `dirty_eps = 0` the
    /// incremental path is bit-for-bit identical to the full sweep.
    pub incremental: bool,
    /// When incremental, force a full rate-pass sweep every this many
    /// iterations to rebuild every accumulator from scratch and bound
    /// float drift under a positive `dirty_eps` (`0` = never; at
    /// `dirty_eps = 0` the sweep is a bitwise no-op).
    pub full_sweep_every: u64,
    /// Price/ratio movement below or at this threshold does not mark the
    /// link's flows dirty. `0.0` (the default) means any bit change
    /// marks, which keeps incremental output exactly equal to the full
    /// sweep; small positive values trade bounded rate staleness for
    /// fewer recomputations.
    pub dirty_eps: f64,
}

impl Default for AllocConfig {
    fn default() -> Self {
        Self {
            gamma: 0.4,
            f_norm: true,
            capacity_fraction: 1.0,
            incremental: false,
            full_sweep_every: 64,
            dirty_eps: 0.0,
        }
    }
}
