//! Gradient-projection engine behind [`RateAllocator`].
//!
//! Wraps `flowtune_num`'s first-order [`Gradient`] optimizer (Low &
//! Lapsley) as a control-plane engine, so Figure 12's optimizer comparison
//! can be run *end-to-end* through the allocator service
//! (`--engine gradient` in the experiment binaries) rather than only on
//! static NUM instances.
//!
//! Unlike the NED engines this one keeps a monolithic [`NumProblem`] —
//! gradient projection has no per-block Hessian structure to exploit, and
//! the point of the baseline is its convergence behavior (§3: γ "must be
//! small", so it needs many more iterations), not its parallelism.

use std::collections::HashMap;

use flowtune_num::{normalize, Gradient, NumProblem, Optimizer, SolverState, Utility};
use flowtune_topo::{FlowId, Path, TwoTierClos};

use crate::flowblock::FlowRate;
use crate::{AllocConfig, RateAllocator};

/// The gradient-projection allocation engine (§6.6 baseline).
#[derive(Debug)]
pub struct GradientAllocator {
    problem: NumProblem,
    state: SolverState,
    opt: Gradient,
    f_norm: bool,
    /// flow id → problem slot.
    index: HashMap<FlowId, usize>,
    /// problem slot → flow id (for deterministic `rates()` output).
    slot_ids: Vec<Option<FlowId>>,
    /// Per-slot F-NORMed rates, refreshed each iteration.
    normalized: Vec<f64>,
    /// Per-link utilization scratch for the in-place F-NORM.
    ratios: Vec<f64>,
}

impl GradientAllocator {
    /// Builds the engine over `fabric`. Link capacities are expressed in
    /// Gbit/s and scaled by the §6.4 capacity fraction, exactly as the NED
    /// engines do, so the engines are comparable at the service level.
    /// The gradient step size is chosen via [`Gradient::stable_for`] from
    /// the fabric's largest link capacity.
    pub fn new(fabric: &TwoTierClos, cfg: AllocConfig) -> Self {
        let caps: Vec<f64> = fabric
            .topology()
            .links()
            .iter()
            .map(|l| l.capacity_bps as f64 / 1e9 * cfg.capacity_fraction)
            .collect();
        let c_max = caps.iter().fold(1.0f64, |a, &c| a.max(c));
        let problem = NumProblem::new(caps);
        let state = SolverState::new(&problem);
        Self {
            problem,
            state,
            opt: Gradient::stable_for(c_max, 2.0, 1.0),
            f_norm: cfg.f_norm,
            index: HashMap::new(),
            slot_ids: Vec::new(),
            normalized: Vec::new(),
            ratios: Vec::new(),
        }
    }
}

impl RateAllocator for GradientAllocator {
    fn add_flow(
        &mut self,
        id: FlowId,
        _src_server: usize,
        _dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be > 0");
        assert!(
            !self.index.contains_key(&id),
            "flow {id} already registered"
        );
        let slot = self
            .problem
            .add_flow(path.links().to_vec(), Utility::log(weight));
        self.state.fit(&self.problem);
        if self.slot_ids.len() < self.problem.flow_slots() {
            self.slot_ids.resize(self.problem.flow_slots(), None);
            self.normalized.resize(self.problem.flow_slots(), 0.0);
        }
        // A reused slot may hold the previous occupant's rate; a new flow
        // starts at zero until the next iteration.
        self.state.rates[slot] = 0.0;
        self.normalized[slot] = 0.0;
        self.slot_ids[slot] = Some(id);
        self.index.insert(id, slot);
    }

    fn remove_flow(&mut self, id: FlowId) -> bool {
        let Some(slot) = self.index.remove(&id) else {
            return false;
        };
        self.problem.remove_flow(slot);
        self.slot_ids[slot] = None;
        true
    }

    fn iterate(&mut self) {
        self.opt.iterate(&self.problem, &mut self.state);
        if self.f_norm {
            // In-place variant: one iteration per 10 µs tick must not
            // allocate once the buffers are warm.
            normalize::f_norm_into(
                &self.problem,
                &self.state.rates,
                &mut self.ratios,
                &mut self.normalized,
            );
        } else {
            self.normalized.clone_from(&self.state.rates);
        }
    }

    fn flow_count(&self) -> usize {
        self.index.len()
    }

    fn rates(&self) -> Vec<FlowRate> {
        self.problem
            .iter_flows()
            .map(|(slot, ..)| FlowRate {
                id: self.slot_ids[slot].expect("active slot has an id"),
                rate: self.state.rates[slot],
                normalized: self.normalized[slot],
            })
            .collect()
    }

    fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        let &slot = self.index.get(&id)?;
        Some(FlowRate {
            id,
            rate: self.state.rates[slot],
            normalized: self.normalized[slot],
        })
    }

    fn link_loads(&self) -> Vec<f64> {
        self.problem.link_loads(&self.state.rates)
    }

    fn link_loads_into(&self, out: &mut Vec<f64>) {
        // The num layer's own buffer variant: same sums, no allocation.
        self.problem.link_loads_into(&self.state.rates, out);
    }

    fn set_background_loads(&mut self, loads: &[f64]) {
        self.problem.set_background_loads(loads);
    }

    fn link_hessians_into(&self, out: &mut Vec<f64>) {
        // First-order engine: no second-order term to export (the
        // default would reach the same empty answer via `link_hessians`;
        // spelled out so the export path is visibly a no-op).
        out.clear();
    }

    fn link_prices(&self) -> Vec<f64> {
        self.state.prices.clone()
    }

    fn link_prices_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.state.prices);
    }

    fn set_link_prices(&mut self, prices: &[f64]) {
        if prices.is_empty() {
            return;
        }
        assert_eq!(
            prices.len(),
            self.problem.link_count(),
            "price vector must cover every fabric link"
        );
        for (own, &p) in self.state.prices.iter_mut().zip(prices) {
            if !p.is_nan() {
                *own = p;
            }
        }
    }

    fn name(&self) -> &'static str {
        "gradient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_topo::{ClosConfig, TwoTierClos};

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::multicore(2, 2, 4))
    }

    #[test]
    fn single_flow_converges_to_line_rate() {
        let f = fabric();
        let mut alloc = GradientAllocator::new(&f, AllocConfig::default());
        let p = f.path(3, 13, FlowId(7));
        alloc.add_flow(FlowId(7), 3, 13, 1.0, &p);
        // First-order steps need far more iterations than NED — which is
        // the very point of the §6.6 comparison.
        alloc.run_iterations(20_000);
        let r = alloc.flow_rate(FlowId(7)).unwrap();
        assert!((r.rate - 40.0).abs() < 0.5, "{r:?}");
        assert!(r.normalized <= 40.0 * (1.0 + 1e-9), "{r:?}");
    }

    #[test]
    fn f_norm_keeps_shared_link_feasible_during_transients() {
        let f = fabric();
        let mut alloc = GradientAllocator::new(&f, AllocConfig::default());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        for _ in 0..500 {
            alloc.iterate();
            let r1 = alloc.flow_rate(FlowId(1)).unwrap().normalized;
            let r2 = alloc.flow_rate(FlowId(2)).unwrap().normalized;
            // The two flows share server 0's 40 G uplink; F-NORM must keep
            // the pair feasible on every iteration, converged or not.
            assert!(r1 + r2 <= 40.0 * (1.0 + 1e-9), "{r1} + {r2}");
        }
    }

    #[test]
    fn churn_reuses_slots_without_stale_rates() {
        let f = fabric();
        let mut alloc = GradientAllocator::new(&f, AllocConfig::default());
        let p1 = f.path(0, 8, FlowId(1));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.run_iterations(2_000);
        assert!(alloc.flow_rate(FlowId(1)).unwrap().rate > 1.0);
        assert!(alloc.remove_flow(FlowId(1)));
        assert!(!alloc.remove_flow(FlowId(1)));
        let p2 = f.path(1, 9, FlowId(2));
        alloc.add_flow(FlowId(2), 1, 9, 1.0, &p2);
        // The reused slot must not leak flow 1's rate.
        assert_eq!(alloc.flow_rate(FlowId(2)).unwrap().rate, 0.0);
        assert_eq!(alloc.flow_count(), 1);
        alloc.run_iterations(100);
        let r = alloc.rates();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, FlowId(2));
        assert!(r[0].rate.is_finite() && r[0].rate > 0.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_flow_id_rejected() {
        let f = fabric();
        let mut alloc = GradientAllocator::new(&f, AllocConfig::default());
        let p = f.path(0, 8, FlowId(1));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p);
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p);
    }
}
