//! LinkBlock layout: the mapping between global [`LinkId`]s and per-block
//! (LinkBlock, offset) slots.

use flowtune_topo::{BlockId, LinkId, TwoTierClos};

/// Where a link lives in the block decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSlot {
    /// `true` → the link belongs to its block's upward LinkBlock.
    pub up: bool,
    /// Owning block.
    pub block: BlockId,
    /// Dense offset within the LinkBlock's arrays.
    pub offset: u32,
}

/// The static link partition of a fabric: B upward and B downward
/// LinkBlocks, all of identical size (§5: "each LinkBlock contains exactly
/// the same number of links, making transfer latency more predictable").
#[derive(Debug, Clone)]
pub struct BlockLayout {
    blocks: usize,
    links_per_lb: usize,
    /// Per block: global ids of its upward LinkBlock's links (slot order).
    up_links: Vec<Vec<LinkId>>,
    /// Per block: global ids of its downward LinkBlock's links.
    down_links: Vec<Vec<LinkId>>,
    /// Per block: capacities of the upward LinkBlock's links (slot order),
    /// in Gbit/s.
    up_capacity: Vec<Vec<f64>>,
    /// Per block: capacities of the downward LinkBlock's links, in Gbit/s.
    down_capacity: Vec<Vec<f64>>,
    /// Global link id → slot (None for control-plane links).
    slots: Vec<Option<LinkSlot>>,
}

impl BlockLayout {
    /// Builds the layout for a fabric, scaling capacities by
    /// `capacity_fraction` (see [`crate::AllocConfig::capacity_fraction`])
    /// and converting to Gbit/s.
    pub fn new(fabric: &TwoTierClos, capacity_fraction: f64) -> Self {
        assert!(
            capacity_fraction > 0.0 && capacity_fraction <= 1.0,
            "capacity fraction must be in (0, 1]"
        );
        let blocks = fabric.block_count();
        let topo = fabric.topology();
        let mut slots = vec![None; topo.link_count()];
        let mut up_links = Vec::with_capacity(blocks);
        let mut down_links = Vec::with_capacity(blocks);
        let mut up_capacity = Vec::with_capacity(blocks);
        let mut down_capacity = Vec::with_capacity(blocks);
        let to_gbps = |bps: u64| bps as f64 / 1e9 * capacity_fraction;
        for b in 0..blocks {
            let block = BlockId(b as u16);
            let up = fabric.up_linkblock(block);
            let down = fabric.down_linkblock(block);
            for (offset, &l) in up.iter().enumerate() {
                slots[l.index()] = Some(LinkSlot {
                    up: true,
                    block,
                    offset: offset as u32,
                });
            }
            for (offset, &l) in down.iter().enumerate() {
                slots[l.index()] = Some(LinkSlot {
                    up: false,
                    block,
                    offset: offset as u32,
                });
            }
            up_capacity.push(
                up.iter()
                    .map(|&l| to_gbps(topo.link(l).capacity_bps))
                    .collect(),
            );
            down_capacity.push(
                down.iter()
                    .map(|&l| to_gbps(topo.link(l).capacity_bps))
                    .collect(),
            );
            up_links.push(up);
            down_links.push(down);
        }
        let links_per_lb = up_links.first().map_or(0, Vec::len);
        debug_assert!(up_links.iter().all(|v| v.len() == links_per_lb));
        debug_assert!(down_links.iter().all(|v| v.len() == links_per_lb));
        Self {
            blocks,
            links_per_lb,
            up_links,
            down_links,
            up_capacity,
            down_capacity,
            slots,
        }
    }

    /// Number of blocks B.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Links per LinkBlock (identical for every LinkBlock).
    pub fn links_per_lb(&self) -> usize {
        self.links_per_lb
    }

    /// Total links in the underlying topology (data-plane *and* control
    /// links) — the length of global-link-indexed vectors such as
    /// engine link-load exports.
    pub fn total_links(&self) -> usize {
        self.slots.len()
    }

    /// The slot of a global link, or `None` for control-plane links.
    pub fn slot(&self, link: LinkId) -> Option<LinkSlot> {
        self.slots.get(link.index()).copied().flatten()
    }

    /// Global link ids of block `b`'s upward LinkBlock, in slot order.
    pub fn up_links(&self, b: usize) -> &[LinkId] {
        &self.up_links[b]
    }

    /// Global link ids of block `b`'s downward LinkBlock, in slot order.
    pub fn down_links(&self, b: usize) -> &[LinkId] {
        &self.down_links[b]
    }

    /// Capacities (Gbit/s, already scaled) of block `b`'s upward
    /// LinkBlock.
    pub fn up_capacity(&self, b: usize) -> &[f64] {
        &self.up_capacity[b]
    }

    /// Capacities (Gbit/s, already scaled) of block `b`'s downward
    /// LinkBlock.
    pub fn down_capacity(&self, b: usize) -> &[f64] {
        &self.down_capacity[b]
    }

    /// Splits a flow's path into (src-block up offsets, dst-block down
    /// offsets), verifying the block-locality invariant that makes the
    /// decomposition contention-free.
    ///
    /// # Panics
    /// Panics if any path link is a control link or lies outside the
    /// expected LinkBlocks (which would indicate a routing bug).
    pub fn split_path(
        &self,
        path: &flowtune_topo::Path,
        src_block: BlockId,
        dst_block: BlockId,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut up = Vec::with_capacity(2);
        let mut down = Vec::with_capacity(2);
        for link in path.iter() {
            let slot = self
                .slot(link)
                .unwrap_or_else(|| panic!("path crosses non-data link {link}"));
            if slot.up {
                assert_eq!(slot.block, src_block, "up link outside source block");
                up.push(slot.offset);
            } else {
                assert_eq!(slot.block, dst_block, "down link outside destination block");
                down.push(slot.offset);
            }
        }
        (up, down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_topo::{ClosConfig, FlowId};

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::multicore(4, 2, 8))
    }

    #[test]
    fn every_data_link_has_exactly_one_slot() {
        let f = fabric();
        let layout = BlockLayout::new(&f, 1.0);
        let mut seen = std::collections::HashSet::new();
        for b in 0..layout.blocks() {
            for (off, &l) in layout.up_links(b).iter().enumerate() {
                let s = layout.slot(l).unwrap();
                assert!(s.up && s.block == BlockId(b as u16) && s.offset == off as u32);
                assert!(seen.insert(l));
            }
            for (off, &l) in layout.down_links(b).iter().enumerate() {
                let s = layout.slot(l).unwrap();
                assert!(!s.up && s.block == BlockId(b as u16) && s.offset == off as u32);
                assert!(seen.insert(l));
            }
        }
        assert_eq!(seen.len(), f.topology().link_count());
    }

    #[test]
    fn control_links_have_no_slot() {
        let mut f = fabric();
        f.attach_allocator();
        let layout = BlockLayout::new(&f, 1.0);
        let ctrl = f.allocator().unwrap().to_spine[0];
        assert_eq!(layout.slot(ctrl), None);
    }

    #[test]
    fn capacities_scaled_and_in_gbps() {
        let f = fabric();
        let layout = BlockLayout::new(&f, 0.99);
        // multicore config: 40 G host links.
        assert!((layout.up_capacity(0)[0] - 40.0 * 0.99).abs() < 1e-12);
    }

    #[test]
    fn split_path_respects_block_locality() {
        let f = fabric();
        let layout = BlockLayout::new(&f, 1.0);
        let src = 0usize;
        let dst = f.config().server_count() - 1;
        let path = f.path(src, dst, FlowId(9));
        let (up, down) = layout.split_path(&path, f.block_of_server(src), f.block_of_server(dst));
        assert_eq!(up.len(), 2);
        assert_eq!(down.len(), 2);
        // Offsets must point back at the path's links.
        let sb = f.block_of_server(src).index();
        let db = f.block_of_server(dst).index();
        assert_eq!(layout.up_links(sb)[up[0] as usize], path.links()[0]);
        assert_eq!(layout.down_links(db)[down[1] as usize], path.links()[3]);
    }

    #[test]
    fn same_rack_path_splits_one_one() {
        let f = fabric();
        let layout = BlockLayout::new(&f, 1.0);
        let path = f.path(0, 1, FlowId(3));
        let b = f.block_of_server(0);
        let (up, down) = layout.split_path(&path, b, b);
        assert_eq!((up.len(), down.len()), (1, 1));
    }

    #[test]
    #[should_panic(expected = "outside source block")]
    fn wrong_block_is_caught() {
        let f = fabric();
        let layout = BlockLayout::new(&f, 1.0);
        let path = f.path(0, 63, FlowId(3));
        // Claim the flow belongs to the wrong source block.
        let _ = layout.split_path(&path, BlockId(3), f.block_of_server(63));
    }
}
