//! Single-threaded reference engine.
//!
//! Performs exactly the same arithmetic, in exactly the same order, as the
//! parallel engine: per-FlowBlock rate passes, binomial-tree aggregation of
//! LinkBlock partials, NED price update on the diagonal copies, and
//! distribution back — just on one thread. The `parallel_matches_serial`
//! tests assert bit-for-bit equality, which is what makes the parallel
//! engine trustworthy.

use std::collections::HashMap;

use flowtune_topo::{BlockId, FlowId, Path, TwoTierClos};

use crate::flowblock::{
    normalize_pass, price_update, rate_pass, Accums, BlockFlow, FlowRate, PriceView,
};
use crate::layout::BlockLayout;
use crate::reduce::{binomial_reduce_in_order, down_root, down_worker, up_root, up_worker};
use crate::AllocConfig;

/// Shared flow/worker bookkeeping used by both engines.
#[derive(Debug)]
pub(crate) struct GridState {
    pub layout: BlockLayout,
    pub cfg: AllocConfig,
    /// server index → block, for FlowBlock assignment.
    pub server_block: Vec<BlockId>,
    /// B² workers in row-major (src block, dst block) order.
    pub workers: Vec<WorkerCore>,
    /// flow id → (worker, slot within worker).
    pub index: HashMap<FlowId, (usize, usize)>,
    /// Exogenous per-link load (other shards' flows), pre-split per
    /// LinkBlock so the price update indexes it like `load`/`capacity`.
    /// `None` (no exchange installed) takes the exact pre-exchange
    /// arithmetic path.
    pub bg: Option<BgLoads>,
    /// Exogenous per-link Hessian diagonal (other shards' `Σ ∂x/∂p`),
    /// same layout; folded into the price update's `H` so the Newton
    /// step divides the global gradient by the global sensitivity.
    pub bg_h: Option<BgLoads>,
}

/// Background (other-shard) per-link values in LinkBlock layout: one
/// slice per block for the upward and downward LinkBlocks, offsets
/// matching the capacity arrays (holds loads or Hessian diagonals).
#[derive(Debug, Clone)]
pub(crate) struct BgLoads {
    pub up: Vec<Vec<f64>>,
    pub down: Vec<Vec<f64>>,
}

/// One FlowBlock worker's private state.
#[derive(Debug, Clone)]
pub(crate) struct WorkerCore {
    pub flows: Vec<BlockFlow>,
    pub rates: Vec<f64>,
    pub normalized: Vec<f64>,
    pub acc: Accums,
    pub view: PriceView,
}

impl WorkerCore {
    fn new(links_per_lb: usize) -> Self {
        Self {
            flows: Vec::new(),
            rates: Vec::new(),
            normalized: Vec::new(),
            acc: Accums::new(links_per_lb),
            view: PriceView::new(links_per_lb),
        }
    }
}

impl GridState {
    pub(crate) fn new(fabric: &TwoTierClos, cfg: AllocConfig) -> Self {
        assert!(
            fabric.block_count().is_power_of_two(),
            "the aggregation tree needs a power-of-two block count"
        );
        let layout = BlockLayout::new(fabric, cfg.capacity_fraction);
        let b = layout.blocks();
        let server_block = (0..fabric.config().server_count())
            .map(|s| fabric.block_of_server(s))
            .collect();
        let workers = (0..b * b)
            .map(|_| WorkerCore::new(layout.links_per_lb()))
            .collect();
        Self {
            layout,
            cfg,
            server_block,
            workers,
            index: HashMap::new(),
            bg: None,
            bg_h: None,
        }
    }

    pub(crate) fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be > 0");
        assert!(
            !self.index.contains_key(&id),
            "flow {id} already registered"
        );
        let b = self.layout.blocks();
        let src_block = self.server_block[src_server];
        let dst_block = self.server_block[dst_server];
        let (up, down) = self.layout.split_path(path, src_block, dst_block);
        let x_max = up
            .iter()
            .map(|&o| self.layout.up_capacity(src_block.index())[o as usize])
            .chain(
                down.iter()
                    .map(|&o| self.layout.down_capacity(dst_block.index())[o as usize]),
            )
            .fold(f64::INFINITY, f64::min);
        let w = src_block.index() * b + dst_block.index();
        let worker = &mut self.workers[w];
        worker
            .flows
            .push(BlockFlow::new(id, weight, &up, &down, x_max));
        worker.rates.push(0.0);
        worker.normalized.push(0.0);
        self.index.insert(id, (w, worker.flows.len() - 1));
    }

    pub(crate) fn remove_flow(&mut self, id: FlowId) -> bool {
        let Some((w, slot)) = self.index.remove(&id) else {
            return false;
        };
        let worker = &mut self.workers[w];
        worker.flows.swap_remove(slot);
        worker.rates.swap_remove(slot);
        worker.normalized.swap_remove(slot);
        if slot < worker.flows.len() {
            // A flow was moved into the vacated slot; re-index it.
            let moved = worker.flows[slot].id;
            self.index.insert(moved, (w, slot));
        }
        true
    }

    pub(crate) fn flow_count(&self) -> usize {
        self.index.len()
    }

    pub(crate) fn rates(&self) -> Vec<FlowRate> {
        let mut out = Vec::with_capacity(self.index.len());
        for worker in &self.workers {
            for (i, flow) in worker.flows.iter().enumerate() {
                out.push(FlowRate {
                    id: flow.id,
                    rate: worker.rates[i],
                    normalized: worker.normalized[i],
                });
            }
        }
        out
    }

    pub(crate) fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        let &(w, slot) = self.index.get(&id)?;
        let worker = &self.workers[w];
        Some(FlowRate {
            id,
            rate: worker.rates[slot],
            normalized: worker.normalized[slot],
        })
    }

    /// Own per-link loads, global-link indexed: each flow's current raw
    /// rate summed onto the links its path crosses. Background loads are
    /// *not* included (see [`crate::RateAllocator::link_loads`]).
    pub(crate) fn link_loads(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.link_loads_into(&mut out);
        out
    }

    /// [`GridState::link_loads`] into a caller-provided buffer — the
    /// allocation-free export the sharded exchange calls every round.
    pub(crate) fn link_loads_into(&self, out: &mut Vec<f64>) {
        let b = self.layout.blocks();
        out.clear();
        out.resize(self.layout.total_links(), 0.0);
        for (w, worker) in self.workers.iter().enumerate() {
            let up_links = self.layout.up_links(w / b);
            let down_links = self.layout.down_links(w % b);
            for (flow, &rate) in worker.flows.iter().zip(&worker.rates) {
                for &o in flow.up_offsets() {
                    out[up_links[o as usize].index()] += rate;
                }
                for &o in flow.down_offsets() {
                    out[down_links[o as usize].index()] += rate;
                }
            }
        }
    }

    /// Current per-link duals, global-link indexed, read from the
    /// authoritative (root) LinkBlock copies. Links outside any
    /// LinkBlock (control links) report 0.
    pub(crate) fn link_prices(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.link_prices_into(&mut out);
        out
    }

    /// [`GridState::link_prices`] into a caller-provided buffer.
    pub(crate) fn link_prices_into(&self, out: &mut Vec<f64>) {
        let b = self.layout.blocks();
        out.clear();
        out.resize(self.layout.total_links(), 0.0);
        for blk in 0..b {
            let up_view = &self.workers[up_root(blk, b)].view;
            for (o, link) in self.layout.up_links(blk).iter().enumerate() {
                out[link.index()] = up_view.up_prices[o];
            }
            let down_view = &self.workers[down_root(blk, b)].view;
            for (o, link) in self.layout.down_links(blk).iter().enumerate() {
                out[link.index()] = down_view.down_prices[o];
            }
        }
    }

    /// Overwrites per-link duals from a global-link-indexed vector; `NaN`
    /// entries keep the current price. Every worker's LinkBlock copy is
    /// rewritten (not only the roots'), so the next rate pass — which
    /// reads the per-worker copies before any distribution step — already
    /// prices flows with the consensus duals, identically in the serial
    /// and multicore engines.
    pub(crate) fn set_link_prices(&mut self, prices: &[f64]) {
        if prices.is_empty() {
            return;
        }
        assert_eq!(
            prices.len(),
            self.layout.total_links(),
            "price vector must cover every fabric link"
        );
        let b = self.layout.blocks();
        for (w, worker) in self.workers.iter_mut().enumerate() {
            let up_links = self.layout.up_links(w / b);
            let down_links = self.layout.down_links(w % b);
            for (o, link) in up_links.iter().enumerate() {
                let p = prices[link.index()];
                if !p.is_nan() {
                    worker.view.up_prices[o] = p;
                }
            }
            for (o, link) in down_links.iter().enumerate() {
                let p = prices[link.index()];
                if !p.is_nan() {
                    worker.view.down_prices[o] = p;
                }
            }
        }
    }

    /// Re-splits a global-link-indexed vector into LinkBlock layout.
    fn split_global(&self, values: &[f64]) -> BgLoads {
        assert_eq!(
            values.len(),
            self.layout.total_links(),
            "background vectors must cover every fabric link"
        );
        let b = self.layout.blocks();
        let split = |links: &[flowtune_topo::LinkId]| -> Vec<f64> {
            links.iter().map(|l| values[l.index()]).collect()
        };
        BgLoads {
            up: (0..b).map(|blk| split(self.layout.up_links(blk))).collect(),
            down: (0..b)
                .map(|blk| split(self.layout.down_links(blk)))
                .collect(),
        }
    }

    /// Installs (or clears, for an empty slice) the exogenous per-link
    /// load, re-split into LinkBlock layout for the price update.
    pub(crate) fn set_background_loads(&mut self, loads: &[f64]) {
        self.bg = (!loads.is_empty()).then(|| self.split_global(loads));
    }

    /// Own per-link Hessian diagonal, global-link indexed: `Σ ∂x/∂p`
    /// over this engine's flows crossing each link. For the log-utility
    /// hot path `∂x/∂p = −x/λ = −x²/w`, so it is reconstructed from the
    /// stored rates and weights — the same values the engine's own rate
    /// pass accumulates into `Accums::up_h`/`down_h`.
    pub(crate) fn link_hessians(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.link_hessians_into(&mut out);
        out
    }

    /// [`GridState::link_hessians`] into a caller-provided buffer.
    pub(crate) fn link_hessians_into(&self, out: &mut Vec<f64>) {
        let b = self.layout.blocks();
        out.clear();
        out.resize(self.layout.total_links(), 0.0);
        for (w, worker) in self.workers.iter().enumerate() {
            let up_links = self.layout.up_links(w / b);
            let down_links = self.layout.down_links(w % b);
            for (flow, &rate) in worker.flows.iter().zip(&worker.rates) {
                let dx = -(rate * rate) / flow.weight;
                for &o in flow.up_offsets() {
                    out[up_links[o as usize].index()] += dx;
                }
                for &o in flow.down_offsets() {
                    out[down_links[o as usize].index()] += dx;
                }
            }
        }
    }

    /// Installs (or clears, for an empty slice) the exogenous per-link
    /// Hessian diagonal accompanying the background loads.
    pub(crate) fn set_background_hessians(&mut self, hdiag: &[f64]) {
        self.bg_h = (!hdiag.is_empty()).then(|| self.split_global(hdiag));
    }
}

/// The single-threaded allocator engine.
#[derive(Debug)]
pub struct SerialAllocator {
    grid: GridState,
}

impl SerialAllocator {
    /// Builds an allocator over `fabric`. The fabric's block count must be
    /// a power of two (1 is fine: a single-block fabric degenerates to
    /// plain NED with no aggregation steps).
    pub fn new(fabric: &TwoTierClos, cfg: AllocConfig) -> Self {
        Self {
            grid: GridState::new(fabric, cfg),
        }
    }

    /// Registers a flow. `path` must come from the same fabric.
    ///
    /// # Panics
    /// Panics on duplicate ids, non-positive weights, or paths that
    /// violate block locality.
    pub fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        self.grid.add_flow(id, src_server, dst_server, weight, path);
    }

    /// Deregisters a flow; returns whether it existed.
    pub fn remove_flow(&mut self, id: FlowId) -> bool {
        self.grid.remove_flow(id)
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.grid.flow_count()
    }

    /// All flows' current allocations (Gbit/s), in deterministic
    /// (FlowBlock, slot) order.
    pub fn rates(&self) -> Vec<FlowRate> {
        self.grid.rates()
    }

    /// One flow's current allocation.
    pub fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        self.grid.flow_rate(id)
    }

    /// Runs one full allocator iteration: rate pass → aggregate → price
    /// update → distribute → (optionally) F-NORM.
    pub fn iterate(&mut self) {
        let grid = &mut self.grid;
        let b = grid.layout.blocks();

        // Phase A: per-FlowBlock rate pass on private LinkBlock copies.
        for worker in &mut grid.workers {
            worker.acc.clear();
            rate_pass(
                &worker.flows,
                &worker.view,
                &mut worker.acc,
                &mut worker.rates,
            );
        }

        // Phase B+C: aggregate each LinkBlock along the binomial tree (in
        // the tree's exact pairwise order) and run the NED price update on
        // the diagonal owner's copy.
        for i in 0..b {
            let mut partials: Vec<(Vec<f64>, Vec<f64>)> = (0..b)
                .map(|k| {
                    let w = up_worker(i, k, b);
                    (
                        grid.workers[w].acc.up_load.clone(),
                        grid.workers[w].acc.up_h.clone(),
                    )
                })
                .collect();
            binomial_reduce_in_order(&mut partials, |a, o| {
                for (x, y) in a.0.iter_mut().zip(&o.0) {
                    *x += y;
                }
                for (x, y) in a.1.iter_mut().zip(&o.1) {
                    *x += y;
                }
            });
            let (load, hdiag) = &partials[0];
            let root = up_root(i, b);
            let view = &mut grid.workers[root].view;
            price_update(
                load,
                hdiag,
                grid.bg.as_ref().map(|bg| bg.up[i].as_slice()),
                grid.bg_h.as_ref().map(|bg| bg.up[i].as_slice()),
                grid.layout.up_capacity(i),
                grid.cfg.gamma,
                &mut view.up_prices,
                &mut view.up_ratio,
            );
        }
        for j in 0..b {
            let mut partials: Vec<(Vec<f64>, Vec<f64>)> = (0..b)
                .map(|k| {
                    let w = down_worker(j, k, b);
                    (
                        grid.workers[w].acc.down_load.clone(),
                        grid.workers[w].acc.down_h.clone(),
                    )
                })
                .collect();
            binomial_reduce_in_order(&mut partials, |a, o| {
                for (x, y) in a.0.iter_mut().zip(&o.0) {
                    *x += y;
                }
                for (x, y) in a.1.iter_mut().zip(&o.1) {
                    *x += y;
                }
            });
            let (load, hdiag) = &partials[0];
            let root = down_root(j, b);
            let view = &mut grid.workers[root].view;
            price_update(
                load,
                hdiag,
                grid.bg.as_ref().map(|bg| bg.down[j].as_slice()),
                grid.bg_h.as_ref().map(|bg| bg.down[j].as_slice()),
                grid.layout.down_capacity(j),
                grid.cfg.gamma,
                &mut view.down_prices,
                &mut view.down_ratio,
            );
        }

        // Phase D: distribute prices + ratios back to every row/column
        // member (the serial engine copies straight from the roots; the
        // byte content is identical to the reverse-tree broadcast).
        for i in 0..b {
            let root = up_root(i, b);
            let (prices, ratios) = (
                grid.workers[root].view.up_prices.clone(),
                grid.workers[root].view.up_ratio.clone(),
            );
            for j in 0..b {
                let w = i * b + j;
                grid.workers[w].view.up_prices.copy_from_slice(&prices);
                grid.workers[w].view.up_ratio.copy_from_slice(&ratios);
            }
        }
        for j in 0..b {
            let root = down_root(j, b);
            let (prices, ratios) = (
                grid.workers[root].view.down_prices.clone(),
                grid.workers[root].view.down_ratio.clone(),
            );
            for i in 0..b {
                let w = i * b + j;
                grid.workers[w].view.down_prices.copy_from_slice(&prices);
                grid.workers[w].view.down_ratio.copy_from_slice(&ratios);
            }
        }

        // Phase E: F-NORM per FlowBlock.
        if grid.cfg.f_norm {
            for worker in &mut grid.workers {
                normalize_pass(
                    &worker.flows,
                    &worker.view,
                    &worker.rates,
                    &mut worker.normalized,
                );
            }
        } else {
            for worker in &mut grid.workers {
                worker.normalized.copy_from_slice(&worker.rates);
            }
        }
    }

    /// Runs `n` iterations.
    pub fn run_iterations(&mut self, n: usize) {
        for _ in 0..n {
            self.iterate();
        }
    }

    /// Own per-link loads (see [`crate::RateAllocator::link_loads`]).
    pub fn link_loads(&self) -> Vec<f64> {
        self.grid.link_loads()
    }

    /// [`SerialAllocator::link_loads`] into a caller-provided buffer (see
    /// [`crate::RateAllocator::link_loads_into`]).
    pub fn link_loads_into(&self, out: &mut Vec<f64>) {
        self.grid.link_loads_into(out);
    }

    /// Installs an exogenous per-link load priced alongside this engine's
    /// own flows (see [`crate::RateAllocator::set_background_loads`]).
    pub fn set_background_loads(&mut self, loads: &[f64]) {
        self.grid.set_background_loads(loads);
    }

    /// Current per-link duals (see [`crate::RateAllocator::link_prices`]).
    pub fn link_prices(&self) -> Vec<f64> {
        self.grid.link_prices()
    }

    /// [`SerialAllocator::link_prices`] into a caller-provided buffer
    /// (see [`crate::RateAllocator::link_prices_into`]).
    pub fn link_prices_into(&self, out: &mut Vec<f64>) {
        self.grid.link_prices_into(out);
    }

    /// Overwrites per-link duals; `NaN` entries keep the current price
    /// (see [`crate::RateAllocator::set_link_prices`]).
    pub fn set_link_prices(&mut self, prices: &[f64]) {
        self.grid.set_link_prices(prices);
    }

    /// Own per-link Hessian diagonal (see
    /// [`crate::RateAllocator::link_hessians`]).
    pub fn link_hessians(&self) -> Vec<f64> {
        self.grid.link_hessians()
    }

    /// [`SerialAllocator::link_hessians`] into a caller-provided buffer
    /// (see [`crate::RateAllocator::link_hessians_into`]).
    pub fn link_hessians_into(&self, out: &mut Vec<f64>) {
        self.grid.link_hessians_into(out);
    }

    /// Installs the exogenous per-link Hessian diagonal accompanying the
    /// background loads (see
    /// [`crate::RateAllocator::set_background_hessians`]).
    pub fn set_background_hessians(&mut self, hdiag: &[f64]) {
        self.grid.set_background_hessians(hdiag);
    }

    /// The current price of a (data-plane) link, if it belongs to a
    /// LinkBlock.
    pub fn link_price(&self, link: flowtune_topo::LinkId) -> Option<f64> {
        let slot = self.grid.layout.slot(link)?;
        let b = self.grid.layout.blocks();
        let view = if slot.up {
            &self.grid.workers[up_root(slot.block.index(), b)].view
        } else {
            &self.grid.workers[down_root(slot.block.index(), b)].view
        };
        Some(if slot.up {
            view.up_prices[slot.offset as usize]
        } else {
            view.down_prices[slot.offset as usize]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_topo::ClosConfig;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::multicore(2, 2, 4))
    }

    fn cfg() -> AllocConfig {
        AllocConfig {
            gamma: 0.4,
            f_norm: true,
            capacity_fraction: 1.0,
        }
    }

    #[test]
    fn two_flows_share_a_host_link() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        // Two flows from server 0 to two different remote servers: they
        // share server 0's 40 G uplink.
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        alloc.run_iterations(200);
        let r1 = alloc.flow_rate(FlowId(1)).unwrap();
        let r2 = alloc.flow_rate(FlowId(2)).unwrap();
        assert!((r1.rate - 20.0).abs() < 1e-6, "{r1:?}");
        assert!((r2.rate - 20.0).abs() < 1e-6, "{r2:?}");
        // F-NORM keeps the shared uplink at its capacity.
        assert!(r1.normalized + r2.normalized <= 40.0 * (1.0 + 1e-9));
    }

    #[test]
    fn single_flow_gets_line_rate() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p = f.path(3, 13, FlowId(7));
        alloc.add_flow(FlowId(7), 3, 13, 1.0, &p);
        alloc.run_iterations(300);
        let r = alloc.flow_rate(FlowId(7)).unwrap();
        assert!((r.rate - 40.0).abs() < 1e-4, "{r:?}");
    }

    #[test]
    fn remove_flow_frees_capacity() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        alloc.run_iterations(200);
        assert!(alloc.remove_flow(FlowId(1)));
        assert!(!alloc.remove_flow(FlowId(1)), "double remove");
        alloc.run_iterations(200);
        let r2 = alloc.flow_rate(FlowId(2)).unwrap();
        assert!((r2.rate - 40.0).abs() < 1e-4, "{r2:?}");
        assert_eq!(alloc.flow_count(), 1);
    }

    #[test]
    fn weighted_flows_split_proportionally() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 3.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        alloc.run_iterations(400);
        let r1 = alloc.flow_rate(FlowId(1)).unwrap().rate;
        let r2 = alloc.flow_rate(FlowId(2)).unwrap().rate;
        assert!((r1 / r2 - 3.0).abs() < 1e-3, "{r1} / {r2}");
    }

    #[test]
    fn capacity_fraction_headroom_is_respected() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(
            &f,
            AllocConfig {
                capacity_fraction: 0.95,
                ..cfg()
            },
        );
        let p = f.path(3, 13, FlowId(7));
        alloc.add_flow(FlowId(7), 3, 13, 1.0, &p);
        alloc.run_iterations(300);
        let r = alloc.flow_rate(FlowId(7)).unwrap();
        assert!((r.rate - 38.0).abs() < 1e-4, "{r:?}");
    }

    #[test]
    fn matches_flowtune_num_ned() {
        // The block-decomposed engine must agree with the monolithic NED
        // from flowtune-num on the same instance, γ and iteration count.
        use flowtune_num::{solver::Optimizer, Ned, NumProblem, SolverState, Utility};
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let caps_gbps: Vec<f64> = f
            .topology()
            .links()
            .iter()
            .map(|l| l.capacity_bps as f64 / 1e9)
            .collect();
        let mut problem = NumProblem::new(caps_gbps);
        let pairs = [(0usize, 9usize), (1, 8), (0, 12), (5, 3), (14, 2), (9, 0)];
        let mut slot_of = Vec::new();
        for (i, &(src, dst)) in pairs.iter().enumerate() {
            let id = FlowId(i as u64);
            let path = f.path(src, dst, id);
            alloc.add_flow(id, src, dst, 1.0, &path);
            slot_of.push(problem.add_flow(path.links().to_vec(), Utility::log(1.0)));
        }
        let mut state = SolverState::new(&problem);
        let mut ned = Ned::new(0.4);
        for _ in 0..150 {
            ned.iterate(&problem, &mut state);
        }
        alloc.run_iterations(150);
        for (i, &slot) in slot_of.iter().enumerate() {
            let got = alloc.flow_rate(FlowId(i as u64)).unwrap().rate;
            let want = state.rates[slot];
            assert!(
                (got - want).abs() < 1e-9 * want.max(1.0),
                "flow {i}: block engine {got} vs NED {want}"
            );
        }
    }

    #[test]
    fn link_loads_sum_flow_rates_per_link() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        alloc.run_iterations(200);
        let loads = alloc.link_loads();
        // The shared server-0 uplink carries both flows' raw rates …
        let shared = p1.links()[0];
        assert_eq!(shared, p2.links()[0]);
        assert!((loads[shared.index()] - 40.0).abs() < 1e-6, "{loads:?}");
        // … each private final hop carries one.
        let last1 = *p1.links().last().unwrap();
        assert!((loads[last1.index()] - 20.0).abs() < 1e-6);
        // Installing a background must NOT be echoed back by the export.
        alloc.set_background_loads(&vec![7.0; loads.len()]);
        let again = alloc.link_loads();
        assert!((again[shared.index()] - 40.0).abs() < 1e-6, "no echo");
    }

    #[test]
    fn background_load_shifts_the_shared_link_price() {
        // Two own flows share server 0's 40 G uplink with 20 G of
        // exogenous (other-shard) load: NED must converge them to equal
        // shares of the remaining 20 G.
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        let mut bg = vec![0.0; alloc.link_loads().len()];
        bg[p1.links()[0].index()] = 20.0;
        alloc.set_background_loads(&bg);
        alloc.run_iterations(400);
        let r1 = alloc.flow_rate(FlowId(1)).unwrap();
        let r2 = alloc.flow_rate(FlowId(2)).unwrap();
        assert!((r1.rate - 10.0).abs() < 1e-4, "{r1:?}");
        assert!((r2.rate - 10.0).abs() < 1e-4, "{r2:?}");
        // The uplink ratio sees the total (40/40 = 1), so F-NORM leaves
        // the feasible rates alone.
        assert!(r1.normalized + r2.normalized <= 20.0 * (1.0 + 1e-9));
        // Clearing the background restores the whole link.
        alloc.set_background_loads(&[]);
        alloc.run_iterations(400);
        let r1 = alloc.flow_rate(FlowId(1)).unwrap();
        assert!((r1.rate - 20.0).abs() < 1e-4, "{r1:?}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_flow_id_rejected() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p = f.path(0, 8, FlowId(1));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p);
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p);
    }
}
