//! Single-threaded reference engine.
//!
//! Performs exactly the same arithmetic, in exactly the same order, as the
//! parallel engine: per-FlowBlock rate passes, binomial-tree aggregation of
//! LinkBlock partials, NED price update on the diagonal copies, and
//! distribution back — just on one thread. The `parallel_matches_serial`
//! tests assert bit-for-bit equality, which is what makes the parallel
//! engine trustworthy.

use std::collections::HashMap;

use flowtune_topo::{BlockId, FlowId, Path, TwoTierClos};

use crate::dirty::DirtySet;
use crate::flowblock::{
    normalize_pass, price_update, rate_pass, Accums, BlockFlow, FlowRate, PriceView,
};
use crate::layout::BlockLayout;
use crate::reduce::{binomial_reduce_in_order, down_root, down_worker, up_root, up_worker};
use crate::AllocConfig;

/// Shared flow/worker bookkeeping used by both engines.
#[derive(Debug)]
pub(crate) struct GridState {
    pub layout: BlockLayout,
    pub cfg: AllocConfig,
    /// server index → block, for FlowBlock assignment.
    pub server_block: Vec<BlockId>,
    /// B² workers in row-major (src block, dst block) order.
    pub workers: Vec<WorkerCore>,
    /// flow id → (worker, slot within worker).
    pub index: HashMap<FlowId, (usize, usize)>,
    /// Exogenous per-link load (other shards' flows), pre-split per
    /// LinkBlock so the price update indexes it like `load`/`capacity`.
    /// `None` (no exchange installed) takes the exact pre-exchange
    /// arithmetic path.
    pub bg: Option<BgLoads>,
    /// Exogenous per-link Hessian diagonal (other shards' `Σ ∂x/∂p`),
    /// same layout; folded into the price update's `H` so the Newton
    /// step divides the global gradient by the global sensitivity.
    pub bg_h: Option<BgLoads>,
    /// Dirty-set bookkeeping when `cfg.incremental` is on; `None` runs
    /// the classic full sweep every iteration.
    pub dirty: Option<DirtySet>,
    /// Preallocated per-iteration buffers (aggregation partials and the
    /// distribute copies), so the steady-state tick path never allocates.
    pub scratch: IterScratch,
}

/// Reusable buffers for one iteration: the binomial-tree partials (one
/// `(load, hdiag)` pair per virtual index) and the root price/ratio
/// copies the distribute phase fans out. Sized once at construction —
/// the fabric shape is fixed — so iterations never reallocate.
#[derive(Debug, Clone)]
pub(crate) struct IterScratch {
    pub partials: Vec<(Vec<f64>, Vec<f64>)>,
    pub prices: Vec<f64>,
    pub ratios: Vec<f64>,
}

/// Background (other-shard) per-link values in LinkBlock layout: one
/// slice per block for the upward and downward LinkBlocks, offsets
/// matching the capacity arrays (holds loads or Hessian diagonals).
#[derive(Debug, Clone)]
pub(crate) struct BgLoads {
    pub up: Vec<Vec<f64>>,
    pub down: Vec<Vec<f64>>,
}

/// One FlowBlock worker's private state.
#[derive(Debug, Clone)]
pub(crate) struct WorkerCore {
    pub flows: Vec<BlockFlow>,
    pub rates: Vec<f64>,
    pub normalized: Vec<f64>,
    pub acc: Accums,
    pub view: PriceView,
}

impl WorkerCore {
    fn new(links_per_lb: usize) -> Self {
        Self {
            flows: Vec::new(),
            rates: Vec::new(),
            normalized: Vec::new(),
            acc: Accums::new(links_per_lb),
            view: PriceView::new(links_per_lb),
        }
    }
}

impl GridState {
    pub(crate) fn new(fabric: &TwoTierClos, cfg: AllocConfig) -> Self {
        assert!(
            fabric.block_count().is_power_of_two(),
            "the aggregation tree needs a power-of-two block count"
        );
        let layout = BlockLayout::new(fabric, cfg.capacity_fraction);
        let b = layout.blocks();
        let server_block = (0..fabric.config().server_count())
            .map(|s| fabric.block_of_server(s))
            .collect();
        let lpl = layout.links_per_lb();
        let workers = (0..b * b).map(|_| WorkerCore::new(lpl)).collect();
        let scratch = IterScratch {
            partials: (0..b).map(|_| (vec![0.0; lpl], vec![0.0; lpl])).collect(),
            prices: vec![0.0; lpl],
            ratios: vec![0.0; lpl],
        };
        let dirty = cfg
            .incremental
            .then(|| DirtySet::new(b, lpl, cfg.dirty_eps, cfg.full_sweep_every));
        Self {
            layout,
            cfg,
            server_block,
            workers,
            index: HashMap::new(),
            bg: None,
            bg_h: None,
            dirty,
            scratch,
        }
    }

    pub(crate) fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be > 0");
        assert!(
            !self.index.contains_key(&id),
            "flow {id} already registered"
        );
        let b = self.layout.blocks();
        let src_block = self.server_block[src_server];
        let dst_block = self.server_block[dst_server];
        let (up, down) = self.layout.split_path(path, src_block, dst_block);
        let x_max = up
            .iter()
            .map(|&o| self.layout.up_capacity(src_block.index())[o as usize])
            .chain(
                down.iter()
                    .map(|&o| self.layout.down_capacity(dst_block.index())[o as usize]),
            )
            .fold(f64::INFINITY, f64::min);
        let w = src_block.index() * b + dst_block.index();
        if let Some(ds) = &mut self.dirty {
            ds.note_add(w, &up, &down);
        }
        let worker = &mut self.workers[w];
        worker
            .flows
            .push(BlockFlow::new(id, weight, &up, &down, x_max));
        worker.rates.push(0.0);
        worker.normalized.push(0.0);
        self.index.insert(id, (w, worker.flows.len() - 1));
    }

    pub(crate) fn remove_flow(&mut self, id: FlowId) -> bool {
        let Some((w, slot)) = self.index.remove(&id) else {
            return false;
        };
        let worker = &mut self.workers[w];
        if let Some(ds) = &mut self.dirty {
            let f = &worker.flows[slot];
            ds.note_remove(w, f.up_offsets(), f.down_offsets());
        }
        worker.flows.swap_remove(slot);
        worker.rates.swap_remove(slot);
        worker.normalized.swap_remove(slot);
        if slot < worker.flows.len() {
            // A flow was moved into the vacated slot; re-index it.
            let moved = worker.flows[slot].id;
            self.index.insert(moved, (w, slot));
        }
        true
    }

    pub(crate) fn flow_count(&self) -> usize {
        self.index.len()
    }

    pub(crate) fn rates(&self) -> Vec<FlowRate> {
        let mut out = Vec::with_capacity(self.index.len());
        self.rates_into(&mut out);
        out
    }

    /// [`GridState::rates`] into a caller-provided buffer (cleared
    /// first) — the allocation-free per-tick export.
    pub(crate) fn rates_into(&self, out: &mut Vec<FlowRate>) {
        out.clear();
        for worker in &self.workers {
            for (i, flow) in worker.flows.iter().enumerate() {
                out.push(FlowRate {
                    id: flow.id,
                    rate: worker.rates[i],
                    normalized: worker.normalized[i],
                });
            }
        }
    }

    /// Drains the changed-rate set: appends (after clearing `out`) the
    /// rates of every flow in a worker whose output may have moved since
    /// the last drain, and returns `true`. Without a dirty set, falls
    /// back to exporting everything and returns `false`.
    pub(crate) fn take_changed_rates(&mut self, out: &mut Vec<FlowRate>) -> bool {
        if self.dirty.is_none() {
            self.rates_into(out);
            return false;
        }
        out.clear();
        let Self { workers, dirty, .. } = self;
        let ds = dirty.as_mut().expect("checked above");
        for (w, worker) in workers.iter().enumerate() {
            if !ds.export_dirty[w] {
                continue;
            }
            ds.export_dirty[w] = false;
            for (i, flow) in worker.flows.iter().enumerate() {
                out.push(FlowRate {
                    id: flow.id,
                    rate: worker.rates[i],
                    normalized: worker.normalized[i],
                });
            }
        }
        true
    }

    /// Cumulative `(dirty_flows, dirty_links)` counters, when the engine
    /// runs incrementally.
    pub(crate) fn dirty_counters(&self) -> Option<(u64, u64)> {
        self.dirty.as_ref().map(DirtySet::counters)
    }

    pub(crate) fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        let &(w, slot) = self.index.get(&id)?;
        let worker = &self.workers[w];
        Some(FlowRate {
            id,
            rate: worker.rates[slot],
            normalized: worker.normalized[slot],
        })
    }

    /// Own per-link loads, global-link indexed: each flow's current raw
    /// rate summed onto the links its path crosses. Background loads are
    /// *not* included (see [`crate::RateAllocator::link_loads`]).
    pub(crate) fn link_loads(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.link_loads_into(&mut out);
        out
    }

    /// [`GridState::link_loads`] into a caller-provided buffer — the
    /// allocation-free export the sharded exchange calls every round.
    pub(crate) fn link_loads_into(&self, out: &mut Vec<f64>) {
        let b = self.layout.blocks();
        out.clear();
        out.resize(self.layout.total_links(), 0.0);
        for (w, worker) in self.workers.iter().enumerate() {
            let up_links = self.layout.up_links(w / b);
            let down_links = self.layout.down_links(w % b);
            for (flow, &rate) in worker.flows.iter().zip(&worker.rates) {
                for &o in flow.up_offsets() {
                    out[up_links[o as usize].index()] += rate;
                }
                for &o in flow.down_offsets() {
                    out[down_links[o as usize].index()] += rate;
                }
            }
        }
    }

    /// Current per-link duals, global-link indexed, read from the
    /// authoritative (root) LinkBlock copies. Links outside any
    /// LinkBlock (control links) report 0.
    pub(crate) fn link_prices(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.link_prices_into(&mut out);
        out
    }

    /// [`GridState::link_prices`] into a caller-provided buffer.
    pub(crate) fn link_prices_into(&self, out: &mut Vec<f64>) {
        let b = self.layout.blocks();
        out.clear();
        out.resize(self.layout.total_links(), 0.0);
        for blk in 0..b {
            let up_view = &self.workers[up_root(blk, b)].view;
            for (o, link) in self.layout.up_links(blk).iter().enumerate() {
                out[link.index()] = up_view.up_prices[o];
            }
            let down_view = &self.workers[down_root(blk, b)].view;
            for (o, link) in self.layout.down_links(blk).iter().enumerate() {
                out[link.index()] = down_view.down_prices[o];
            }
        }
    }

    /// Overwrites per-link duals from a global-link-indexed vector; `NaN`
    /// entries keep the current price. Every worker's LinkBlock copy is
    /// rewritten (not only the roots'), so the next rate pass — which
    /// reads the per-worker copies before any distribution step — already
    /// prices flows with the consensus duals, identically in the serial
    /// and multicore engines.
    pub(crate) fn set_link_prices(&mut self, prices: &[f64]) {
        if prices.is_empty() {
            return;
        }
        assert_eq!(
            prices.len(),
            self.layout.total_links(),
            "price vector must cover every fabric link"
        );
        let b = self.layout.blocks();
        if self.dirty.is_some() {
            // Marking pass (before the overwrite below): an install that
            // actually moves a dual beyond eps invalidates the rate pass
            // of every worker whose flows traverse that link. The current
            // root views are valid comparison points because distribution
            // keeps every copy exactly synced to the roots.
            let Self {
                layout,
                workers,
                dirty,
                ..
            } = self;
            let ds = dirty.as_mut().expect("checked above");
            for blk in 0..b {
                let up_view = &workers[up_root(blk, b)].view;
                for (o, link) in layout.up_links(blk).iter().enumerate() {
                    let p = prices[link.index()];
                    if p.is_nan() || (p - up_view.up_prices[o]).abs() <= ds.eps {
                        continue;
                    }
                    ds.moving = true;
                    ds.dirty_links += 1;
                    ds.prev_up_prices[blk][o] = p;
                    for j in 0..b {
                        let w = blk * b + j;
                        if ds.up_touch[w][o] > 0 {
                            ds.rate_dirty[w] = true;
                        }
                    }
                }
                let down_view = &workers[down_root(blk, b)].view;
                for (o, link) in layout.down_links(blk).iter().enumerate() {
                    let p = prices[link.index()];
                    if p.is_nan() || (p - down_view.down_prices[o]).abs() <= ds.eps {
                        continue;
                    }
                    ds.moving = true;
                    ds.dirty_links += 1;
                    ds.prev_down_prices[blk][o] = p;
                    for i in 0..b {
                        let w = i * b + blk;
                        if ds.down_touch[w][o] > 0 {
                            ds.rate_dirty[w] = true;
                        }
                    }
                }
            }
        }
        for (w, worker) in self.workers.iter_mut().enumerate() {
            let up_links = self.layout.up_links(w / b);
            let down_links = self.layout.down_links(w % b);
            for (o, link) in up_links.iter().enumerate() {
                let p = prices[link.index()];
                if !p.is_nan() {
                    worker.view.up_prices[o] = p;
                }
            }
            for (o, link) in down_links.iter().enumerate() {
                let p = prices[link.index()];
                if !p.is_nan() {
                    worker.view.down_prices[o] = p;
                }
            }
        }
    }

    /// Re-splits a global-link-indexed vector into the LinkBlock-layout
    /// slot *in place*: the `BgLoads` buffers are allocated on the first
    /// install only and overwritten on every subsequent one, so the
    /// steady-state exchange path never allocates. An empty slice clears
    /// the slot.
    fn refill_bg(layout: &BlockLayout, slot: &mut Option<BgLoads>, values: &[f64]) {
        if values.is_empty() {
            *slot = None;
            return;
        }
        assert_eq!(
            values.len(),
            layout.total_links(),
            "background vectors must cover every fabric link"
        );
        let b = layout.blocks();
        let lpl = layout.links_per_lb();
        let bg = slot.get_or_insert_with(|| BgLoads {
            up: vec![vec![0.0; lpl]; b],
            down: vec![vec![0.0; lpl]; b],
        });
        for blk in 0..b {
            for (o, link) in layout.up_links(blk).iter().enumerate() {
                bg.up[blk][o] = values[link.index()];
            }
            for (o, link) in layout.down_links(blk).iter().enumerate() {
                bg.down[blk][o] = values[link.index()];
            }
        }
    }

    /// Installs (or clears, for an empty slice) the exogenous per-link
    /// load, re-split into LinkBlock layout for the price update.
    pub(crate) fn set_background_loads(&mut self, loads: &[f64]) {
        Self::refill_bg(&self.layout, &mut self.bg, loads);
    }

    /// Own per-link Hessian diagonal, global-link indexed: `Σ ∂x/∂p`
    /// over this engine's flows crossing each link. For the log-utility
    /// hot path `∂x/∂p = −x/λ = −x²/w`, so it is reconstructed from the
    /// stored rates and weights — the same values the engine's own rate
    /// pass accumulates into `Accums::up_h`/`down_h`.
    pub(crate) fn link_hessians(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.link_hessians_into(&mut out);
        out
    }

    /// [`GridState::link_hessians`] into a caller-provided buffer.
    pub(crate) fn link_hessians_into(&self, out: &mut Vec<f64>) {
        let b = self.layout.blocks();
        out.clear();
        out.resize(self.layout.total_links(), 0.0);
        for (w, worker) in self.workers.iter().enumerate() {
            let up_links = self.layout.up_links(w / b);
            let down_links = self.layout.down_links(w % b);
            for (flow, &rate) in worker.flows.iter().zip(&worker.rates) {
                let dx = -(rate * rate) / flow.weight;
                for &o in flow.up_offsets() {
                    out[up_links[o as usize].index()] += dx;
                }
                for &o in flow.down_offsets() {
                    out[down_links[o as usize].index()] += dx;
                }
            }
        }
    }

    /// Installs (or clears, for an empty slice) the exogenous per-link
    /// Hessian diagonal accompanying the background loads.
    pub(crate) fn set_background_hessians(&mut self, hdiag: &[f64]) {
        Self::refill_bg(&self.layout, &mut self.bg_h, hdiag);
    }

    /// One full NED iteration, dispatching to the incremental path when a
    /// dirty set is installed. Both engines call this on one thread; the
    /// multicore engine only takes its barrier pipeline when running the
    /// classic full sweep.
    pub(crate) fn iterate(&mut self) {
        if self.dirty.is_some() {
            self.iterate_incremental();
        } else {
            self.iterate_full();
        }
    }

    /// The classic full sweep: rate pass everywhere → aggregate → price
    /// update → distribute → F-NORM everywhere.
    pub(crate) fn iterate_full(&mut self) {
        self.rate_phase_full();
        self.aggregate_and_price();
        self.distribute();
        self.normalize_phase_full();
    }

    /// The incremental iteration. The flow-proportional phases (rate
    /// pass, F-NORM) are gated per worker on the dirty set, and a diff
    /// phase converts observed price/ratio movement into next-iteration
    /// dirtiness. Phases B–D (aggregate, price update, distribute) are
    /// `O(B²·L)` in links, not flows, and run whenever *any* worker
    /// recomputed — but are skipped entirely on a fully quiet iteration.
    ///
    /// The quiet-iteration skip is what lets the engine reach true
    /// quiescence. With zero recomputes every accumulator is bitwise
    /// unchanged, so running the price update anyway would integrate the
    /// same Newton residual tick after tick: prices drift, cross `eps`,
    /// re-mark the very flows whose recompute then jolts the load back —
    /// a relaxation oscillator with amplitude `O(eps)` that keeps ~10% of
    /// the fabric dirty forever. Freezing prices instead is exact at
    /// `eps = 0`: the skip requires a markless previous diff (`moving`
    /// false — no price or ratio moved anywhere, touched links or not),
    /// which means the last price update already reproduced its own
    /// input bitwise (same prices, same loads), so the skipped update is
    /// the identity. For `eps > 0` the suppressed residual is `O(eps)`
    /// by construction and the periodic full sweep re-marks every
    /// worker, letting the next price update apply it before float
    /// drift can compound.
    pub(crate) fn iterate_incremental(&mut self) {
        {
            let ds = self.dirty.as_mut().expect("incremental path");
            ds.drain_intake();
            if ds.full_sweep_every > 0 && ds.iter.is_multiple_of(ds.full_sweep_every) {
                ds.rate_dirty.fill(true);
            }
            ds.iter += 1;
        }
        let recomputed = self.rate_phase_dirty();
        if recomputed || self.dirty.as_ref().expect("incremental path").moving {
            self.aggregate_and_price();
            self.diff_and_mark();
            self.distribute();
        }
        self.normalize_phase_dirty();
    }

    /// Phase A (full): clear accumulators and re-run the rate pass in
    /// every worker.
    fn rate_phase_full(&mut self) {
        for worker in &mut self.workers {
            worker.acc.clear();
            rate_pass(
                &worker.flows,
                &worker.view,
                &mut worker.acc,
                &mut worker.rates,
            );
        }
    }

    /// Phase A (incremental): re-run the rate pass only in rate-dirty
    /// workers. A clean worker's accumulators and rates are bitwise what
    /// a recompute would produce — its flow set and every price it reads
    /// are unchanged — so skipping it is exact. The accumulator clear is
    /// the lazy per-epoch one: it happens here, only for recomputed
    /// workers, instead of globally every iteration. Returns whether any
    /// worker recomputed, which gates the link-proportional phases.
    fn rate_phase_dirty(&mut self) -> bool {
        let Self { workers, dirty, .. } = self;
        let ds = dirty.as_mut().expect("incremental path");
        let mut any = false;
        for (w, worker) in workers.iter_mut().enumerate() {
            ds.recomputed[w] = ds.rate_dirty[w];
            if !ds.rate_dirty[w] {
                continue;
            }
            any = true;
            ds.rate_dirty[w] = false;
            ds.dirty_flows += worker.flows.len() as u64;
            worker.acc.clear();
            rate_pass(
                &worker.flows,
                &worker.view,
                &mut worker.acc,
                &mut worker.rates,
            );
        }
        any
    }

    /// Phases B+C: aggregate each LinkBlock along the binomial tree (in
    /// the tree's exact pairwise order) into preallocated scratch and run
    /// the NED price update on the diagonal owner's copy.
    fn aggregate_and_price(&mut self) {
        let b = self.layout.blocks();
        let partials = &mut self.scratch.partials;
        for i in 0..b {
            for (k, part) in partials.iter_mut().enumerate() {
                let acc = &self.workers[up_worker(i, k, b)].acc;
                part.0.copy_from_slice(&acc.up_load);
                part.1.copy_from_slice(&acc.up_h);
            }
            binomial_reduce_in_order(partials, |a, o| {
                for (x, y) in a.0.iter_mut().zip(&o.0) {
                    *x += y;
                }
                for (x, y) in a.1.iter_mut().zip(&o.1) {
                    *x += y;
                }
            });
            let (load, hdiag) = &partials[0];
            let view = &mut self.workers[up_root(i, b)].view;
            price_update(
                load,
                hdiag,
                self.bg.as_ref().map(|bg| bg.up[i].as_slice()),
                self.bg_h.as_ref().map(|bg| bg.up[i].as_slice()),
                self.layout.up_capacity(i),
                self.cfg.gamma,
                &mut view.up_prices,
                &mut view.up_ratio,
            );
        }
        for j in 0..b {
            for (k, part) in partials.iter_mut().enumerate() {
                let acc = &self.workers[down_worker(j, k, b)].acc;
                part.0.copy_from_slice(&acc.down_load);
                part.1.copy_from_slice(&acc.down_h);
            }
            binomial_reduce_in_order(partials, |a, o| {
                for (x, y) in a.0.iter_mut().zip(&o.0) {
                    *x += y;
                }
                for (x, y) in a.1.iter_mut().zip(&o.1) {
                    *x += y;
                }
            });
            let (load, hdiag) = &partials[0];
            let view = &mut self.workers[down_root(j, b)].view;
            price_update(
                load,
                hdiag,
                self.bg.as_ref().map(|bg| bg.down[j].as_slice()),
                self.bg_h.as_ref().map(|bg| bg.down[j].as_slice()),
                self.layout.down_capacity(j),
                self.cfg.gamma,
                &mut view.down_prices,
                &mut view.down_ratio,
            );
        }
    }

    /// Diff phase (incremental only): compare the fresh root prices and
    /// ratios against the per-link snapshots. A price move beyond eps
    /// rate-dirties every traversing worker for the *next* iteration (the
    /// rates they computed this iteration used the pre-update price —
    /// exactly like the full sweep); a ratio move beyond eps norm-dirties
    /// traversing workers for *this* iteration's F-NORM, which reads the
    /// post-update ratios.
    fn diff_and_mark(&mut self) {
        let b = self.layout.blocks();
        let Self { workers, dirty, .. } = self;
        let ds = dirty.as_mut().expect("incremental path");
        // Rebuilt from scratch each diff: stays false only when *no*
        // price or ratio anywhere moved beyond eps — touched or not —
        // which is the precondition for freezing the price phases.
        ds.moving = false;
        for blk in 0..b {
            let view = &workers[up_root(blk, b)].view;
            for o in 0..view.up_prices.len() {
                let p = view.up_prices[o];
                if (p - ds.prev_up_prices[blk][o]).abs() > ds.eps {
                    ds.moving = true;
                    ds.dirty_links += 1;
                    ds.prev_up_prices[blk][o] = p;
                    for j in 0..b {
                        let w = blk * b + j;
                        if ds.up_touch[w][o] > 0 {
                            ds.rate_dirty[w] = true;
                        }
                    }
                }
                let r = view.up_ratio[o];
                if (r - ds.prev_up_ratio[blk][o]).abs() > ds.eps {
                    ds.moving = true;
                    ds.prev_up_ratio[blk][o] = r;
                    for j in 0..b {
                        let w = blk * b + j;
                        if ds.up_touch[w][o] > 0 {
                            ds.norm_dirty[w] = true;
                        }
                    }
                }
            }
            let view = &workers[down_root(blk, b)].view;
            for o in 0..view.down_prices.len() {
                let p = view.down_prices[o];
                if (p - ds.prev_down_prices[blk][o]).abs() > ds.eps {
                    ds.moving = true;
                    ds.dirty_links += 1;
                    ds.prev_down_prices[blk][o] = p;
                    for i in 0..b {
                        let w = i * b + blk;
                        if ds.down_touch[w][o] > 0 {
                            ds.rate_dirty[w] = true;
                        }
                    }
                }
                let r = view.down_ratio[o];
                if (r - ds.prev_down_ratio[blk][o]).abs() > ds.eps {
                    ds.moving = true;
                    ds.prev_down_ratio[blk][o] = r;
                    for i in 0..b {
                        let w = i * b + blk;
                        if ds.down_touch[w][o] > 0 {
                            ds.norm_dirty[w] = true;
                        }
                    }
                }
            }
        }
    }

    /// Phase D: distribute prices + ratios from the roots back to every
    /// row/column member via the preallocated scratch copies (the byte
    /// content is identical to the reverse-tree broadcast). Runs in full
    /// on the incremental path too: it keeps every view exactly synced to
    /// the roots, which is what makes the diff phase's root comparisons
    /// valid as proxies for "what this worker would read".
    fn distribute(&mut self) {
        let b = self.layout.blocks();
        let Self {
            workers, scratch, ..
        } = self;
        for i in 0..b {
            let root = &workers[up_root(i, b)].view;
            scratch.prices.copy_from_slice(&root.up_prices);
            scratch.ratios.copy_from_slice(&root.up_ratio);
            for j in 0..b {
                let view = &mut workers[i * b + j].view;
                view.up_prices.copy_from_slice(&scratch.prices);
                view.up_ratio.copy_from_slice(&scratch.ratios);
            }
        }
        for j in 0..b {
            let root = &workers[down_root(j, b)].view;
            scratch.prices.copy_from_slice(&root.down_prices);
            scratch.ratios.copy_from_slice(&root.down_ratio);
            for i in 0..b {
                let view = &mut workers[i * b + j].view;
                view.down_prices.copy_from_slice(&scratch.prices);
                view.down_ratio.copy_from_slice(&scratch.ratios);
            }
        }
    }

    /// Phase E (full): F-NORM (or a plain copy) in every worker.
    fn normalize_phase_full(&mut self) {
        if self.cfg.f_norm {
            for worker in &mut self.workers {
                normalize_pass(
                    &worker.flows,
                    &worker.view,
                    &worker.rates,
                    &mut worker.normalized,
                );
            }
        } else {
            for worker in &mut self.workers {
                worker.normalized.copy_from_slice(&worker.rates);
            }
        }
    }

    /// Phase E (incremental): F-NORM only where the inputs changed — the
    /// worker recomputed its rates this iteration, or a ratio on a
    /// traversed link moved. Every worker that runs is marked
    /// export-dirty for [`GridState::take_changed_rates`].
    fn normalize_phase_dirty(&mut self) {
        let f_norm = self.cfg.f_norm;
        let Self { workers, dirty, .. } = self;
        let ds = dirty.as_mut().expect("incremental path");
        for (w, worker) in workers.iter_mut().enumerate() {
            let run = ds.recomputed[w] || ds.norm_dirty[w];
            ds.norm_dirty[w] = false;
            if !run {
                continue;
            }
            ds.export_dirty[w] = true;
            if f_norm {
                normalize_pass(
                    &worker.flows,
                    &worker.view,
                    &worker.rates,
                    &mut worker.normalized,
                );
            } else {
                worker.normalized.copy_from_slice(&worker.rates);
            }
        }
    }
}

/// The single-threaded allocator engine.
#[derive(Debug)]
pub struct SerialAllocator {
    grid: GridState,
}

impl SerialAllocator {
    /// Builds an allocator over `fabric`. The fabric's block count must be
    /// a power of two (1 is fine: a single-block fabric degenerates to
    /// plain NED with no aggregation steps).
    pub fn new(fabric: &TwoTierClos, cfg: AllocConfig) -> Self {
        Self {
            grid: GridState::new(fabric, cfg),
        }
    }

    /// Registers a flow. `path` must come from the same fabric.
    ///
    /// # Panics
    /// Panics on duplicate ids, non-positive weights, or paths that
    /// violate block locality.
    pub fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        self.grid.add_flow(id, src_server, dst_server, weight, path);
    }

    /// Deregisters a flow; returns whether it existed.
    pub fn remove_flow(&mut self, id: FlowId) -> bool {
        self.grid.remove_flow(id)
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.grid.flow_count()
    }

    /// All flows' current allocations (Gbit/s), in deterministic
    /// (FlowBlock, slot) order.
    pub fn rates(&self) -> Vec<FlowRate> {
        self.grid.rates()
    }

    /// [`SerialAllocator::rates`] into a caller-provided buffer (cleared
    /// first) — the allocation-free per-tick export.
    pub fn rates_into(&self, out: &mut Vec<FlowRate>) {
        self.grid.rates_into(out);
    }

    /// Drains the changed-rate set into `out` and returns `true`, or
    /// falls back to a full [`SerialAllocator::rates_into`] export and
    /// returns `false` when not running incrementally (see
    /// [`crate::RateAllocator::take_changed_rates`]).
    pub fn take_changed_rates(&mut self, out: &mut Vec<FlowRate>) -> bool {
        self.grid.take_changed_rates(out)
    }

    /// Cumulative `(dirty_flows, dirty_links)` counters, when running
    /// incrementally (see [`crate::RateAllocator::dirty_counters`]).
    pub fn dirty_counters(&self) -> Option<(u64, u64)> {
        self.grid.dirty_counters()
    }

    /// The links marked dirty by flow intake (adds/removes) since the
    /// last iteration, as global link ids in first-marked order. Empty
    /// when not running incrementally. Observability hook for tests: an
    /// add/remove must dirty exactly the links the flow traverses.
    pub fn dirty_link_ids(&self) -> Vec<flowtune_topo::LinkId> {
        let Some(ds) = &self.grid.dirty else {
            return Vec::new();
        };
        ds.intake_list
            .iter()
            .map(|&(up, block, offset)| {
                if up {
                    self.grid.layout.up_links(block as usize)[offset as usize]
                } else {
                    self.grid.layout.down_links(block as usize)[offset as usize]
                }
            })
            .collect()
    }

    /// One flow's current allocation.
    pub fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        self.grid.flow_rate(id)
    }

    /// Runs one full allocator iteration: rate pass → aggregate → price
    /// update → distribute → (optionally) F-NORM. With
    /// [`AllocConfig::incremental`] set, the rate and normalize passes
    /// touch only dirty workers (see [`crate::dirty`]).
    pub fn iterate(&mut self) {
        self.grid.iterate();
    }

    /// Runs `n` iterations.
    pub fn run_iterations(&mut self, n: usize) {
        for _ in 0..n {
            self.iterate();
        }
    }

    /// Own per-link loads (see [`crate::RateAllocator::link_loads`]).
    pub fn link_loads(&self) -> Vec<f64> {
        self.grid.link_loads()
    }

    /// [`SerialAllocator::link_loads`] into a caller-provided buffer (see
    /// [`crate::RateAllocator::link_loads_into`]).
    pub fn link_loads_into(&self, out: &mut Vec<f64>) {
        self.grid.link_loads_into(out);
    }

    /// Installs an exogenous per-link load priced alongside this engine's
    /// own flows (see [`crate::RateAllocator::set_background_loads`]).
    pub fn set_background_loads(&mut self, loads: &[f64]) {
        self.grid.set_background_loads(loads);
    }

    /// Current per-link duals (see [`crate::RateAllocator::link_prices`]).
    pub fn link_prices(&self) -> Vec<f64> {
        self.grid.link_prices()
    }

    /// [`SerialAllocator::link_prices`] into a caller-provided buffer
    /// (see [`crate::RateAllocator::link_prices_into`]).
    pub fn link_prices_into(&self, out: &mut Vec<f64>) {
        self.grid.link_prices_into(out);
    }

    /// Overwrites per-link duals; `NaN` entries keep the current price
    /// (see [`crate::RateAllocator::set_link_prices`]).
    pub fn set_link_prices(&mut self, prices: &[f64]) {
        self.grid.set_link_prices(prices);
    }

    /// Own per-link Hessian diagonal (see
    /// [`crate::RateAllocator::link_hessians`]).
    pub fn link_hessians(&self) -> Vec<f64> {
        self.grid.link_hessians()
    }

    /// [`SerialAllocator::link_hessians`] into a caller-provided buffer
    /// (see [`crate::RateAllocator::link_hessians_into`]).
    pub fn link_hessians_into(&self, out: &mut Vec<f64>) {
        self.grid.link_hessians_into(out);
    }

    /// Installs the exogenous per-link Hessian diagonal accompanying the
    /// background loads (see
    /// [`crate::RateAllocator::set_background_hessians`]).
    pub fn set_background_hessians(&mut self, hdiag: &[f64]) {
        self.grid.set_background_hessians(hdiag);
    }

    /// The current price of a (data-plane) link, if it belongs to a
    /// LinkBlock.
    pub fn link_price(&self, link: flowtune_topo::LinkId) -> Option<f64> {
        let slot = self.grid.layout.slot(link)?;
        let b = self.grid.layout.blocks();
        let view = if slot.up {
            &self.grid.workers[up_root(slot.block.index(), b)].view
        } else {
            &self.grid.workers[down_root(slot.block.index(), b)].view
        };
        Some(if slot.up {
            view.up_prices[slot.offset as usize]
        } else {
            view.down_prices[slot.offset as usize]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_topo::ClosConfig;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::multicore(2, 2, 4))
    }

    fn cfg() -> AllocConfig {
        AllocConfig {
            gamma: 0.4,
            f_norm: true,
            capacity_fraction: 1.0,
            ..AllocConfig::default()
        }
    }

    #[test]
    fn two_flows_share_a_host_link() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        // Two flows from server 0 to two different remote servers: they
        // share server 0's 40 G uplink.
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        alloc.run_iterations(200);
        let r1 = alloc.flow_rate(FlowId(1)).unwrap();
        let r2 = alloc.flow_rate(FlowId(2)).unwrap();
        assert!((r1.rate - 20.0).abs() < 1e-6, "{r1:?}");
        assert!((r2.rate - 20.0).abs() < 1e-6, "{r2:?}");
        // F-NORM keeps the shared uplink at its capacity.
        assert!(r1.normalized + r2.normalized <= 40.0 * (1.0 + 1e-9));
    }

    #[test]
    fn single_flow_gets_line_rate() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p = f.path(3, 13, FlowId(7));
        alloc.add_flow(FlowId(7), 3, 13, 1.0, &p);
        alloc.run_iterations(300);
        let r = alloc.flow_rate(FlowId(7)).unwrap();
        assert!((r.rate - 40.0).abs() < 1e-4, "{r:?}");
    }

    #[test]
    fn remove_flow_frees_capacity() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        alloc.run_iterations(200);
        assert!(alloc.remove_flow(FlowId(1)));
        assert!(!alloc.remove_flow(FlowId(1)), "double remove");
        alloc.run_iterations(200);
        let r2 = alloc.flow_rate(FlowId(2)).unwrap();
        assert!((r2.rate - 40.0).abs() < 1e-4, "{r2:?}");
        assert_eq!(alloc.flow_count(), 1);
    }

    #[test]
    fn weighted_flows_split_proportionally() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 3.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        alloc.run_iterations(400);
        let r1 = alloc.flow_rate(FlowId(1)).unwrap().rate;
        let r2 = alloc.flow_rate(FlowId(2)).unwrap().rate;
        assert!((r1 / r2 - 3.0).abs() < 1e-3, "{r1} / {r2}");
    }

    #[test]
    fn capacity_fraction_headroom_is_respected() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(
            &f,
            AllocConfig {
                capacity_fraction: 0.95,
                ..cfg()
            },
        );
        let p = f.path(3, 13, FlowId(7));
        alloc.add_flow(FlowId(7), 3, 13, 1.0, &p);
        alloc.run_iterations(300);
        let r = alloc.flow_rate(FlowId(7)).unwrap();
        assert!((r.rate - 38.0).abs() < 1e-4, "{r:?}");
    }

    #[test]
    fn matches_flowtune_num_ned() {
        // The block-decomposed engine must agree with the monolithic NED
        // from flowtune-num on the same instance, γ and iteration count.
        use flowtune_num::{solver::Optimizer, Ned, NumProblem, SolverState, Utility};
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let caps_gbps: Vec<f64> = f
            .topology()
            .links()
            .iter()
            .map(|l| l.capacity_bps as f64 / 1e9)
            .collect();
        let mut problem = NumProblem::new(caps_gbps);
        let pairs = [(0usize, 9usize), (1, 8), (0, 12), (5, 3), (14, 2), (9, 0)];
        let mut slot_of = Vec::new();
        for (i, &(src, dst)) in pairs.iter().enumerate() {
            let id = FlowId(i as u64);
            let path = f.path(src, dst, id);
            alloc.add_flow(id, src, dst, 1.0, &path);
            slot_of.push(problem.add_flow(path.links().to_vec(), Utility::log(1.0)));
        }
        let mut state = SolverState::new(&problem);
        let mut ned = Ned::new(0.4);
        for _ in 0..150 {
            ned.iterate(&problem, &mut state);
        }
        alloc.run_iterations(150);
        for (i, &slot) in slot_of.iter().enumerate() {
            let got = alloc.flow_rate(FlowId(i as u64)).unwrap().rate;
            let want = state.rates[slot];
            assert!(
                (got - want).abs() < 1e-9 * want.max(1.0),
                "flow {i}: block engine {got} vs NED {want}"
            );
        }
    }

    #[test]
    fn link_loads_sum_flow_rates_per_link() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        alloc.run_iterations(200);
        let loads = alloc.link_loads();
        // The shared server-0 uplink carries both flows' raw rates …
        let shared = p1.links()[0];
        assert_eq!(shared, p2.links()[0]);
        assert!((loads[shared.index()] - 40.0).abs() < 1e-6, "{loads:?}");
        // … each private final hop carries one.
        let last1 = *p1.links().last().unwrap();
        assert!((loads[last1.index()] - 20.0).abs() < 1e-6);
        // Installing a background must NOT be echoed back by the export.
        alloc.set_background_loads(&vec![7.0; loads.len()]);
        let again = alloc.link_loads();
        assert!((again[shared.index()] - 40.0).abs() < 1e-6, "no echo");
    }

    #[test]
    fn background_load_shifts_the_shared_link_price() {
        // Two own flows share server 0's 40 G uplink with 20 G of
        // exogenous (other-shard) load: NED must converge them to equal
        // shares of the remaining 20 G.
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        alloc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        let mut bg = vec![0.0; alloc.link_loads().len()];
        bg[p1.links()[0].index()] = 20.0;
        alloc.set_background_loads(&bg);
        alloc.run_iterations(400);
        let r1 = alloc.flow_rate(FlowId(1)).unwrap();
        let r2 = alloc.flow_rate(FlowId(2)).unwrap();
        assert!((r1.rate - 10.0).abs() < 1e-4, "{r1:?}");
        assert!((r2.rate - 10.0).abs() < 1e-4, "{r2:?}");
        // The uplink ratio sees the total (40/40 = 1), so F-NORM leaves
        // the feasible rates alone.
        assert!(r1.normalized + r2.normalized <= 20.0 * (1.0 + 1e-9));
        // Clearing the background restores the whole link.
        alloc.set_background_loads(&[]);
        alloc.run_iterations(400);
        let r1 = alloc.flow_rate(FlowId(1)).unwrap();
        assert!((r1.rate - 20.0).abs() < 1e-4, "{r1:?}");
    }

    #[test]
    fn incremental_is_bitwise_identical_at_eps_zero() {
        // Interleave iterations with adds/removes and background installs;
        // at dirty_eps = 0 the incremental engine must stay bit-for-bit
        // equal to the full sweep after every single iteration.
        let f = fabric();
        let mut full = SerialAllocator::new(&f, cfg());
        let mut inc = SerialAllocator::new(
            &f,
            AllocConfig {
                incremental: true,
                full_sweep_every: 7,
                ..cfg()
            },
        );
        let servers = 16;
        let mut present: Vec<FlowId> = Vec::new();
        let mut next = 0u64;
        let mut scratch = Vec::new();
        for step in 0..120u64 {
            // Deterministic churn: add two flows, occasionally remove one.
            for _ in 0..2 {
                let id = FlowId(next);
                next += 1;
                let src = ((id.0 * 7919) % servers) as usize;
                let mut dst = ((id.0 * 104_729 + 13) % servers) as usize;
                if dst == src {
                    dst = (dst + 1) % servers as usize;
                }
                let w = 1.0 + (id.0 % 4) as f64;
                let path = f.path(src, dst, id);
                full.add_flow(id, src, dst, w, &path);
                inc.add_flow(id, src, dst, w, &path);
                present.push(id);
            }
            if step % 3 == 2 {
                let victim = present.swap_remove((step as usize * 31) % present.len());
                assert!(full.remove_flow(victim));
                assert!(inc.remove_flow(victim));
            }
            if step == 40 {
                let bg: Vec<f64> = (0..full.link_loads().len())
                    .map(|l| (l % 5) as f64)
                    .collect();
                full.set_background_loads(&bg);
                inc.set_background_loads(&bg);
            }
            full.iterate();
            inc.iterate();
            let a = full.rates();
            inc.rates_into(&mut scratch);
            assert_eq!(a.len(), scratch.len());
            for (x, y) in a.iter().zip(&scratch) {
                assert_eq!(x.id, y.id);
                assert!(
                    x.rate.to_bits() == y.rate.to_bits()
                        && x.normalized.to_bits() == y.normalized.to_bits(),
                    "step {step} flow {:?}: full ({}, {}) vs incremental ({}, {})",
                    x.id,
                    x.rate,
                    x.normalized,
                    y.rate,
                    y.normalized,
                );
            }
            assert_eq!(full.link_prices(), inc.link_prices());
        }
        assert!(inc.dirty_counters().is_some());
        assert!(full.dirty_counters().is_none());
    }

    #[test]
    fn changed_rate_drain_covers_all_updates() {
        // Replaying only the drained changed-rate sets on top of a map
        // must reproduce the full export at every step.
        use std::collections::HashMap;
        let f = fabric();
        let mut inc = SerialAllocator::new(
            &f,
            AllocConfig {
                incremental: true,
                ..cfg()
            },
        );
        let p1 = f.path(0, 8, FlowId(1));
        let p2 = f.path(0, 12, FlowId(2));
        inc.add_flow(FlowId(1), 0, 8, 1.0, &p1);
        inc.add_flow(FlowId(2), 0, 12, 1.0, &p2);
        let mut replay: HashMap<FlowId, (u64, u64)> = HashMap::new();
        let mut changed = Vec::new();
        for step in 0..400 {
            if step == 200 {
                let p3 = f.path(5, 9, FlowId(3));
                inc.add_flow(FlowId(3), 5, 9, 2.0, &p3);
            }
            inc.iterate();
            assert!(inc.take_changed_rates(&mut changed));
            for r in &changed {
                replay.insert(r.id, (r.rate.to_bits(), r.normalized.to_bits()));
            }
            for r in inc.rates() {
                assert_eq!(
                    replay.get(&r.id),
                    Some(&(r.rate.to_bits(), r.normalized.to_bits())),
                    "step {step} flow {:?} stale in replay",
                    r.id
                );
            }
        }
        // Late in a converged quiet run the drain should be empty.
        inc.iterate();
        inc.take_changed_rates(&mut changed);
        inc.iterate();
        assert!(inc.take_changed_rates(&mut changed));
        assert!(
            changed.is_empty(),
            "converged tick still exported {changed:?}"
        );
    }

    #[test]
    fn intake_dirty_links_are_exactly_the_path() {
        let f = fabric();
        let mut inc = SerialAllocator::new(
            &f,
            AllocConfig {
                incremental: true,
                ..cfg()
            },
        );
        let p = f.path(0, 8, FlowId(1));
        inc.add_flow(FlowId(1), 0, 8, 1.0, &p);
        let mut dirty = inc.dirty_link_ids();
        dirty.sort_unstable();
        let mut want: Vec<_> = p.links().to_vec();
        want.sort_unstable();
        want.dedup();
        assert_eq!(dirty, want);
        inc.iterate();
        assert!(inc.dirty_link_ids().is_empty(), "iterate drains intake");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_flow_id_rejected() {
        let f = fabric();
        let mut alloc = SerialAllocator::new(&f, cfg());
        let p = f.path(0, 8, FlowId(1));
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p);
        alloc.add_flow(FlowId(1), 0, 8, 1.0, &p);
    }
}
