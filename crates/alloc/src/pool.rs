//! A persistent worker pool for the multicore engine.
//!
//! The allocator ticks every 10 µs; spawning and joining OS threads on
//! every [`MulticoreAllocator::run_iterations`](crate::MulticoreAllocator)
//! call puts tens of microseconds of `clone(2)` on the tick path.
//! [`WorkerPool`] instead keeps its threads alive between calls, parked on
//! a condvar, and hands each call's work over with one lock + notify:
//!
//! * [`WorkerPool::run`] publishes a *scoped* task (`&dyn Fn(usize)`), wakes
//!   every worker, runs slot 0 on the calling thread, and blocks until all
//!   workers have finished — which is what makes the borrowed task sound:
//!   the borrow cannot end before `run` returns.
//! * [`WorkerPool::fan_out`] is the data-parallel form: it stripes a
//!   `&mut [T]` of work items across the slots (one `&mut` item per task
//!   call) and *contains* per-item panics as a [`FanOutError`] instead of
//!   re-raising, so a sharded control plane can turn a dead shard into a
//!   reportable condition while its siblings' results survive.
//! * Workers park again immediately after finishing; a pool that is never
//!   run again costs nothing but memory.
//! * Dropping the pool shuts the threads down and joins them.
//!
//! The pool intentionally knows nothing about FlowBlocks or barriers — the
//! engine's phase barriers stay inside the task. It replaces only the
//! spawn/join, which is precisely the part the §6.1 tick-latency numbers
//! must not pay.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A fan-out task panicked on one of the items.
///
/// Unlike [`WorkerPool::run`] — which re-raises worker panics on the
/// caller — [`WorkerPool::fan_out`] turns them into this error so a
/// control plane can report a failed shard (the call's remaining items
/// still ran to completion) instead of aborting its tick. The original
/// payload is preserved for callers that want to re-raise after all.
pub struct FanOutError {
    item: usize,
    payload: Box<dyn std::any::Any + Send>,
}

impl FanOutError {
    /// Index of the panicking item (the lowest index, if several items
    /// panicked in one call — deterministic regardless of which worker
    /// reported first).
    pub fn item(&self) -> usize {
        self.item
    }

    /// The panic message, when the payload was a string (the common
    /// `panic!("…")` case).
    pub fn message(&self) -> &str {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s
        } else {
            "non-string panic payload"
        }
    }

    /// Re-raises the original panic on the current thread.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for FanOutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanOutError")
            .field("item", &self.item)
            .field("message", &self.message())
            .finish()
    }
}

impl std::fmt::Display for FanOutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fan-out item {} panicked: {}", self.item, self.message())
    }
}

/// A lifetime-erased `*mut T` that may cross threads. Soundness is
/// provided by [`WorkerPool::fan_out`]: each index is visited by exactly
/// one slot and the call does not return until every slot is done.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `SendPtr` — whose `Sync` impl below carries the safety
    /// argument — instead of the raw `*mut T` field path.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: see `fan_out` — disjoint-index access only, bounded by the call.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Locks the pool state, shrugging off poisoning: every mutation of
/// `PoolState` happens with its invariants already restored (panic
/// payloads are carried in `PoolState::panic`, never by unwinding while
/// the lock is held), so a poisoned flag carries no information here —
/// and must not wedge the pool after [`WorkerPool::run`] re-raised a
/// worker panic the caller chose to catch.
fn lock_state(shared: &Shared) -> MutexGuard<'_, PoolState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A lifetime-erased pointer to the current scoped task. Soundness is
/// provided by [`WorkerPool::run`], which does not return until every
/// worker is done with the pointer.
#[derive(Clone, Copy)]
struct Task(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `run` keeps the pointee alive for as long as any worker can use it.
unsafe impl Send for Task {}

struct PoolState {
    /// The task of the current generation, if one is in flight.
    task: Option<Task>,
    /// Bumped once per `run` call; workers use it to run each task once.
    generation: u64,
    /// Workers still executing the current task.
    remaining: usize,
    /// The first panic payload caught in a worker this generation; `run`
    /// re-raises it on the caller with the original message intact (the
    /// diagnostics `std::thread::scope` used to give).
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation.
    work: Condvar,
    /// `run` waits here for `remaining == 0`.
    done: Condvar,
}

/// A fixed-size pool of parked worker threads executing scoped tasks.
///
/// A pool of size `n` serves task slots `0..n`: slot 0 runs inline on the
/// thread that calls [`WorkerPool::run`], slots `1..n` on the pool's
/// `n - 1` persistent threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool serving `size` task slots (spawning `size - 1` OS
    /// threads; a pool of size 1 spawns none and runs everything inline).
    ///
    /// # Panics
    /// Panics if `size` is 0.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "a pool needs at least one slot");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                task: None,
                generation: 0,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..size)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("flowtune-worker-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawning an allocator worker thread")
            })
            .collect();
        Self {
            shared,
            handles,
            size,
        }
    }

    /// Number of task slots (threads + the caller).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `task(slot)` for every slot in `0..size`, slot 0 on the
    /// calling thread, and returns when all slots have finished.
    ///
    /// Takes `&mut self` so overlapping `run` calls on a shared pool are
    /// impossible in safe code — an overlap would let a second call
    /// overwrite the in-flight task slot and return while a worker still
    /// holds the first call's borrowed task pointer.
    ///
    /// # Panics
    /// Re-raises a panic if any slot's task panicked.
    pub fn run(&mut self, task: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the pointer is only dereferenced by workers between the
        // notify below and the `remaining == 0` wait; we do not return
        // (ending the borrow) until that wait completes, and `&mut self`
        // excludes a concurrent `run` replacing the task meanwhile.
        let erased = Task(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task as *const _)
        });
        {
            let mut st = lock_state(&self.shared);
            debug_assert!(st.task.is_none(), "pool is not reentrant");
            st.task = Some(erased);
            st.generation += 1;
            st.remaining = self.size - 1;
            st.panic = None;
            self.shared.work.notify_all();
        }
        let caller_outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(0)));
        // Always drain the generation — even when the caller's own slot
        // panicked — so `task`/`remaining` are reset and no worker can
        // still hold the borrowed task pointer once `run` unwinds. This
        // is what keeps the pool usable after a re-raised panic.
        let worker_panic = {
            let mut st = lock_state(&self.shared);
            while st.remaining > 0 {
                st = self
                    .shared
                    .done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.task = None;
            st.panic.take()
        };
        if let Err(p) = caller_outcome {
            std::panic::resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            std::panic::resume_unwind(p);
        }
    }

    /// Fans `task` out over `items`: item `i` runs as `task(i, &mut
    /// items[i])`, slot `s` of the pool processing the strided indices
    /// `s, s + size, s + 2·size, …` (so any number of items works on any
    /// pool size; with `items.len() <= size` each item gets its own
    /// slot). Like [`WorkerPool::run`], the call blocks until every item
    /// has finished, which is what makes the borrowed items and task
    /// sound.
    ///
    /// Panic containment: a panicking item neither poisons the pool nor
    /// disturbs its siblings — every other item still runs to completion
    /// and keeps its result, and the pool stays usable. The first
    /// (lowest-index) panic is reported as a [`FanOutError`] carrying the
    /// original payload.
    ///
    /// # Errors
    /// [`FanOutError`] if any item's task panicked.
    pub fn fan_out<T: Send>(
        &mut self,
        items: &mut [T],
        task: &(dyn Fn(usize, &mut T) + Sync),
    ) -> Result<(), FanOutError> {
        let len = items.len();
        let stride = self.size;
        let base = SendPtr(items.as_mut_ptr());
        let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
        self.run(&|slot| {
            let mut i = slot;
            while i < len {
                // SAFETY: index `i ≡ slot (mod stride)` is visited only by
                // this slot, indices are in bounds, and `run` does not
                // return (ending the `items` borrow) until every slot is
                // done.
                let item = unsafe { &mut *base.get().add(i) };
                if let Err(p) = std::panic::catch_unwind(AssertUnwindSafe(|| task(i, item))) {
                    panics
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((i, p));
                }
                i += stride;
            }
        });
        let mut panics = panics.into_inner().unwrap_or_else(PoisonError::into_inner);
        match panics
            .iter()
            .enumerate()
            .min_by_key(|(_, (item, _))| *item)
            .map(|(pos, _)| pos)
        {
            Some(pos) => {
                let (item, payload) = panics.swap_remove(pos);
                Err(FanOutError { item, payload })
            }
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = lock_state(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    if let Some(task) = st.task {
                        seen = st.generation;
                        break task;
                    }
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: `run` keeps the pointee alive until we decrement
        // `remaining` below.
        let f = unsafe { &*task.0 };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(slot)));
        let mut st = lock_state(shared);
        if let Err(p) = outcome {
            st.panic.get_or_insert(p);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_slots_run_exactly_once_per_call() {
        let mut pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|slot| {
                hits[slot].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn single_slot_pool_runs_inline() {
        let mut pool = WorkerPool::new(1);
        let count = AtomicUsize::new(0);
        pool.run(&|slot| {
            assert_eq!(slot, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scoped_borrows_are_visible_after_run() {
        let mut pool = WorkerPool::new(3);
        let sums: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.run(&|slot| {
            sums[slot].store(slot * 10 + 1, Ordering::Relaxed);
        });
        let got: Vec<usize> = sums.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        assert_eq!(got, vec![1, 11, 21]);
    }

    #[test]
    fn pool_survives_a_worker_panic() {
        let mut pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|slot| {
                if slot == 1 {
                    panic!("boom");
                }
            });
        }));
        let payload = r.expect_err("panic must propagate to the caller");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"boom"),
            "original payload must survive the handoff"
        );
        // The pool is still usable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_survives_a_caller_slot_panic() {
        // Slot 0 runs inline on the calling thread; its panic is caught,
        // the generation is drained (workers finish and `remaining`/
        // `task` reset), and only then re-raised — so the pool stays
        // usable with no poisoned-mutex wedge.
        let mut pool = WorkerPool::new(3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|slot| {
                if slot == 0 {
                    panic!("caller boom");
                }
            });
        }));
        assert_eq!(
            r.expect_err("panic must propagate").downcast_ref::<&str>(),
            Some(&"caller boom")
        );
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_survives_repeated_panics_across_generations() {
        // Generation/`remaining`/`task` bookkeeping must reset on every
        // panic path, not just the first: alternate panicking runs (from
        // worker slots and the caller slot, including all slots at once)
        // with clean runs and check each clean run executes every slot.
        let mut pool = WorkerPool::new(4);
        for round in 0..5 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(&|slot| {
                    if round % 2 == 0 || slot == round % 4 {
                        panic!("boom {round}");
                    }
                });
            }));
            assert!(r.is_err(), "round {round} should re-raise");
            let count = AtomicUsize::new(0);
            pool.run(&|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 4, "round {round}");
        }
        assert_eq!(pool.size(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_rejected() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn fan_out_visits_every_item_exactly_once() {
        // More items than slots (strided), fewer items than slots (idle
        // slots), and the empty case.
        let mut pool = WorkerPool::new(3);
        for n_items in [0usize, 2, 3, 10] {
            let mut items: Vec<usize> = vec![0; n_items];
            pool.fan_out(&mut items, &|i, item| {
                *item += i + 1;
            })
            .expect("no panics");
            let want: Vec<usize> = (0..n_items).map(|i| i + 1).collect();
            assert_eq!(items, want, "{n_items} items");
        }
    }

    #[test]
    fn fan_out_contains_a_panicking_item() {
        let mut pool = WorkerPool::new(2);
        let mut items: Vec<(usize, bool)> = (0..6).map(|i| (i, false)).collect();
        let err = pool
            .fan_out(&mut items, &|i, item| {
                if i == 3 {
                    panic!("item boom");
                }
                item.1 = true;
            })
            .expect_err("item 3 panicked");
        assert_eq!(err.item(), 3);
        assert_eq!(err.message(), "item boom");
        // Siblings' results survive: every other item completed.
        for (i, done) in &items {
            assert_eq!(*done, *i != 3, "item {i}");
        }
        // The pool is not poisoned: both plain runs and fan-outs work.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
        let mut again = vec![0usize; 4];
        pool.fan_out(&mut again, &|_, x| *x = 7).unwrap();
        assert_eq!(again, vec![7; 4]);
    }

    #[test]
    fn fan_out_reports_the_lowest_panicking_item() {
        let mut pool = WorkerPool::new(4);
        let mut items = vec![(); 8];
        let err = pool
            .fan_out(&mut items, &|i, ()| {
                if i % 2 == 1 {
                    panic!("boom {i}");
                }
            })
            .expect_err("half the items panicked");
        assert_eq!(err.item(), 1, "lowest index wins deterministically");
        assert_eq!(err.message(), "boom 1");
    }
}
