//! FlowBlock worker state and the three per-iteration compute kernels.
//!
//! All arithmetic lives here, shared verbatim by the serial and parallel
//! engines so their results are bit-for-bit identical.

use flowtune_topo::FlowId;

/// A flow as stored inside a FlowBlock: its path expressed as offsets into
/// the source block's upward LinkBlock and the destination block's
/// downward LinkBlock (1 offset each for intra-rack flows, 2 each for
/// spine-crossing flows).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockFlow {
    /// External flow identity.
    pub id: FlowId,
    /// Proportional-fairness weight (log utility `w log x`). The hot path
    /// is specialized to log utility — the objective the paper's allocator
    /// runs; other utilities are available in the serial `flowtune-num`
    /// solvers.
    pub weight: f64,
    /// Offsets into the upward LinkBlock (inline: ≤ 2 in a 2-tier Clos;
    /// heap indirection here would dominate the rate pass).
    pub up: [u32; 2],
    /// Valid entries in `up`.
    pub up_len: u8,
    /// Offsets into the downward LinkBlock.
    pub down: [u32; 2],
    /// Valid entries in `down`.
    pub down_len: u8,
    /// Bottleneck line rate (Gbit/s); demands are capped here via the
    /// price floor.
    pub x_max: f64,
}

impl BlockFlow {
    /// The valid upward offsets.
    #[inline]
    pub fn up_offsets(&self) -> &[u32] {
        &self.up[..self.up_len as usize]
    }

    /// The valid downward offsets.
    #[inline]
    pub fn down_offsets(&self) -> &[u32] {
        &self.down[..self.down_len as usize]
    }

    /// Builds a flow from offset slices (≤ 2 each).
    pub fn new(id: FlowId, weight: f64, up: &[u32], down: &[u32], x_max: f64) -> Self {
        assert!(up.len() <= 2 && down.len() <= 2, "2-tier paths only");
        let mut u = [0u32; 2];
        u[..up.len()].copy_from_slice(up);
        let mut d = [0u32; 2];
        d[..down.len()].copy_from_slice(down);
        Self {
            id,
            weight,
            up: u,
            up_len: up.len() as u8,
            down: d,
            down_len: down.len() as u8,
            x_max,
        }
    }
}

/// A flow's allocation after an iteration, in Gbit/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRate {
    /// External flow identity.
    pub id: FlowId,
    /// Raw optimizer rate.
    pub rate: f64,
    /// Rate after F-NORM (equals `rate` when normalization is off).
    pub normalized: f64,
}

/// Per-worker private accumulators for its two LinkBlock copies.
#[derive(Debug, Clone, Default)]
pub struct Accums {
    /// Sum of flow rates per upward-LinkBlock link.
    pub up_load: Vec<f64>,
    /// Sum of demand derivatives (Hessian diagonal) per upward link.
    pub up_h: Vec<f64>,
    /// Sum of flow rates per downward-LinkBlock link.
    pub down_load: Vec<f64>,
    /// Sum of demand derivatives per downward link.
    pub down_h: Vec<f64>,
}

impl Accums {
    /// Zero-filled accumulators for LinkBlocks of `n` links.
    pub fn new(n: usize) -> Self {
        Self {
            up_load: vec![0.0; n],
            up_h: vec![0.0; n],
            down_load: vec![0.0; n],
            down_h: vec![0.0; n],
        }
    }

    /// Resets all four arrays to zero.
    pub fn clear(&mut self) {
        for v in [
            &mut self.up_load,
            &mut self.up_h,
            &mut self.down_load,
            &mut self.down_h,
        ] {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Element-wise addition of another worker's accumulators — the unit
    /// of "communication" in the aggregation tree.
    pub fn absorb(&mut self, other: &Accums) {
        for (a, b) in self.up_load.iter_mut().zip(&other.up_load) {
            *a += b;
        }
        for (a, b) in self.up_h.iter_mut().zip(&other.up_h) {
            *a += b;
        }
        for (a, b) in self.down_load.iter_mut().zip(&other.down_load) {
            *a += b;
        }
        for (a, b) in self.down_h.iter_mut().zip(&other.down_h) {
            *a += b;
        }
    }
}

/// Per-worker copies of its two LinkBlocks' prices and utilization ratios
/// (refreshed by the distribution phase each iteration).
#[derive(Debug, Clone)]
pub struct PriceView {
    /// Upward LinkBlock prices.
    pub up_prices: Vec<f64>,
    /// Downward LinkBlock prices.
    pub down_prices: Vec<f64>,
    /// Upward LinkBlock utilization ratios `r_ℓ` (for F-NORM).
    pub up_ratio: Vec<f64>,
    /// Downward LinkBlock utilization ratios.
    pub down_ratio: Vec<f64>,
}

impl PriceView {
    /// Initial view: all prices 1 (§3), ratios 0.
    pub fn new(n: usize) -> Self {
        Self {
            up_prices: vec![1.0; n],
            down_prices: vec![1.0; n],
            up_ratio: vec![0.0; n],
            down_ratio: vec![0.0; n],
        }
    }
}

/// Kernel 1 — Algorithm 1's rate update over one FlowBlock, accumulating
/// link loads and the exact Hessian diagonal into the worker's private
/// LinkBlock copies.
///
/// `rates[i]` receives flow `flows[i]`'s new rate.
pub fn rate_pass(flows: &[BlockFlow], view: &PriceView, acc: &mut Accums, rates: &mut [f64]) {
    debug_assert_eq!(flows.len(), rates.len());
    for (flow, rate) in flows.iter().zip(rates.iter_mut()) {
        let mut lambda = 0.0;
        for &o in flow.up_offsets() {
            lambda += view.up_prices[o as usize];
        }
        for &o in flow.down_offsets() {
            lambda += view.down_prices[o as usize];
        }
        // Price floor at the line-rate kink keeps the demand finite and
        // the diagonal strictly negative (see flowtune-num docs).
        let lambda = lambda.max(flow.weight / flow.x_max);
        let x = flow.weight / lambda;
        let dx = -x / lambda; // = -w/λ²
        *rate = x;
        for &o in flow.up_offsets() {
            acc.up_load[o as usize] += x;
            acc.up_h[o as usize] += dx;
        }
        for &o in flow.down_offsets() {
            acc.down_load[o as usize] += x;
            acc.down_h[o as usize] += dx;
        }
    }
}

/// Kernel 2 — NED price update (Algorithm 1, eq. 4) plus utilization
/// ratios, over one LinkBlock's authoritative (aggregated) state.
///
/// `background` is the exogenous per-link load of flows *outside* this
/// engine (a partitioned allocator's other shards, offsets matching
/// `load`): it joins the over-allocation term `G` and the utilization
/// ratios. `background_h` is those flows' Hessian-diagonal contribution,
/// folded into `H` so the Newton step divides the *global* gradient by
/// the *global* sensitivity — without it the step is scaled by the shard
/// count, which pushes the effective γ out of its stable range. `None`
/// for either means no exogenous term, and takes exactly the
/// pre-exchange arithmetic path (bit-for-bit).
// One parameter per term of eq. 4 — bundling the two background slices
// into a struct would obscure which ones the serial/multicore call
// sites thread through.
#[allow(clippy::too_many_arguments)]
pub fn price_update(
    load: &[f64],
    hdiag: &[f64],
    background: Option<&[f64]>,
    background_h: Option<&[f64]>,
    capacity: &[f64],
    gamma: f64,
    prices: &mut [f64],
    ratios: &mut [f64],
) {
    for l in 0..load.len() {
        let total = load[l] + background.map_or(0.0, |b| b[l]);
        ratios[l] = total / capacity[l];
        let h = hdiag[l];
        if h < 0.0 {
            let h = h + background_h.map_or(0.0, |b| b[l]);
            let g = total - capacity[l];
            prices[l] = (prices[l] - gamma * g / h).max(0.0);
        } else {
            // No *own* flow crosses this link, so its price carries no
            // information for this engine: decay the stale value (same
            // rule as the serial NED in flowtune-num).
            prices[l] *= 0.5;
        }
    }
}

/// Kernel 3 — F-NORM (§4.2) over one FlowBlock: divide each flow's rate by
/// the worst utilization ratio on its own path.
pub fn normalize_pass(
    flows: &[BlockFlow],
    view: &PriceView,
    rates: &[f64],
    normalized: &mut [f64],
) {
    debug_assert_eq!(flows.len(), rates.len());
    for (i, flow) in flows.iter().enumerate() {
        if rates[i] == 0.0 {
            normalized[i] = 0.0;
            continue;
        }
        let mut worst = 0.0f64;
        for &o in flow.up_offsets() {
            worst = worst.max(view.up_ratio[o as usize]);
        }
        for &o in flow.down_offsets() {
            worst = worst.max(view.down_ratio[o as usize]);
        }
        normalized[i] = if worst > 0.0 {
            rates[i] / worst
        } else {
            rates[i]
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(weight: f64, up: Vec<u32>, down: Vec<u32>, x_max: f64) -> BlockFlow {
        BlockFlow::new(FlowId(0), weight, &up, &down, x_max)
    }

    #[test]
    fn rate_pass_matches_hand_computation() {
        let flows = vec![flow(1.0, vec![0], vec![1], 10.0)];
        let mut view = PriceView::new(2);
        view.up_prices = vec![0.3, 0.0];
        view.down_prices = vec![0.0, 0.2];
        let mut acc = Accums::new(2);
        let mut rates = vec![0.0];
        rate_pass(&flows, &view, &mut acc, &mut rates);
        assert!((rates[0] - 2.0).abs() < 1e-12); // 1/(0.3+0.2)
        assert!((acc.up_load[0] - 2.0).abs() < 1e-12);
        assert!((acc.down_load[1] - 2.0).abs() < 1e-12);
        assert!((acc.up_h[0] - (-4.0)).abs() < 1e-12); // -1/0.25
        assert_eq!(acc.up_load[1], 0.0);
    }

    #[test]
    fn rate_pass_honours_line_rate_cap() {
        let flows = vec![flow(1.0, vec![0], vec![0], 10.0)];
        let view = PriceView {
            up_prices: vec![0.0],
            down_prices: vec![0.0],
            up_ratio: vec![0.0],
            down_ratio: vec![0.0],
        };
        let mut acc = Accums::new(1);
        let mut rates = vec![0.0];
        rate_pass(&flows, &view, &mut acc, &mut rates);
        assert_eq!(rates[0], 10.0);
    }

    #[test]
    fn price_update_moves_toward_balance() {
        let mut prices = vec![0.1];
        let mut ratios = vec![0.0];
        // Overloaded link: 15 on capacity 10, h = -100.
        price_update(
            &[15.0],
            &[-100.0],
            None,
            None,
            &[10.0],
            1.0,
            &mut prices,
            &mut ratios,
        );
        assert!((prices[0] - 0.15).abs() < 1e-12); // 0.1 - 1·5/(-100)
        assert!((ratios[0] - 1.5).abs() < 1e-12);
        // Unused link decays.
        let mut p2 = vec![0.8];
        price_update(
            &[0.0],
            &[0.0],
            None,
            None,
            &[10.0],
            1.0,
            &mut p2,
            &mut ratios,
        );
        assert_eq!(p2[0], 0.4);
    }

    #[test]
    fn price_update_counts_background_load() {
        // Own load 5 + background 10 on capacity 10: over-subscribed by 5
        // even though the own flows alone fit.
        let mut prices = vec![0.1];
        let mut ratios = vec![0.0];
        price_update(
            &[5.0],
            &[-100.0],
            Some(&[10.0]),
            None,
            &[10.0],
            1.0,
            &mut prices,
            &mut ratios,
        );
        assert!((prices[0] - 0.15).abs() < 1e-12); // 0.1 - 1·5/(-100)
                                                   // The background's Hessian contribution widens |H|, shrinking the
                                                   // Newton step: same g, twice the sensitivity, half the move.
        let mut p3 = vec![0.1];
        price_update(
            &[5.0],
            &[-100.0],
            Some(&[10.0]),
            Some(&[-100.0]),
            &[10.0],
            1.0,
            &mut p3,
            &mut ratios,
        );
        assert!((p3[0] - 0.125).abs() < 1e-12); // 0.1 - 1·5/(-200)
        assert!((ratios[0] - 1.5).abs() < 1e-12);
        // A link only the *other* shards use still decays: the price is
        // meaningless to an engine none of whose flows cross it.
        let mut p2 = vec![0.8];
        price_update(
            &[0.0],
            &[0.0],
            Some(&[25.0]),
            Some(&[-1.0]),
            &[10.0],
            1.0,
            &mut p2,
            &mut ratios,
        );
        assert_eq!(p2[0], 0.4);
        assert!((ratios[0] - 2.5).abs() < 1e-12, "ratio sees background");
    }

    #[test]
    fn normalize_pass_divides_by_worst_path_ratio() {
        let flows = vec![
            flow(1.0, vec![0], vec![0], 10.0),
            flow(1.0, vec![1], vec![1], 10.0),
        ];
        let mut view = PriceView::new(2);
        view.up_ratio = vec![2.0, 0.5];
        view.down_ratio = vec![1.0, 0.25];
        let rates = vec![6.0, 6.0];
        let mut out = vec![0.0; 2];
        normalize_pass(&flows, &view, &rates, &mut out);
        assert_eq!(out[0], 3.0); // divided by 2.0
        assert_eq!(out[1], 12.0); // scaled up by 1/0.5 — still capacity-safe
    }

    #[test]
    fn accums_absorb_is_elementwise_sum() {
        let mut a = Accums::new(2);
        a.up_load = vec![1.0, 2.0];
        let mut b = Accums::new(2);
        b.up_load = vec![0.5, 0.25];
        b.down_h = vec![-1.0, 0.0];
        a.absorb(&b);
        assert_eq!(a.up_load, vec![1.5, 2.25]);
        assert_eq!(a.down_h, vec![-1.0, 0.0]);
        a.clear();
        assert_eq!(a.up_load, vec![0.0, 0.0]);
    }
}
