//! The pluggable allocation-engine interface.
//!
//! [`RateAllocator`] is the contract between the control-plane service
//! (`flowtune::AllocatorService`) and whatever computes per-flow rates
//! behind it. Three engines implement it today:
//!
//! * [`SerialAllocator`](crate::SerialAllocator) — the single-threaded
//!   reference NED engine;
//! * [`MulticoreAllocator`](crate::MulticoreAllocator) — the §5
//!   FlowBlock/LinkBlock parallel engine (bit-for-bit equal to serial);
//! * `flowtune_fastpass::FastpassAdapter` — a Fastpass-style per-packet
//!   timeslot arbiter exposed through the same interface, the baseline
//!   the paper's §6.1 comparison is made against.
//!
//! The trait is object safe, so services that choose their engine at run
//! time hold a [`BoxEngine`].

use flowtune_topo::{FlowId, Path};

use crate::flowblock::FlowRate;

/// A rate-allocation engine: maintains a set of weighted flows over a
/// fixed fabric and, on every iteration, refreshes each flow's allocated
/// (and normalized) rate.
pub trait RateAllocator: std::fmt::Debug + Send {
    /// Registers a flow. `path` must come from the fabric the engine was
    /// built over.
    ///
    /// # Panics
    /// Panics on duplicate ids, non-positive weights, or paths that do
    /// not belong to the engine's fabric.
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    );

    /// Deregisters a flow; returns whether it existed.
    fn remove_flow(&mut self, id: FlowId) -> bool;

    /// Runs one allocation iteration (for NED engines: rate pass →
    /// aggregate → price update → distribute → normalize; for the
    /// Fastpass adapter: a batch of timeslot matchings).
    fn iterate(&mut self);

    /// Runs `n` iterations. Engines with per-call setup cost (thread
    /// spawns) override this with an amortized implementation.
    fn run_iterations(&mut self, n: usize) {
        for _ in 0..n {
            self.iterate();
        }
    }

    /// Number of registered flows.
    fn flow_count(&self) -> usize;

    /// All flows' current allocations (Gbit/s), in an engine-defined but
    /// deterministic order.
    fn rates(&self) -> Vec<FlowRate>;

    /// One flow's current allocation, if registered.
    fn flow_rate(&self, id: FlowId) -> Option<FlowRate>;

    /// [`RateAllocator::rates`] into a caller-provided buffer (cleared
    /// first) — the per-tick export path, which must not allocate once
    /// the buffer is warm. The default delegates to the allocating
    /// variant; engines on the tick path override it.
    fn rates_into(&self, out: &mut Vec<FlowRate>) {
        out.clear();
        out.extend_from_slice(&self.rates());
    }

    /// Exports only the flows whose rate may have changed since the last
    /// drain into `out` (cleared first) and returns `true`; engines
    /// without change tracking fall back to a full
    /// [`RateAllocator::rates_into`] export and return `false` (meaning
    /// `out` is the complete set, not a changed set).
    fn take_changed_rates(&mut self, out: &mut Vec<FlowRate>) -> bool {
        self.rates_into(out);
        false
    }

    /// Cumulative `(dirty_flows, dirty_links)` counters for engines
    /// running with incremental dirty-set tracking: flows whose rate pass
    /// re-ran, and per-iteration link price moves beyond the configured
    /// eps. `None` for engines running full sweeps (the default).
    fn dirty_counters(&self) -> Option<(u64, u64)> {
        None
    }

    /// This engine's own per-link loads: for every fabric link (indexed
    /// by global [`LinkId`](flowtune_topo::LinkId)), the sum of the raw
    /// (pre-normalization) rates of *this engine's* flows crossing it —
    /// exactly the load term its own price update uses. Background loads
    /// installed with [`RateAllocator::set_background_loads`] are **not**
    /// echoed back, so a sharded control plane can sum shards' exports
    /// without double counting.
    ///
    /// Engines that do not price fabric links (the Fastpass arbiter)
    /// return an empty vector, which callers must treat as "no link
    /// state to share".
    fn link_loads(&self) -> Vec<f64> {
        Vec::new()
    }

    /// [`RateAllocator::link_loads`] into a caller-provided buffer, for
    /// per-tick exporters (the sharded exchange) that must not allocate
    /// once their buffers are warm. `out` is cleared first; engines with
    /// nothing to export leave it empty. The default delegates to the
    /// allocating variant — engines on the tick path override it.
    fn link_loads_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.link_loads());
    }

    /// Installs an exogenous per-link load (global
    /// [`LinkId`](flowtune_topo::LinkId) indexing, same Gbit/s units as
    /// the engine's capacities) to be priced *in addition to* the
    /// engine's own flows — the other shards' contribution on shared
    /// links. An empty slice clears it. Engines that do not price fabric
    /// links ignore the call.
    fn set_background_loads(&mut self, loads: &[f64]) {
        let _ = loads;
    }

    /// The engine's own per-link Hessian diagonal: `Σ ∂x/∂p` over its
    /// flows crossing each link (global
    /// [`LinkId`](flowtune_topo::LinkId) indexing, entries ≤ 0). A
    /// partitioned allocator ships this alongside
    /// [`RateAllocator::link_loads`] so every shard's Newton step
    /// divides the global gradient by the global sensitivity — with only
    /// its own diagonal, a shard's effective step grows with the shard
    /// count and leaves NED's stable γ range. Empty for engines whose
    /// price update has no second-order term (Fastpass, gradient
    /// projection).
    fn link_hessians(&self) -> Vec<f64> {
        Vec::new()
    }

    /// [`RateAllocator::link_hessians`] into a caller-provided buffer
    /// (cleared first; left empty by engines without a second-order
    /// term), the allocation-free export the sharded exchange uses.
    fn link_hessians_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.link_hessians());
    }

    /// Installs the exogenous per-link Hessian diagonal accompanying the
    /// background loads (other shards' [`RateAllocator::link_hessians`]
    /// sum). An empty slice clears it. Engines without a second-order
    /// price term ignore the call.
    fn set_background_hessians(&mut self, hdiag: &[f64]) {
        let _ = hdiag;
    }

    /// The engine's current per-link duals (prices), global
    /// [`LinkId`](flowtune_topo::LinkId) indexing — the exchange's
    /// export half of dual consensus. Empty for engines that do not
    /// price fabric links.
    fn link_prices(&self) -> Vec<f64> {
        Vec::new()
    }

    /// [`RateAllocator::link_prices`] into a caller-provided buffer
    /// (cleared first; left empty by engines that do not price fabric
    /// links), the allocation-free export the sharded exchange uses.
    fn link_prices_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.link_prices());
    }

    /// Overwrites the engine's per-link duals with consensus values;
    /// `NaN` entries leave the corresponding link's current price
    /// untouched (a partitioned allocator passes `NaN` for links no
    /// shard currently loads — each engine keeps decaying its own stale
    /// price there). Engines that do not price fabric links ignore the
    /// call.
    ///
    /// Dual consensus is what makes a partitioned allocator's fixed
    /// point unique: background loads alone pin only the *total* on a
    /// shared link, while any combination of per-shard prices whose
    /// demands sum to capacity would be stationary — shards must agree
    /// on the price itself, like §5's single authoritative LinkBlock
    /// owner.
    fn set_link_prices(&mut self, prices: &[f64]) {
        let _ = prices;
    }

    /// Short engine name for logs and experiment output.
    fn name(&self) -> &'static str;
}

/// A run-time-chosen engine.
pub type BoxEngine = Box<dyn RateAllocator>;

impl RateAllocator for BoxEngine {
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        (**self).add_flow(id, src_server, dst_server, weight, path);
    }

    fn remove_flow(&mut self, id: FlowId) -> bool {
        (**self).remove_flow(id)
    }

    fn iterate(&mut self) {
        (**self).iterate();
    }

    fn run_iterations(&mut self, n: usize) {
        (**self).run_iterations(n);
    }

    fn flow_count(&self) -> usize {
        (**self).flow_count()
    }

    fn rates(&self) -> Vec<FlowRate> {
        (**self).rates()
    }

    fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        (**self).flow_rate(id)
    }

    fn rates_into(&self, out: &mut Vec<FlowRate>) {
        (**self).rates_into(out);
    }

    fn take_changed_rates(&mut self, out: &mut Vec<FlowRate>) -> bool {
        (**self).take_changed_rates(out)
    }

    fn dirty_counters(&self) -> Option<(u64, u64)> {
        (**self).dirty_counters()
    }

    fn link_loads(&self) -> Vec<f64> {
        (**self).link_loads()
    }

    fn link_loads_into(&self, out: &mut Vec<f64>) {
        (**self).link_loads_into(out);
    }

    fn set_background_loads(&mut self, loads: &[f64]) {
        (**self).set_background_loads(loads);
    }

    fn link_hessians(&self) -> Vec<f64> {
        (**self).link_hessians()
    }

    fn link_hessians_into(&self, out: &mut Vec<f64>) {
        (**self).link_hessians_into(out);
    }

    fn set_background_hessians(&mut self, hdiag: &[f64]) {
        (**self).set_background_hessians(hdiag);
    }

    fn link_prices(&self) -> Vec<f64> {
        (**self).link_prices()
    }

    fn link_prices_into(&self, out: &mut Vec<f64>) {
        (**self).link_prices_into(out);
    }

    fn set_link_prices(&mut self, prices: &[f64]) {
        (**self).set_link_prices(prices);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl RateAllocator for crate::SerialAllocator {
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        crate::SerialAllocator::add_flow(self, id, src_server, dst_server, weight, path);
    }

    fn remove_flow(&mut self, id: FlowId) -> bool {
        crate::SerialAllocator::remove_flow(self, id)
    }

    fn iterate(&mut self) {
        crate::SerialAllocator::iterate(self);
    }

    fn run_iterations(&mut self, n: usize) {
        crate::SerialAllocator::run_iterations(self, n);
    }

    fn flow_count(&self) -> usize {
        crate::SerialAllocator::flow_count(self)
    }

    fn rates(&self) -> Vec<FlowRate> {
        crate::SerialAllocator::rates(self)
    }

    fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        crate::SerialAllocator::flow_rate(self, id)
    }

    fn rates_into(&self, out: &mut Vec<FlowRate>) {
        crate::SerialAllocator::rates_into(self, out);
    }

    fn take_changed_rates(&mut self, out: &mut Vec<FlowRate>) -> bool {
        crate::SerialAllocator::take_changed_rates(self, out)
    }

    fn dirty_counters(&self) -> Option<(u64, u64)> {
        crate::SerialAllocator::dirty_counters(self)
    }

    fn link_loads(&self) -> Vec<f64> {
        crate::SerialAllocator::link_loads(self)
    }

    fn link_loads_into(&self, out: &mut Vec<f64>) {
        crate::SerialAllocator::link_loads_into(self, out);
    }

    fn set_background_loads(&mut self, loads: &[f64]) {
        crate::SerialAllocator::set_background_loads(self, loads);
    }

    fn link_hessians(&self) -> Vec<f64> {
        crate::SerialAllocator::link_hessians(self)
    }

    fn link_hessians_into(&self, out: &mut Vec<f64>) {
        crate::SerialAllocator::link_hessians_into(self, out);
    }

    fn set_background_hessians(&mut self, hdiag: &[f64]) {
        crate::SerialAllocator::set_background_hessians(self, hdiag);
    }

    fn link_prices(&self) -> Vec<f64> {
        crate::SerialAllocator::link_prices(self)
    }

    fn link_prices_into(&self, out: &mut Vec<f64>) {
        crate::SerialAllocator::link_prices_into(self, out);
    }

    fn set_link_prices(&mut self, prices: &[f64]) {
        crate::SerialAllocator::set_link_prices(self, prices);
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

impl RateAllocator for crate::MulticoreAllocator {
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        crate::MulticoreAllocator::add_flow(self, id, src_server, dst_server, weight, path);
    }

    fn remove_flow(&mut self, id: FlowId) -> bool {
        crate::MulticoreAllocator::remove_flow(self, id)
    }

    fn iterate(&mut self) {
        // One parallel round; the Duration the inherent method returns is
        // a benchmarking aid the service interface does not need.
        let _ = crate::MulticoreAllocator::run_iterations(self, 1);
    }

    fn run_iterations(&mut self, n: usize) {
        let _ = crate::MulticoreAllocator::run_iterations(self, n);
    }

    fn flow_count(&self) -> usize {
        crate::MulticoreAllocator::flow_count(self)
    }

    fn rates(&self) -> Vec<FlowRate> {
        crate::MulticoreAllocator::rates(self)
    }

    fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        crate::MulticoreAllocator::flow_rate(self, id)
    }

    fn rates_into(&self, out: &mut Vec<FlowRate>) {
        crate::MulticoreAllocator::rates_into(self, out);
    }

    fn take_changed_rates(&mut self, out: &mut Vec<FlowRate>) -> bool {
        crate::MulticoreAllocator::take_changed_rates(self, out)
    }

    fn dirty_counters(&self) -> Option<(u64, u64)> {
        crate::MulticoreAllocator::dirty_counters(self)
    }

    fn link_loads(&self) -> Vec<f64> {
        crate::MulticoreAllocator::link_loads(self)
    }

    fn link_loads_into(&self, out: &mut Vec<f64>) {
        crate::MulticoreAllocator::link_loads_into(self, out);
    }

    fn set_background_loads(&mut self, loads: &[f64]) {
        crate::MulticoreAllocator::set_background_loads(self, loads);
    }

    fn link_hessians(&self) -> Vec<f64> {
        crate::MulticoreAllocator::link_hessians(self)
    }

    fn link_hessians_into(&self, out: &mut Vec<f64>) {
        crate::MulticoreAllocator::link_hessians_into(self, out);
    }

    fn set_background_hessians(&mut self, hdiag: &[f64]) {
        crate::MulticoreAllocator::set_background_hessians(self, hdiag);
    }

    fn link_prices(&self) -> Vec<f64> {
        crate::MulticoreAllocator::link_prices(self)
    }

    fn link_prices_into(&self, out: &mut Vec<f64>) {
        crate::MulticoreAllocator::link_prices_into(self, out);
    }

    fn set_link_prices(&mut self, prices: &[f64]) {
        crate::MulticoreAllocator::set_link_prices(self, prices);
    }

    fn name(&self) -> &'static str {
        "multicore"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocConfig, MulticoreAllocator, SerialAllocator};
    use flowtune_topo::{ClosConfig, TwoTierClos};

    fn engines(fabric: &TwoTierClos) -> Vec<BoxEngine> {
        vec![
            Box::new(SerialAllocator::new(fabric, AllocConfig::default())),
            Box::new(MulticoreAllocator::new(fabric, AllocConfig::default())),
        ]
    }

    #[test]
    fn trait_objects_drive_both_ned_engines() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        for mut engine in engines(&fabric) {
            let p = fabric.path(3, 13, FlowId(7));
            engine.add_flow(FlowId(7), 3, 13, 1.0, &p);
            engine.run_iterations(300);
            let r = engine.flow_rate(FlowId(7)).unwrap();
            assert!((r.rate - 40.0).abs() < 1e-4, "{}: {r:?}", engine.name());
            assert_eq!(engine.flow_count(), 1);
            assert!(engine.remove_flow(FlowId(7)));
            assert_eq!(engine.rates().len(), 0);
        }
    }

    #[test]
    fn engine_names_are_distinct() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(1, 2, 4));
        let names: Vec<&str> = engines(&fabric).iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["serial", "multicore"]);
    }
}
