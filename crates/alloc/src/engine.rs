//! The pluggable allocation-engine interface.
//!
//! [`RateAllocator`] is the contract between the control-plane service
//! (`flowtune::AllocatorService`) and whatever computes per-flow rates
//! behind it. Three engines implement it today:
//!
//! * [`SerialAllocator`](crate::SerialAllocator) — the single-threaded
//!   reference NED engine;
//! * [`MulticoreAllocator`](crate::MulticoreAllocator) — the §5
//!   FlowBlock/LinkBlock parallel engine (bit-for-bit equal to serial);
//! * `flowtune_fastpass::FastpassAdapter` — a Fastpass-style per-packet
//!   timeslot arbiter exposed through the same interface, the baseline
//!   the paper's §6.1 comparison is made against.
//!
//! The trait is object safe, so services that choose their engine at run
//! time hold a [`BoxEngine`].

use flowtune_topo::{FlowId, Path};

use crate::flowblock::FlowRate;

/// A rate-allocation engine: maintains a set of weighted flows over a
/// fixed fabric and, on every iteration, refreshes each flow's allocated
/// (and normalized) rate.
pub trait RateAllocator: std::fmt::Debug + Send {
    /// Registers a flow. `path` must come from the fabric the engine was
    /// built over.
    ///
    /// # Panics
    /// Panics on duplicate ids, non-positive weights, or paths that do
    /// not belong to the engine's fabric.
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    );

    /// Deregisters a flow; returns whether it existed.
    fn remove_flow(&mut self, id: FlowId) -> bool;

    /// Runs one allocation iteration (for NED engines: rate pass →
    /// aggregate → price update → distribute → normalize; for the
    /// Fastpass adapter: a batch of timeslot matchings).
    fn iterate(&mut self);

    /// Runs `n` iterations. Engines with per-call setup cost (thread
    /// spawns) override this with an amortized implementation.
    fn run_iterations(&mut self, n: usize) {
        for _ in 0..n {
            self.iterate();
        }
    }

    /// Number of registered flows.
    fn flow_count(&self) -> usize;

    /// All flows' current allocations (Gbit/s), in an engine-defined but
    /// deterministic order.
    fn rates(&self) -> Vec<FlowRate>;

    /// One flow's current allocation, if registered.
    fn flow_rate(&self, id: FlowId) -> Option<FlowRate>;

    /// Short engine name for logs and experiment output.
    fn name(&self) -> &'static str;
}

/// A run-time-chosen engine.
pub type BoxEngine = Box<dyn RateAllocator>;

impl RateAllocator for BoxEngine {
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        (**self).add_flow(id, src_server, dst_server, weight, path);
    }

    fn remove_flow(&mut self, id: FlowId) -> bool {
        (**self).remove_flow(id)
    }

    fn iterate(&mut self) {
        (**self).iterate();
    }

    fn run_iterations(&mut self, n: usize) {
        (**self).run_iterations(n);
    }

    fn flow_count(&self) -> usize {
        (**self).flow_count()
    }

    fn rates(&self) -> Vec<FlowRate> {
        (**self).rates()
    }

    fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        (**self).flow_rate(id)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl RateAllocator for crate::SerialAllocator {
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        crate::SerialAllocator::add_flow(self, id, src_server, dst_server, weight, path);
    }

    fn remove_flow(&mut self, id: FlowId) -> bool {
        crate::SerialAllocator::remove_flow(self, id)
    }

    fn iterate(&mut self) {
        crate::SerialAllocator::iterate(self);
    }

    fn run_iterations(&mut self, n: usize) {
        crate::SerialAllocator::run_iterations(self, n);
    }

    fn flow_count(&self) -> usize {
        crate::SerialAllocator::flow_count(self)
    }

    fn rates(&self) -> Vec<FlowRate> {
        crate::SerialAllocator::rates(self)
    }

    fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        crate::SerialAllocator::flow_rate(self, id)
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

impl RateAllocator for crate::MulticoreAllocator {
    fn add_flow(
        &mut self,
        id: FlowId,
        src_server: usize,
        dst_server: usize,
        weight: f64,
        path: &Path,
    ) {
        crate::MulticoreAllocator::add_flow(self, id, src_server, dst_server, weight, path);
    }

    fn remove_flow(&mut self, id: FlowId) -> bool {
        crate::MulticoreAllocator::remove_flow(self, id)
    }

    fn iterate(&mut self) {
        // One parallel round; the Duration the inherent method returns is
        // a benchmarking aid the service interface does not need.
        let _ = crate::MulticoreAllocator::run_iterations(self, 1);
    }

    fn run_iterations(&mut self, n: usize) {
        let _ = crate::MulticoreAllocator::run_iterations(self, n);
    }

    fn flow_count(&self) -> usize {
        crate::MulticoreAllocator::flow_count(self)
    }

    fn rates(&self) -> Vec<FlowRate> {
        crate::MulticoreAllocator::rates(self)
    }

    fn flow_rate(&self, id: FlowId) -> Option<FlowRate> {
        crate::MulticoreAllocator::flow_rate(self, id)
    }

    fn name(&self) -> &'static str {
        "multicore"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocConfig, MulticoreAllocator, SerialAllocator};
    use flowtune_topo::{ClosConfig, TwoTierClos};

    fn engines(fabric: &TwoTierClos) -> Vec<BoxEngine> {
        vec![
            Box::new(SerialAllocator::new(fabric, AllocConfig::default())),
            Box::new(MulticoreAllocator::new(fabric, AllocConfig::default())),
        ]
    }

    #[test]
    fn trait_objects_drive_both_ned_engines() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(2, 2, 4));
        for mut engine in engines(&fabric) {
            let p = fabric.path(3, 13, FlowId(7));
            engine.add_flow(FlowId(7), 3, 13, 1.0, &p);
            engine.run_iterations(300);
            let r = engine.flow_rate(FlowId(7)).unwrap();
            assert!((r.rate - 40.0).abs() < 1e-4, "{}: {r:?}", engine.name());
            assert_eq!(engine.flow_count(), 1);
            assert!(engine.remove_flow(FlowId(7)));
            assert_eq!(engine.rates().len(), 0);
        }
    }

    #[test]
    fn engine_names_are_distinct() {
        let fabric = TwoTierClos::build(ClosConfig::multicore(1, 2, 4));
        let names: Vec<&str> = engines(&fabric).iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["serial", "multicore"]);
    }
}
