//! Exchange-aware shard placement: which endpoints each shard owns.
//!
//! Sharding the allocator only scales if the partition does not
//! re-create the very congestion it is meant to control. The
//! [`ShardedService`](crate::ShardedService) routes every flowlet to the
//! shard owning its **source** endpoint, so a fabric link is *shared* —
//! and must be reconciled through the periodic link-state exchange —
//! exactly when sources in different shards load it (destination-side
//! links of a rack that receives from several shards; source-side links
//! are single-shard by construction). The historical placement is
//! [`Placement::contiguous`]: equal contiguous server ranges, which
//! routinely lands communicating racks in different shards and turns
//! every hot destination link into exchange traffic and consensus
//! staleness.
//!
//! [`Placement::traffic`] instead partitions **racks** by the workload's
//! traffic matrix: a deterministic greedy grouping (communicating racks
//! attract) followed by an optional Kernighan–Lin-style swap refinement,
//! both over rack-aligned units with balanced shard sizes. Racks that
//! exchange traffic end up in the same shard, so each destination's
//! senders concentrate in one shard, shared links become single-shard
//! links, and the sparse exchange re-ships them once instead of once per
//! loading shard (and installs fewer consensus duals back). The traffic
//! matrix can be supplied up front (sampled from the workload generator,
//! see `flowtune_workload::rack_traffic_matrix`) or accumulated online by
//! the running service
//! ([`ShardedService::observed_matrix`](crate::ShardedService::observed_matrix));
//! the exchange's cumulative per-link ship counters
//! ([`ShardedService::exchange_shipped_counts`](crate::ShardedService::exchange_shipped_counts))
//! are the *trigger* signal — links that keep re-shipping under churn
//! mark a placement worth redoing via
//! [`ShardedService::replace`](crate::ShardedService::replace).
//!
//! When the matrix carries no signal (all zeros, or a shape the fabric
//! does not match), [`Placement::traffic`] falls back to the contiguous
//! placement, so enabling it is always safe.

use std::fmt;

/// How a sharded control plane should map endpoints to shards — the
/// `Copy`-able *policy* half of placement, carried in
/// [`FlowtuneConfig`](crate::FlowtuneConfig) (the materialized mapping is
/// a [`Placement`], built by
/// [`ServiceBuilder::build_driver`](crate::ServiceBuilder) from this spec
/// plus the builder's traffic matrix, if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementSpec {
    /// Contiguous equal server ranges — the historical default, and
    /// bit-for-bit identical to the pre-placement sharded service.
    #[default]
    Contiguous,
    /// Traffic-matrix-driven rack grouping (greedy agglomeration;
    /// `refine` adds the Kernighan–Lin-style swap pass). Falls back to
    /// [`PlacementSpec::Contiguous`] when no matrix is supplied or the
    /// matrix carries no signal.
    Traffic {
        /// Run the swap-refinement pass after the greedy grouping.
        refine: bool,
    },
}

/// `--placement` names [`PlacementSpec::parse`] accepts.
pub const PLACEMENT_NAMES: [&str; 3] = ["contiguous", "traffic", "traffic:refine"];

/// A `--placement` value [`PlacementSpec::parse`] did not recognize; its
/// `Display` lists the valid names so surfacing it verbatim gives the
/// operator the fix (mirrors [`ParseEngineError`](crate::ParseEngineError)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlacementError {
    got: String,
}

impl ParsePlacementError {
    /// The rejected placement name.
    pub fn got(&self) -> &str {
        &self.got
    }
}

impl fmt::Display for ParsePlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown placement `{}`; valid placements: {}",
            self.got,
            PLACEMENT_NAMES.join(", ")
        )
    }
}

impl std::error::Error for ParsePlacementError {}

impl PlacementSpec {
    /// Parses a placement name as accepted by the experiment binaries'
    /// `--placement` flag.
    ///
    /// # Errors
    /// [`ParsePlacementError`] (listing the valid names) on anything not
    /// in [`PLACEMENT_NAMES`].
    pub fn parse(s: &str) -> Result<PlacementSpec, ParsePlacementError> {
        match s {
            "contiguous" => Ok(PlacementSpec::Contiguous),
            "traffic" => Ok(PlacementSpec::Traffic { refine: false }),
            "traffic:refine" => Ok(PlacementSpec::Traffic { refine: true }),
            _ => Err(ParsePlacementError { got: s.to_string() }),
        }
    }

    /// The flag-style name (`contiguous` / `traffic` / `traffic:refine`).
    pub fn name(&self) -> &'static str {
        match self {
            PlacementSpec::Contiguous => "contiguous",
            PlacementSpec::Traffic { refine: false } => "traffic",
            PlacementSpec::Traffic { refine: true } => "traffic:refine",
        }
    }
}

/// A rack-by-rack traffic matrix: `weights[src_rack][dst_rack]` in
/// offered bytes (any consistent unit works — the placer only compares
/// magnitudes). Built from a sampled workload trace
/// (`flowtune_workload::rack_traffic_matrix`) or accumulated online from
/// flowlet intake
/// ([`ShardedService::observed_matrix`](crate::ShardedService::observed_matrix)).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    racks: usize,
    /// Row-major `racks × racks` weights.
    weights: Vec<f64>,
}

impl TrafficMatrix {
    /// An all-zero matrix over `racks` racks.
    pub fn new(racks: usize) -> Self {
        Self {
            racks,
            weights: vec![0.0; racks * racks],
        }
    }

    /// Builds a matrix from row-major `racks × racks` weights.
    ///
    /// # Panics
    /// Panics if `weights.len() != racks * racks`.
    pub fn from_weights(racks: usize, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            racks * racks,
            "a {racks}-rack matrix needs {racks}×{racks} weights"
        );
        Self { racks, weights }
    }

    /// Number of racks the matrix covers.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Offered traffic from `src` rack to `dst` rack.
    pub fn get(&self, src: usize, dst: usize) -> f64 {
        self.weights[src * self.racks + dst]
    }

    /// Accumulates `bytes` of offered traffic from `src` rack to `dst`
    /// rack.
    pub fn add(&mut self, src: usize, dst: usize, bytes: f64) {
        self.weights[src * self.racks + dst] += bytes;
    }

    /// Symmetrized pair weight `w(a→b) + w(b→a)` — the attraction the
    /// placer optimizes (direction does not matter for co-location).
    pub fn pair_weight(&self, a: usize, b: usize) -> f64 {
        self.get(a, b) + self.get(b, a)
    }

    /// Total offered traffic; zero means the matrix carries no placement
    /// signal.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// A materialized endpoint→shard mapping, consulted by
/// [`ShardedService`](crate::ShardedService) on every `FlowletStart` and
/// swappable at run time via
/// [`ShardedService::replace`](crate::ShardedService::replace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// server index → shard index.
    shard_of: Vec<u32>,
    shards: usize,
    strategy: &'static str,
}

impl Placement {
    /// The historical placement: `shards` contiguous, equal ranges of the
    /// `servers`-sized endpoint space. The mapping is exactly the
    /// pre-placement routing formula
    /// (`src * shards / servers`, clamped), so contiguous-placement
    /// deployments stay bit-for-bit identical to older builds.
    ///
    /// # Panics
    /// Panics if `servers` or `shards` is 0.
    pub fn contiguous(servers: usize, shards: usize) -> Self {
        assert!(servers > 0, "a placement needs at least one server");
        assert!(shards > 0, "a placement needs at least one shard");
        let shard_of = (0..servers)
            .map(|s| ((s * shards / servers).min(shards - 1)) as u32)
            .collect();
        Self {
            shard_of,
            shards,
            strategy: "contiguous",
        }
    }

    /// Traffic-aware placement: groups communicating racks into the same
    /// shard so destination-side links are loaded by a single shard and
    /// the inter-shard exchange has less to reconcile.
    ///
    /// Racks are the placement unit (`servers / servers_per_rack` of
    /// them, rack `r` owning servers `r*servers_per_rack ..`); shard
    /// sizes are balanced to within one rack. The placer is two
    /// deterministic phases:
    ///
    /// 1. **greedy agglomeration** — racks in descending total-traffic
    ///    order each join the non-full shard they are most attracted to
    ///    (largest summed [`TrafficMatrix::pair_weight`] to the racks
    ///    already there; ties pick the lowest shard index);
    /// 2. **swap refinement** (when `refine`) — repeatedly apply the
    ///    cross-shard rack swap with the largest positive gain in
    ///    intra-shard weight (the Kernighan–Lin move, size-preserving by
    ///    construction) until no swap gains.
    ///
    /// Falls back to [`Placement::contiguous`] when the matrix carries no
    /// signal: zero total traffic, a rack count that does not match
    /// `servers / servers_per_rack`, or more shards than racks. The
    /// placer has no randomness — the same matrix and shape always yield
    /// the same placement.
    ///
    /// # Panics
    /// Panics if `servers`, `servers_per_rack` or `shards` is 0, or if
    /// `servers_per_rack` does not divide `servers`.
    pub fn traffic(
        servers: usize,
        servers_per_rack: usize,
        shards: usize,
        matrix: &TrafficMatrix,
        refine: bool,
    ) -> Self {
        assert!(servers > 0, "a placement needs at least one server");
        assert!(servers_per_rack > 0, "racks need at least one server");
        assert!(shards > 0, "a placement needs at least one shard");
        assert!(
            servers.is_multiple_of(servers_per_rack),
            "servers_per_rack must divide servers"
        );
        let racks = servers / servers_per_rack;
        if matrix.racks() != racks || shards > racks || matrix.total() <= 0.0 {
            return Self::contiguous(servers, shards);
        }

        let rack_shard = refine_racks(greedy_racks(racks, shards, matrix), matrix, refine);

        let mut shard_of = Vec::with_capacity(servers);
        for (r, &shard) in rack_shard.iter().enumerate() {
            debug_assert!(r < racks);
            shard_of.extend(std::iter::repeat_n(shard, servers_per_rack));
        }
        Self {
            shard_of,
            shards,
            strategy: if refine { "traffic:refine" } else { "traffic" },
        }
    }

    /// Number of shards this placement maps onto.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of servers this placement covers.
    pub fn servers(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning source endpoint `src`. Out-of-range endpoints
    /// clamp to the last server's shard (whose service then rejects the
    /// start as malformed) — the same clamp the contiguous routing
    /// formula always applied.
    pub fn shard_of(&self, src: u16) -> usize {
        self.shard_of[(src as usize).min(self.shard_of.len() - 1)] as usize
    }

    /// The strategy that produced this placement (`contiguous`,
    /// `traffic`, `traffic:refine`) — telemetry only. A traffic request
    /// that fell back reports `contiguous`, honestly.
    pub fn strategy(&self) -> &'static str {
        self.strategy
    }

    /// Number of endpoints assigned to `shard`.
    pub fn shard_size(&self, shard: usize) -> usize {
        self.shard_of
            .iter()
            .filter(|&&s| s as usize == shard)
            .count()
    }
}

/// Phase 1: deterministic greedy agglomeration — racks in descending
/// total-traffic order join the non-full shard with the strongest
/// attraction. Returns rack → shard.
fn greedy_racks(racks: usize, shards: usize, matrix: &TrafficMatrix) -> Vec<u32> {
    // Balanced shard capacities: the first `racks % shards` shards take
    // one extra rack.
    let base = racks / shards;
    let extra = racks % shards;
    let capacity: Vec<usize> = (0..shards).map(|i| base + usize::from(i < extra)).collect();

    // Heaviest racks place first (they anchor their communication
    // partners); ties break on rack index so the pass is deterministic.
    let totals: Vec<f64> = (0..racks)
        .map(|r| (0..racks).map(|s| matrix.pair_weight(r, s)).sum())
        .collect();
    let mut order: Vec<usize> = (0..racks).collect();
    order.sort_by(|&a, &b| {
        totals[b]
            .partial_cmp(&totals[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut assignment = vec![u32::MAX; racks];
    let mut fill = vec![0usize; shards];
    for &r in &order {
        let mut best_shard = usize::MAX;
        let mut best_attraction = f64::NEG_INFINITY;
        let mut best_fill = usize::MAX;
        for shard in 0..shards {
            if fill[shard] >= capacity[shard] {
                continue;
            }
            let attraction: f64 = (0..racks)
                .filter(|&s| assignment[s] == shard as u32)
                .map(|s| matrix.pair_weight(r, s))
                .sum();
            // Equal attraction (typically zero — a rack with no placed
            // partner yet) prefers the emptiest shard, so unrelated
            // anchors spread out instead of piling into shard 0; the
            // remaining tie keeps the lowest shard index. Deterministic
            // either way.
            if attraction > best_attraction
                || (attraction == best_attraction && fill[shard] < best_fill)
            {
                best_attraction = attraction;
                best_shard = shard;
                best_fill = fill[shard];
            }
        }
        assignment[r] = best_shard as u32;
        fill[best_shard] += 1;
    }
    assignment
}

/// Phase 2: Kernighan–Lin-style refinement — apply the best
/// strictly-positive cross-shard rack swap until none remains. Each
/// applied swap strictly increases intra-shard weight, so the loop
/// terminates; the scan order (and strict improvement) makes it
/// deterministic.
fn refine_racks(mut assignment: Vec<u32>, matrix: &TrafficMatrix, refine: bool) -> Vec<u32> {
    if !refine {
        return assignment;
    }
    let racks = assignment.len();
    // Attraction of rack r to every rack currently in `shard`, excluding
    // a rack to ignore (the swap partner, which is leaving).
    let conn = |assignment: &[u32], r: usize, shard: u32, ignore: usize| -> f64 {
        (0..racks)
            .filter(|&s| s != r && s != ignore && assignment[s] == shard)
            .map(|s| matrix.pair_weight(r, s))
            .sum()
    };
    loop {
        let mut best_gain = 0.0;
        let mut best_pair = None;
        for a in 0..racks {
            for b in a + 1..racks {
                let (sa, sb) = (assignment[a], assignment[b]);
                if sa == sb {
                    continue;
                }
                let gain = conn(&assignment, a, sb, b) - conn(&assignment, a, sa, b)
                    + conn(&assignment, b, sa, a)
                    - conn(&assignment, b, sb, a);
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((a, b));
                }
            }
        }
        match best_pair {
            Some((a, b)) => assignment.swap(a, b),
            None => return assignment,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_roundtrips() {
        for spec in [
            PlacementSpec::Contiguous,
            PlacementSpec::Traffic { refine: false },
            PlacementSpec::Traffic { refine: true },
        ] {
            assert_eq!(PlacementSpec::parse(spec.name()), Ok(spec));
        }
        let err = PlacementSpec::parse("hilbert").unwrap_err();
        assert_eq!(err.got(), "hilbert");
        let msg = err.to_string();
        for name in PLACEMENT_NAMES {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn contiguous_matches_the_historical_formula() {
        for (servers, shards) in [(16, 2), (16, 3), (24, 2), (144, 4), (7, 3), (5, 5)] {
            let p = Placement::contiguous(servers, shards);
            assert_eq!(p.servers(), servers);
            assert_eq!(p.shard_count(), shards);
            for src in 0..(servers + 10) as u16 {
                let expected = ((src as usize).min(servers - 1) * shards / servers).min(shards - 1);
                assert_eq!(p.shard_of(src), expected, "{servers}/{shards} src {src}");
            }
        }
    }

    /// A 6-rack matrix whose affinity classes interleave (0↔2↔4, 1↔3↔5):
    /// the adversarial case for contiguous placement.
    fn interleaved(racks: usize) -> TrafficMatrix {
        let mut m = TrafficMatrix::new(racks);
        for a in 0..racks {
            for b in 0..racks {
                if a != b && a % 2 == b % 2 {
                    m.add(a, b, 100.0);
                }
            }
        }
        m
    }

    #[test]
    fn traffic_groups_communicating_racks() {
        let m = interleaved(6);
        for refine in [false, true] {
            let p = Placement::traffic(24, 4, 2, &m, refine);
            assert_eq!(
                p.strategy(),
                if refine { "traffic:refine" } else { "traffic" }
            );
            // Each class lands in one shard; sizes balance 12/12.
            assert_eq!(p.shard_size(0), 12);
            assert_eq!(p.shard_size(1), 12);
            for rack in 0..6 {
                let shard = p.shard_of((rack * 4) as u16);
                let class_anchor = p.shard_of((4 * (rack % 2)) as u16);
                assert_eq!(shard, class_anchor, "rack {rack} left its class");
                // Rack-aligned: all four servers of the rack agree.
                for s in 0..4u16 {
                    assert_eq!(p.shard_of((rack * 4) as u16 + s), shard);
                }
            }
            // The two classes are in *different* shards.
            assert_ne!(p.shard_of(0), p.shard_of(4));
        }
    }

    #[test]
    fn traffic_placement_is_deterministic() {
        let m = interleaved(6);
        for refine in [false, true] {
            let a = Placement::traffic(24, 4, 2, &m, refine);
            let b = Placement::traffic(24, 4, 2, &m, refine);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn refinement_fixes_a_bad_greedy_seed() {
        // Two heavy pairs (0,3) and (1,2) plus a uniform background that
        // makes every rack's total equal, so the greedy order is by
        // index: greedy seats 0 and 1 together (0 anchors shard 0; 1 is
        // attracted to 0's background weight... construct so greedy errs)
        // — the swap pass must recover the pairing regardless.
        let mut m = TrafficMatrix::new(4);
        // Heavy true pairs.
        m.add(0, 3, 100.0);
        m.add(1, 2, 100.0);
        // A decoy edge that misleads the greedy phase.
        m.add(0, 1, 60.0);
        let refined = Placement::traffic(16, 4, 2, &m, true);
        assert_eq!(refined.shard_of(0), refined.shard_of(12), "pair (0,3)");
        assert_eq!(refined.shard_of(4), refined.shard_of(8), "pair (1,2)");
        assert_ne!(refined.shard_of(0), refined.shard_of(4));
    }

    #[test]
    fn no_signal_falls_back_to_contiguous() {
        let servers = 24;
        let contiguous = Placement::contiguous(servers, 2);
        // Zero matrix.
        let zero = Placement::traffic(servers, 4, 2, &TrafficMatrix::new(6), true);
        assert_eq!(zero, contiguous);
        assert_eq!(zero.strategy(), "contiguous");
        // Rack-count mismatch.
        let wrong = Placement::traffic(servers, 4, 2, &interleaved(5), false);
        assert_eq!(wrong, contiguous);
        // More shards than racks.
        let m2 = interleaved(2);
        let crowded = Placement::traffic(8, 4, 3, &m2, false);
        assert_eq!(crowded, Placement::contiguous(8, 3));
    }

    #[test]
    fn balanced_sizes_with_ragged_rack_counts() {
        // 5 racks over 2 shards: sizes 3 and 2 racks, deterministic.
        let mut m = TrafficMatrix::new(5);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    m.add(a, b, 1.0 + (a * 5 + b) as f64 * 0.01);
                }
            }
        }
        let p = Placement::traffic(20, 4, 2, &m, true);
        let sizes = [p.shard_size(0), p.shard_size(1)];
        assert_eq!(sizes.iter().sum::<usize>(), 20);
        assert!(sizes.contains(&12) && sizes.contains(&8), "{sizes:?}");
    }

    #[test]
    fn matrix_accessors() {
        let mut m = TrafficMatrix::new(3);
        m.add(0, 2, 5.0);
        m.add(2, 0, 7.0);
        assert_eq!(m.racks(), 3);
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.pair_weight(0, 2), 12.0);
        assert_eq!(m.pair_weight(2, 0), 12.0);
        assert_eq!(m.total(), 12.0);
        let w = TrafficMatrix::from_weights(2, vec![0.0, 1.0, 2.0, 0.0]);
        assert_eq!(w.pair_weight(0, 1), 3.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn ragged_rack_size_rejected() {
        let _ = Placement::traffic(10, 4, 2, &TrafficMatrix::new(2), false);
    }
}
