//! Flowlet detection.
//!
//! §1: "By 'flowlet', we mean a batch of packets that are backlogged at a
//! sender; a flowlet ends when there is a threshold amount of time during
//! which a sender's queue is empty." The tracker is a small, sans-IO state
//! machine driven by queue occupancy transitions and a clock; the endpoint
//! agent owns one per flow.

/// Lifecycle state of one flow's current flowlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowletState {
    /// No active flowlet (initial, or after an end was reported).
    Idle,
    /// The sender's queue is non-empty.
    Backlogged,
    /// The queue drained at the contained time; if it stays empty past
    /// the threshold the flowlet ends.
    Draining {
        /// When the queue became empty (ps).
        empty_since_ps: u64,
    },
}

/// Per-flow flowlet state machine.
#[derive(Debug, Clone)]
pub struct FlowletTracker {
    idle_threshold_ps: u64,
    state: FlowletState,
}

/// What the caller must do after feeding an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowletAction {
    /// Nothing to report.
    None,
    /// A new flowlet began: notify the allocator (FlowletStart).
    Started,
    /// The flowlet ended: notify the allocator (FlowletEnd).
    Ended,
}

impl FlowletTracker {
    /// Creates a tracker with the configured idle threshold.
    pub fn new(idle_threshold_ps: u64) -> Self {
        Self {
            idle_threshold_ps,
            state: FlowletState::Idle,
        }
    }

    /// Current state.
    pub fn state(&self) -> FlowletState {
        self.state
    }

    /// True between `Started` and `Ended` reports.
    pub fn active(&self) -> bool {
        !matches!(self.state, FlowletState::Idle)
    }

    /// The sender queued data for this flow at time `now`.
    pub fn on_backlog(&mut self, _now_ps: u64) -> FlowletAction {
        match self.state {
            FlowletState::Idle => {
                self.state = FlowletState::Backlogged;
                FlowletAction::Started
            }
            // A refill during draining resumes the same flowlet — that is
            // the entire point of the idle threshold: "long lived flows
            // that send intermittently generate multiple flowlets" only
            // when the gap exceeds it.
            FlowletState::Draining { .. } | FlowletState::Backlogged => {
                self.state = FlowletState::Backlogged;
                FlowletAction::None
            }
        }
    }

    /// The sender's queue for this flow drained at time `now`.
    pub fn on_drained(&mut self, now_ps: u64) -> FlowletAction {
        if matches!(self.state, FlowletState::Backlogged) {
            self.state = FlowletState::Draining {
                empty_since_ps: now_ps,
            };
        }
        FlowletAction::None
    }

    /// Clock tick: ends the flowlet if the queue has been empty long
    /// enough.
    pub fn poll(&mut self, now_ps: u64) -> FlowletAction {
        if let FlowletState::Draining { empty_since_ps } = self.state {
            if now_ps.saturating_sub(empty_since_ps) >= self.idle_threshold_ps {
                self.state = FlowletState::Idle;
                return FlowletAction::Ended;
            }
        }
        FlowletAction::None
    }

    /// The earliest time a [`FlowletTracker::poll`] could report an end,
    /// if the flow is draining — lets an event-driven caller set a timer
    /// instead of polling.
    pub fn end_deadline_ps(&self) -> Option<u64> {
        match self.state {
            FlowletState::Draining { empty_since_ps } => {
                Some(empty_since_ps + self.idle_threshold_ps)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 30_000_000; // 30 µs

    #[test]
    fn backlog_starts_exactly_one_flowlet() {
        let mut f = FlowletTracker::new(T);
        assert_eq!(f.on_backlog(0), FlowletAction::Started);
        assert_eq!(f.on_backlog(5), FlowletAction::None);
        assert!(f.active());
    }

    #[test]
    fn ends_only_after_threshold_idle() {
        let mut f = FlowletTracker::new(T);
        f.on_backlog(0);
        f.on_drained(1_000);
        assert_eq!(f.poll(1_000 + T - 1), FlowletAction::None);
        assert_eq!(f.poll(1_000 + T), FlowletAction::Ended);
        assert!(!f.active());
    }

    #[test]
    fn refill_during_drain_continues_the_flowlet() {
        let mut f = FlowletTracker::new(T);
        f.on_backlog(0);
        f.on_drained(1_000);
        // New data arrives before the threshold: same flowlet.
        assert_eq!(f.on_backlog(1_000 + T / 2), FlowletAction::None);
        assert_eq!(f.poll(1_000 + 2 * T), FlowletAction::None, "backlogged");
        // Drain again; only now does the clock restart.
        f.on_drained(3 * T);
        assert_eq!(f.poll(4 * T), FlowletAction::Ended);
    }

    #[test]
    fn gap_longer_than_threshold_makes_two_flowlets() {
        // §1 footnote: "long lived flows that send intermittently generate
        // multiple flowlets".
        let mut f = FlowletTracker::new(T);
        assert_eq!(f.on_backlog(0), FlowletAction::Started);
        f.on_drained(10);
        assert_eq!(f.poll(10 + T), FlowletAction::Ended);
        assert_eq!(f.on_backlog(10 + 2 * T), FlowletAction::Started);
    }

    #[test]
    fn drained_while_idle_is_a_noop() {
        let mut f = FlowletTracker::new(T);
        assert_eq!(f.on_drained(5), FlowletAction::None);
        assert_eq!(f.poll(5 + 2 * T), FlowletAction::None);
        assert_eq!(f.state(), FlowletState::Idle);
    }

    #[test]
    fn deadline_reflects_drain_time() {
        let mut f = FlowletTracker::new(T);
        assert_eq!(f.end_deadline_ps(), None);
        f.on_backlog(0);
        assert_eq!(f.end_deadline_ps(), None);
        f.on_drained(7);
        assert_eq!(f.end_deadline_ps(), Some(7 + T));
    }

    #[test]
    fn poll_is_idempotent_after_end() {
        let mut f = FlowletTracker::new(T);
        f.on_backlog(0);
        f.on_drained(0);
        assert_eq!(f.poll(T), FlowletAction::Ended);
        assert_eq!(f.poll(2 * T), FlowletAction::None);
    }
}
