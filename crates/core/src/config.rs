//! System configuration.

use std::time::Duration;

use crate::placement::PlacementSpec;

/// The exchange knobs, grouped: cadence, delta filter, and the peer
/// runtime's round timeout and staleness bound. One value of this type
/// configures both the in-process `ShardedService` exchange (which uses
/// only [`ExchangeConfig::every`] and [`ExchangeConfig::delta_eps`] —
/// in-process frames cannot be late) and a distributed `ShardPeer`
/// (which uses all four).
///
/// Accepted whole by
/// [`ServiceBuilder::exchange`](crate::ServiceBuilder::exchange) and by
/// `ShardPeer::new`; the historical per-knob builder setters survive as
/// deprecated forwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeConfig {
    /// Exchange cadence in ticks ([`FlowtuneConfig::exchange_every`];
    /// 0 disables the exchange).
    pub every: u64,
    /// Delta filter threshold
    /// ([`FlowtuneConfig::exchange_delta_eps`]).
    pub delta_eps: f64,
    /// Peer runtime only: how long an exchange barrier waits for a
    /// not-yet-stale peer's frame for the current round before
    /// degrading to that peer's last-received state.
    pub round_timeout: Duration,
    /// Peer runtime only: the staleness bound. A peer that has missed
    /// this many consecutive barriers is waited for again (up to
    /// [`ExchangeConfig::round_timeout`]) at *every* subsequent barrier
    /// until it recovers — throttling a healthy shard rather than
    /// letting it run unboundedly ahead of a laggard's state. `0`
    /// disables the throttle: stale peers are only ever polled
    /// non-blocking, and drift is unbounded.
    pub max_rounds_behind: u64,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            every: 0,
            delta_eps: 0.0,
            round_timeout: Duration::from_secs(1),
            max_rounds_behind: 8,
        }
    }
}

impl ExchangeConfig {
    /// The grouped view of `cfg`'s exchange knobs (cadence and delta
    /// filter from `cfg`, peer-runtime knobs at their defaults).
    pub fn from_flowtune(cfg: &FlowtuneConfig) -> Self {
        ExchangeConfig {
            every: cfg.exchange_every,
            delta_eps: cfg.exchange_delta_eps,
            ..ExchangeConfig::default()
        }
    }

    /// Sets the exchange cadence in ticks (0 = off).
    #[must_use]
    pub fn every(mut self, ticks: u64) -> Self {
        self.every = ticks;
        self
    }

    /// Sets the delta filter threshold.
    #[must_use]
    pub fn delta_eps(mut self, eps: f64) -> Self {
        self.delta_eps = eps;
        self
    }

    /// Sets the peer runtime's per-round barrier timeout.
    #[must_use]
    pub fn round_timeout(mut self, timeout: Duration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Sets the staleness bound (see the field docs; 0 = no throttle).
    #[must_use]
    pub fn max_rounds_behind(mut self, rounds: u64) -> Self {
        self.max_rounds_behind = rounds;
        self
    }
}

/// Tunables of a Flowtune deployment, with the paper's values as defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowtuneConfig {
    /// NED step size γ (§6.2: "experiments have γ = 0.4"; any value in
    /// [0.2, 1.5] behaves similarly).
    pub gamma: f64,
    /// NED iterations per allocator tick (1 in the paper: "The allocator
    /// performs an iteration every 10 µs").
    pub iterations_per_tick: usize,
    /// Allocator tick interval in picoseconds (10 µs).
    pub tick_interval_ps: u64,
    /// Rate-update suppression threshold (§6.4; 0.01 default).
    pub update_threshold: f64,
    /// Idle time after which a sender's empty queue ends the flowlet
    /// (§1: "a flowlet ends when there is a threshold amount of time
    /// during which a sender's queue is empty"). Default 30 µs ≈ 2 RTTs.
    pub flowlet_idle_ps: u64,
    /// Default proportional-fairness weight for flows that don't specify
    /// one.
    pub default_weight: f64,
    /// Whether the allocator F-NORMs rates before sending them (§4.2; on
    /// in every end-to-end experiment).
    pub f_norm: bool,
    /// Run NED iterations incrementally: the engine's dirty set tracks
    /// which FlowBlock workers saw flow churn or a price move beyond
    /// [`FlowtuneConfig::dirty_eps`] on a traversed link, and the
    /// flow-proportional passes touch only those — quiet ticks cost
    /// `O(changed)`, not `O(flows)`. Off by default; at `dirty_eps = 0`
    /// the output is bit-for-bit identical to the full sweep.
    pub incremental: bool,
    /// Incremental mode only: force a full rate-pass sweep every this
    /// many iterations, rebuilding every accumulator from scratch to
    /// bound float drift under a positive `dirty_eps` (`0` = never; at
    /// `dirty_eps = 0` the sweep is a bitwise no-op).
    pub full_sweep_every: u64,
    /// Incremental mode only: price/ratio movement at or below this
    /// threshold does not re-dirty a link's flows. `0.0` (the default)
    /// marks on any bit change — exact equivalence with the full sweep;
    /// small positive values trade bounded rate staleness for fewer
    /// recomputations.
    pub dirty_eps: f64,
    /// Sharded control plane only: every `exchange_every` ticks the
    /// shards exchange per-link loads so each prices shared links for the
    /// whole network's traffic (the §5 aggregation step, one level up).
    /// `0` disables the exchange (each shard prices links for its own
    /// flows alone — exact only while no link carries two shards' flows);
    /// `1` exchanges every tick (tightest pricing, most exchange
    /// traffic); larger values trade staleness for exchange bandwidth.
    /// Ignored by unsharded services.
    pub exchange_every: u64,
    /// Sharded control plane only: the exchange's delta filter. A shard
    /// re-ships a link's state (load, Hessian diagonal, dual) only when
    /// any of the three moved by more than this since the last round it
    /// shipped that link (loads/Hessians in Gbit/s terms, duals in
    /// price units); receivers keep pricing the last shipped value
    /// meanwhile. `0.0` (the default) ships every *changed* link —
    /// identical arithmetic to a dense exchange, with links whose state
    /// has stopped moving costing no exchange bytes (an idle link still
    /// re-ships while its initial dual decays; a small positive value
    /// cuts that tail). Larger values trade pricing precision on
    /// slow-moving links for exchange bandwidth.
    pub exchange_delta_eps: f64,
    /// Sharded control plane only: run the shards' per-tick work
    /// (intake bookkeeping, allocator iterations, update export) on the
    /// worker pool's per-shard OS threads instead of sequentially on the
    /// caller. On by default; the output is bit-for-bit identical either
    /// way — the flag exists for single-core hosts and for debugging.
    /// With one shard there is nothing to parallelize and the sequential
    /// path is always taken.
    pub parallel_shards: bool,
    /// Sharded control plane only: how endpoints map to shards (the
    /// `--placement` flag). [`PlacementSpec::Contiguous`] (the default)
    /// is the historical equal-range split, bit-for-bit identical to
    /// pre-placement builds; [`PlacementSpec::Traffic`] groups
    /// communicating racks into the same shard from a traffic matrix
    /// supplied to the builder
    /// ([`ServiceBuilder::traffic_matrix`](crate::ServiceBuilder::traffic_matrix)),
    /// which shrinks the link state the inter-shard exchange must ship
    /// and falls back to contiguous when no matrix is available. Ignored
    /// by unsharded services.
    ///
    /// This field is builder *input*, not service state: the
    /// authoritative mapping is the materialized
    /// [`Placement`](crate::Placement) reported by
    /// [`ShardedService::placement`](crate::ShardedService::placement)
    /// (whose `strategy()` honestly reports `contiguous` after a
    /// fallback). Constructors with no traffic-matrix channel
    /// ([`ShardedService::new`](crate::ShardedService::new),
    /// [`ShardedService::from_shards`](crate::ShardedService::from_shards))
    /// always materialize the contiguous fallback whatever this spec
    /// says.
    pub placement: PlacementSpec,
}

impl Default for FlowtuneConfig {
    fn default() -> Self {
        Self {
            gamma: 0.4,
            iterations_per_tick: 1,
            tick_interval_ps: 10_000_000, // 10 µs
            update_threshold: 0.01,
            flowlet_idle_ps: 30_000_000, // 30 µs
            default_weight: 1.0,
            f_norm: true,
            incremental: false,
            full_sweep_every: 64,
            dirty_eps: 0.0,
            exchange_every: 0,
            exchange_delta_eps: 0.0,
            parallel_shards: true,
            placement: PlacementSpec::Contiguous,
        }
    }
}

impl FlowtuneConfig {
    /// The capacity fraction the allocator may hand out: §6.4 "the
    /// allocator adjusts the available link capacities by the threshold".
    pub fn capacity_fraction(&self) -> f64 {
        1.0 - self.update_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = FlowtuneConfig::default();
        assert_eq!(c.gamma, 0.4);
        assert_eq!(c.tick_interval_ps, 10_000_000);
        assert_eq!(c.update_threshold, 0.01);
        assert!((c.capacity_fraction() - 0.99).abs() < 1e-12);
        // Incremental ticks are opt-in; the full-sweep cadence and zero
        // eps defaults keep the incremental output bit-for-bit equal to
        // the full sweep when they are enabled.
        assert!(!c.incremental);
        assert_eq!(c.full_sweep_every, 64);
        assert_eq!(c.dirty_eps, 0.0);
        // Exchange is opt-in: the default preserves the independent-shard
        // behavior sharded deployments had before the exchange existed.
        assert_eq!(c.exchange_every, 0);
        // The delta filter defaults to "ship exact changes only", which
        // keeps the exchange arithmetic identical to a dense exchange.
        assert_eq!(c.exchange_delta_eps, 0.0);
        // Sharded ticks run concurrently by default (the sequential path
        // is a debugging/bit-for-bit-checking fallback).
        assert!(c.parallel_shards);
        // Placement defaults to the historical contiguous ranges, so
        // existing sharded deployments keep their exact routing.
        assert_eq!(c.placement, PlacementSpec::Contiguous);
    }

    #[test]
    fn exchange_config_groups_the_flowtune_knobs() {
        // The grouped view mirrors the flat config's cadence and delta
        // filter; the peer-runtime knobs default to a 1 s barrier and a
        // staleness bound of 8 missed barriers.
        let flat = FlowtuneConfig {
            exchange_every: 4,
            exchange_delta_eps: 1e-6,
            ..FlowtuneConfig::default()
        };
        let ex = ExchangeConfig::from_flowtune(&flat);
        assert_eq!(ex.every, 4);
        assert_eq!(ex.delta_eps, 1e-6);
        assert_eq!(ex.round_timeout, Duration::from_secs(1));
        assert_eq!(ex.max_rounds_behind, 8);
        // Chainable setters cover every knob.
        let ex = ExchangeConfig::default()
            .every(2)
            .delta_eps(0.5)
            .round_timeout(Duration::from_millis(20))
            .max_rounds_behind(3);
        assert_eq!(ex.every, 2);
        assert_eq!(ex.delta_eps, 0.5);
        assert_eq!(ex.round_timeout, Duration::from_millis(20));
        assert_eq!(ex.max_rounds_behind, 3);
        // The default cadence is "exchange off", matching the flat
        // config's default.
        assert_eq!(ExchangeConfig::default().every, 0);
    }
}
