//! # Flowtune: flowlet control for datacenter networks
//!
//! A from-scratch implementation of the system described in *"Flowtune:
//! Flowlet Control for Datacenter Networks"* (Perry, Balakrishnan, Shah —
//! MIT CSAIL TR 2016-011 / NSDI 2017).
//!
//! Flowtune makes congestion-control decisions at the granularity of a
//! **flowlet** — a batch of packets backlogged at a sender — instead of a
//! packet. Endpoints notify a logically centralized allocator when
//! flowlets start and end; the allocator computes explicit, optimal rates
//! for every flow in the network with the NED optimizer (network utility
//! maximization with an exactly-computed Hessian diagonal), normalizes
//! them with F-NORM so no link is over-allocated, and pushes rate updates
//! back to the endpoints, which pace their traffic accordingly.
//!
//! ## Crate map
//!
//! This crate is the system façade; the machinery lives in focused crates:
//!
//! * [`flowtune_topo`] — two-tier Clos fabrics, paths, allocator blocks;
//! * `flowtune_num` — NED and the baseline NUM optimizers, U/F-NORM;
//! * [`flowtune_alloc`] — the [`RateAllocator`] engine interface and its
//!   implementations: serial reference NED, the §5 multicore
//!   FlowBlock/LinkBlock engine (pool-backed), and the gradient
//!   baseline;
//! * [`flowtune_fastpass`] — the per-packet timeslot arbiter and its
//!   [`RateAllocator`] adapter (the §6.1 comparison baseline);
//! * [`flowtune_proto`] — the 16/4/6-byte control messages.
//!
//! ## Quickstart
//!
//! The allocator is assembled with a builder; the engine — serial NED,
//! multicore NED, Fastpass-style arbitration, or gradient projection —
//! is a run-time choice behind one API, and
//! [`ServiceBuilder::build_driver`] additionally shards the whole
//! control plane ([`Engine::Sharded`] → [`ShardedService`]) behind the
//! [`TickDriver`] interface:
//!
//! ```
//! use flowtune::{AllocatorService, EndpointAgent, Engine, FlowtuneConfig};
//! use flowtune_topo::{ClosConfig, TwoTierClos};
//!
//! // The paper's evaluation fabric: 9 racks × 16 servers, 4 spines.
//! let fabric = TwoTierClos::build(ClosConfig::paper_eval());
//! let mut allocator = AllocatorService::builder()
//!     .fabric(&fabric)
//!     .config(FlowtuneConfig::default())
//!     .engine(Engine::Serial) // or Multicore { workers } / Fastpass
//!     .build()
//!     .expect("fabric was supplied");
//! let mut agent = EndpointAgent::new(0, 144);
//!
//! // Server 0 gets a 1 MB backlog toward server 140: a flowlet starts.
//! let start = agent.on_backlog(7, 140, 1_000_000, 0).unwrap();
//! allocator.on_message(start).expect("token is fresh");
//!
//! // One allocator tick (the paper runs one every 10 µs) produces rate
//! // updates for whoever changed by more than the threshold.
//! let updates = allocator.tick();
//! assert_eq!(updates.len(), 1);
//! for (dst_server, msg) in updates {
//!     assert_eq!(dst_server, 0);
//!     agent.on_rate_update(&msg);
//! }
//! // The only flow in an idle network gets its access line rate, less
//! // the 1% capacity headroom the update threshold reserves (§6.4).
//! let rate = agent.pacing_rate_gbps(7).unwrap();
//! assert!((rate - 9.9).abs() < 1e-2);
//!
//! // Corrupt control input is a reportable condition, not a crash:
//! // replaying the same start is rejected and counted.
//! assert!(allocator.on_message(start).is_err());
//! assert_eq!(allocator.stats().rejected, 1);
//! ```
//!
//! [`RateAllocator`]: flowtune_alloc::RateAllocator

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod driver;
pub mod endpoint;
pub mod exchange;
pub mod flowlet;
pub mod placement;
pub mod scenario;
pub mod service;
pub mod sharded;
pub mod token;

pub use config::{ExchangeConfig, FlowtuneConfig};
pub use driver::{BoxTickDriver, PhaseTimings, TickDriver, TickLoop};
pub use endpoint::EndpointAgent;
pub use exchange::{ApplyError, ExchangeCore};
pub use flowlet::FlowletTracker;
pub use placement::{
    ParsePlacementError, Placement, PlacementSpec, TrafficMatrix, PLACEMENT_NAMES,
};
pub use scenario::{
    jain_index, run_scenario, run_scenario_traced, PhaseReport, ScenarioOptions, ScenarioReport,
};
pub use service::{
    AllocatorService, DynAllocatorService, Engine, FlowMigration, ParseEngineError, ServiceBuilder,
    ServiceError, ServiceStats, ENGINE_NAMES,
};
pub use sharded::{merge_by_token, merge_by_token_into, ShardedService};
pub use token::TokenAllocator;
