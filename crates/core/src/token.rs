//! Allocator-wide unique flowlet tokens.
//!
//! The wire format gives tokens 24 bits (`flowtune_proto::Token`). Each
//! endpoint owns a disjoint slice of that space — the high bits encode the
//! server index, the low bits a per-server wrapping counter — so endpoints
//! can mint tokens without coordination and the allocator can key its flow
//! table by token alone.

use flowtune_proto::Token;

/// Mints unique tokens for one endpoint.
#[derive(Debug, Clone)]
pub struct TokenAllocator {
    prefix: u32,
    counter_bits: u32,
    next: u32,
}

impl TokenAllocator {
    /// Creates the minting state for `server` in a cluster of
    /// `cluster_size` servers.
    ///
    /// # Panics
    /// Panics if the cluster needs more than 16 of the 24 token bits
    /// (i.e. more than 65 536 servers), or if `server` is out of range.
    pub fn new(server: u16, cluster_size: usize) -> Self {
        assert!(cluster_size > 0 && (server as usize) < cluster_size);
        let server_bits = usize::BITS - (cluster_size - 1).leading_zeros();
        let server_bits = server_bits.max(1);
        assert!(server_bits <= 16, "cluster too large for 24-bit tokens");
        let counter_bits = 24 - server_bits;
        Self {
            prefix: (server as u32) << counter_bits,
            counter_bits,
            next: 0,
        }
    }

    /// Mints the next token. Counters wrap; a wrap only collides if a
    /// single server holds 2^counter_bits concurrent flowlets, far beyond
    /// the tens-to-hundreds of flows per server real datacenters see
    /// (§5: "datacenter measurements show average flow count per server at
    /// tens to hundreds of flows").
    pub fn mint(&mut self) -> Token {
        let t = self.prefix | (self.next & ((1 << self.counter_bits) - 1));
        self.next = self.next.wrapping_add(1);
        Token::new(t)
    }

    /// How many flowlets this endpoint can have in flight before a token
    /// collision becomes possible.
    pub fn capacity(&self) -> u32 {
        1 << self.counter_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_unique_across_servers() {
        let mut a = TokenAllocator::new(0, 144);
        let mut b = TokenAllocator::new(143, 144);
        let ta: Vec<Token> = (0..100).map(|_| a.mint()).collect();
        let tb: Vec<Token> = (0..100).map(|_| b.mint()).collect();
        for x in &ta {
            assert!(!tb.contains(x));
        }
    }

    #[test]
    fn tokens_unique_within_server_until_wrap() {
        let mut a = TokenAllocator::new(7, 144);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(a.mint()));
        }
    }

    #[test]
    fn capacity_scales_inversely_with_cluster_size() {
        assert!(TokenAllocator::new(0, 144).capacity() > TokenAllocator::new(0, 2048).capacity());
        // 144 servers → 8 server bits → 65 536 concurrent flowlets each.
        assert_eq!(TokenAllocator::new(0, 144).capacity(), 1 << 16);
    }

    #[test]
    fn two_server_cluster_works() {
        let mut a = TokenAllocator::new(1, 2);
        let t = a.mint();
        assert_eq!(t.get() >> 23, 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_server_rejected() {
        let _ = TokenAllocator::new(5, 4);
    }
}
