//! The tick-driver abstraction over allocator control planes.
//!
//! [`TickDriver`] is the contract embedders program against: something
//! that consumes flowlet notifications and, on every 10 µs tick, produces
//! `(source server, rate update)` pairs. Two implementations exist:
//!
//! * [`AllocatorService`] — one service, one engine (the Figure-1 box);
//! * [`ShardedService`](crate::ShardedService) — N inner services, the
//!   endpoint space partitioned across them.
//!
//! The network simulator, the fluid-model driver and the experiment
//! binaries all hold a [`BoxTickDriver`] obtained from
//! [`ServiceBuilder::build_driver`](crate::ServiceBuilder::build_driver),
//! so "how many shards" is a run-time configuration like the engine
//! choice, not a compile-time fork.
//!
//! [`TickLoop`] wraps a driver together with its tick cadence, so
//! embedders poll one clock-driven object instead of hand-rolling
//! sleep/accumulator loops around `tick()`.

use flowtune_alloc::RateAllocator;
use flowtune_proto::{Message, Token};
use flowtune_topo::TwoTierClos;

use crate::service::{AllocatorService, ServiceError, ServiceStats};

/// Cumulative wall time spent in each phase of the control plane's work,
/// for localizing a bench regression to a phase instead of a whole tick.
/// All fields are running totals since construction; a sharded driver
/// reports its shards' sums plus its own exchange time.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Message intake (`on_message`): registry and engine add/remove.
    pub intake: std::time::Duration,
    /// Engine iterations (`run_iterations` inside `tick`).
    pub allocate: std::time::Duration,
    /// Update export: rate reads, threshold filtering, message encoding.
    pub export: std::time::Duration,
    /// Inter-shard link-state exchange rounds (sharded drivers only).
    pub exchange: std::time::Duration,
}

/// A control plane with an allocator tick: notifications in, rate updates
/// out, behind either one [`AllocatorService`] or a
/// [`ShardedService`](crate::ShardedService).
pub trait TickDriver: std::fmt::Debug + Send {
    /// Handles an endpoint notification (see
    /// [`AllocatorService::on_message`]).
    ///
    /// # Errors
    /// [`ServiceError`] when the message is corrupt or inconsistent; the
    /// message is dropped and counted, the driver stays consistent.
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError>;

    /// One allocator tick (§6.2: every 10 µs): runs the engine(s) and
    /// returns `(source server, update)` pairs in ascending token order.
    fn tick(&mut self) -> Vec<(u16, Message)>;

    /// [`TickDriver::tick`] with engine panics contained where the
    /// implementation supports it: a sharded control plane reports a
    /// panicking shard as [`ServiceError::ShardPanicked`] (siblings and
    /// the worker pool survive) instead of aborting the embedder's loop.
    /// The default simply runs `tick` — single-engine services have no
    /// isolation boundary to contain a panic behind.
    ///
    /// # Errors
    /// [`ServiceError::ShardPanicked`] from drivers with per-shard panic
    /// isolation.
    fn try_tick(&mut self) -> Result<Vec<(u16, Message)>, ServiceError> {
        Ok(self.tick())
    }

    /// Current normalized rate of an active flowlet, Gbit/s.
    fn flow_rate_gbps(&self, token: Token) -> Option<f64>;

    /// Number of active flowlets.
    fn active_flows(&self) -> usize;

    /// Operating counters (aggregated over shards, where applicable).
    fn stats(&self) -> ServiceStats;

    /// Cumulative per-phase wall time (aggregated over shards, where
    /// applicable). The default reports zeros for drivers that do not
    /// instrument their phases.
    fn phase_timings(&self) -> PhaseTimings {
        PhaseTimings::default()
    }

    /// Per-link loads of the control plane's current raw allocation,
    /// indexed by global [`LinkId`](flowtune_topo::LinkId) (summed over
    /// shards, where applicable). Empty when the engine does not price
    /// fabric links (Fastpass). Powers the over-allocation telemetry of
    /// the Figure-12 experiment and capacity assertions in tests.
    fn link_loads(&self) -> Vec<f64>;

    /// The fabric this control plane serves.
    fn fabric(&self) -> &TwoTierClos;

    /// Short engine name (`serial` / `multicore` / `fastpass` /
    /// `gradient` / `sharded`).
    fn engine_name(&self) -> &'static str;
}

/// A run-time-chosen control plane (plain or sharded, any engine).
pub type BoxTickDriver = Box<dyn TickDriver>;

impl TickDriver for BoxTickDriver {
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        (**self).on_message(msg)
    }

    fn tick(&mut self) -> Vec<(u16, Message)> {
        (**self).tick()
    }

    fn try_tick(&mut self) -> Result<Vec<(u16, Message)>, ServiceError> {
        (**self).try_tick()
    }

    fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        (**self).flow_rate_gbps(token)
    }

    fn active_flows(&self) -> usize {
        (**self).active_flows()
    }

    fn stats(&self) -> ServiceStats {
        (**self).stats()
    }

    fn phase_timings(&self) -> PhaseTimings {
        (**self).phase_timings()
    }

    fn link_loads(&self) -> Vec<f64> {
        (**self).link_loads()
    }

    fn fabric(&self) -> &TwoTierClos {
        (**self).fabric()
    }

    fn engine_name(&self) -> &'static str {
        (**self).engine_name()
    }
}

impl<E: RateAllocator> TickDriver for AllocatorService<E> {
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        AllocatorService::on_message(self, msg)
    }

    fn tick(&mut self) -> Vec<(u16, Message)> {
        AllocatorService::tick(self)
    }

    fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        AllocatorService::flow_rate_gbps(self, token)
    }

    fn active_flows(&self) -> usize {
        AllocatorService::active_flows(self)
    }

    fn stats(&self) -> ServiceStats {
        AllocatorService::stats(self)
    }

    fn phase_timings(&self) -> PhaseTimings {
        AllocatorService::phase_timings(self)
    }

    fn link_loads(&self) -> Vec<f64> {
        AllocatorService::link_loads(self)
    }

    fn fabric(&self) -> &TwoTierClos {
        AllocatorService::fabric(self)
    }

    fn engine_name(&self) -> &'static str {
        AllocatorService::engine_name(self)
    }
}

/// The per-tick callback [`TickLoop::run_wall`] hands each tick's update
/// stream to, together with the driver for rate queries.
pub type UpdateSink<'a, D> = dyn FnMut(&mut D, Vec<(u16, Message)>) + 'a;

/// A [`TickDriver`] plus its tick cadence: the adapter that owns *when*
/// the allocator ticks, so embedders stop hand-rolling sleep loops.
///
/// The loop is clocked in **picoseconds on the caller's time base** —
/// simulated time (the fluid driver polls it with its simulation clock)
/// or wall time (map `Instant::elapsed()` to ps, or use
/// [`TickLoop::run_wall`]). This is what makes it async-friendly: an
/// event-loop embedder sleeps (or `await`s a timer) until
/// [`TickLoop::next_tick_ps`], then calls [`TickLoop::poll`] — no thread
/// is parked inside this type, and `poll` never blocks. A poll that
/// arrives late catches up one tick per call, so
/// `while let Some(updates) = tick_loop.poll(now_ps) { … }` runs exactly
/// the ticks the cadence owed at `now_ps`.
#[derive(Debug)]
pub struct TickLoop<D: TickDriver = BoxTickDriver> {
    driver: D,
    interval_ps: u64,
    next_ps: u64,
    ticks: u64,
}

impl<D: TickDriver> TickLoop<D> {
    /// Wraps `driver` with a tick every `interval_ps` picoseconds (§6.2:
    /// 10 µs = 10 000 000 ps; see
    /// [`FlowtuneConfig::tick_interval_ps`](crate::FlowtuneConfig)). The
    /// first tick is due at time 0.
    ///
    /// # Panics
    /// Panics if `interval_ps` is 0.
    pub fn new(driver: D, interval_ps: u64) -> Self {
        assert!(interval_ps > 0, "a tick cadence needs a nonzero interval");
        Self {
            driver,
            interval_ps,
            next_ps: 0,
            ticks: 0,
        }
    }

    /// The tick interval, ps.
    pub fn interval_ps(&self) -> u64 {
        self.interval_ps
    }

    /// When the next tick is due, ps on the caller's time base.
    pub fn next_tick_ps(&self) -> u64 {
        self.next_ps
    }

    /// Ticks driven so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The wrapped driver (message intake goes through here:
    /// `tick_loop.driver_mut().on_message(…)`).
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Mutable access to the wrapped driver.
    pub fn driver_mut(&mut self) -> &mut D {
        &mut self.driver
    }

    /// Unwraps the driver.
    pub fn into_driver(self) -> D {
        self.driver
    }

    /// Runs one tick if one is due at `now_ps`, returning its update
    /// stream; `None` means the cadence owes nothing yet (call again at
    /// [`TickLoop::next_tick_ps`]). When `now_ps` has overshot several
    /// intervals, each call pays off one owed tick, so a catch-up loop
    /// (`while let Some(…) = poll(now_ps)`) restores the cadence.
    pub fn poll(&mut self, now_ps: u64) -> Option<Vec<(u16, Message)>> {
        if now_ps < self.next_ps {
            return None;
        }
        self.next_ps += self.interval_ps;
        self.ticks += 1;
        Some(self.driver.tick())
    }

    /// Drives the cadence against the wall clock for `duration`,
    /// sleeping between ticks and handing every tick's updates (with the
    /// driver, for rate queries) to `sink` — the blocking convenience
    /// for embedders without an event loop of their own.
    pub fn run_wall(&mut self, duration: std::time::Duration, sink: &mut UpdateSink<'_, D>) {
        let t0 = std::time::Instant::now();
        let origin = self.next_ps;
        let horizon = duration.as_nanos().saturating_mul(1000) as u64;
        loop {
            let elapsed = (t0.elapsed().as_nanos().saturating_mul(1000) as u64).min(horizon);
            let now_ps = origin + elapsed;
            while let Some(updates) = self.poll(now_ps) {
                sink(&mut self.driver, updates);
            }
            if elapsed >= horizon {
                return;
            }
            let wait_ps = self.next_ps.saturating_sub(now_ps);
            std::thread::sleep(std::time::Duration::from_nanos(wait_ps.div_ceil(1000)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowtuneConfig;
    use flowtune_topo::ClosConfig;

    fn service() -> AllocatorService {
        let fabric = TwoTierClos::build(ClosConfig::paper_eval());
        AllocatorService::new(&fabric, FlowtuneConfig::default())
    }

    fn start(token: u32) -> Message {
        Message::FlowletStart {
            token: Token::new(token),
            src: 0,
            dst: 140,
            size_hint: 1,
            weight_q8: 256,
            spine: 1,
        }
    }

    #[test]
    fn allocator_service_is_a_tick_driver() {
        let fabric = TwoTierClos::build(ClosConfig::paper_eval());
        let svc = AllocatorService::new(&fabric, FlowtuneConfig::default());
        let mut drv: BoxTickDriver = Box::new(svc);
        drv.on_message(Message::FlowletStart {
            token: Token::new(1),
            src: 0,
            dst: 140,
            size_hint: 1,
            weight_q8: 256,
            spine: 1,
        })
        .unwrap();
        assert_eq!(drv.active_flows(), 1);
        assert_eq!(drv.tick().len(), 1);
        assert!(drv.flow_rate_gbps(Token::new(1)).unwrap() > 0.0);
        assert_eq!(drv.engine_name(), "serial");
        assert_eq!(drv.fabric().config().server_count(), 144);
        assert_eq!(drv.stats().starts, 1);
        // The default fallible tick simply runs the tick.
        assert!(drv.try_tick().is_ok());
    }

    #[test]
    fn tick_loop_owes_one_tick_per_interval() {
        let mut tl = TickLoop::new(service(), 10);
        tl.driver_mut().on_message(start(1)).unwrap();
        // Nothing owed before time 0 is polled; the first poll at 0 ticks.
        assert_eq!(tl.next_tick_ps(), 0);
        let updates = tl.poll(0).expect("tick due at 0");
        assert_eq!(updates.len(), 1);
        assert_eq!(tl.ticks(), 1);
        assert_eq!(tl.next_tick_ps(), 10);
        // Not due yet.
        assert!(tl.poll(5).is_none());
        assert_eq!(tl.ticks(), 1);
        // Exactly due.
        assert!(tl.poll(10).is_some());
        assert_eq!(tl.ticks(), 2);
        // A late poll catches up one owed tick per call.
        let mut caught_up = 0;
        while tl.poll(55).is_some() {
            caught_up += 1;
        }
        assert_eq!(caught_up, 4, "ticks at 20, 30, 40, 50");
        assert_eq!(tl.next_tick_ps(), 60);
        assert_eq!(tl.driver().stats().iterations, tl.ticks());
    }

    #[test]
    fn tick_loop_run_wall_drives_the_cadence() {
        // A coarse 2 ms interval keeps the assertion robust on loaded
        // machines: over 11 ms the catch-up loop owes 5–6 ticks and can
        // never run more than duration/interval + 1.
        let mut tl = TickLoop::new(service(), 2_000_000_000);
        tl.driver_mut().on_message(start(1)).unwrap();
        let mut polled = 0u64;
        tl.run_wall(std::time::Duration::from_millis(11), &mut |drv, _| {
            polled += 1;
            assert!(drv.flow_rate_gbps(Token::new(1)).is_some());
        });
        assert_eq!(polled, tl.ticks());
        assert!((5..=6).contains(&tl.ticks()), "{} ticks", tl.ticks());
    }

    #[test]
    #[should_panic(expected = "nonzero interval")]
    fn tick_loop_rejects_zero_interval() {
        let _ = TickLoop::new(service(), 0);
    }
}
