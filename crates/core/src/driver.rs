//! The tick-driver abstraction over allocator control planes.
//!
//! [`TickDriver`] is the contract embedders program against: something
//! that consumes flowlet notifications and, on every 10 µs tick, produces
//! `(source server, rate update)` pairs. Two implementations exist:
//!
//! * [`AllocatorService`] — one service, one engine (the Figure-1 box);
//! * [`ShardedService`](crate::ShardedService) — N inner services, the
//!   endpoint space partitioned across them.
//!
//! The network simulator, the fluid-model driver and the experiment
//! binaries all hold a [`BoxTickDriver`] obtained from
//! [`ServiceBuilder::build_driver`](crate::ServiceBuilder::build_driver),
//! so "how many shards" is a run-time configuration like the engine
//! choice, not a compile-time fork.

use flowtune_alloc::RateAllocator;
use flowtune_proto::{Message, Token};
use flowtune_topo::TwoTierClos;

use crate::service::{AllocatorService, ServiceError, ServiceStats};

/// A control plane with an allocator tick: notifications in, rate updates
/// out, behind either one [`AllocatorService`] or a
/// [`ShardedService`](crate::ShardedService).
pub trait TickDriver: std::fmt::Debug + Send {
    /// Handles an endpoint notification (see
    /// [`AllocatorService::on_message`]).
    ///
    /// # Errors
    /// [`ServiceError`] when the message is corrupt or inconsistent; the
    /// message is dropped and counted, the driver stays consistent.
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError>;

    /// One allocator tick (§6.2: every 10 µs): runs the engine(s) and
    /// returns `(source server, update)` pairs in ascending token order.
    fn tick(&mut self) -> Vec<(u16, Message)>;

    /// Current normalized rate of an active flowlet, Gbit/s.
    fn flow_rate_gbps(&self, token: Token) -> Option<f64>;

    /// Number of active flowlets.
    fn active_flows(&self) -> usize;

    /// Operating counters (aggregated over shards, where applicable).
    fn stats(&self) -> ServiceStats;

    /// Per-link loads of the control plane's current raw allocation,
    /// indexed by global [`LinkId`](flowtune_topo::LinkId) (summed over
    /// shards, where applicable). Empty when the engine does not price
    /// fabric links (Fastpass). Powers the over-allocation telemetry of
    /// the Figure-12 experiment and capacity assertions in tests.
    fn link_loads(&self) -> Vec<f64>;

    /// The fabric this control plane serves.
    fn fabric(&self) -> &TwoTierClos;

    /// Short engine name (`serial` / `multicore` / `fastpass` /
    /// `gradient` / `sharded`).
    fn engine_name(&self) -> &'static str;
}

/// A run-time-chosen control plane (plain or sharded, any engine).
pub type BoxTickDriver = Box<dyn TickDriver>;

impl<E: RateAllocator> TickDriver for AllocatorService<E> {
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        AllocatorService::on_message(self, msg)
    }

    fn tick(&mut self) -> Vec<(u16, Message)> {
        AllocatorService::tick(self)
    }

    fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        AllocatorService::flow_rate_gbps(self, token)
    }

    fn active_flows(&self) -> usize {
        AllocatorService::active_flows(self)
    }

    fn stats(&self) -> ServiceStats {
        AllocatorService::stats(self)
    }

    fn link_loads(&self) -> Vec<f64> {
        AllocatorService::link_loads(self)
    }

    fn fabric(&self) -> &TwoTierClos {
        AllocatorService::fabric(self)
    }

    fn engine_name(&self) -> &'static str {
        AllocatorService::engine_name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowtuneConfig;
    use flowtune_topo::ClosConfig;

    #[test]
    fn allocator_service_is_a_tick_driver() {
        let fabric = TwoTierClos::build(ClosConfig::paper_eval());
        let svc = AllocatorService::new(&fabric, FlowtuneConfig::default());
        let mut drv: BoxTickDriver = Box::new(svc);
        drv.on_message(Message::FlowletStart {
            token: Token::new(1),
            src: 0,
            dst: 140,
            size_hint: 1,
            weight_q8: 256,
            spine: 1,
        })
        .unwrap();
        assert_eq!(drv.active_flows(), 1);
        assert_eq!(drv.tick().len(), 1);
        assert!(drv.flow_rate_gbps(Token::new(1)).unwrap() > 0.0);
        assert_eq!(drv.engine_name(), "serial");
        assert_eq!(drv.fabric().config().server_count(), 144);
        assert_eq!(drv.stats().starts, 1);
    }
}
