//! The per-shard core of the link-state exchange, factored so the
//! in-process [`crate::ShardedService`] and a distributed shard peer run
//! the *same* arithmetic over the *same* serialized frames.
//!
//! One exchange round is three calls on every shard's core:
//!
//! 1. [`ExchangeCore::begin_round`] — delta-filter the shard's fresh
//!    link-state export against its last-shipped table and append one
//!    [`FrameKind::State`](flowtune_proto::exchange::FrameKind) frame
//!    (subscription deltas, moved entries, catch-up entries after a
//!    resync) to a caller-owned flat buffer. No allocation once the
//!    buffer and tables are warm.
//! 2. [`ExchangeCore::apply_frame`] — decode every *other* shard's frame
//!    and update the local replica of that shard's last-shipped table.
//! 3. [`ExchangeCore::install`] — recompute the aggregation the paper's
//!    §5 step runs at the hub (background load/Hessian sums, the
//!    load-weighted dual consensus) from the replicas and install it
//!    into the shard's [`AllocatorService`].
//!
//! The protocol on the wire is a **mesh broadcast**: every shard ships
//! its moved entries to every peer and keeps full replicas of the
//! others' shipped tables, so each peer recomputes the hub aggregation
//! locally and needs nothing from the others beyond their frames —
//! which is what makes the distributed exchange bit-for-bit identical
//! to the in-process one. The *logical* byte accounting retained in
//! [`ServiceStats::exchange_bytes`](crate::ServiceStats) still models
//! the subscription-pruned hub protocol (aggregated entries down, 4+8·v
//! bytes per entry) exactly as the in-process service always counted
//! it; the broadcast's real cost is reported separately by the
//! transports as on-wire bytes.

use flowtune_alloc::RateAllocator;
use flowtune_proto::exchange::{
    encode_header, encode_record, FrameError, FrameHeader, FrameKind, Record, RecordIter,
};

use crate::service::AllocatorService;

/// Logical bytes of one shipped exchange entry: a 4-byte link id plus 8
/// bytes per 64-bit vector element riding along (loads and duals always;
/// Hessian diagonals only for second-order engines).
pub(crate) fn entry_bytes(vectors: u64) -> u64 {
    4 + 8 * vectors
}

/// Why a received frame could not be applied: either it failed to
/// decode, or it decoded to values that cannot be valid in this cluster
/// (a shard or link index out of range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// The frame failed to decode.
    Frame(FrameError),
    /// The sender's shard id is not in this cluster (or is the
    /// receiver's own).
    BadShard {
        /// The shard id found in the header.
        shard: u16,
    },
    /// A record names a link outside the frame's own `n_links`.
    BadLink {
        /// The link index found.
        link: u32,
    },
}

impl From<FrameError> for ApplyError {
    fn from(e: FrameError) -> Self {
        ApplyError::Frame(e)
    }
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ApplyError::Frame(e) => write!(f, "{e}"),
            ApplyError::BadShard { shard } => write!(f, "frame from out-of-range shard {shard}"),
            ApplyError::BadLink { link } => write!(f, "record names out-of-range link {link}"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// One shard's replica of another shard's last-shipped link state (its
/// own at its own index). Empty vectors mean that shard has never
/// exported (engines that do not price fabric links).
#[derive(Debug, Default)]
struct Replica {
    loads: Vec<f64>,
    hessians: Vec<f64>,
    prices: Vec<f64>,
    /// That shard's announced subscriptions (informational; the install
    /// math uses fresh exports, not announcements).
    subs: Vec<bool>,
}

fn nonzero_at(replica: &Replica, l: usize) -> bool {
    replica.loads.get(l).is_some_and(|&v| v != 0.0)
        || replica.prices.get(l).is_some_and(|&v| v != 0.0)
        || replica.hessians.get(l).is_some_and(|&v| v != 0.0)
}

// Write one decoded state word into a replica column, or report the
// record's link as bad when the column was never grown that far (an
// inactive frame smuggling records must not become an OOB write).
fn write_state(column: &mut [f64], l: usize, value: f64, link: u32) -> Result<(), ApplyError> {
    match column.get_mut(l) {
        Some(slot) => {
            *slot = value;
            Ok(())
        }
        None => Err(ApplyError::BadLink { link }),
    }
}

/// Per-shard state machine of the exchange protocol (see the module
/// docs). Owned by the in-process [`crate::ShardedService`] (one per
/// shard) and by each distributed `ShardPeer` (exactly one).
#[derive(Debug)]
pub struct ExchangeCore {
    shard: u16,
    eps: f64,
    /// Replicas of every shard's last-shipped table, own included.
    replicas: Vec<Replica>,
    /// Own subscription mask from the previous exchange round (the
    /// catch-up accounting's "was I subscribed then" bit). Only updated
    /// on rounds this shard is active, mirroring the in-process service.
    sub_prev: Vec<bool>,
    /// Own announced subscriptions — what the *wire* last carried, as
    /// opposed to `sub_prev` which follows the accounting's cadence.
    announced: Vec<bool>,
    /// Re-ship unmoved non-zero entries on the next round (set after a
    /// placement epoch, or to bootstrap a restarted peer's replicas).
    resync_pending: bool,
    // ---- per-round state, valid from begin_round to install ----
    /// Link-vector length this round: own export's length, maxed with
    /// every applied frame's header. Round-scoped so a round in which
    /// every shard exports nothing is recognized (and not counted).
    round_links: usize,
    own_active: bool,
    own_has_h: bool,
    /// Whether any shard's frame carried Hessians this round.
    any_h: bool,
    /// Own entries shipped this round (outbound accounting).
    own_shipped: u64,
    /// Own dirty marks this round.
    own_dirty: Vec<bool>,
    /// Per-link count of shards that shipped the link this round (own
    /// dirty marks plus received link-state records).
    dirty_count: Vec<u32>,
    /// Own fresh subscription mask this round (positive fresh load).
    fresh_sub: Vec<bool>,
    // ---- install scratch, reused every round ----
    bg: Vec<f64>,
    weight: Vec<f64>,
    num: Vec<f64>,
    state_count: Vec<u32>,
}

impl ExchangeCore {
    /// A core for shard `shard` of `shard_count`, with the delta
    /// filter's threshold `eps` (clamped at 0).
    ///
    /// # Panics
    /// Panics if `shard` is not less than `shard_count`.
    pub fn new(shard: u16, shard_count: usize, eps: f64) -> Self {
        assert!(
            (shard as usize) < shard_count,
            "shard {shard} out of range for {shard_count} shards"
        );
        ExchangeCore {
            shard,
            eps: eps.max(0.0),
            replicas: (0..shard_count).map(|_| Replica::default()).collect(),
            sub_prev: Vec::new(),
            announced: Vec::new(),
            resync_pending: false,
            round_links: 0,
            own_active: false,
            own_has_h: false,
            any_h: false,
            own_shipped: 0,
            own_dirty: Vec::new(),
            dirty_count: Vec::new(),
            fresh_sub: Vec::new(),
            bg: Vec::new(),
            weight: Vec::new(),
            num: Vec::new(),
            state_count: Vec::new(),
        }
    }

    /// This core's shard id.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Number of shards in the cluster.
    pub fn shard_count(&self) -> usize {
        self.replicas.len()
    }

    /// Request that the next round's frame carry catch-up records for
    /// every non-zero entry that the delta filter would otherwise skip —
    /// re-seeding peers whose replicas may predate this shard's state
    /// (after a placement epoch, or when a restarted peer rejoins).
    pub fn request_resync(&mut self) {
        self.resync_pending = true;
    }

    /// Start an exchange round: delta-filter the fresh export
    /// (`loads`/`hessians`/`prices`, all the same length or `hessians`
    /// empty; all empty when the engine prices no links) against the
    /// last-shipped table and append this shard's state frame to `out`.
    /// Returns the frame's length in bytes.
    pub fn begin_round(
        &mut self,
        round: u64,
        loads: &[f64],
        hessians: &[f64],
        prices: &[f64],
        out: &mut Vec<u8>,
    ) -> usize {
        let start = out.len();
        let n = loads.len();
        let active = n > 0;
        let has_h = !hessians.is_empty();
        self.round_links = n;
        self.own_active = active;
        self.own_has_h = has_h;
        self.any_h = has_h;
        self.own_shipped = 0;
        self.own_dirty.clear();
        self.own_dirty.resize(n, false);
        self.dirty_count.clear();
        self.dirty_count.resize(n, 0);
        self.fresh_sub.clear();
        self.fresh_sub.extend(loads.iter().map(|&v| v > 0.0));
        encode_header(
            &FrameHeader {
                kind: FrameKind::State,
                shard: self.shard,
                round,
                n_links: n as u32,
                active,
                has_hessians: has_h,
            },
            out,
        );
        if !active {
            return out.len() - start;
        }
        debug_assert!(!has_h || hessians.len() == n, "short hessian export");
        debug_assert_eq!(prices.len(), n, "short price export");
        // Subscription deltas: announce the links this shard started or
        // stopped carrying load on since its last announcement.
        self.announced.resize(n, false);
        for l in 0..n {
            if self.fresh_sub[l] != self.announced[l] {
                let rec = if self.fresh_sub[l] {
                    Record::SubAdd { link: l as u32 }
                } else {
                    Record::SubRemove { link: l as u32 }
                };
                encode_record(&rec, has_h, out);
                self.announced[l] = self.fresh_sub[l];
            }
        }
        let own = &mut self.replicas[self.shard as usize];
        own.subs.clear();
        own.subs.extend_from_slice(&self.fresh_sub);
        own.loads.resize(n, 0.0);
        own.prices.resize(n, 0.0);
        if has_h {
            own.hessians.resize(n, 0.0);
        }
        // Delta filter: the whole entry is keyed — load, dual, and
        // Hessian — so a link whose dual keeps decaying while its load
        // sits still is still re-shipped (see the sharded module docs).
        for l in 0..n {
            let moved = (loads[l] - own.loads[l]).abs() > self.eps
                || (prices[l] - own.prices[l]).abs() > self.eps
                || (has_h && (hessians[l] - own.hessians[l]).abs() > self.eps);
            if moved {
                own.loads[l] = loads[l];
                own.prices[l] = prices[l];
                if has_h {
                    own.hessians[l] = hessians[l];
                }
                self.own_dirty[l] = true;
                self.dirty_count[l] += 1;
                self.own_shipped += 1;
                encode_record(
                    &Record::LinkState {
                        link: l as u32,
                        load: loads[l],
                        dual: prices[l],
                        hessian: if has_h { hessians[l] } else { 0.0 },
                    },
                    has_h,
                    out,
                );
            }
        }
        if self.resync_pending {
            // Catch-up: re-ship what the filter skipped but a peer with
            // stale replicas would be missing. Receivers apply these
            // idempotently (they set, not accumulate).
            for l in 0..n {
                if self.own_dirty[l] || !nonzero_at(own, l) {
                    continue;
                }
                encode_record(
                    &Record::CatchUp {
                        link: l as u32,
                        load: own.loads[l],
                        dual: own.prices[l],
                        hessian: if has_h { own.hessians[l] } else { 0.0 },
                    },
                    has_h,
                    out,
                );
            }
            self.resync_pending = false;
        }
        out.len() - start
    }

    /// Apply another shard's state frame to its local replica. Epoch
    /// frames are ignored (they are routed to the flow-migration path
    /// by the peer runtime before reaching the core).
    ///
    /// # Errors
    /// [`ApplyError`] if the frame fails to decode or names a shard or
    /// link this cluster does not have; the replica keeps whatever the
    /// frame carried up to the error (a re-ship heals it).
    pub fn apply_frame(&mut self, frame: &[u8]) -> Result<(), ApplyError> {
        let (header, records) = RecordIter::new(frame)?;
        if header.kind != FrameKind::State {
            return Ok(());
        }
        if header.shard == self.shard || header.shard as usize >= self.replicas.len() {
            return Err(ApplyError::BadShard {
                shard: header.shard,
            });
        }
        let n = header.n_links as usize;
        self.round_links = self.round_links.max(n);
        if self.dirty_count.len() < self.round_links {
            self.dirty_count.resize(self.round_links, 0);
        }
        self.any_h |= header.has_hessians;
        // flowtune-lint: allow(panic, "bounded: header.shard < replicas.len() checked above")
        let replica = &mut self.replicas[header.shard as usize];
        if header.active {
            replica.loads.resize(n.max(replica.loads.len()), 0.0);
            replica.prices.resize(n.max(replica.prices.len()), 0.0);
            if header.has_hessians {
                replica.hessians.resize(n.max(replica.hessians.len()), 0.0);
            }
        }
        for record in records {
            match record.map_err(ApplyError::from)? {
                Record::LinkState {
                    link,
                    load,
                    dual,
                    hessian,
                } => {
                    let l = link as usize;
                    if l >= n {
                        return Err(ApplyError::BadLink { link });
                    }
                    // An inactive frame never resized the replica, so a
                    // record slipping past `n` on such a frame must be
                    // an error, not an out-of-bounds write.
                    write_state(&mut replica.loads, l, load, link)?;
                    write_state(&mut replica.prices, l, dual, link)?;
                    if header.has_hessians {
                        write_state(&mut replica.hessians, l, hessian, link)?;
                    }
                    // flowtune-lint: allow(panic, "bounded: dirty_count resized to round_links >= n above")
                    self.dirty_count[l] += 1;
                }
                Record::CatchUp {
                    link,
                    load,
                    dual,
                    hessian,
                } => {
                    // Same as link-state but not fresh movement: it does
                    // not count toward this round's dirty marks.
                    let l = link as usize;
                    if l >= n {
                        return Err(ApplyError::BadLink { link });
                    }
                    write_state(&mut replica.loads, l, load, link)?;
                    write_state(&mut replica.prices, l, dual, link)?;
                    if header.has_hessians {
                        write_state(&mut replica.hessians, l, hessian, link)?;
                    }
                }
                Record::SubAdd { link } => {
                    let l = link as usize;
                    if l >= n {
                        return Err(ApplyError::BadLink { link });
                    }
                    if replica.subs.len() < n {
                        replica.subs.resize(n, false);
                    }
                    // flowtune-lint: allow(panic, "bounded: subs resized to n, l < n checked above")
                    replica.subs[l] = true;
                }
                Record::SubRemove { link } => {
                    let l = link as usize;
                    if l >= n {
                        return Err(ApplyError::BadLink { link });
                    }
                    if replica.subs.len() < n {
                        replica.subs.resize(n, false);
                    }
                    // flowtune-lint: allow(panic, "bounded: subs resized to n, l < n checked above")
                    replica.subs[l] = false;
                }
                // State frames do not carry epoch records; tolerate and
                // skip them if a mixed frame ever arrives.
                Record::EpochBegin { .. } | Record::Migration { .. } => {}
            }
        }
        Ok(())
    }

    /// Finish the round: recompute the background load/Hessian sums and
    /// the load-weighted dual consensus from the replicas and install
    /// them into `svc` (this shard's service). Returns the round's
    /// logical exchange bytes for this shard (own entries out plus
    /// subscribed entries in — the hub-model accounting), or `None` when
    /// no shard exported any links this round (the round does not
    /// count).
    pub fn install<E: RateAllocator>(&mut self, svc: &mut AllocatorService<E>) -> Option<u64> {
        let n_links = self.round_links;
        if n_links == 0 {
            return None;
        }
        let me = self.shard as usize;

        // Load aggregation: Σ of the *other* shards' shipped loads on
        // this shard's subscribed links (zero elsewhere — no knowledge,
        // and the local dual just decays as if idle).
        self.bg.clear();
        self.bg.resize(n_links, 0.0);
        for (j, replica) in self.replicas.iter().enumerate() {
            if j == me || replica.loads.is_empty() {
                continue;
            }
            debug_assert_eq!(replica.loads.len(), n_links, "short replica of shard {j}");
            for (acc, x) in self.bg.iter_mut().zip(&replica.loads) {
                *acc += x;
            }
        }
        for l in 0..n_links {
            if !self.fresh_sub.get(l).copied().unwrap_or(false) {
                self.bg[l] = 0.0;
            }
        }
        svc.set_background_loads(&self.bg);

        // Hessian aggregation (engines without a second-order term
        // export nothing and receive nothing).
        if self.any_h && self.own_has_h {
            self.bg.clear();
            self.bg.resize(n_links, 0.0);
            for (j, replica) in self.replicas.iter().enumerate() {
                if j == me || replica.hessians.is_empty() {
                    continue;
                }
                debug_assert_eq!(
                    replica.hessians.len(),
                    n_links,
                    "short Hessian replica of shard {j}"
                );
                for (acc, x) in self.bg.iter_mut().zip(&replica.hessians) {
                    *acc += x;
                }
            }
            for l in 0..n_links {
                if !self.fresh_sub.get(l).copied().unwrap_or(false) {
                    self.bg[l] = 0.0;
                }
            }
            svc.set_background_hessians(&self.bg);
        }

        // Dual consensus: load-weighted mean price per loaded link, from
        // the replicas (own included). The same scan counts, per link,
        // how many shards hold any non-zero shipped state there — what a
        // new subscriber would have to be caught up on.
        self.bg.clear();
        self.bg.resize(n_links, f64::NAN);
        self.weight.clear();
        self.weight.resize(n_links, 0.0);
        self.num.clear();
        self.num.resize(n_links, 0.0);
        self.state_count.clear();
        self.state_count.resize(n_links, 0);
        for replica in &self.replicas {
            if replica.loads.is_empty() {
                continue;
            }
            for l in 0..n_links {
                if replica.loads[l] > 0.0 {
                    self.num[l] += replica.loads[l] * replica.prices[l];
                    self.weight[l] += replica.loads[l];
                }
                if replica.loads[l] != 0.0
                    || replica.prices[l] != 0.0
                    || replica.hessians.get(l).is_some_and(|&h| h != 0.0)
                {
                    self.state_count[l] += 1;
                }
            }
        }
        self.sub_prev.resize(n_links, false);
        for l in 0..n_links {
            if self.weight[l] > 0.0 {
                self.bg[l] = self.num[l] / self.weight[l];
            }
        }

        // Outbound logical bytes: id + load + dual (+ Hessian) per
        // entry this shard shipped.
        let mut bytes = self.own_shipped * entry_bytes(2 + u64::from(self.own_has_h));

        if self.own_active {
            // Consensus duals install (and count) only on links this
            // shard prices; elsewhere NaN keeps its own decaying dual.
            self.num.clear();
            let bg = &self.bg;
            let fresh_sub = &self.fresh_sub;
            self.num
                .extend((0..n_links).map(|l| if fresh_sub[l] { bg[l] } else { f64::NAN }));
            svc.set_link_prices(&self.num);
            // Inbound logical bytes (the hub model): one aggregated
            // entry per subscribed link that some *other* shard
            // re-shipped this round — or, on a newly subscribed link, a
            // catch-up entry for the state other shards already hold.
            let own = &self.replicas[me];
            let recv = (0..n_links)
                .filter(|&l| {
                    if !self.fresh_sub[l] {
                        return false;
                    }
                    let fresh = self.dirty_count[l] > u32::from(self.own_dirty[l]);
                    let others_hold_state = self.state_count[l] > u32::from(nonzero_at(own, l));
                    fresh || (!self.sub_prev[l] && others_hold_state)
                })
                .count() as u64;
            self.sub_prev.copy_from_slice(&self.fresh_sub);
            bytes += recv * entry_bytes(2 + u64::from(self.own_has_h && self.any_h));
        }
        Some(bytes)
    }

    /// Per-link count of shards that shipped the link this round (own
    /// dirty marks plus received link-state records) — identical at
    /// every core after a full round, and what the routing layer folds
    /// into its cumulative shipped-counts signal.
    pub fn round_ship_counts(&self) -> &[u32] {
        &self.dirty_count
    }

    /// Total links across all shards' announced subscriptions — a
    /// visibility counter for peer telemetry.
    pub fn announced_subscriptions(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| r.subs.iter().filter(|&&s| s).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run one full round across a set of cores given each shard's fresh
    /// exports, returning each core's logical bytes.
    fn round(
        cores: &mut [ExchangeCore],
        round_no: u64,
        exports: &[(Vec<f64>, Vec<f64>, Vec<f64>)],
        svcs: &mut [AllocatorService],
    ) -> Vec<Option<u64>> {
        let n = cores.len();
        let mut buf = Vec::new();
        let mut offs = vec![0usize];
        for (i, core) in cores.iter_mut().enumerate() {
            let (loads, hessians, prices) = &exports[i];
            core.begin_round(round_no, loads, hessians, prices, &mut buf);
            offs.push(buf.len());
        }
        for (j, core) in cores.iter_mut().enumerate() {
            for i in 0..n {
                if i != j {
                    core.apply_frame(&buf[offs[i]..offs[i + 1]]).unwrap();
                }
            }
        }
        cores
            .iter_mut()
            .zip(svcs.iter_mut())
            .map(|(c, s)| c.install(s))
            .collect()
    }

    fn two_svcs() -> (Vec<AllocatorService>, usize) {
        let fabric =
            flowtune_topo::TwoTierClos::build(flowtune_topo::ClosConfig::multicore(2, 2, 4));
        let links = fabric.topology().link_count();
        let svcs = (0..2)
            .map(|_| AllocatorService::new(&fabric, crate::FlowtuneConfig::default()))
            .collect();
        (svcs, links)
    }

    /// A full-fabric-length export with `(link, load, price)` spikes.
    fn export(links: usize, spikes: &[(usize, f64, f64)]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut loads = vec![0.0; links];
        let mut prices = vec![0.0; links];
        for &(l, load, price) in spikes {
            loads[l] = load;
            prices[l] = price;
        }
        (loads, Vec::new(), prices)
    }

    #[test]
    fn empty_exports_do_not_count_a_round() {
        let mut cores = vec![ExchangeCore::new(0, 2, 0.0), ExchangeCore::new(1, 2, 0.0)];
        let (mut svcs, _) = two_svcs();
        let exports = vec![
            (Vec::new(), Vec::new(), Vec::new()),
            (Vec::new(), Vec::new(), Vec::new()),
        ];
        let bytes = round(&mut cores, 1, &exports, &mut svcs);
        assert_eq!(bytes, vec![None, None]);
    }

    #[test]
    fn replicas_converge_and_deltas_stop() {
        let mut cores = vec![ExchangeCore::new(0, 2, 0.0), ExchangeCore::new(1, 2, 0.0)];
        let (mut svcs, links) = two_svcs();
        let exports = vec![
            export(links, &[(0, 1.0, 0.5)]),
            export(links, &[(1, 2.0, 0.25)]),
        ];
        let bytes1 = round(&mut cores, 1, &exports, &mut svcs);
        // Round 1: each ships its one moved entry (out 20) and receives
        // nothing it subscribes to (disjoint links).
        assert_eq!(bytes1, vec![Some(20), Some(20)]);
        // Round 2 with identical exports: nothing moves, nothing ships.
        let bytes2 = round(&mut cores, 2, &exports, &mut svcs);
        assert_eq!(bytes2, vec![Some(0), Some(0)]);
        // Each core's replica of the other now matches what was shipped.
        assert_eq!(cores[0].replicas[1].loads[1], 2.0);
        assert_eq!(cores[1].replicas[0].loads[0], 1.0);
    }

    #[test]
    fn shared_link_pays_inbound_entries() {
        let mut cores = vec![ExchangeCore::new(0, 2, 0.0), ExchangeCore::new(1, 2, 0.0)];
        let (mut svcs, links) = two_svcs();
        let exports = vec![
            export(links, &[(0, 1.0, 0.5)]),
            export(links, &[(0, 2.0, 0.7)]),
        ];
        let bytes = round(&mut cores, 1, &exports, &mut svcs);
        // Each ships its entry (20) and receives the aggregated entry
        // for the shared link it subscribes to (20).
        assert_eq!(bytes, vec![Some(40), Some(40)]);
    }

    #[test]
    fn resync_emits_catch_up_without_recounting() {
        let mut cores = vec![ExchangeCore::new(0, 2, 0.0), ExchangeCore::new(1, 2, 0.0)];
        let (mut svcs, links) = two_svcs();
        let exports = vec![
            export(links, &[(0, 1.0, 0.5)]),
            export(links, &[(0, 2.0, 0.7)]),
        ];
        round(&mut cores, 1, &exports, &mut svcs);
        // Steady state: no movement, nothing shipped, nothing received.
        assert_eq!(
            round(&mut cores, 2, &exports, &mut svcs),
            vec![Some(0), Some(0)],
        );
        // A resync re-ships shard 0's entry as catch-up: replicas stay
        // identical and the logical accounting does not move.
        cores[0].request_resync();
        let mut buf = Vec::new();
        let len = cores[0].begin_round(4, &exports[0].0, &exports[0].1, &exports[0].2, &mut buf);
        assert!(len > flowtune_proto::exchange::FRAME_HEADER_BYTES);
        let before = cores[1].replicas[0].loads.clone();
        cores[1].begin_round(
            4,
            &exports[1].0,
            &exports[1].1,
            &exports[1].2,
            &mut Vec::new(),
        );
        cores[1].apply_frame(&buf).unwrap();
        assert_eq!(cores[1].replicas[0].loads, before);
        assert_eq!(cores[1].install(&mut svcs[1]), Some(0));
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        let mut core = ExchangeCore::new(0, 2, 0.0);
        assert!(matches!(
            core.apply_frame(&[0xFF; 4]),
            Err(ApplyError::Frame(_))
        ));
        // A frame claiming to be from an out-of-range shard.
        let mut buf = Vec::new();
        encode_header(
            &FrameHeader {
                kind: FrameKind::State,
                shard: 7,
                round: 1,
                n_links: 1,
                active: true,
                has_hessians: false,
            },
            &mut buf,
        );
        assert_eq!(
            core.apply_frame(&buf),
            Err(ApplyError::BadShard { shard: 7 })
        );
        // A record naming a link beyond the frame's own n_links.
        let mut buf = Vec::new();
        encode_header(
            &FrameHeader {
                kind: FrameKind::State,
                shard: 1,
                round: 1,
                n_links: 1,
                active: true,
                has_hessians: false,
            },
            &mut buf,
        );
        encode_record(
            &Record::LinkState {
                link: 5,
                load: 1.0,
                dual: 0.0,
                hessian: 0.0,
            },
            false,
            &mut buf,
        );
        assert_eq!(core.apply_frame(&buf), Err(ApplyError::BadLink { link: 5 }));
    }
}
