//! The sharded control plane: N independent allocator services, one slice
//! of the endpoint space each.
//!
//! The paper scales NED across cores of one machine (§5); the next scaling
//! step is to partition the *allocator itself* so independent fabric
//! blocks are served by independent services — the path to multi-socket
//! and multi-host allocators (cf. FairQ, arXiv:2401.04850: centralized
//! rate allocation survives at scale only when the allocator is
//! partitioned).
//!
//! [`ShardedService`] routes every `FlowletStart` to the shard that owns
//! its **source endpoint** (contiguous, equal server ranges; when the
//! shard count equals the fabric's block count a shard's range is exactly
//! one §5 block, so a shard's flows enter the fabric through its own
//! up-LinkBlock). Token-addressed messages (`FlowletEnd`) follow a
//! token→shard routing table. Each shard runs a full
//! [`AllocatorService`] over the whole fabric but sees only its own
//! flows; on [`ShardedService::tick`] the per-shard update streams —
//! each already token-ordered — are k-way merged into one token-ordered
//! stream, and [`ShardedService::stats`] aggregates the per-shard
//! counters.
//!
//! # Cross-shard link-state exchange
//!
//! Partitioning alone is exact (bit-for-bit) only for workloads whose
//! links each carry a single shard's flows. When shards *do* contend for
//! a link (e.g. a many-to-one incast from several blocks), each shard in
//! isolation would price the link for its own flows alone, and the merged
//! allocation could over-subscribe it by up to a factor of the shard
//! count — per-shard F-NORM bounds each shard's own contribution but not
//! the sum.
//!
//! The fix is the paper's §5 aggregation step, one level up: a periodic
//! **link-state exchange**. Every
//! [`FlowtuneConfig::exchange_every`](crate::FlowtuneConfig) ticks, each
//! shard exports its per-link loads and Hessian diagonals (the `(G, H)`
//! pair its own price update uses) and its per-link duals, and the
//! routing layer runs three consensus parts:
//!
//! * **load aggregation** — each shard imports the *other* shards' load
//!   sum as exogenous background load
//!   ([`flowtune_alloc::RateAllocator::set_background_loads`]), so its
//!   NED price gradient and F-NORM ratios see the true total utilization
//!   of shared links;
//! * **Hessian aggregation** — likewise for `Σ ∂x/∂p`
//!   ([`flowtune_alloc::RateAllocator::set_background_hessians`]), so
//!   the Newton step divides the global gradient by the *global*
//!   sensitivity; a shard using only its own diagonal takes steps
//!   multiplied by the shard count, which leaves NED's stable γ range;
//! * **dual consensus** — each loaded link's price is set to the
//!   load-weighted mean of the shards' duals
//!   ([`flowtune_alloc::RateAllocator::set_link_prices`]). Background
//!   terms alone pin only a shared link's *total* (any per-shard price
//!   split whose demands sum to capacity is stationary); agreeing on the
//!   dual makes the unsharded optimum the unique fixed point — §5's
//!   single authoritative LinkBlock owner, one level up.
//!
//! With the exchange running, a cross-shard incast converges to the same
//! per-flow rates as an unsharded service and no link stays
//! over-subscribed at steady state.
//!
//! The cadence is a staleness/bandwidth trade-off: between exchanges a
//! shard prices other shards' traffic at its last exported value, so
//! `exchange_every = 1` tracks cross-shard churn within a tick (at up to
//! `6 × 8 bytes × links` per exporting shard per round — counted in
//! [`ServiceStats::exchange_rounds`]/[`ServiceStats::exchange_bytes`]),
//! while larger cadences cut that traffic proportionally and lengthen the
//! window in which cross-shard churn is priced stale (F-NORM still bounds
//! the transient, now with a correct total on previously-seen load).
//! `exchange_every = 0` (the default) disables the exchange and preserves
//! the independent-shard behavior exactly; engines that do not price
//! fabric links (Fastpass) export nothing and the exchange degrades to a
//! no-op over them. With a single shard there is nothing to exchange and
//! the path is never taken, keeping one-shard deployments bit-for-bit
//! equal to the unsharded service.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use flowtune_alloc::{RateAllocator, SerialAllocator};
use flowtune_proto::{Message, Token};
use flowtune_topo::TwoTierClos;

use crate::driver::TickDriver;
use crate::service::{AllocatorService, ServiceError, ServiceStats};
use crate::FlowtuneConfig;

/// N independent [`AllocatorService`] shards behind one
/// [`TickDriver`] face.
#[derive(Debug)]
pub struct ShardedService<E: RateAllocator = SerialAllocator> {
    shards: Vec<AllocatorService<E>>,
    /// token → shard, for `FlowletEnd` routing and rate queries.
    route: HashMap<Token, u32>,
    servers: usize,
    /// Counters for messages the routing layer disposed of itself
    /// (duplicates, unknown ends, stray rate updates) and for the
    /// link-state exchange — folded into [`ShardedService::stats`] so the
    /// aggregate matches an unsharded service byte for byte (the exchange
    /// counters are zero whenever the exchange is off).
    local: ServiceStats,
    /// Exchange cadence in ticks, copied from the shards' shared
    /// configuration (0 = disabled).
    exchange_every: u64,
    /// Ticks driven so far (the exchange fires when `ticks` is a
    /// multiple of the cadence).
    ticks: u64,
    /// The current round's per-shard load exports (the outer vec is
    /// reused; the inner vectors are fresh allocations from
    /// [`AllocatorService::link_loads`] each round).
    exports: Vec<Vec<f64>>,
    /// Scratch, reused across rounds: the background (then consensus)
    /// vector assembled for the shards.
    bg: Vec<f64>,
    /// Scratch, reused across rounds: consensus weights (Σ loads).
    weight: Vec<f64>,
    /// Scratch, reused across rounds: consensus numerator (Σ load·price).
    num: Vec<f64>,
}

impl ShardedService {
    /// Builds `shards` serial-engine shards over `fabric` — the
    /// compile-time shortcut mirroring [`AllocatorService::new`].
    ///
    /// # Panics
    /// Panics if `shards` is 0.
    pub fn new(fabric: &TwoTierClos, cfg: FlowtuneConfig, shards: usize) -> Self {
        assert!(shards > 0, "a sharded service needs at least one shard");
        Self::from_shards(
            (0..shards)
                .map(|_| AllocatorService::new(fabric, cfg))
                .collect(),
        )
    }
}

impl<E: RateAllocator> ShardedService<E> {
    /// Assembles the service from already-built shards (all over the same
    /// fabric). Shard `i` owns the `i`-th contiguous slice of the server
    /// space.
    ///
    /// # Panics
    /// Panics if `shards` is empty or the shards disagree on the fabric.
    pub fn from_shards(shards: Vec<AllocatorService<E>>) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded service needs at least one shard"
        );
        let servers = shards[0].fabric().config().server_count();
        assert!(
            shards
                .iter()
                .all(|s| s.fabric().config() == shards[0].fabric().config()),
            "all shards must serve the same fabric"
        );
        let exchange_every = shards[0].config().exchange_every;
        assert!(
            shards
                .iter()
                .all(|s| s.config().exchange_every == exchange_every),
            "all shards must agree on the exchange cadence"
        );
        let n = shards.len();
        Self {
            shards,
            route: HashMap::new(),
            servers,
            local: ServiceStats::default(),
            exchange_every,
            ticks: 0,
            exports: vec![Vec::new(); n],
            bg: Vec::new(),
            weight: Vec::new(),
            num: Vec::new(),
        }
    }

    /// The inter-shard link-state exchange cadence in ticks (0 =
    /// disabled).
    pub fn exchange_every(&self) -> u64 {
        self.exchange_every
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shards, in partition order.
    pub fn shards(&self) -> &[AllocatorService<E>] {
        &self.shards
    }

    /// The shard owning source endpoint `src`: contiguous equal ranges of
    /// the server space (shard = block when the shard count equals the
    /// fabric's block count). Out-of-range endpoints clamp to the last
    /// shard, whose service rejects them as
    /// [`ServiceError::MalformedStart`].
    pub fn shard_of(&self, src: u16) -> usize {
        let n = self.shards.len();
        ((src as usize).min(self.servers.saturating_sub(1)) * n / self.servers).min(n - 1)
    }

    /// The shard an active flowlet is registered in.
    pub fn shard_for_token(&self, token: Token) -> Option<usize> {
        self.route.get(&token).map(|&s| s as usize)
    }

    /// Routes an endpoint notification to its shard (see
    /// [`AllocatorService::on_message`] for semantics; the behavior —
    /// including rejection counting — matches the unsharded service).
    ///
    /// # Errors
    /// The inner service's error, or [`ServiceError::DuplicateToken`] /
    /// [`ServiceError::UnexpectedRateUpdate`] raised at the routing layer.
    pub fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        match msg {
            Message::FlowletStart { token, src, .. } => {
                if self.route.contains_key(&token) {
                    // Cross-shard duplicate detection must happen here: the
                    // original may live in a different shard than the one
                    // `src` routes to.
                    self.local.bytes_in += msg.encoded_len() as u64;
                    self.local.rejected += 1;
                    return Err(ServiceError::DuplicateToken(token));
                }
                let shard = self.shard_of(src);
                self.shards[shard].on_message(msg)?;
                self.route.insert(token, shard as u32);
                Ok(())
            }
            Message::FlowletEnd { token } => match self.route.remove(&token) {
                Some(shard) => self.shards[shard as usize].on_message(msg),
                None => {
                    // Unknown ends are ignored (predecessor allocator or
                    // re-keyed endpoint), but their bytes still arrived.
                    self.local.bytes_in += msg.encoded_len() as u64;
                    Ok(())
                }
            },
            Message::RateUpdate { .. } => {
                self.local.bytes_in += msg.encoded_len() as u64;
                self.local.rejected += 1;
                Err(ServiceError::UnexpectedRateUpdate)
            }
        }
    }

    /// One tick of every shard, with the per-shard update streams merged
    /// into a single token-ordered stream (each shard's stream is already
    /// token-ordered, and token sets are disjoint, so a k-way merge
    /// reproduces exactly the order an unsharded service emits). When the
    /// exchange cadence is due (see the module docs), the shards'
    /// post-tick link loads are exchanged so the *next* tick's pricing
    /// sees the freshest cross-shard state.
    pub fn tick(&mut self) -> Vec<(u16, Message)> {
        let streams: Vec<Vec<(u16, Message)>> =
            self.shards.iter_mut().map(AllocatorService::tick).collect();
        self.ticks += 1;
        if self.exchange_every > 0
            && self.shards.len() > 1
            && self.ticks.is_multiple_of(self.exchange_every)
        {
            self.exchange_link_state();
        }
        merge_by_token(streams)
    }

    /// One round of the inter-shard link-state exchange, in three parts
    /// (the §5 aggregation's `(load, H)` pairs plus its
    /// owner-distributes-the-price step, one level up):
    ///
    /// 1. **Load aggregation** — every shard exports its own per-link
    ///    loads and imports the element-wise sum of the *other* shards'
    ///    exports as exogenous background load, so each shard's price
    ///    gradient and F-NORM ratios see every link's true total.
    /// 2. **Hessian aggregation** — likewise for the per-link Hessian
    ///    diagonal, so each shard's Newton step divides the global
    ///    gradient by the *global* sensitivity. Without this a shard's
    ///    effective step is multiplied by the shard count (its own
    ///    diagonal under-counts `|H|` by the other shards' flows), which
    ///    pushes NED's effective γ out of its stable range from about
    ///    four shards — observed as severe under-allocation.
    /// 3. **Dual consensus** — every shard exports its per-link prices;
    ///    the load-weighted mean becomes each loaded link's consensus
    ///    price, installed into every shard. Background terms alone pin
    ///    only a shared link's *total* (any per-shard price split whose
    ///    demands sum to capacity would be stationary); agreeing on the
    ///    dual makes the unsharded optimum the unique fixed point. Links
    ///    no shard loads keep their per-shard prices (`NaN` in the
    ///    consensus vector) and decay as usual.
    ///
    /// Shards whose engine exports nothing (Fastpass) contribute zero
    /// weight and their imports are documented no-ops; engines with no
    /// second-order term (gradient projection) skip part 2 only.
    fn exchange_link_state(&mut self) {
        for (shard, export) in self.shards.iter().zip(self.exports.iter_mut()) {
            *export = shard.link_loads();
        }
        let n_links = self
            .exports
            .iter()
            .map(Vec::len)
            .max()
            .expect("at least one shard");
        if n_links == 0 {
            // No shard prices fabric links; nothing to exchange.
            return;
        }
        let mut vectors = 0u64; // 8-bytes-per-link vectors shipped
        for i in 0..self.shards.len() {
            sum_exports_into(&self.exports, Some(i), n_links, &mut self.bg);
            self.shards[i].set_background_loads(&self.bg);
        }
        // Hessian aggregation (engines without a second-order term
        // export nothing and receive nothing).
        let h_exports: Vec<Vec<f64>> = self.shards.iter().map(|s| s.link_hessians()).collect();
        if h_exports.iter().any(|h| !h.is_empty()) {
            for i in 0..self.shards.len() {
                if h_exports[i].is_empty() {
                    continue;
                }
                sum_exports_into(&h_exports, Some(i), n_links, &mut self.bg);
                self.shards[i].set_background_hessians(&self.bg);
                vectors += 2; // own H out, others' sum back in
            }
        }
        // Dual consensus: load-weighted mean price per loaded link.
        self.bg.clear();
        self.bg.resize(n_links, f64::NAN);
        self.weight.clear();
        self.weight.resize(n_links, 0.0);
        self.num.clear();
        self.num.resize(n_links, 0.0);
        for (shard, export) in self.shards.iter().zip(&self.exports) {
            if export.is_empty() {
                continue;
            }
            let prices = shard.link_prices();
            for l in 0..n_links {
                if export[l] > 0.0 {
                    self.num[l] += export[l] * prices[l];
                    self.weight[l] += export[l];
                }
            }
        }
        for l in 0..n_links {
            if self.weight[l] > 0.0 {
                self.bg[l] = self.num[l] / self.weight[l];
            }
        }
        for (shard, export) in self.shards.iter_mut().zip(&self.exports) {
            if !export.is_empty() {
                shard.set_link_prices(&self.bg);
                // Loads + prices out, background + consensus back.
                vectors += 4;
            }
        }
        self.local.exchange_rounds += 1;
        self.local.exchange_bytes += 8 * n_links as u64 * vectors;
    }

    /// Per-link loads of the whole control plane's raw allocation: the
    /// element-wise sum of the shards' own loads (empty if no shard
    /// prices fabric links).
    pub fn link_loads(&self) -> Vec<f64> {
        let exports: Vec<Vec<f64>> = self.shards.iter().map(|s| s.link_loads()).collect();
        let n_links = exports.iter().map(Vec::len).max().unwrap_or(0);
        if n_links == 0 {
            return Vec::new();
        }
        let mut total = Vec::new();
        sum_exports_into(&exports, None, n_links, &mut total);
        total
    }

    /// Current normalized rate of an active flowlet, Gbit/s.
    pub fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        let &shard = self.route.get(&token)?;
        self.shards[shard as usize].flow_rate_gbps(token)
    }

    /// Number of active flowlets across all shards.
    pub fn active_flows(&self) -> usize {
        self.route.len()
    }

    /// Operating counters aggregated over shards (plus the routing
    /// layer's own rejections).
    pub fn stats(&self) -> ServiceStats {
        let mut total = self.local;
        for s in &self.shards {
            // Exhaustive destructuring: a counter added to `ServiceStats`
            // must fail to compile here until it is aggregated.
            let ServiceStats {
                starts,
                ends,
                updates_sent,
                updates_suppressed,
                bytes_in,
                bytes_out,
                iterations,
                rejected,
                exchange_rounds,
                exchange_bytes,
            } = s.stats();
            total.starts += starts;
            total.ends += ends;
            total.updates_sent += updates_sent;
            total.updates_suppressed += updates_suppressed;
            total.bytes_in += bytes_in;
            total.bytes_out += bytes_out;
            total.iterations += iterations;
            total.rejected += rejected;
            // Inner services never run exchanges themselves (the rounds
            // are driven — and counted — by this routing layer), but
            // aggregate anyway so the destructuring stays exhaustive.
            total.exchange_rounds += exchange_rounds;
            total.exchange_bytes += exchange_bytes;
        }
        total
    }

    /// The fabric this control plane serves.
    pub fn fabric(&self) -> &TwoTierClos {
        self.shards[0].fabric()
    }

    /// The engine each shard runs (`serial` / `multicore` / …).
    pub fn inner_engine_name(&self) -> &'static str {
        self.shards[0].engine_name()
    }
}

impl<E: RateAllocator> TickDriver for ShardedService<E> {
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        ShardedService::on_message(self, msg)
    }

    fn tick(&mut self) -> Vec<(u16, Message)> {
        ShardedService::tick(self)
    }

    fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        ShardedService::flow_rate_gbps(self, token)
    }

    fn active_flows(&self) -> usize {
        ShardedService::active_flows(self)
    }

    fn stats(&self) -> ServiceStats {
        ShardedService::stats(self)
    }

    fn link_loads(&self) -> Vec<f64> {
        ShardedService::link_loads(self)
    }

    fn fabric(&self) -> &TwoTierClos {
        ShardedService::fabric(self)
    }

    fn engine_name(&self) -> &'static str {
        "sharded"
    }
}

/// Element-wise sum of per-shard export vectors into `out` (cleared and
/// sized to `n_links`), skipping shard `skip` (the importer, for
/// sum-of-others semantics) and shards with empty exports. Every
/// non-empty export must have exactly `n_links` entries — the engines
/// all size their vectors to the fabric's link count.
fn sum_exports_into(exports: &[Vec<f64>], skip: Option<usize>, n_links: usize, out: &mut Vec<f64>) {
    out.clear();
    out.resize(n_links, 0.0);
    for (j, export) in exports.iter().enumerate() {
        if Some(j) == skip || export.is_empty() {
            continue;
        }
        debug_assert_eq!(export.len(), n_links, "short export from shard {j}");
        for (acc, x) in out.iter_mut().zip(export) {
            *acc += x;
        }
    }
}

fn update_token(msg: &Message) -> Token {
    match msg {
        Message::RateUpdate { token, .. }
        | Message::FlowletStart { token, .. }
        | Message::FlowletEnd { token } => *token,
    }
}

/// K-way merge of token-ordered update streams via a min-heap of stream
/// heads: `O(total · log k)` where the previous implementation re-scanned
/// every stream head per emitted element (`O(total · k)` — quadratic in
/// the per-tick update volume once the shard count grows). Token sets are
/// disjoint across shards so ties cannot occur; the stream index in the
/// heap key makes the order deterministic even if a caller violated that.
fn merge_by_token(mut streams: Vec<Vec<(u16, Message)>>) -> Vec<(u16, Message)> {
    if streams.len() == 1 {
        // Single shard: the stream is already the merged order.
        return streams.pop().expect("len checked");
    }
    let total = streams.iter().map(Vec::len).sum();
    let mut iters: Vec<_> = streams
        .into_iter()
        .map(|v| v.into_iter().peekable())
        .collect();
    let mut heap: BinaryHeap<Reverse<(Token, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some((_, msg)) = it.peek() {
            heap.push(Reverse((update_token(msg), i)));
        }
    }
    let mut out: Vec<(u16, Message)> = Vec::with_capacity(total);
    while let Some(Reverse((_, i))) = heap.pop() {
        out.push(iters[i].next().expect("heap entry implies a stream head"));
        if let Some((_, msg)) = iters[i].peek() {
            heap.push(Reverse((update_token(msg), i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_proto::Rate16;
    use flowtune_topo::ClosConfig;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::multicore(2, 2, 4)) // 16 servers, 2 blocks
    }

    fn start(token: u32, src: u16, dst: u16) -> Message {
        Message::FlowletStart {
            token: Token::new(token),
            src,
            dst,
            size_hint: 100_000,
            weight_q8: 256,
            spine: 1,
        }
    }

    fn sharded(n: usize) -> ShardedService {
        ShardedService::new(&fabric(), FlowtuneConfig::default(), n)
    }

    #[test]
    fn shard_ranges_partition_the_server_space() {
        let svc = sharded(2);
        for src in 0..8u16 {
            assert_eq!(svc.shard_of(src), 0, "src {src}");
        }
        for src in 8..16u16 {
            assert_eq!(svc.shard_of(src), 1, "src {src}");
        }
        // Out-of-range sources clamp (and are then rejected by the shard).
        assert_eq!(svc.shard_of(9999), 1);
        // Shard boundaries coincide with fabric blocks when counts match.
        let f = fabric();
        for src in 0..16u16 {
            assert_eq!(
                svc.shard_of(src),
                f.block_of_server(src as usize).index(),
                "src {src}"
            );
        }
    }

    #[test]
    fn starts_route_by_source_and_ends_follow_tokens() {
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap(); // shard 0
        svc.on_message(start(2, 12, 0)).unwrap(); // shard 1
        assert_eq!(svc.shard_for_token(Token::new(1)), Some(0));
        assert_eq!(svc.shard_for_token(Token::new(2)), Some(1));
        assert_eq!(svc.shards()[0].active_flows(), 1);
        assert_eq!(svc.shards()[1].active_flows(), 1);
        assert_eq!(svc.active_flows(), 2);
        svc.on_message(Message::FlowletEnd {
            token: Token::new(2),
        })
        .unwrap();
        assert_eq!(svc.shards()[1].active_flows(), 0);
        assert_eq!(svc.shard_for_token(Token::new(2)), None);
        assert_eq!(svc.stats().ends, 1);
    }

    #[test]
    fn merged_updates_come_out_in_token_order() {
        let mut svc = sharded(2);
        // Interleave tokens across shards: odd tokens on shard 0, even on
        // shard 1.
        for (t, src) in [(1u32, 0u16), (2, 12), (3, 1), (4, 13), (5, 2)] {
            let dst = if src < 8 { src + 8 } else { src - 8 };
            svc.on_message(start(t, src, dst)).unwrap();
        }
        let updates = svc.tick();
        assert_eq!(updates.len(), 5);
        let tokens: Vec<u32> = updates.iter().map(|(_, m)| update_token(m).get()).collect();
        assert_eq!(tokens, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn cross_shard_duplicate_tokens_are_rejected() {
        let mut svc = sharded(2);
        svc.on_message(start(7, 0, 12)).unwrap();
        // Same token, different source — routes to the *other* shard, so
        // only the routing layer can catch it.
        let err = svc.on_message(start(7, 12, 0)).unwrap_err();
        assert_eq!(err, ServiceError::DuplicateToken(Token::new(7)));
        assert_eq!(svc.stats().rejected, 1);
        assert_eq!(svc.active_flows(), 1);
        assert_eq!(svc.shard_for_token(Token::new(7)), Some(0));
    }

    #[test]
    fn stray_rate_updates_and_unknown_ends_are_counted() {
        let mut svc = sharded(3);
        let upd = Message::RateUpdate {
            token: Token::new(5),
            rate: Rate16::encode(1.0),
        };
        assert_eq!(svc.on_message(upd), Err(ServiceError::UnexpectedRateUpdate));
        let end = Message::FlowletEnd {
            token: Token::new(9),
        };
        svc.on_message(end).unwrap();
        let st = svc.stats();
        assert_eq!(st.rejected, 1);
        assert_eq!(st.bytes_in, (upd.encoded_len() + end.encoded_len()) as u64);
        assert_eq!(st.ends, 0);
    }

    #[test]
    fn malformed_starts_are_rejected_by_the_owning_shard() {
        let mut svc = sharded(2);
        let err = svc.on_message(start(1, 9999, 0)).unwrap_err();
        assert!(matches!(err, ServiceError::MalformedStart(_)), "{err}");
        assert_eq!(svc.active_flows(), 0);
        assert_eq!(svc.stats().rejected, 1);
        assert_eq!(svc.shard_for_token(Token::new(1)), None);
    }

    #[test]
    fn merge_handles_empty_and_many_streams() {
        let upd = |t: u32| {
            (
                t as u16,
                Message::RateUpdate {
                    token: Token::new(t),
                    rate: Rate16::encode(1.0),
                },
            )
        };
        let streams = vec![
            vec![upd(3), upd(9), upd(10)],
            vec![],
            vec![upd(1), upd(4)],
            vec![upd(2), upd(5), upd(6), upd(11)],
            vec![upd(7)],
        ];
        let merged = merge_by_token(streams);
        let tokens: Vec<u32> = merged.iter().map(|(_, m)| update_token(m).get()).collect();
        assert_eq!(tokens, vec![1, 2, 3, 4, 5, 6, 7, 9, 10, 11]);
        // The src halves ride along with their messages.
        assert!(merged
            .iter()
            .all(|(s, m)| *s as u32 == update_token(m).get()));
        // Degenerate shapes.
        assert!(merge_by_token(vec![]).is_empty());
        assert!(merge_by_token(vec![vec![], vec![]]).is_empty());
        let single = merge_by_token(vec![vec![upd(5), upd(2)]]);
        let tokens: Vec<u32> = single.iter().map(|(_, m)| update_token(m).get()).collect();
        assert_eq!(tokens, vec![5, 2], "single stream passes through as-is");
    }

    #[test]
    fn exchange_fires_on_cadence_and_counts_traffic() {
        let f = fabric();
        let cfg = FlowtuneConfig {
            exchange_every: 4,
            ..FlowtuneConfig::default()
        };
        let mut svc = ShardedService::new(&f, cfg, 2);
        assert_eq!(svc.exchange_every(), 4);
        svc.on_message(start(1, 0, 12)).unwrap();
        svc.on_message(start(2, 8, 4)).unwrap();
        for _ in 0..10 {
            svc.tick();
        }
        let st = svc.stats();
        assert_eq!(st.exchange_rounds, 2, "rounds at ticks 4 and 8");
        let links = f.topology().link_count() as u64;
        // Per round, per (serial NED) shard: loads + Hessians + prices
        // out, background loads + Hessians + consensus back — six
        // 8-byte-per-link vectors.
        assert_eq!(st.exchange_bytes, 2 * (6 * 8 * links * 2));
    }

    #[test]
    fn single_shard_never_exchanges() {
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            ..FlowtuneConfig::default()
        };
        let mut svc = ShardedService::new(&fabric(), cfg, 1);
        svc.on_message(start(1, 0, 12)).unwrap();
        for _ in 0..5 {
            svc.tick();
        }
        let st = svc.stats();
        assert_eq!(st.exchange_rounds, 0);
        assert_eq!(st.exchange_bytes, 0);
    }

    #[test]
    fn link_loads_sum_over_shards() {
        let f = fabric();
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap(); // shard 0
        svc.on_message(start(2, 8, 4)).unwrap(); // shard 1
        for _ in 0..200 {
            svc.tick();
        }
        let loads = svc.link_loads();
        assert_eq!(loads.len(), f.topology().link_count());
        // Each flow converged to ~line rate on its own links; the sum
        // over all links is 4 hops × ~39.6 G × 2 flows.
        let total: f64 = loads.iter().sum();
        assert!((total - 2.0 * 4.0 * 39.6).abs() < 1.0, "total {total}");
    }

    #[test]
    fn single_flow_converges_like_an_unsharded_service() {
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap();
        for _ in 0..200 {
            svc.tick();
        }
        let rate = svc.flow_rate_gbps(Token::new(1)).unwrap();
        assert!((rate - 39.6).abs() < 0.2, "rate {rate}"); // 40 G × 0.99
    }
}
