//! The sharded control plane: N independent allocator services, one slice
//! of the endpoint space each, ticked concurrently.
//!
//! The paper scales NED across cores of one machine (§5); the next scaling
//! step is to partition the *allocator itself* so independent fabric
//! blocks are served by independent services — the path to multi-socket
//! and multi-host allocators (cf. FairQ, arXiv:2401.04850: centralized
//! rate allocation survives at scale only when the allocator is
//! partitioned).
//!
//! [`ShardedService`] routes every `FlowletStart` to the shard that owns
//! its **source endpoint**, as decided by a
//! [`Placement`]: the default is contiguous,
//! equal server ranges (when the shard count equals the fabric's block count a
//! shard's range is exactly one §5 block, so a shard's flows enter the
//! fabric through its own up-LinkBlock), and a traffic-aware placement
//! groups communicating racks instead (see [`crate::placement`]).
//! Token-addressed messages (`FlowletEnd`) follow a token→shard routing
//! table. Each shard runs a full [`AllocatorService`] over the whole
//! fabric but sees only its own flows.
//!
//! A placement can be swapped at run time — a **re-placement epoch** —
//! with [`ShardedService::replace`]: tokens whose source endpoint now
//! belongs to a different shard are migrated deterministically (in
//! ascending token order, engine state detached from the old shard and
//! re-registered in the new one), after which the migrated flows
//! re-converge under their new shard's prices. The service accumulates
//! the signals a re-placement decision needs while it runs: a rack-level
//! traffic matrix from flowlet intake ([`ShardedService::observed_matrix`])
//! and the exchange's cumulative per-link ship counters
//! ([`ShardedService::exchange_shipped_counts`] — links that keep
//! re-shipping under churn are the shared hot links a better placement
//! would unshare).
//!
//! # The two-phase tick
//!
//! [`ShardedService::tick`] runs in two phases separated by a barrier:
//!
//! 1. **allocate ∥** — every shard's per-tick work (engine iterations,
//!    threshold-filtered update export, and — when an exchange round is
//!    due — its link-state export into reusable buffers) runs
//!    *concurrently*, one shard per slot of a persistent
//!    [`flowtune_alloc::WorkerPool`] whose OS threads park between
//!    ticks. Shards share nothing during this phase (each prices links
//!    from its own flows plus the background state installed by the
//!    *previous* exchange round), so concurrency cannot change the
//!    arithmetic: the output is bit-for-bit identical to ticking the
//!    shards one after another.
//! 2. **exchange-barrier, install** — once every shard is done (the
//!    pool's fan-out *is* the barrier), the routing layer runs the
//!    cross-shard consensus of the exchange (when due) on the caller
//!    thread and installs background loads/Hessians and consensus duals
//!    into the shards, then k-way merges the shards' token-ordered
//!    update streams into one (disjoint token sets make the merge exact).
//!
//! [`FlowtuneConfig::parallel_shards`](crate::FlowtuneConfig) (default
//! on) selects phase 1's concurrent path; turning it off ticks the shards
//! sequentially on the caller — same bytes out, useful on single-core
//! hosts and as the reference in equivalence tests. A shard whose engine
//! panics mid-tick is *contained*: siblings complete, the pool survives,
//! and [`ShardedService::try_tick`] reports
//! [`ServiceError::ShardPanicked`] instead of aborting the process.
//!
//! # Cross-shard link-state exchange
//!
//! Partitioning alone is exact (bit-for-bit) only for workloads whose
//! links each carry a single shard's flows. When shards *do* contend for
//! a link (e.g. a many-to-one incast from several blocks), each shard in
//! isolation would price the link for its own flows alone, and the merged
//! allocation could over-subscribe it by up to a factor of the shard
//! count — per-shard F-NORM bounds each shard's own contribution but not
//! the sum.
//!
//! The fix is the paper's §5 aggregation step, one level up: a periodic
//! **link-state exchange**. Every
//! [`FlowtuneConfig::exchange_every`](crate::FlowtuneConfig) ticks, each
//! shard exports its per-link loads and Hessian diagonals (the `(G, H)`
//! pair its own price update uses) and its per-link duals, and the
//! routing layer runs three consensus parts:
//!
//! * **load aggregation** — each shard imports the *other* shards' load
//!   sum as exogenous background load
//!   ([`flowtune_alloc::RateAllocator::set_background_loads`]), so its
//!   NED price gradient and F-NORM ratios see the true total utilization
//!   of shared links;
//! * **Hessian aggregation** — likewise for `Σ ∂x/∂p`
//!   ([`flowtune_alloc::RateAllocator::set_background_hessians`]), so
//!   the Newton step divides the global gradient by the *global*
//!   sensitivity; a shard using only its own diagonal takes steps
//!   multiplied by the shard count, which leaves NED's stable γ range;
//! * **dual consensus** — each loaded link's price is set to the
//!   load-weighted mean of the shards' duals
//!   ([`flowtune_alloc::RateAllocator::set_link_prices`]). Background
//!   terms alone pin only a shared link's *total* (any per-shard price
//!   split whose demands sum to capacity is stationary); agreeing on the
//!   dual makes the unsharded optimum the unique fixed point — §5's
//!   single authoritative LinkBlock owner, one level up.
//!
//! ## Sparse, allocation-free wire protocol
//!
//! Exports go through the engines' buffer variants
//! ([`flowtune_alloc::RateAllocator::link_loads_into`] and friends) into
//! per-shard scratch reused every round, so a steady-state exchange
//! allocates nothing. On the wire the exchange is a **delta protocol**:
//! a shard re-ships a link's `(load, H, dual)` entry only when any of
//! the three moved by more than
//! [`FlowtuneConfig::exchange_delta_eps`](crate::FlowtuneConfig) since
//! the last time it shipped that link; every consumer prices the last
//! shipped value meanwhile. With the default `eps = 0` any change
//! ships, so the installed sums are *identical* to a dense exchange —
//! and links whose whole tuple has stopped moving (converged, or never
//! loaded and fully decayed) cost nothing. Note that an idle link still
//! re-ships while its initial dual decays toward zero under `eps = 0`
//! (and a freshly started system ships nearly everything, each entry
//! paying a 4-byte id the dense protocol didn't) — a small positive
//! `eps` cuts that tail immediately, which is the knob's point.
//! [`ServiceStats::exchange_bytes`] counts the sparse wire size: per
//! shipped entry, a 4-byte link id plus 8 bytes per vector shipped
//! (loads and duals always; Hessian diagonals only for second-order
//! engines), in both directions (deltas out; changed background sums and
//! consensus duals back in).
//!
//! Inbound, the exchange is **subscription-pruned**: a shard imports
//! (and is charged for) another shard's entry only on links it currently
//! prices itself — its own fresh export carries a positive load there
//! (the un-filtered export, so even a load too small to pass the
//! outbound delta filter still subscribes its shard). Link state on
//! a link a shard has no flows on cannot change its allocation (prices
//! enter rates only through flows' paths), so those imports are pure
//! waste; skipping them makes the inbound cost proportional to how many
//! links the partition actually *shares*. That is the lever
//! exchange-aware placement (see [`crate::placement`]) pulls: grouping
//! communicating racks into one shard unshares the hot links, and both
//! the double-shipping and the cross-subscriptions disappear. A shard
//! that gains a flow on a new link subscribes the same round it first
//! exports a load for it (exports are taken after the tick, installs
//! after the exports), so pruning adds no staleness beyond the exchange
//! cadence itself; an unsubscribed link's local dual simply keeps
//! decaying, exactly as if the link were idle.
//!
//! The cadence remains a staleness/bandwidth trade-off: between
//! exchanges a shard prices other shards' traffic at its last imported
//! value, so `exchange_every = 1` tracks cross-shard churn within a tick
//! while larger cadences cut rounds proportionally and lengthen the
//! window in which cross-shard churn is priced stale (F-NORM still
//! bounds the transient, now with a correct total on previously-seen
//! load). `exchange_every = 0` (the default) disables the exchange and
//! preserves the independent-shard behavior exactly; engines that do not
//! price fabric links (Fastpass) export nothing and the exchange
//! degrades to a no-op over them. With a single shard there is nothing
//! to exchange and the path is never taken, keeping one-shard
//! deployments bit-for-bit equal to the unsharded service.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

use flowtune_alloc::{RateAllocator, SerialAllocator, WorkerPool};
use flowtune_proto::{Message, Token};
use flowtune_topo::TwoTierClos;

use crate::driver::{PhaseTimings, TickDriver};
use crate::exchange::ExchangeCore;
use crate::placement::{Placement, TrafficMatrix};
use crate::service::{AllocatorService, ServiceError, ServiceStats};
use crate::FlowtuneConfig;

/// Per-shard tick outputs and export scratch, reused across ticks so the
/// hot path stops allocating: phase 1 writes here, phase 2 reads.
#[derive(Debug, Default)]
struct ShardSlot {
    /// The shard's token-ordered update stream from this tick.
    updates: Vec<(u16, Message)>,
    /// Link-state exports, refreshed only on exchange rounds.
    loads: Vec<f64>,
    hessians: Vec<f64>,
    prices: Vec<f64>,
}

/// N independent [`AllocatorService`] shards behind one
/// [`TickDriver`] face.
#[derive(Debug)]
pub struct ShardedService<E: RateAllocator = SerialAllocator> {
    shards: Vec<AllocatorService<E>>,
    /// token → shard, for `FlowletEnd` routing and rate queries.
    route: HashMap<Token, u32>,
    /// The endpoint→shard mapping `FlowletStart`s route by; swapped by
    /// [`ShardedService::replace`].
    placement: Placement,
    /// Servers per rack, for the observed matrix's rack granularity.
    servers_per_rack: usize,
    /// Rack-level traffic matrix accumulated from accepted starts — the
    /// online placement signal.
    observed: TrafficMatrix,
    /// Cumulative count of exchange entries shipped per link (summed
    /// over shards) — the re-placement *trigger* signal: links that keep
    /// re-shipping are shared hot links.
    shipped_totals: Vec<u64>,
    /// Counters for messages the routing layer disposed of itself
    /// (duplicates, unknown ends, stray rate updates) and for the
    /// link-state exchange — folded into [`ShardedService::stats`] so the
    /// aggregate matches an unsharded service byte for byte (the exchange
    /// counters are zero whenever the exchange is off).
    local: ServiceStats,
    /// Exchange cadence in ticks, copied from the shards' shared
    /// configuration (0 = disabled).
    exchange_every: u64,
    /// The exchange's delta filter in Gbit/s (see the module docs).
    exchange_delta_eps: f64,
    /// Whether phase 1 runs on the worker pool (config `parallel_shards`
    /// and more than one shard).
    parallel: bool,
    /// Per-shard OS threads for the concurrent tick, created on the first
    /// parallel tick and parked between ticks.
    pool: Option<WorkerPool>,
    /// Ticks driven so far (the exchange fires when `ticks` is a
    /// multiple of the cadence).
    ticks: u64,
    /// Per-shard tick outputs + export scratch (reused every tick).
    slots: Vec<ShardSlot>,
    /// Per-shard exchange protocol cores: each owns its shard's delta
    /// filter, last-shipped replicas, and install math — the same
    /// [`ExchangeCore`] a distributed shard peer runs, so the in-process
    /// exchange exercises the real wire format every round.
    cores: Vec<ExchangeCore>,
    /// The round's serialized frames, all shards back to back in one
    /// flat reusable buffer (no `Vec<Vec<u8>>` on the hot path).
    wire_buf: Vec<u8>,
    /// Frame boundaries within `wire_buf` (`n + 1` offsets).
    frame_offs: Vec<usize>,
    /// Cumulative wall time spent in the exchange barrier (phase 2),
    /// reported as [`PhaseTimings::exchange`].
    exchange_time: Duration,
}

impl ShardedService {
    /// Builds `shards` serial-engine shards over `fabric` — the
    /// compile-time shortcut mirroring [`AllocatorService::new`].
    ///
    /// # Panics
    /// Panics if `shards` is 0.
    pub fn new(fabric: &TwoTierClos, cfg: FlowtuneConfig, shards: usize) -> Self {
        assert!(shards > 0, "a sharded service needs at least one shard");
        Self::from_shards(
            (0..shards)
                .map(|_| AllocatorService::new(fabric, cfg))
                .collect(),
        )
    }
}

impl<E: RateAllocator> ShardedService<E> {
    /// Assembles the service from already-built shards (all over the same
    /// fabric) under the contiguous placement: shard `i` owns the `i`-th
    /// contiguous slice of the server space. The shards'
    /// [`FlowtuneConfig::placement`](crate::FlowtuneConfig) spec is *not*
    /// consulted — this constructor has no traffic-matrix channel, and a
    /// `Traffic` spec without a matrix falls back to contiguous anyway;
    /// to materialize a traffic-aware mapping go through
    /// [`ServiceBuilder::build_driver`](crate::ServiceBuilder::build_driver)
    /// or pass an explicit [`Placement`] to
    /// [`ShardedService::with_placement`].
    ///
    /// # Panics
    /// Panics if `shards` is empty or the shards disagree on the fabric
    /// or on the exchange/parallelism/placement configuration.
    pub fn from_shards(shards: Vec<AllocatorService<E>>) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded service needs at least one shard"
        );
        let placement =
            Placement::contiguous(shards[0].fabric().config().server_count(), shards.len());
        Self::with_placement(shards, placement)
    }

    /// [`ShardedService::from_shards`] with an explicit endpoint→shard
    /// [`Placement`] (built by [`crate::Placement::contiguous`] or
    /// [`crate::Placement::traffic`];
    /// [`ServiceBuilder::build_driver`](crate::ServiceBuilder::build_driver)
    /// materializes one from
    /// [`FlowtuneConfig::placement`](crate::FlowtuneConfig) and the
    /// builder's traffic matrix).
    ///
    /// # Panics
    /// Panics if `shards` is empty, the shards disagree on the fabric or
    /// on the exchange/parallelism/placement configuration, or the
    /// placement's shape (server count, shard count) does not match.
    pub fn with_placement(shards: Vec<AllocatorService<E>>, placement: Placement) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded service needs at least one shard"
        );
        let clos = shards[0].fabric().config().clone();
        assert!(
            shards.iter().all(|s| *s.fabric().config() == clos),
            "all shards must serve the same fabric"
        );
        let cfg = shards[0].config();
        assert!(
            shards.iter().all(|s| {
                let c = s.config();
                c.exchange_every == cfg.exchange_every
                    && c.exchange_delta_eps == cfg.exchange_delta_eps
                    && c.parallel_shards == cfg.parallel_shards
                    && c.placement == cfg.placement
                    && c.incremental == cfg.incremental
                    && c.full_sweep_every == cfg.full_sweep_every
                    && c.dirty_eps == cfg.dirty_eps
            }),
            "all shards must agree on the exchange, parallelism, placement and incremental configuration"
        );
        assert_eq!(
            placement.servers(),
            clos.server_count(),
            "placement must cover exactly the fabric's servers"
        );
        assert_eq!(
            placement.shard_count(),
            shards.len(),
            "placement must map onto exactly the built shards"
        );
        let n = shards.len();
        let racks = clos.server_count() / clos.servers_per_rack;
        Self {
            parallel: cfg.parallel_shards && n > 1,
            shards,
            route: HashMap::new(),
            placement,
            servers_per_rack: clos.servers_per_rack,
            observed: TrafficMatrix::new(racks),
            shipped_totals: Vec::new(),
            local: ServiceStats::default(),
            exchange_every: cfg.exchange_every,
            exchange_delta_eps: cfg.exchange_delta_eps.max(0.0),
            pool: None,
            ticks: 0,
            slots: (0..n).map(|_| ShardSlot::default()).collect(),
            cores: (0..n)
                .map(|i| ExchangeCore::new(i as u16, n, cfg.exchange_delta_eps))
                .collect(),
            wire_buf: Vec::new(),
            frame_offs: Vec::new(),
            exchange_time: Duration::ZERO,
        }
    }

    /// The inter-shard link-state exchange cadence in ticks (0 =
    /// disabled).
    pub fn exchange_every(&self) -> u64 {
        self.exchange_every
    }

    /// The exchange's delta filter in Gbit/s (see the module docs).
    pub fn exchange_delta_eps(&self) -> f64 {
        self.exchange_delta_eps
    }

    /// Whether ticks run the shards concurrently on the worker pool.
    pub fn parallel_shards(&self) -> bool {
        self.parallel
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shards, in partition order.
    pub fn shards(&self) -> &[AllocatorService<E>] {
        &self.shards
    }

    /// The shard owning source endpoint `src`, per the current
    /// [`Placement`] (under the default contiguous placement, shard =
    /// block when the shard count equals the fabric's block count).
    /// Out-of-range endpoints clamp to the last server's shard, whose
    /// service rejects them as [`ServiceError::MalformedStart`].
    pub fn shard_of(&self, src: u16) -> usize {
        self.placement.shard_of(src)
    }

    /// The endpoint→shard mapping currently routing `FlowletStart`s.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The rack-level traffic matrix accumulated from accepted flowlet
    /// starts since construction (offered bytes by `size_hint`, floored
    /// at 1 so zero-hint flowlets still register) — the online signal
    /// [`crate::Placement::traffic`] consumes for a re-placement epoch.
    pub fn observed_matrix(&self) -> &TrafficMatrix {
        &self.observed
    }

    /// Cumulative count of exchange entries shipped per link (summed over
    /// shards; indexed by global link id, empty until the first exchange
    /// round). Links that keep re-shipping under steady churn are the
    /// shared hot links an exchange-aware placement would unshare — a
    /// rising tail here is the signal to compute a fresh placement from
    /// [`ShardedService::observed_matrix`] and call
    /// [`ShardedService::replace`].
    pub fn exchange_shipped_counts(&self) -> &[u64] {
        &self.shipped_totals
    }

    /// Installs a new [`Placement`] — a **re-placement epoch**. Every
    /// active flowlet whose source endpoint now belongs to a different
    /// shard is migrated: detached from its old shard (engine state and
    /// threshold-filter memory dropped) and re-registered in the new one,
    /// in ascending token order so the epoch is deterministic. Migrated
    /// flows re-enter their engine at the initial rate and re-converge
    /// under the new shard's prices (F-NORM keeps the transient
    /// feasible); unmoved flows are untouched. Aggregate stats do not
    /// move — migration is not intake churn. Returns the number of flows
    /// migrated.
    ///
    /// The exchange's last-shipped tables are deliberately kept: they
    /// record what the other shards are still pricing, and the delta
    /// filter re-ships exactly what the migration moved on the next
    /// round.
    ///
    /// # Panics
    /// Panics if the placement's shape (server count, shard count) does
    /// not match this service.
    pub fn replace(&mut self, placement: Placement) -> usize {
        assert_eq!(
            placement.servers(),
            self.placement.servers(),
            "replacement must cover the same server space"
        );
        assert_eq!(
            placement.shard_count(),
            self.shards.len(),
            "replacement must map onto the same shard count"
        );
        // flowtune-lint: allow(float-determinism, "snapshot is sorted by token before any flow moves")
        let mut tokens: Vec<(Token, u32)> = self.route.iter().map(|(&t, &s)| (t, s)).collect();
        tokens.sort_unstable_by_key(|&(t, _)| t);
        let mut moved = 0;
        for (token, old) in tokens {
            let src = self.shards[old as usize]
                .flow_source(token)
                .expect("routed token must be registered in its shard");
            let new = placement.shard_of(src) as u32;
            if new == old {
                continue;
            }
            let migration = self.shards[old as usize]
                .extract_flow(token)
                .expect("routed token must be extractable");
            self.shards[new as usize]
                .adopt_flow(migration)
                .expect("tokens are unique across shards");
            self.route.insert(token, new);
            moved += 1;
        }
        self.placement = placement;
        // Every shard re-ships its unmoved non-zero entries as catch-up
        // records on the next round. In-process the replicas are already
        // consistent, so this changes no state and no logical byte count
        // — but it keeps the frames identical to what a distributed
        // deployment (where an epoch may accompany a peer restart with
        // empty replicas) puts on the wire.
        for core in &mut self.cores {
            core.request_resync();
        }
        moved
    }

    /// The shard an active flowlet is registered in.
    pub fn shard_for_token(&self, token: Token) -> Option<usize> {
        self.route.get(&token).map(|&s| s as usize)
    }

    /// Routes an endpoint notification to its shard (see
    /// [`AllocatorService::on_message`] for semantics; the behavior —
    /// including rejection counting — matches the unsharded service).
    ///
    /// # Errors
    /// The inner service's error, or [`ServiceError::DuplicateToken`] /
    /// [`ServiceError::UnexpectedRateUpdate`] raised at the routing layer.
    pub fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        match msg {
            Message::FlowletStart {
                token,
                src,
                dst,
                size_hint,
                ..
            } => {
                if self.route.contains_key(&token) {
                    // Cross-shard duplicate detection must happen here: the
                    // original may live in a different shard than the one
                    // `src` routes to.
                    self.local.bytes_in += msg.encoded_len() as u64;
                    self.local.rejected += 1;
                    return Err(ServiceError::DuplicateToken(token));
                }
                let shard = self.shard_of(src);
                self.shards[shard].on_message(msg)?;
                self.route.insert(token, shard as u32);
                // Accepted (so src/dst are in range): feed the online
                // placement signal at rack granularity.
                let rack_of = |s: u16| s as usize / self.servers_per_rack;
                self.observed
                    .add(rack_of(src), rack_of(dst), f64::from(size_hint.max(1)));
                Ok(())
            }
            Message::FlowletEnd { token } => match self.route.remove(&token) {
                Some(shard) => self.shards[shard as usize].on_message(msg),
                None => {
                    // Unknown ends are ignored (predecessor allocator or
                    // re-keyed endpoint), but their bytes still arrived.
                    self.local.bytes_in += msg.encoded_len() as u64;
                    Ok(())
                }
            },
            Message::RateUpdate { .. } => {
                self.local.bytes_in += msg.encoded_len() as u64;
                self.local.rejected += 1;
                Err(ServiceError::UnexpectedRateUpdate)
            }
        }
    }

    /// One tick of every shard (see the module docs' two-phase
    /// structure), with the per-shard update streams merged into a single
    /// token-ordered stream (each shard's stream is already
    /// token-ordered, and token sets are disjoint, so a k-way merge
    /// reproduces exactly the order an unsharded service emits). When the
    /// exchange cadence is due, the shards' post-tick link state is
    /// exchanged so the *next* tick's pricing sees the freshest
    /// cross-shard state.
    ///
    /// # Panics
    /// Propagates a shard-tick panic as a panic on the caller; use
    /// [`ShardedService::try_tick`] to get a [`ServiceError`] instead.
    pub fn tick(&mut self) -> Vec<(u16, Message)> {
        match self.try_tick() {
            Ok(updates) => updates,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`ShardedService::tick`] with shard panics contained: if a shard's
    /// engine panics mid-tick, the sibling shards still complete their
    /// tick, the worker pool survives, and the error names the dead shard
    /// (the tick's merged update stream is dropped — it would be missing
    /// the failed shard's updates). The panic payload reaches the panic
    /// hook (stderr) as usual.
    ///
    /// # Errors
    /// [`ServiceError::ShardPanicked`] naming the lowest-indexed shard
    /// whose tick panicked.
    pub fn try_tick(&mut self) -> Result<Vec<(u16, Message)>, ServiceError> {
        self.ticks += 1;
        let exchange = self.exchange_every > 0
            && self.shards.len() > 1
            && self.ticks.is_multiple_of(self.exchange_every);

        // Phase 1: allocate ∥ — every shard ticks (and, on exchange
        // rounds, exports its link state) with no shared state.
        let mut panicked: Option<usize> = None;
        if self.parallel {
            let n = self.shards.len();
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(n));
            let mut items: Vec<(&mut AllocatorService<E>, &mut ShardSlot)> =
                // flowtune-lint: allow(hot-path-alloc, "O(shards) fan-out list per tick, not per flow")
                self.shards.iter_mut().zip(self.slots.iter_mut()).collect();
            if let Err(e) = pool.fan_out(&mut items, &|_, (shard, slot)| {
                tick_shard(shard, slot, exchange);
            }) {
                panicked = Some(e.item());
            }
        } else {
            for (i, (shard, slot)) in self
                .shards
                .iter_mut()
                .zip(self.slots.iter_mut())
                .enumerate()
            {
                // Same containment as the pool path: siblings complete,
                // the lowest-indexed panic is reported.
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    tick_shard(shard, slot, exchange);
                }));
                if outcome.is_err() && panicked.is_none() {
                    panicked = Some(i);
                }
            }
        }
        if let Some(shard) = panicked {
            return Err(ServiceError::ShardPanicked { shard });
        }

        // Phase 2: the fan-out return is the barrier — cross-shard
        // consensus and installs run with every shard's tick complete.
        if exchange {
            let t0 = Instant::now();
            self.exchange_link_state();
            self.exchange_time += t0.elapsed();
        }
        let streams: Vec<Vec<(u16, Message)>> = self
            .slots
            .iter_mut()
            .map(|s| std::mem::take(&mut s.updates))
            // flowtune-lint: allow(hot-path-alloc, "O(shards) list of moved streams per tick, not per flow")
            .collect();
        Ok(merge_by_token(streams))
    }

    /// One round of the inter-shard link-state exchange, in three parts
    /// (the §5 aggregation's `(load, H)` pairs plus its
    /// owner-distributes-the-price step, one level up):
    ///
    /// 1. **Load aggregation** — every shard exports its own per-link
    ///    loads and imports the element-wise sum of the *other* shards'
    ///    shipped loads as exogenous background load, so each shard's
    ///    price gradient and F-NORM ratios see every link's true total.
    /// 2. **Hessian aggregation** — likewise for the per-link Hessian
    ///    diagonal, so each shard's Newton step divides the global
    ///    gradient by the *global* sensitivity. Without this a shard's
    ///    effective step is multiplied by the shard count (its own
    ///    diagonal under-counts `|H|` by the other shards' flows), which
    ///    pushes NED's effective γ out of its stable range from about
    ///    four shards — observed as severe under-allocation.
    /// 3. **Dual consensus** — every shard exports its per-link prices;
    ///    the load-weighted mean becomes each loaded link's consensus
    ///    price, installed into every shard. Background terms alone pin
    ///    only a shared link's *total* (any per-shard price split whose
    ///    demands sum to capacity would be stationary); agreeing on the
    ///    dual makes the unsharded optimum the unique fixed point. Links
    ///    no shard loads keep their per-shard prices (`NaN` in the
    ///    consensus vector) and decay as usual.
    ///
    /// All three parts run inside the per-shard [`ExchangeCore`]s, over
    /// the **serialized frames** the cores write and read — the exact
    /// bytes a distributed deployment puts on a socket. This routing
    /// layer only orchestrates: every core encodes its shard's frame
    /// into one flat reusable buffer, every core applies every other
    /// core's frame to its replicas, and every core installs the
    /// aggregation into its own shard. Shards whose engine exports
    /// nothing (Fastpass) ship inactive frames and their installs are
    /// documented no-ops; engines with no second-order term (gradient
    /// projection) skip the Hessian part only.
    fn exchange_link_state(&mut self) {
        let n = self.shards.len();

        // Encode: one state frame per shard, back to back.
        self.wire_buf.clear();
        self.frame_offs.clear();
        self.frame_offs.push(0);
        for i in 0..n {
            let slot = &self.slots[i];
            self.cores[i].begin_round(
                self.ticks,
                &slot.loads,
                &slot.hessians,
                &slot.prices,
                &mut self.wire_buf,
            );
            self.frame_offs.push(self.wire_buf.len());
        }

        // Apply: every core consumes every other shard's frame. These
        // frames were encoded in-process, so a decode failure is a bug —
        // but it is counted (never silently dropped), exactly as a peer
        // counts a corrupt frame off a socket.
        for j in 0..n {
            for i in 0..n {
                if i == j {
                    continue;
                }
                let frame = &self.wire_buf[self.frame_offs[i]..self.frame_offs[i + 1]];
                if let Err(e) = self.cores[j].apply_frame(frame) {
                    self.local.exchange_decode_errors += 1;
                    debug_assert!(false, "in-process frame failed to apply: {e}");
                }
            }
        }

        // Install: each core recomputes the aggregation from its
        // replicas and installs into its own shard. `None` means no
        // shard exported any links — the round does not count.
        let mut bytes = 0u64;
        let mut counted = false;
        for i in 0..n {
            let core = &mut self.cores[i];
            if let Some(b) = core.install(&mut self.shards[i]) {
                bytes += b;
                counted = true;
            }
        }
        if counted {
            let ships = self.cores[0].round_ship_counts();
            self.shipped_totals.resize(ships.len(), 0);
            for (total, &c) in self.shipped_totals.iter_mut().zip(ships) {
                *total += u64::from(c);
            }
            self.local.exchange_rounds += 1;
            self.local.exchange_bytes += bytes;
        }
    }

    /// Per-link loads of the whole control plane's raw allocation: the
    /// element-wise sum of the shards' own loads (empty if no shard
    /// prices fabric links). Telemetry path — allocates; the exchange
    /// itself uses the reusable per-shard buffers.
    pub fn link_loads(&self) -> Vec<f64> {
        let exports: Vec<Vec<f64>> = self.shards.iter().map(|s| s.link_loads()).collect();
        let n_links = exports.iter().map(Vec::len).max().unwrap_or(0);
        if n_links == 0 {
            return Vec::new();
        }
        let mut total = vec![0.0; n_links];
        for export in exports.iter().filter(|e| !e.is_empty()) {
            debug_assert_eq!(export.len(), n_links, "short shard export");
            for (acc, x) in total.iter_mut().zip(export) {
                *acc += x;
            }
        }
        total
    }

    /// Current normalized rate of an active flowlet, Gbit/s.
    pub fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        let &shard = self.route.get(&token)?;
        self.shards[shard as usize].flow_rate_gbps(token)
    }

    /// Number of active flowlets across all shards.
    pub fn active_flows(&self) -> usize {
        self.route.len()
    }

    /// Operating counters aggregated over shards (plus the routing
    /// layer's own rejections).
    pub fn stats(&self) -> ServiceStats {
        let mut total = self.local;
        for s in &self.shards {
            // Exhaustive destructuring: a counter added to `ServiceStats`
            // must fail to compile here until it is aggregated.
            let ServiceStats {
                starts,
                ends,
                updates_sent,
                updates_suppressed,
                bytes_in,
                bytes_out,
                iterations,
                rejected,
                exchange_rounds,
                exchange_bytes,
                exchange_decode_errors,
                dirty_flows,
                dirty_links,
            } = s.stats();
            total.starts += starts;
            total.ends += ends;
            total.updates_sent += updates_sent;
            total.updates_suppressed += updates_suppressed;
            total.bytes_in += bytes_in;
            total.bytes_out += bytes_out;
            total.iterations += iterations;
            total.rejected += rejected;
            // Inner services never run exchanges themselves (the rounds
            // are driven — and counted — by this routing layer), but
            // aggregate anyway so the destructuring stays exhaustive.
            total.exchange_rounds += exchange_rounds;
            total.exchange_bytes += exchange_bytes;
            total.exchange_decode_errors += exchange_decode_errors;
            total.dirty_flows += dirty_flows;
            total.dirty_links += dirty_links;
        }
        total
    }

    /// Cumulative per-phase wall time: the shards' intake/allocate/export
    /// phases summed over shards, plus this routing layer's exchange
    /// barrier. Under `parallel_shards` the shard phases run concurrently,
    /// so the sum is CPU time, not wall time — still the right weight for
    /// "where do the cycles go" breakdowns.
    pub fn phase_timings(&self) -> PhaseTimings {
        let mut total = PhaseTimings::default();
        for s in &self.shards {
            let t = s.phase_timings();
            total.intake += t.intake;
            total.allocate += t.allocate;
            total.export += t.export;
            total.exchange += t.exchange;
        }
        total.exchange += self.exchange_time;
        total
    }

    /// The fabric this control plane serves.
    pub fn fabric(&self) -> &TwoTierClos {
        self.shards[0].fabric()
    }

    /// The engine each shard runs (`serial` / `multicore` / …).
    pub fn inner_engine_name(&self) -> &'static str {
        self.shards[0].engine_name()
    }
}

impl<E: RateAllocator> TickDriver for ShardedService<E> {
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        ShardedService::on_message(self, msg)
    }

    fn tick(&mut self) -> Vec<(u16, Message)> {
        ShardedService::tick(self)
    }

    fn try_tick(&mut self) -> Result<Vec<(u16, Message)>, ServiceError> {
        ShardedService::try_tick(self)
    }

    fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        ShardedService::flow_rate_gbps(self, token)
    }

    fn active_flows(&self) -> usize {
        ShardedService::active_flows(self)
    }

    fn stats(&self) -> ServiceStats {
        ShardedService::stats(self)
    }

    fn phase_timings(&self) -> PhaseTimings {
        ShardedService::phase_timings(self)
    }

    fn link_loads(&self) -> Vec<f64> {
        ShardedService::link_loads(self)
    }

    fn fabric(&self) -> &TwoTierClos {
        ShardedService::fabric(self)
    }

    fn engine_name(&self) -> &'static str {
        "sharded"
    }
}

/// One shard's phase-1 work: tick, and on exchange rounds export its link
/// state into the slot's reusable buffers. Runs with no shared state —
/// concurrently on pool slots or sequentially on the caller, with
/// identical results.
fn tick_shard<E: RateAllocator>(
    shard: &mut AllocatorService<E>,
    slot: &mut ShardSlot,
    export: bool,
) {
    slot.updates = shard.tick();
    if export {
        shard.link_loads_into(&mut slot.loads);
        shard.link_hessians_into(&mut slot.hessians);
        shard.link_prices_into(&mut slot.prices);
    }
}

fn update_token(msg: &Message) -> Token {
    match msg {
        Message::RateUpdate { token, .. }
        | Message::FlowletStart { token, .. }
        | Message::FlowletEnd { token } => *token,
    }
}

/// K-way merge of token-ordered update streams via a min-heap of stream
/// heads: `O(total · log k)` where the previous implementation re-scanned
/// every stream head per emitted element (`O(total · k)` — quadratic in
/// the per-tick update volume once the shard count grows). Token sets are
/// disjoint across shards so ties cannot occur; the stream index in the
/// heap key makes the order deterministic even if a caller violated that.
/// Public because a distributed peer cluster merges its peers' streams
/// with exactly the same rule.
pub fn merge_by_token(mut streams: Vec<Vec<(u16, Message)>>) -> Vec<(u16, Message)> {
    if streams.len() == 1 {
        // Single shard: the stream is already the merged order.
        return streams.pop().expect("len checked");
    }
    let mut out = Vec::new();
    merge_by_token_into(&mut streams, &mut out);
    out
}

/// [`merge_by_token`] into a caller-owned buffer: clears `out`, drains
/// every stream in `streams` (their capacity survives for reuse), and
/// appends the merged order. A steady-state tick whose streams are all
/// empty allocates nothing, which is what lets a peer cluster's
/// `try_tick_into` run alloc-free once rates converge.
pub fn merge_by_token_into(streams: &mut [Vec<(u16, Message)>], out: &mut Vec<(u16, Message)>) {
    out.clear();
    let total: usize = streams.iter().map(Vec::len).sum();
    if total == 0 {
        return;
    }
    out.reserve(total);
    if streams.len() == 1 {
        out.append(&mut streams[0]);
        return;
    }
    let mut iters: Vec<_> = streams.iter_mut().map(|v| v.drain(..).peekable()).collect();
    let mut heap: BinaryHeap<Reverse<(Token, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some((_, msg)) = it.peek() {
            heap.push(Reverse((update_token(msg), i)));
        }
    }
    while let Some(Reverse((_, i))) = heap.pop() {
        out.push(iters[i].next().expect("heap entry implies a stream head"));
        if let Some((_, msg)) = iters[i].peek() {
            heap.push(Reverse((update_token(msg), i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_proto::Rate16;
    use flowtune_topo::ClosConfig;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::multicore(2, 2, 4)) // 16 servers, 2 blocks
    }

    fn start(token: u32, src: u16, dst: u16) -> Message {
        Message::FlowletStart {
            token: Token::new(token),
            src,
            dst,
            size_hint: 100_000,
            weight_q8: 256,
            spine: 1,
        }
    }

    fn sharded(n: usize) -> ShardedService {
        ShardedService::new(&fabric(), FlowtuneConfig::default(), n)
    }

    #[test]
    fn shard_ranges_partition_the_server_space() {
        let svc = sharded(2);
        for src in 0..8u16 {
            assert_eq!(svc.shard_of(src), 0, "src {src}");
        }
        for src in 8..16u16 {
            assert_eq!(svc.shard_of(src), 1, "src {src}");
        }
        // Out-of-range sources clamp (and are then rejected by the shard).
        assert_eq!(svc.shard_of(9999), 1);
        // Shard boundaries coincide with fabric blocks when counts match.
        let f = fabric();
        for src in 0..16u16 {
            assert_eq!(
                svc.shard_of(src),
                f.block_of_server(src as usize).index(),
                "src {src}"
            );
        }
    }

    #[test]
    fn starts_route_by_source_and_ends_follow_tokens() {
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap(); // shard 0
        svc.on_message(start(2, 12, 0)).unwrap(); // shard 1
        assert_eq!(svc.shard_for_token(Token::new(1)), Some(0));
        assert_eq!(svc.shard_for_token(Token::new(2)), Some(1));
        assert_eq!(svc.shards()[0].active_flows(), 1);
        assert_eq!(svc.shards()[1].active_flows(), 1);
        assert_eq!(svc.active_flows(), 2);
        svc.on_message(Message::FlowletEnd {
            token: Token::new(2),
        })
        .unwrap();
        assert_eq!(svc.shards()[1].active_flows(), 0);
        assert_eq!(svc.shard_for_token(Token::new(2)), None);
        assert_eq!(svc.stats().ends, 1);
    }

    #[test]
    fn merged_updates_come_out_in_token_order() {
        let mut svc = sharded(2);
        // Interleave tokens across shards: odd tokens on shard 0, even on
        // shard 1.
        for (t, src) in [(1u32, 0u16), (2, 12), (3, 1), (4, 13), (5, 2)] {
            let dst = if src < 8 { src + 8 } else { src - 8 };
            svc.on_message(start(t, src, dst)).unwrap();
        }
        let updates = svc.tick();
        assert_eq!(updates.len(), 5);
        let tokens: Vec<u32> = updates.iter().map(|(_, m)| update_token(m).get()).collect();
        assert_eq!(tokens, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn cross_shard_duplicate_tokens_are_rejected() {
        let mut svc = sharded(2);
        svc.on_message(start(7, 0, 12)).unwrap();
        // Same token, different source — routes to the *other* shard, so
        // only the routing layer can catch it.
        let err = svc.on_message(start(7, 12, 0)).unwrap_err();
        assert_eq!(err, ServiceError::DuplicateToken(Token::new(7)));
        assert_eq!(svc.stats().rejected, 1);
        assert_eq!(svc.active_flows(), 1);
        assert_eq!(svc.shard_for_token(Token::new(7)), Some(0));
    }

    #[test]
    fn stray_rate_updates_and_unknown_ends_are_counted() {
        let mut svc = sharded(3);
        let upd = Message::RateUpdate {
            token: Token::new(5),
            rate: Rate16::encode(1.0),
        };
        assert_eq!(svc.on_message(upd), Err(ServiceError::UnexpectedRateUpdate));
        let end = Message::FlowletEnd {
            token: Token::new(9),
        };
        svc.on_message(end).unwrap();
        let st = svc.stats();
        assert_eq!(st.rejected, 1);
        assert_eq!(st.bytes_in, (upd.encoded_len() + end.encoded_len()) as u64);
        assert_eq!(st.ends, 0);
    }

    #[test]
    fn malformed_starts_are_rejected_by_the_owning_shard() {
        let mut svc = sharded(2);
        let err = svc.on_message(start(1, 9999, 0)).unwrap_err();
        assert!(matches!(err, ServiceError::MalformedStart(_)), "{err}");
        assert_eq!(svc.active_flows(), 0);
        assert_eq!(svc.stats().rejected, 1);
        assert_eq!(svc.shard_for_token(Token::new(1)), None);
    }

    #[test]
    fn merge_handles_empty_and_many_streams() {
        let upd = |t: u32| {
            (
                t as u16,
                Message::RateUpdate {
                    token: Token::new(t),
                    rate: Rate16::encode(1.0),
                },
            )
        };
        let streams = vec![
            vec![upd(3), upd(9), upd(10)],
            vec![],
            vec![upd(1), upd(4)],
            vec![upd(2), upd(5), upd(6), upd(11)],
            vec![upd(7)],
        ];
        let merged = merge_by_token(streams.clone());
        let tokens: Vec<u32> = merged.iter().map(|(_, m)| update_token(m).get()).collect();
        assert_eq!(tokens, vec![1, 2, 3, 4, 5, 6, 7, 9, 10, 11]);
        // The buffer-reuse variant produces the same order, drains the
        // streams in place, and keeps their capacity for the next tick.
        let mut streams = streams;
        let caps: Vec<usize> = streams.iter().map(Vec::capacity).collect();
        let mut out = Vec::new();
        merge_by_token_into(&mut streams, &mut out);
        assert_eq!(out, merged);
        assert!(streams.iter().all(Vec::is_empty));
        let kept: Vec<usize> = streams.iter().map(Vec::capacity).collect();
        assert_eq!(kept, caps);
        // All-empty streams leave `out` empty without reallocating it.
        merge_by_token_into(&mut streams, &mut out);
        assert!(out.is_empty());
        // The src halves ride along with their messages.
        assert!(merged
            .iter()
            .all(|(s, m)| *s as u32 == update_token(m).get()));
        // Degenerate shapes.
        assert!(merge_by_token(vec![]).is_empty());
        assert!(merge_by_token(vec![vec![], vec![]]).is_empty());
        let single = merge_by_token(vec![vec![upd(5), upd(2)]]);
        let tokens: Vec<u32> = single.iter().map(|(_, m)| update_token(m).get()).collect();
        assert_eq!(tokens, vec![5, 2], "single stream passes through as-is");
    }

    #[test]
    fn exchange_fires_on_cadence_and_counts_bounded_traffic() {
        let f = fabric();
        let cfg = FlowtuneConfig {
            exchange_every: 4,
            ..FlowtuneConfig::default()
        };
        let mut svc = ShardedService::new(&f, cfg, 2);
        assert_eq!(svc.exchange_every(), 4);
        // One cross-block flow per shard, on disjoint paths.
        svc.on_message(start(1, 0, 12)).unwrap();
        svc.on_message(start(2, 8, 4)).unwrap();
        for _ in 0..10 {
            svc.tick();
        }
        let st = svc.stats();
        assert_eq!(st.exchange_rounds, 2, "rounds at ticks 4 and 8");
        // A round can never cost more than every link shipped by every
        // shard in both directions; the exact early-round counts are
        // pinned against the exports in the exact-accounting test, and
        // the steady-state win over the dense protocol in the delta-
        // filter test.
        let worst = st.exchange_rounds * 2 * 2 * f.topology().link_count() as u64 * (4 + 8 * 3);
        assert!(st.exchange_bytes > 0);
        assert!(
            st.exchange_bytes <= worst,
            "{} > {worst}",
            st.exchange_bytes
        );
    }

    #[test]
    fn exchange_bytes_count_exactly_the_shipped_entries() {
        // One tick, one exchange round, fresh tables: the delta filter
        // must ship exactly the entries whose (load, dual, Hessian)
        // tuple differs from the all-zero tables, and the byte counter
        // must equal id + three 8-byte values per entry, in both
        // directions. The expectation is recomputed independently from
        // the public exports of a *no-exchange twin* — same flows, same
        // single tick — because the exchanging service's own exports are
        // already mutated by the round's consensus install. In
        // particular, links with zero load but a decaying initial dual
        // ship (receivers track the dual), while links whose whole tuple
        // is zero never do.
        let f = fabric();
        let mk = |exchange_every| {
            let cfg = FlowtuneConfig {
                exchange_every,
                ..FlowtuneConfig::default()
            };
            let mut svc = ShardedService::new(&f, cfg, 2);
            svc.on_message(start(1, 0, 12)).unwrap(); // shard 0
            svc.on_message(start(2, 8, 4)).unwrap(); // shard 1
            svc.tick();
            svc
        };
        let svc = mk(1);
        let twin = mk(0);
        assert_eq!(twin.stats().exchange_bytes, 0, "twin must not exchange");
        let entry = 4 + 8 * 3; // id + load + dual + Hessian (serial NED)
        let exports: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = twin
            .shards()
            .iter()
            .map(|s| (s.link_loads(), s.link_prices(), s.link_hessians()))
            .collect();
        let dirty: Vec<Vec<bool>> = exports
            .iter()
            .map(|(loads, prices, hess)| {
                (0..loads.len())
                    .map(|l| loads[l] != 0.0 || prices[l] != 0.0 || hess[l] != 0.0)
                    .collect()
            })
            .collect();
        // Out: each shard's dirty entries. In: each shard *subscribes*
        // only to the links it prices (its own load is positive), so it
        // receives the other shard's dirty entries on exactly those.
        let out: usize = dirty.iter().map(|d| d.iter().filter(|&&x| x).count()).sum();
        let recv_into = |me: usize, other: usize| -> usize {
            dirty[other]
                .iter()
                .enumerate()
                .filter(|&(l, &d)| d && exports[me].0[l] > 0.0)
                .count()
        };
        let entries = out + recv_into(0, 1) + recv_into(1, 0);
        assert!(entries > 0, "a first round must ship something");
        // Only shipped entries are counted (the PR 4 satellite fix: the
        // old dense accounting charged six full vectors per shard
        // whatever moved), and inbound only on subscribed links (this
        // PR: a shard with no flows on a link imports nothing for it).
        // On this fresh system every link is dirty outbound (initial
        // duals are decaying everywhere), but each shard's two disjoint
        // flows subscribe it to just its own four path links; the
        // delta-filter test covers the converged end where almost
        // nothing ships at all.
        assert!(entries < 2 * dirty[0].len() * 2, "pruning must bite");
        assert_eq!(svc.stats().exchange_bytes, (entries * entry) as u64);
    }

    #[test]
    fn delta_filter_stops_shipping_once_converged() {
        let f = fabric();
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            exchange_delta_eps: 1e-6,
            ..FlowtuneConfig::default()
        };
        let mut svc = ShardedService::new(&f, cfg, 2);
        assert_eq!(svc.exchange_delta_eps(), 1e-6);
        svc.on_message(start(1, 0, 12)).unwrap();
        svc.on_message(start(2, 8, 4)).unwrap();
        for _ in 0..300 {
            svc.tick();
        }
        let settled = svc.stats().exchange_bytes;
        for _ in 0..50 {
            svc.tick();
        }
        let st = svc.stats();
        assert_eq!(st.exchange_rounds, 350, "rounds keep firing");
        assert_eq!(
            st.exchange_bytes, settled,
            "converged state moves less than eps, so nothing ships"
        );
        // This is where the sparse protocol earns its keep: a dense
        // exchange would have shipped six full 8-byte-per-link vectors
        // per shard on every one of the 350 rounds.
        let dense = st.exchange_rounds * 6 * 8 * f.topology().link_count() as u64 * 2;
        assert!(
            st.exchange_bytes < dense / 5,
            "sparse {} vs dense {dense}",
            st.exchange_bytes
        );
    }

    #[test]
    fn a_new_subscriber_pays_catch_up_for_state_it_is_handed() {
        // Two runs, identical except for where the late flow lands: on a
        // receiver whose links shard 0 already prices (shared), or on a
        // fully disjoint path. In both, the late shard newly subscribes
        // to 4 links and ships 4 entries; in the shared case the round
        // additionally carries shard 0's fresh imports of the 2 shared
        // entries — the difference the wire must pay for sharing a
        // receiver. (Catch-up for state held from the decay era is
        // charged identically in both runs: `last` tables hold nonzero
        // final-shipped prices everywhere.)
        let f = fabric();
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            exchange_delta_eps: 1e-3,
            ..FlowtuneConfig::default()
        };
        let run = |late_dst: u16| {
            let mut svc = ShardedService::new(&f, cfg, 2);
            svc.on_message(start(1, 0, 12)).unwrap(); // shard 0
            for _ in 0..300 {
                svc.tick();
            }
            let settled = svc.stats().exchange_bytes;
            svc.tick();
            assert_eq!(svc.stats().exchange_bytes, settled, "must be converged");
            svc.on_message(start(2, 8, late_dst)).unwrap(); // shard 1
            svc.tick();
            svc.stats().exchange_bytes - settled
        };
        // start() pins spine 1, so (8 → 12) shares exactly two links with
        // (0 → 12): the spine→ToR down link and the receiver's access
        // link. (8 → 4) shares none.
        let shared = run(12);
        let disjoint = run(4);
        assert!(disjoint > 0, "a new flow's links must ship");
        let entry = 4 + 8 * 3;
        assert_eq!(
            shared,
            disjoint + 2 * entry,
            "sharing a receiver must cost exactly the 2 shared links' fresh imports"
        );
    }

    #[test]
    fn single_shard_never_exchanges() {
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            ..FlowtuneConfig::default()
        };
        let mut svc = ShardedService::new(&fabric(), cfg, 1);
        svc.on_message(start(1, 0, 12)).unwrap();
        for _ in 0..5 {
            svc.tick();
        }
        let st = svc.stats();
        assert_eq!(st.exchange_rounds, 0);
        assert_eq!(st.exchange_bytes, 0);
    }

    #[test]
    fn sequential_fallback_matches_parallel_configuration() {
        let cfg = FlowtuneConfig {
            parallel_shards: false,
            ..FlowtuneConfig::default()
        };
        let svc = ShardedService::new(&fabric(), cfg, 2);
        assert!(!svc.parallel_shards());
        // And a single shard never takes the pool path regardless.
        let one = ShardedService::new(&fabric(), FlowtuneConfig::default(), 1);
        assert!(!one.parallel_shards());
        let par = ShardedService::new(&fabric(), FlowtuneConfig::default(), 2);
        assert!(par.parallel_shards());
    }

    #[test]
    fn link_loads_sum_over_shards() {
        let f = fabric();
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap(); // shard 0
        svc.on_message(start(2, 8, 4)).unwrap(); // shard 1
        for _ in 0..200 {
            svc.tick();
        }
        let loads = svc.link_loads();
        assert_eq!(loads.len(), f.topology().link_count());
        // Each flow converged to ~line rate on its own links; the sum
        // over all links is 4 hops × ~39.6 G × 2 flows.
        let total: f64 = loads.iter().sum();
        assert!((total - 2.0 * 4.0 * 39.6).abs() < 1.0, "total {total}");
    }

    #[test]
    fn default_placement_is_contiguous_and_shapes_must_match() {
        let svc = sharded(2);
        assert_eq!(svc.placement().strategy(), "contiguous");
        assert_eq!(svc.placement().servers(), 16);
        assert_eq!(svc.placement().shard_count(), 2);
    }

    #[test]
    #[should_panic(expected = "same shard count")]
    fn replace_rejects_a_mismatched_shard_count() {
        let mut svc = sharded(2);
        svc.replace(crate::Placement::contiguous(16, 3));
    }

    #[test]
    #[should_panic(expected = "exactly the built shards")]
    fn with_placement_rejects_a_mismatched_placement() {
        let f = fabric();
        let shards: Vec<AllocatorService> = (0..2)
            .map(|_| AllocatorService::new(&f, FlowtuneConfig::default()))
            .collect();
        let _ = ShardedService::with_placement(shards, crate::Placement::contiguous(16, 3));
    }

    #[test]
    fn replace_migrates_moved_tokens_and_reroutes() {
        // Swap the two shards' endpoint ranges: every active flow moves.
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap(); // shard 0
        svc.on_message(start(2, 8, 4)).unwrap(); // shard 1
        for _ in 0..50 {
            svc.tick();
        }
        let starts_before = svc.stats().starts;
        // A signal-free traffic placement falls back to contiguous — a
        // no-op replace that migrates nothing.
        let fallback = crate::Placement::traffic(16, 8, 2, &TrafficMatrix::new(2), false);
        assert_eq!(svc.replace(fallback), 0);
        // Now actually move everything: over two 8-server units, a matrix
        // that makes unit 1 the heavy anchor lands it in shard 0 —
        // reversing the contiguous ranges.
        let mut m = TrafficMatrix::new(2);
        m.add(1, 1, 100.0);
        m.add(0, 0, 1.0);
        let reversed = crate::Placement::traffic(16, 8, 2, &m, false);
        assert_eq!(reversed.shard_of(8), 0, "heavy rack 1 anchors shard 0");
        assert_eq!(reversed.shard_of(0), 1);
        let moved = svc.replace(reversed);
        assert_eq!(moved, 2, "both flows changed shards");
        assert_eq!(svc.shard_for_token(Token::new(1)), Some(1));
        assert_eq!(svc.shard_for_token(Token::new(2)), Some(0));
        assert_eq!(svc.active_flows(), 2);
        // Migration is not churn: intake counters are unmoved.
        assert_eq!(svc.stats().starts, starts_before);
        assert_eq!(svc.stats().ends, 0);
        // The service keeps operating: both flows re-converge.
        for _ in 0..200 {
            svc.tick();
        }
        for t in [1u32, 2] {
            let rate = svc.flow_rate_gbps(Token::new(t)).unwrap();
            assert!((rate - 39.6).abs() < 0.2, "token {t}: {rate}");
        }
        // New starts route by the new placement.
        svc.on_message(start(3, 0, 12)).unwrap();
        assert_eq!(svc.shard_for_token(Token::new(3)), Some(1));
    }

    #[test]
    fn observed_matrix_accumulates_accepted_starts_only() {
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap(); // rack 0 → rack 3
        svc.on_message(start(2, 1, 13)).unwrap(); // rack 0 → rack 3
        svc.on_message(start(1, 5, 9)).unwrap_err(); // duplicate: no signal
        svc.on_message(Message::FlowletEnd {
            token: Token::new(99),
        })
        .unwrap(); // unknown end: no signal
        let m = svc.observed_matrix();
        assert_eq!(m.racks(), 4, "4 racks of 4 servers");
        assert_eq!(m.get(0, 3), 2.0 * 100_000.0, "both accepted starts counted");
        assert_eq!(m.total(), 2.0 * 100_000.0);
    }

    #[test]
    fn shipped_counts_track_exchange_activity() {
        let f = fabric();
        let cfg = FlowtuneConfig {
            exchange_every: 1,
            ..FlowtuneConfig::default()
        };
        let mut svc = ShardedService::new(&f, cfg, 2);
        assert!(svc.exchange_shipped_counts().is_empty(), "no round yet");
        svc.on_message(start(1, 0, 12)).unwrap();
        svc.on_message(start(2, 8, 4)).unwrap();
        for _ in 0..5 {
            svc.tick();
        }
        let counts = svc.exchange_shipped_counts();
        assert_eq!(counts.len(), f.topology().link_count());
        let total: u64 = counts.iter().sum();
        assert!(total > 0, "five exchange rounds shipped something");
    }

    #[test]
    fn single_flow_converges_like_an_unsharded_service() {
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap();
        for _ in 0..200 {
            svc.tick();
        }
        let rate = svc.flow_rate_gbps(Token::new(1)).unwrap();
        assert!((rate - 39.6).abs() < 0.2, "rate {rate}"); // 40 G × 0.99
    }
}
