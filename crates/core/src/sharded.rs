//! The sharded control plane: N independent allocator services, one slice
//! of the endpoint space each.
//!
//! The paper scales NED across cores of one machine (§5); the next scaling
//! step is to partition the *allocator itself* so independent fabric
//! blocks are served by independent services — the path to multi-socket
//! and multi-host allocators (cf. FairQ, arXiv:2401.04850: centralized
//! rate allocation survives at scale only when the allocator is
//! partitioned).
//!
//! [`ShardedService`] routes every `FlowletStart` to the shard that owns
//! its **source endpoint** (contiguous, equal server ranges; when the
//! shard count equals the fabric's block count a shard's range is exactly
//! one §5 block, so a shard's flows enter the fabric through its own
//! up-LinkBlock). Token-addressed messages (`FlowletEnd`) follow a
//! token→shard routing table. Each shard runs a full
//! [`AllocatorService`] over the whole fabric but sees only its own
//! flows; on [`ShardedService::tick`] the per-shard update streams —
//! each already token-ordered — are k-way merged into one token-ordered
//! stream, and [`ShardedService::stats`] aggregates the per-shard
//! counters.
//!
//! Sharding is exact (bit-for-bit) for workloads whose links each carry a
//! single shard's flows — in particular any workload at one shard, and
//! cross-block workloads that don't converge on one receiver. When shards
//! *do* contend for a link (e.g. a many-to-one incast from several
//! blocks), each shard prices the link for its own flows only, so the
//! merged allocation can over-subscribe that link — the same transient
//! F-NORM already guards against inside one service. Choosing partitions
//! that keep hot links single-shard is the §7 deployment question, not
//! this type's.

use std::collections::HashMap;

use flowtune_alloc::{RateAllocator, SerialAllocator};
use flowtune_proto::{Message, Token};
use flowtune_topo::TwoTierClos;

use crate::driver::TickDriver;
use crate::service::{AllocatorService, ServiceError, ServiceStats};
use crate::FlowtuneConfig;

/// N independent [`AllocatorService`] shards behind one
/// [`TickDriver`] face.
#[derive(Debug)]
pub struct ShardedService<E: RateAllocator = SerialAllocator> {
    shards: Vec<AllocatorService<E>>,
    /// token → shard, for `FlowletEnd` routing and rate queries.
    route: HashMap<Token, u32>,
    servers: usize,
    /// Counters for messages the routing layer disposed of itself
    /// (duplicates, unknown ends, stray rate updates) — folded into
    /// [`ShardedService::stats`] so the aggregate matches an unsharded
    /// service byte for byte.
    local: ServiceStats,
}

impl ShardedService {
    /// Builds `shards` serial-engine shards over `fabric` — the
    /// compile-time shortcut mirroring [`AllocatorService::new`].
    ///
    /// # Panics
    /// Panics if `shards` is 0.
    pub fn new(fabric: &TwoTierClos, cfg: FlowtuneConfig, shards: usize) -> Self {
        assert!(shards > 0, "a sharded service needs at least one shard");
        Self::from_shards(
            (0..shards)
                .map(|_| AllocatorService::new(fabric, cfg))
                .collect(),
        )
    }
}

impl<E: RateAllocator> ShardedService<E> {
    /// Assembles the service from already-built shards (all over the same
    /// fabric). Shard `i` owns the `i`-th contiguous slice of the server
    /// space.
    ///
    /// # Panics
    /// Panics if `shards` is empty or the shards disagree on the fabric.
    pub fn from_shards(shards: Vec<AllocatorService<E>>) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded service needs at least one shard"
        );
        let servers = shards[0].fabric().config().server_count();
        assert!(
            shards
                .iter()
                .all(|s| s.fabric().config() == shards[0].fabric().config()),
            "all shards must serve the same fabric"
        );
        Self {
            shards,
            route: HashMap::new(),
            servers,
            local: ServiceStats::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shards, in partition order.
    pub fn shards(&self) -> &[AllocatorService<E>] {
        &self.shards
    }

    /// The shard owning source endpoint `src`: contiguous equal ranges of
    /// the server space (shard = block when the shard count equals the
    /// fabric's block count). Out-of-range endpoints clamp to the last
    /// shard, whose service rejects them as
    /// [`ServiceError::MalformedStart`].
    pub fn shard_of(&self, src: u16) -> usize {
        let n = self.shards.len();
        ((src as usize).min(self.servers.saturating_sub(1)) * n / self.servers).min(n - 1)
    }

    /// The shard an active flowlet is registered in.
    pub fn shard_for_token(&self, token: Token) -> Option<usize> {
        self.route.get(&token).map(|&s| s as usize)
    }

    /// Routes an endpoint notification to its shard (see
    /// [`AllocatorService::on_message`] for semantics; the behavior —
    /// including rejection counting — matches the unsharded service).
    ///
    /// # Errors
    /// The inner service's error, or [`ServiceError::DuplicateToken`] /
    /// [`ServiceError::UnexpectedRateUpdate`] raised at the routing layer.
    pub fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        match msg {
            Message::FlowletStart { token, src, .. } => {
                if self.route.contains_key(&token) {
                    // Cross-shard duplicate detection must happen here: the
                    // original may live in a different shard than the one
                    // `src` routes to.
                    self.local.bytes_in += msg.encoded_len() as u64;
                    self.local.rejected += 1;
                    return Err(ServiceError::DuplicateToken(token));
                }
                let shard = self.shard_of(src);
                self.shards[shard].on_message(msg)?;
                self.route.insert(token, shard as u32);
                Ok(())
            }
            Message::FlowletEnd { token } => match self.route.remove(&token) {
                Some(shard) => self.shards[shard as usize].on_message(msg),
                None => {
                    // Unknown ends are ignored (predecessor allocator or
                    // re-keyed endpoint), but their bytes still arrived.
                    self.local.bytes_in += msg.encoded_len() as u64;
                    Ok(())
                }
            },
            Message::RateUpdate { .. } => {
                self.local.bytes_in += msg.encoded_len() as u64;
                self.local.rejected += 1;
                Err(ServiceError::UnexpectedRateUpdate)
            }
        }
    }

    /// One tick of every shard, with the per-shard update streams merged
    /// into a single token-ordered stream (each shard's stream is already
    /// token-ordered, and token sets are disjoint, so a k-way merge
    /// reproduces exactly the order an unsharded service emits).
    pub fn tick(&mut self) -> Vec<(u16, Message)> {
        let streams: Vec<Vec<(u16, Message)>> =
            self.shards.iter_mut().map(AllocatorService::tick).collect();
        merge_by_token(streams)
    }

    /// Current normalized rate of an active flowlet, Gbit/s.
    pub fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        let &shard = self.route.get(&token)?;
        self.shards[shard as usize].flow_rate_gbps(token)
    }

    /// Number of active flowlets across all shards.
    pub fn active_flows(&self) -> usize {
        self.route.len()
    }

    /// Operating counters aggregated over shards (plus the routing
    /// layer's own rejections).
    pub fn stats(&self) -> ServiceStats {
        let mut total = self.local;
        for s in &self.shards {
            // Exhaustive destructuring: a counter added to `ServiceStats`
            // must fail to compile here until it is aggregated.
            let ServiceStats {
                starts,
                ends,
                updates_sent,
                updates_suppressed,
                bytes_in,
                bytes_out,
                iterations,
                rejected,
            } = s.stats();
            total.starts += starts;
            total.ends += ends;
            total.updates_sent += updates_sent;
            total.updates_suppressed += updates_suppressed;
            total.bytes_in += bytes_in;
            total.bytes_out += bytes_out;
            total.iterations += iterations;
            total.rejected += rejected;
        }
        total
    }

    /// The fabric this control plane serves.
    pub fn fabric(&self) -> &TwoTierClos {
        self.shards[0].fabric()
    }

    /// The engine each shard runs (`serial` / `multicore` / …).
    pub fn inner_engine_name(&self) -> &'static str {
        self.shards[0].engine_name()
    }
}

impl<E: RateAllocator> TickDriver for ShardedService<E> {
    fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        ShardedService::on_message(self, msg)
    }

    fn tick(&mut self) -> Vec<(u16, Message)> {
        ShardedService::tick(self)
    }

    fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        ShardedService::flow_rate_gbps(self, token)
    }

    fn active_flows(&self) -> usize {
        ShardedService::active_flows(self)
    }

    fn stats(&self) -> ServiceStats {
        ShardedService::stats(self)
    }

    fn fabric(&self) -> &TwoTierClos {
        ShardedService::fabric(self)
    }

    fn engine_name(&self) -> &'static str {
        "sharded"
    }
}

fn update_token(msg: &Message) -> Token {
    match msg {
        Message::RateUpdate { token, .. }
        | Message::FlowletStart { token, .. }
        | Message::FlowletEnd { token } => *token,
    }
}

/// K-way merge of token-ordered update streams.
fn merge_by_token(streams: Vec<Vec<(u16, Message)>>) -> Vec<(u16, Message)> {
    let total = streams.iter().map(Vec::len).sum();
    let mut iters: Vec<_> = streams
        .into_iter()
        .map(|v| v.into_iter().peekable())
        .collect();
    let mut out: Vec<(u16, Message)> = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, Token)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some((_, msg)) = it.peek() {
                let t = update_token(msg);
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        let Some((i, _)) = best else { break };
        out.push(iters[i].next().expect("peeked"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_proto::Rate16;
    use flowtune_topo::ClosConfig;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::multicore(2, 2, 4)) // 16 servers, 2 blocks
    }

    fn start(token: u32, src: u16, dst: u16) -> Message {
        Message::FlowletStart {
            token: Token::new(token),
            src,
            dst,
            size_hint: 100_000,
            weight_q8: 256,
            spine: 1,
        }
    }

    fn sharded(n: usize) -> ShardedService {
        ShardedService::new(&fabric(), FlowtuneConfig::default(), n)
    }

    #[test]
    fn shard_ranges_partition_the_server_space() {
        let svc = sharded(2);
        for src in 0..8u16 {
            assert_eq!(svc.shard_of(src), 0, "src {src}");
        }
        for src in 8..16u16 {
            assert_eq!(svc.shard_of(src), 1, "src {src}");
        }
        // Out-of-range sources clamp (and are then rejected by the shard).
        assert_eq!(svc.shard_of(9999), 1);
        // Shard boundaries coincide with fabric blocks when counts match.
        let f = fabric();
        for src in 0..16u16 {
            assert_eq!(
                svc.shard_of(src),
                f.block_of_server(src as usize).index(),
                "src {src}"
            );
        }
    }

    #[test]
    fn starts_route_by_source_and_ends_follow_tokens() {
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap(); // shard 0
        svc.on_message(start(2, 12, 0)).unwrap(); // shard 1
        assert_eq!(svc.shard_for_token(Token::new(1)), Some(0));
        assert_eq!(svc.shard_for_token(Token::new(2)), Some(1));
        assert_eq!(svc.shards()[0].active_flows(), 1);
        assert_eq!(svc.shards()[1].active_flows(), 1);
        assert_eq!(svc.active_flows(), 2);
        svc.on_message(Message::FlowletEnd {
            token: Token::new(2),
        })
        .unwrap();
        assert_eq!(svc.shards()[1].active_flows(), 0);
        assert_eq!(svc.shard_for_token(Token::new(2)), None);
        assert_eq!(svc.stats().ends, 1);
    }

    #[test]
    fn merged_updates_come_out_in_token_order() {
        let mut svc = sharded(2);
        // Interleave tokens across shards: odd tokens on shard 0, even on
        // shard 1.
        for (t, src) in [(1u32, 0u16), (2, 12), (3, 1), (4, 13), (5, 2)] {
            let dst = if src < 8 { src + 8 } else { src - 8 };
            svc.on_message(start(t, src, dst)).unwrap();
        }
        let updates = svc.tick();
        assert_eq!(updates.len(), 5);
        let tokens: Vec<u32> = updates.iter().map(|(_, m)| update_token(m).get()).collect();
        assert_eq!(tokens, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn cross_shard_duplicate_tokens_are_rejected() {
        let mut svc = sharded(2);
        svc.on_message(start(7, 0, 12)).unwrap();
        // Same token, different source — routes to the *other* shard, so
        // only the routing layer can catch it.
        let err = svc.on_message(start(7, 12, 0)).unwrap_err();
        assert_eq!(err, ServiceError::DuplicateToken(Token::new(7)));
        assert_eq!(svc.stats().rejected, 1);
        assert_eq!(svc.active_flows(), 1);
        assert_eq!(svc.shard_for_token(Token::new(7)), Some(0));
    }

    #[test]
    fn stray_rate_updates_and_unknown_ends_are_counted() {
        let mut svc = sharded(3);
        let upd = Message::RateUpdate {
            token: Token::new(5),
            rate: Rate16::encode(1.0),
        };
        assert_eq!(svc.on_message(upd), Err(ServiceError::UnexpectedRateUpdate));
        let end = Message::FlowletEnd {
            token: Token::new(9),
        };
        svc.on_message(end).unwrap();
        let st = svc.stats();
        assert_eq!(st.rejected, 1);
        assert_eq!(st.bytes_in, (upd.encoded_len() + end.encoded_len()) as u64);
        assert_eq!(st.ends, 0);
    }

    #[test]
    fn malformed_starts_are_rejected_by_the_owning_shard() {
        let mut svc = sharded(2);
        let err = svc.on_message(start(1, 9999, 0)).unwrap_err();
        assert!(matches!(err, ServiceError::MalformedStart(_)), "{err}");
        assert_eq!(svc.active_flows(), 0);
        assert_eq!(svc.stats().rejected, 1);
        assert_eq!(svc.shard_for_token(Token::new(1)), None);
    }

    #[test]
    fn single_flow_converges_like_an_unsharded_service() {
        let mut svc = sharded(2);
        svc.on_message(start(1, 0, 12)).unwrap();
        for _ in 0..200 {
            svc.tick();
        }
        let rate = svc.flow_rate_gbps(Token::new(1)).unwrap();
        assert!((rate - 39.6).abs() < 0.2, "rate {rate}"); // 40 G × 0.99
    }
}
