//! The endpoint (server) side of Flowtune.
//!
//! Each server runs an agent that (1) watches its per-flow send queues and
//! turns occupancy transitions into flowlet start/end notifications, and
//! (2) receives rate updates from the allocator and exposes the pacing
//! rate the transport must honour. §6.2: "Whenever a server receives a
//! rate update for a flow from the allocator, it opens the flow's TCP
//! window and paces packets on that flow according to the allocated rate."

use std::collections::HashMap;

use flowtune_proto::{Message, Token};
use flowtune_topo::clos::splitmix64;

use crate::flowlet::{FlowletAction, FlowletTracker};
use crate::token::TokenAllocator;
use crate::FlowtuneConfig;

#[derive(Debug)]
struct FlowState {
    tracker: FlowletTracker,
    /// Token of the active flowlet, if any.
    token: Option<Token>,
    dst: u16,
    spine: u8,
    /// Last allocated pacing rate, Gbit/s; `None` until the first update.
    rate_gbps: Option<f64>,
}

/// Per-server Flowtune agent (sans-IO: the caller moves the messages).
#[derive(Debug)]
pub struct EndpointAgent {
    server: u16,
    spines: usize,
    cfg: FlowtuneConfig,
    tokens: TokenAllocator,
    flows: HashMap<u64, FlowState>,
    by_token: HashMap<Token, u64>,
}

impl EndpointAgent {
    /// Creates the agent for `server` in a cluster of `cluster_size`
    /// servers with the default config and 4 spines (the evaluation
    /// fabric).
    pub fn new(server: u16, cluster_size: usize) -> Self {
        Self::with_config(server, cluster_size, 4, FlowtuneConfig::default())
    }

    /// Full-control constructor.
    pub fn with_config(
        server: u16,
        cluster_size: usize,
        spines: usize,
        cfg: FlowtuneConfig,
    ) -> Self {
        assert!(spines > 0);
        Self {
            server,
            spines,
            cfg,
            tokens: TokenAllocator::new(server, cluster_size),
            flows: HashMap::new(),
            by_token: HashMap::new(),
        }
    }

    /// The ECMP spine this agent's fabric hashes `flow` to — must agree
    /// with [`flowtune_topo::TwoTierClos::ecmp_spine`] so the allocator
    /// reconstructs the true data path.
    pub fn spine_for(&self, flow: u64, dst: u16) -> u8 {
        let h = splitmix64(
            splitmix64(flow ^ 0x9e37_79b9_7f4a_7c15) ^ ((self.server as u64) << 32) ^ dst as u64,
        );
        (h % self.spines as u64) as u8
    }

    /// Data was queued for `flow` (identified by a cluster-unique id)
    /// toward `dst`. Returns a `FlowletStart` to forward to the allocator
    /// if this backlog begins a new flowlet.
    pub fn on_backlog(&mut self, flow: u64, dst: u16, bytes: u64, now_ps: u64) -> Option<Message> {
        self.on_backlog_weighted(flow, dst, bytes, self.cfg.default_weight, now_ps)
    }

    /// [`EndpointAgent::on_backlog`] with an explicit proportional-fairness
    /// weight.
    pub fn on_backlog_weighted(
        &mut self,
        flow: u64,
        dst: u16,
        bytes: u64,
        weight: f64,
        now_ps: u64,
    ) -> Option<Message> {
        let spine = self.spine_for(flow, dst);
        let state = self.flows.entry(flow).or_insert_with(|| FlowState {
            tracker: FlowletTracker::new(self.cfg.flowlet_idle_ps),
            token: None,
            dst,
            spine,
            rate_gbps: None,
        });
        match state.tracker.on_backlog(now_ps) {
            FlowletAction::Started => {
                let token = self.tokens.mint();
                state.token = Some(token);
                self.by_token.insert(token, flow);
                Some(Message::FlowletStart {
                    token,
                    src: self.server,
                    dst,
                    size_hint: bytes.min(u32::MAX as u64) as u32,
                    weight_q8: (weight * 256.0).round().clamp(1.0, u16::MAX as f64) as u16,
                    spine,
                })
            }
            _ => None,
        }
    }

    /// The send queue of `flow` drained at `now`.
    pub fn on_drained(&mut self, flow: u64, now_ps: u64) {
        if let Some(state) = self.flows.get_mut(&flow) {
            let _ = state.tracker.on_drained(now_ps);
        }
    }

    /// Clock tick: returns `FlowletEnd` messages for flows whose queues
    /// stayed empty past the idle threshold. Ended flows keep their last
    /// rate as the §2 "starting point" for a future flowlet or a TCP
    /// fallback.
    pub fn poll(&mut self, now_ps: u64) -> Vec<Message> {
        let mut out = Vec::new();
        for state in self.flows.values_mut() {
            if state.tracker.poll(now_ps) == FlowletAction::Ended {
                if let Some(token) = state.token.take() {
                    self.by_token.remove(&token);
                    out.push(Message::FlowletEnd { token });
                }
            }
        }
        out
    }

    /// Earliest deadline at which [`EndpointAgent::poll`] could emit an
    /// end, for event-driven callers.
    pub fn next_deadline_ps(&self) -> Option<u64> {
        self.flows
            .values()
            .filter_map(|s| s.tracker.end_deadline_ps())
            .min()
    }

    /// Handles a rate update from the allocator; returns the flow it
    /// applied to and the new pacing rate (Gbit/s).
    pub fn on_rate_update(&mut self, msg: &Message) -> Option<(u64, f64)> {
        let Message::RateUpdate { token, rate } = msg else {
            return None;
        };
        let flow = *self.by_token.get(token)?;
        let gbps = rate.decode();
        self.flows.get_mut(&flow)?.rate_gbps = Some(gbps);
        Some((flow, gbps))
    }

    /// The current pacing rate of a flow (Gbit/s), if the allocator has
    /// assigned one.
    pub fn pacing_rate_gbps(&self, flow: u64) -> Option<f64> {
        self.flows.get(&flow)?.rate_gbps
    }

    /// Whether `flow` currently has an active (notified) flowlet.
    pub fn flowlet_active(&self, flow: u64) -> bool {
        self.flows.get(&flow).is_some_and(|s| s.token.is_some())
    }

    /// The active flowlet's token, if any.
    pub fn token_of(&self, flow: u64) -> Option<Token> {
        self.flows.get(&flow).and_then(|s| s.token)
    }

    /// The destination this flow was registered toward.
    pub fn dst_of(&self, flow: u64) -> Option<u16> {
        self.flows.get(&flow).map(|s| s.dst)
    }

    /// The spine carried in this flow's start notification.
    pub fn spine_of(&self, flow: u64) -> Option<u8> {
        self.flows.get(&flow).map(|s| s.spine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000_000;

    #[test]
    fn backlog_emits_start_once_per_flowlet() {
        let mut a = EndpointAgent::new(3, 144);
        let m1 = a.on_backlog(1, 100, 5000, 0);
        assert!(matches!(
            m1,
            Some(Message::FlowletStart {
                src: 3,
                dst: 100,
                ..
            })
        ));
        assert!(a.on_backlog(1, 100, 5000, 10).is_none(), "same flowlet");
        assert!(a.flowlet_active(1));
    }

    #[test]
    fn drain_then_poll_emits_end_with_matching_token() {
        let mut a = EndpointAgent::new(3, 144);
        let Some(Message::FlowletStart { token, .. }) = a.on_backlog(1, 100, 5000, 0) else {
            panic!("expected start");
        };
        a.on_drained(1, 10 * US);
        assert!(a.poll(10 * US + 1).is_empty(), "not idle long enough");
        let ends = a.poll(10 * US + 30 * US);
        assert_eq!(ends, vec![Message::FlowletEnd { token }]);
        assert!(!a.flowlet_active(1));
    }

    #[test]
    fn new_backlog_after_end_is_a_new_flowlet() {
        let mut a = EndpointAgent::new(3, 144);
        let Some(Message::FlowletStart { token: t1, .. }) = a.on_backlog(1, 100, 1000, 0) else {
            panic!()
        };
        a.on_drained(1, 0);
        a.poll(40 * US);
        let Some(Message::FlowletStart { token: t2, .. }) = a.on_backlog(1, 100, 1000, 80 * US)
        else {
            panic!("second flowlet should start")
        };
        assert_ne!(t1, t2, "fresh token per flowlet");
    }

    #[test]
    fn rate_update_applies_by_token() {
        let mut a = EndpointAgent::new(3, 144);
        let Some(Message::FlowletStart { token, .. }) = a.on_backlog(1, 100, 1000, 0) else {
            panic!()
        };
        assert_eq!(a.pacing_rate_gbps(1), None);
        let upd = Message::RateUpdate {
            token,
            rate: flowtune_proto::Rate16::encode(7.5),
        };
        let (flow, gbps) = a.on_rate_update(&upd).unwrap();
        assert_eq!(flow, 1);
        assert!((gbps - 7.5).abs() < 1e-2);
        assert!((a.pacing_rate_gbps(1).unwrap() - 7.5).abs() < 1e-2);
    }

    #[test]
    fn stale_rate_update_is_ignored() {
        let mut a = EndpointAgent::new(3, 144);
        let Some(Message::FlowletStart { token, .. }) = a.on_backlog(1, 100, 1000, 0) else {
            panic!()
        };
        a.on_drained(1, 0);
        a.poll(40 * US); // flowlet ends
        let upd = Message::RateUpdate {
            token,
            rate: flowtune_proto::Rate16::encode(7.5),
        };
        assert_eq!(a.on_rate_update(&upd), None);
    }

    #[test]
    fn rate_survives_flowlet_end_as_a_starting_point() {
        let mut a = EndpointAgent::new(3, 144);
        let Some(Message::FlowletStart { token, .. }) = a.on_backlog(1, 100, 1000, 0) else {
            panic!()
        };
        a.on_rate_update(&Message::RateUpdate {
            token,
            rate: flowtune_proto::Rate16::encode(2.0),
        });
        a.on_drained(1, 0);
        a.poll(40 * US);
        assert!(
            a.pacing_rate_gbps(1).is_some(),
            "kept as TCP starting point"
        );
    }

    #[test]
    fn spine_matches_fabric_hash() {
        use flowtune_topo::{ClosConfig, FlowId, TwoTierClos};
        let fabric = TwoTierClos::build(ClosConfig::paper_eval());
        let a = EndpointAgent::new(17, 144);
        for flow in 0..50u64 {
            assert_eq!(
                a.spine_for(flow, 99) as usize,
                fabric.ecmp_spine(17, 99, FlowId(flow)),
                "flow {flow}"
            );
        }
    }

    #[test]
    fn deadline_tracks_earliest_drain() {
        let mut a = EndpointAgent::new(0, 16);
        a.on_backlog(1, 2, 100, 0);
        a.on_backlog(2, 3, 100, 0);
        assert_eq!(a.next_deadline_ps(), None);
        a.on_drained(2, 5 * US);
        a.on_drained(1, 9 * US);
        assert_eq!(a.next_deadline_ps(), Some(5 * US + 30 * US));
    }
}
