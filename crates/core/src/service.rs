//! The centralized allocator as a library.
//!
//! [`AllocatorService`] is the Figure-1 box: it consumes flowlet start/end
//! notifications, maintains the flow set inside a block-partitioned NED
//! engine, and on every tick produces threshold-filtered rate updates. It
//! is sans-IO — the network simulator delivers the messages over simulated
//! TCP, the examples call it directly.

use std::collections::HashMap;

use flowtune_alloc::{AllocConfig, SerialAllocator};
use flowtune_proto::{Message, Rate16, ThresholdFilter, Token};
use flowtune_topo::{FlowId, TwoTierClos};

use crate::FlowtuneConfig;

#[derive(Debug, Clone, Copy)]
struct Registered {
    internal: FlowId,
    src: u16,
}

/// Operating counters, mostly for the overhead experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Flowlet starts accepted.
    pub starts: u64,
    /// Flowlet ends accepted.
    pub ends: u64,
    /// Rate updates emitted (post-filter).
    pub updates_sent: u64,
    /// Rate updates suppressed by the threshold filter.
    pub updates_suppressed: u64,
    /// Payload bytes received from endpoints.
    pub bytes_in: u64,
    /// Payload bytes sent to endpoints.
    pub bytes_out: u64,
    /// Allocator iterations run.
    pub iterations: u64,
}

/// The centralized rate allocator (NED + F-NORM + update filtering).
#[derive(Debug)]
pub struct AllocatorService {
    fabric: TwoTierClos,
    engine: SerialAllocator,
    cfg: FlowtuneConfig,
    registry: HashMap<Token, Registered>,
    filter: ThresholdFilter,
    next_internal: u64,
    stats: ServiceStats,
}

impl AllocatorService {
    /// Builds the service over `fabric`. The §6.4 capacity headroom
    /// (`1 − update_threshold`) is applied to every link.
    pub fn new(fabric: &TwoTierClos, cfg: FlowtuneConfig) -> Self {
        let alloc_cfg = AllocConfig {
            gamma: cfg.gamma,
            f_norm: cfg.f_norm,
            capacity_fraction: cfg.capacity_fraction(),
        };
        Self {
            fabric: fabric.clone(),
            engine: SerialAllocator::new(fabric, alloc_cfg),
            cfg,
            registry: HashMap::new(),
            filter: ThresholdFilter::new(cfg.update_threshold),
            next_internal: 0,
            stats: ServiceStats::default(),
        }
    }

    /// Handles an endpoint notification. `RateUpdate`s are allocator
    /// output and are rejected. Unknown `FlowletEnd`s are ignored (the
    /// flowlet may have been re-keyed by an endpoint restart).
    ///
    /// # Panics
    /// Panics if a `FlowletStart` reuses a token that is still active —
    /// endpoints mint unique tokens, so this indicates message corruption.
    pub fn on_message(&mut self, msg: Message) {
        self.stats.bytes_in += msg.encoded_len() as u64;
        match msg {
            Message::FlowletStart {
                token,
                src,
                dst,
                weight_q8,
                spine,
                ..
            } => {
                assert!(
                    !self.registry.contains_key(&token),
                    "token {token:?} already active"
                );
                let internal = FlowId(self.next_internal);
                self.next_internal += 1;
                let weight = if weight_q8 == 0 {
                    self.cfg.default_weight
                } else {
                    weight_q8 as f64 / 256.0
                };
                let path = self
                    .fabric
                    .path_via_spine(src as usize, dst as usize, spine as usize);
                self.engine
                    .add_flow(internal, src as usize, dst as usize, weight, &path);
                self.registry.insert(token, Registered { internal, src });
                self.stats.starts += 1;
            }
            Message::FlowletEnd { token } => {
                if let Some(reg) = self.registry.remove(&token) {
                    self.engine.remove_flow(reg.internal);
                    self.filter.forget(token);
                    self.stats.ends += 1;
                }
            }
            Message::RateUpdate { .. } => {
                // Output, not input; receiving one indicates mis-wiring.
                debug_assert!(false, "allocator received a RateUpdate");
            }
        }
    }

    /// One allocator tick (§6.2: every 10 µs): runs the configured number
    /// of NED iterations + F-NORM and returns `(source server, update)`
    /// pairs for every flow whose normalized rate moved beyond the
    /// threshold.
    pub fn tick(&mut self) -> Vec<(u16, Message)> {
        for _ in 0..self.cfg.iterations_per_tick {
            self.engine.iterate();
        }
        self.stats.iterations += self.cfg.iterations_per_tick as u64;
        let mut out = Vec::new();
        // Deterministic order: engine (FlowBlock, slot) order would churn
        // under swap_remove; sort by token for stability.
        let mut tokens: Vec<Token> = self.registry.keys().copied().collect();
        tokens.sort_unstable();
        for token in tokens {
            let reg = self.registry[&token];
            let rate = self
                .engine
                .flow_rate(reg.internal)
                .expect("registered flow must be in the engine");
            let gbps = rate.normalized;
            if self.filter.should_send(token, gbps) {
                let msg = Message::RateUpdate {
                    token,
                    rate: Rate16::encode(gbps),
                };
                self.stats.bytes_out += msg.encoded_len() as u64;
                self.stats.updates_sent += 1;
                out.push((reg.src, msg));
            } else {
                self.stats.updates_suppressed += 1;
            }
        }
        out
    }

    /// Current normalized rate of an active flowlet, Gbit/s.
    pub fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        let reg = self.registry.get(&token)?;
        Some(self.engine.flow_rate(reg.internal)?.normalized)
    }

    /// Number of active flowlets.
    pub fn active_flows(&self) -> usize {
        self.registry.len()
    }

    /// Operating counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The fabric this allocator serves.
    pub fn fabric(&self) -> &TwoTierClos {
        &self.fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_topo::ClosConfig;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::paper_eval())
    }

    fn start(token: u32, src: u16, dst: u16) -> Message {
        Message::FlowletStart {
            token: Token::new(token),
            src,
            dst,
            size_hint: 100_000,
            weight_q8: 256,
            spine: 1,
        }
    }

    #[test]
    fn single_flow_gets_headroom_scaled_line_rate() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140));
        // A handful of 10 µs ticks converge the only flow to line rate
        // × 0.99 headroom.
        let mut last = Vec::new();
        for _ in 0..200 {
            last = svc.tick();
        }
        let rate = svc.flow_rate_gbps(Token::new(1)).unwrap();
        assert!((rate - 9.9).abs() < 0.05, "rate {rate}");
        // Converged ⇒ the filter suppresses further updates.
        assert!(last.is_empty(), "{last:?}");
    }

    #[test]
    fn updates_route_to_the_source_server() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 17, 99));
        let updates = svc.tick();
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].0, 17);
    }

    #[test]
    fn two_flows_share_fairly_and_end_frees() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140));
        svc.on_message(start(2, 1, 141)); // same rack 0 → shares nothing
        for _ in 0..100 {
            svc.tick();
        }
        // Different sources/destinations: both get full line rate.
        assert!((svc.flow_rate_gbps(Token::new(1)).unwrap() - 9.9).abs() < 0.05);
        assert!((svc.flow_rate_gbps(Token::new(2)).unwrap() - 9.9).abs() < 0.05);

        // Now two flows from the same source share its access link.
        svc.on_message(start(3, 0, 100));
        for _ in 0..200 {
            svc.tick();
        }
        let r1 = svc.flow_rate_gbps(Token::new(1)).unwrap();
        let r3 = svc.flow_rate_gbps(Token::new(3)).unwrap();
        assert!((r1 - 4.95).abs() < 0.1, "shared uplink: {r1}");
        assert!((r3 - 4.95).abs() < 0.1, "shared uplink: {r3}");

        svc.on_message(Message::FlowletEnd { token: Token::new(3) });
        for _ in 0..200 {
            svc.tick();
        }
        let r1 = svc.flow_rate_gbps(Token::new(1)).unwrap();
        assert!((r1 - 9.9).abs() < 0.05, "back to line rate: {r1}");
        assert_eq!(svc.active_flows(), 2);
    }

    #[test]
    fn threshold_suppresses_steady_state_updates() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140));
        for _ in 0..100 {
            svc.tick();
        }
        let before = svc.stats().updates_sent;
        for _ in 0..100 {
            let updates = svc.tick();
            assert!(updates.is_empty());
        }
        assert_eq!(svc.stats().updates_sent, before);
        assert!(svc.stats().updates_suppressed > 0);
    }

    #[test]
    fn unknown_end_is_ignored() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(Message::FlowletEnd { token: Token::new(9) });
        assert_eq!(svc.active_flows(), 0);
        assert_eq!(svc.stats().ends, 0);
    }

    #[test]
    fn byte_accounting_matches_wire_sizes() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140));
        svc.on_message(Message::FlowletEnd { token: Token::new(1) });
        assert_eq!(svc.stats().bytes_in, 16 + 4);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn duplicate_active_token_rejected() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140));
        svc.on_message(start(1, 2, 141));
    }
}
