//! The centralized allocator as a library.
//!
//! # Layering: engines, services, drivers
//!
//! The control plane is built from three layers, each swappable
//! independently of the others:
//!
//! 1. **[`RateAllocator`] engines** compute per-flow rates over a fixed
//!    fabric. [`Engine`] names them: [`Engine::Serial`] (the reference
//!    NED optimizer), [`Engine::Multicore`] (the §5 FlowBlock-parallel
//!    engine, bit-for-bit equal rates, persistent worker pool),
//!    [`Engine::Fastpass`] (per-packet timeslot arbitration, the §6.1
//!    baseline) and [`Engine::Gradient`] (first-order gradient
//!    projection, the §6.6/Figure-12 baseline).
//! 2. **[`AllocatorService`]** is the Figure-1 box around one engine: it
//!    consumes flowlet start/end notifications, keeps the token registry,
//!    and on every [`AllocatorService::tick`] (§6.2: every 10 µs) emits
//!    threshold-filtered rate updates. It is sans-IO — the network
//!    simulator delivers the messages over simulated TCP, the examples
//!    call it directly.
//! 3. **[`TickDriver`](crate::TickDriver)** abstracts "a thing with an
//!    allocator tick" — the message-in/updates-out contract shared by
//!    [`AllocatorService`] and [`ShardedService`](crate::ShardedService).
//!    [`ShardedService`](crate::ShardedService) partitions the endpoint
//!    space across N inner
//!    services (one fabric block each, [`Engine::Sharded`]), routes
//!    notifications by source endpoint, and merges the shards' update
//!    streams back into one token-ordered stream. Embedders that should
//!    run sharded or unsharded by configuration hold a
//!    [`BoxTickDriver`](crate::BoxTickDriver) built with
//!    [`ServiceBuilder::build_driver`].
//!
//! Malformed or inconsistent control messages (duplicate live tokens,
//! rate updates sent *to* the allocator) are reportable conditions, not
//! crashes: [`AllocatorService::on_message`] returns a [`ServiceError`]
//! and bumps [`ServiceStats::rejected`].

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use flowtune_alloc::{AllocConfig, BoxEngine, FlowRate, RateAllocator, SerialAllocator};
use flowtune_fastpass::FastpassAdapter;
use flowtune_proto::{Message, Rate16, ThresholdFilter, Token};
use flowtune_topo::{FlowId, TwoTierClos};

use crate::driver::PhaseTimings;
use crate::FlowtuneConfig;

#[derive(Debug, Clone, Copy)]
struct Registered {
    internal: FlowId,
    src: u16,
    /// Destination, weight and spine are retained so a registration can
    /// be re-created verbatim in another shard when a re-placement epoch
    /// migrates the flow (see [`AllocatorService::extract_flow`]).
    dst: u16,
    weight_q8: u16,
    spine: u8,
}

/// A flowlet registration detached from its service, carrying everything
/// needed to re-register the flow elsewhere — the unit of flow-state
/// migration between shards during a re-placement epoch
/// ([`ShardedService::replace`](crate::ShardedService::replace)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowMigration {
    /// The endpoint-visible flowlet token.
    pub token: Token,
    /// Source server index.
    pub src: u16,
    /// Destination server index.
    pub dst: u16,
    /// Proportional-fairness weight in Q8 fixed point (0 = the config
    /// default), exactly as the original `FlowletStart` carried it.
    pub weight_q8: u16,
    /// The ECMP spine of the flow's path.
    pub spine: u8,
}

/// Operating counters, mostly for the overhead experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Flowlet starts accepted.
    pub starts: u64,
    /// Flowlet ends accepted.
    pub ends: u64,
    /// Rate updates emitted (post-filter).
    pub updates_sent: u64,
    /// Rate updates suppressed by the threshold filter.
    pub updates_suppressed: u64,
    /// Payload bytes received from endpoints.
    pub bytes_in: u64,
    /// Payload bytes sent to endpoints.
    pub bytes_out: u64,
    /// Allocator iterations run.
    pub iterations: u64,
    /// Messages rejected as corrupt or inconsistent (duplicate live
    /// tokens, rate updates addressed to the allocator).
    pub rejected: u64,
    /// Inter-shard link-state exchange rounds executed. Always 0 for an
    /// unsharded service and for sharded services with the exchange
    /// disabled ([`crate::FlowtuneConfig::exchange_every`] = 0).
    pub exchange_rounds: u64,
    /// Bytes of link state shipped between shards by those rounds. Each
    /// round, every exporting shard sends its load, Hessian-diagonal
    /// (second-order engines only) and dual (price) vectors and receives
    /// the background and consensus counterparts — up to six vectors of
    /// 8 bytes per link.
    pub exchange_bytes: u64,
    /// Exchange frames that failed to decode or apply (truncated or
    /// corrupt bytes off a transport, version mismatches, out-of-range
    /// indices). Always 0 in-process; a distributed peer counts here
    /// what a real socket handed it that it had to drop.
    pub exchange_decode_errors: u64,
    /// Incremental engines only: cumulative count of flows whose rate
    /// pass was actually re-run (summed over shards). On a quiet tick
    /// this grows by the changed set, not the flow count; always 0 for
    /// full-sweep engines ([`crate::FlowtuneConfig::incremental`] off).
    pub dirty_flows: u64,
    /// Incremental engines only: cumulative count of per-iteration link
    /// price moves beyond [`crate::FlowtuneConfig::dirty_eps`] (root
    /// diffs and exchange installs; summed over shards). Always 0 for
    /// full-sweep engines.
    pub dirty_links: u64,
}

/// Why the allocator refused a control message or a build request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// A `FlowletStart` reused a token that is still active. Endpoints
    /// mint unique tokens, so this indicates corruption or a duplicated
    /// segment; the start is dropped and the original flowlet keeps its
    /// registration.
    DuplicateToken(Token),
    /// A `FlowletStart` named endpoints the fabric does not have —
    /// src/dst out of range, src == dst, or an unknown spine. A
    /// corrupted field, not a crash: the start is dropped.
    MalformedStart(Token),
    /// A `RateUpdate` arrived at the allocator; updates are allocator
    /// *output*, so receiving one indicates mis-wiring.
    UnexpectedRateUpdate,
    /// [`ServiceBuilder::build`] was called without a fabric.
    MissingFabric,
    /// [`ServiceBuilder::build`] was called with [`Engine::Sharded`]; a
    /// sharded control plane is a [`ShardedService`](crate::ShardedService),
    /// built through [`ServiceBuilder::build_driver`].
    ShardedNeedsDriver,
    /// [`Engine::Sharded`] named an impossible partition (zero shards, or
    /// shards nested inside shards).
    BadShards(&'static str),
    /// A shard's engine panicked during
    /// [`ShardedService::try_tick`](crate::ShardedService::try_tick). The
    /// sibling shards completed the tick and the worker pool survives
    /// (the panic payload is printed by the panic hook as usual); the
    /// merged update stream for the tick is dropped because it would be
    /// missing the dead shard's updates.
    ShardPanicked {
        /// Index of the shard whose tick panicked.
        shard: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::DuplicateToken(t) => {
                write!(f, "flowlet start reuses active token {t:?}")
            }
            ServiceError::MalformedStart(t) => {
                write!(f, "flowlet start {t:?} names endpoints outside the fabric")
            }
            ServiceError::UnexpectedRateUpdate => {
                write!(f, "allocator received a RateUpdate")
            }
            ServiceError::MissingFabric => {
                write!(f, "allocator builder needs a fabric")
            }
            ServiceError::ShardedNeedsDriver => {
                write!(
                    f,
                    "Engine::Sharded builds a ShardedService; use build_driver()"
                )
            }
            ServiceError::BadShards(why) => {
                write!(f, "bad shard spec: {why}")
            }
            ServiceError::ShardPanicked { shard } => {
                write!(f, "shard {shard} panicked during its tick")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Which allocation engine a built service runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Engine {
    /// Single-threaded reference NED engine.
    #[default]
    Serial,
    /// §5 FlowBlock-parallel NED engine. `workers` caps the OS threads
    /// per iteration; `0` sizes to the host.
    Multicore {
        /// OS-thread cap (0 = auto).
        workers: usize,
    },
    /// Fastpass-style per-packet timeslot arbitration (§6.1 baseline).
    Fastpass,
    /// First-order gradient projection (§6.6 / Figure-12 baseline).
    Gradient,
    /// A [`ShardedService`](crate::ShardedService): `shards` independent
    /// inner services, each running its own `inner` engine over one slice
    /// of the endpoint space (one fabric block each when `shards` equals
    /// the fabric's block count). Built with
    /// [`ServiceBuilder::build_driver`]; `inner` must not itself be
    /// `Sharded`.
    Sharded {
        /// Number of independent shards (≥ 1).
        shards: usize,
        /// The engine each shard runs.
        inner: Box<Engine>,
    },
}

/// `--engine` names [`Engine::parse`] accepts. (`sharded` is not in the
/// list: sharding composes over a base engine via `--shards N`.)
pub const ENGINE_NAMES: [&str; 4] = ["serial", "multicore", "fastpass", "gradient"];

/// An `--engine` value [`Engine::parse`] did not recognize. The `Display`
/// form lists the valid names, so surfacing it verbatim gives the operator
/// the fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineError {
    got: String,
}

impl ParseEngineError {
    /// The rejected engine name.
    pub fn got(&self) -> &str {
        &self.got
    }
}

impl std::fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine `{}`; valid engines: {}",
            self.got,
            ENGINE_NAMES.join(", ")
        )
    }
}

impl std::error::Error for ParseEngineError {}

impl Engine {
    /// Parses an engine name as accepted by the experiment binaries'
    /// `--engine` flag.
    ///
    /// # Errors
    /// [`ParseEngineError`] (listing the valid names) on anything not in
    /// [`ENGINE_NAMES`].
    pub fn parse(s: &str) -> Result<Engine, ParseEngineError> {
        match s {
            "serial" => Ok(Engine::Serial),
            "multicore" => Ok(Engine::Multicore { workers: 0 }),
            "fastpass" => Ok(Engine::Fastpass),
            "gradient" => Ok(Engine::Gradient),
            _ => Err(ParseEngineError { got: s.to_string() }),
        }
    }

    /// The flag-style name (`serial` / `multicore` / `fastpass` /
    /// `gradient` / `sharded`).
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Serial => "serial",
            Engine::Multicore { .. } => "multicore",
            Engine::Fastpass => "fastpass",
            Engine::Gradient => "gradient",
            Engine::Sharded { .. } => "sharded",
        }
    }

    /// Wraps this engine in [`Engine::Sharded`] over `shards` shards (the
    /// `--shards N` flag). `shards == 1` still builds a (single-shard)
    /// `ShardedService`, which is useful for equivalence testing.
    pub fn sharded(self, shards: usize) -> Engine {
        Engine::Sharded {
            shards,
            inner: Box::new(self),
        }
    }
}

/// Configures and constructs an [`AllocatorService`] with a run-time
/// engine choice. Obtained from [`AllocatorService::builder`].
#[derive(Debug, Clone, Default)]
pub struct ServiceBuilder {
    fabric: Option<TwoTierClos>,
    cfg: FlowtuneConfig,
    engine: Engine,
    matrix: Option<crate::placement::TrafficMatrix>,
}

impl ServiceBuilder {
    /// The fabric the allocator serves (required).
    pub fn fabric(mut self, fabric: &TwoTierClos) -> Self {
        self.fabric = Some(fabric.clone());
        self
    }

    /// Replaces the whole configuration (defaults to
    /// [`FlowtuneConfig::default`]).
    pub fn config(mut self, cfg: FlowtuneConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Selects the allocation engine (defaults to [`Engine::Serial`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the NED step size γ.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.cfg.gamma = gamma;
        self
    }

    /// Overrides the §6.4 update-suppression threshold.
    pub fn update_threshold(mut self, threshold: f64) -> Self {
        self.cfg.update_threshold = threshold;
        self
    }

    /// Overrides the engine iterations run per tick.
    pub fn iterations_per_tick(mut self, n: usize) -> Self {
        self.cfg.iterations_per_tick = n;
        self
    }

    /// Enables or disables F-NORM.
    pub fn f_norm(mut self, on: bool) -> Self {
        self.cfg.f_norm = on;
        self
    }

    /// Enables or disables incremental (dirty-set) ticks
    /// ([`crate::FlowtuneConfig::incremental`]; off by default).
    pub fn incremental(mut self, on: bool) -> Self {
        self.cfg.incremental = on;
        self
    }

    /// Sets the incremental mode's periodic full-sweep cadence in
    /// iterations ([`crate::FlowtuneConfig::full_sweep_every`]; 0 = never).
    pub fn full_sweep_every(mut self, iterations: u64) -> Self {
        self.cfg.full_sweep_every = iterations;
        self
    }

    /// Sets the incremental mode's price-movement threshold
    /// ([`crate::FlowtuneConfig::dirty_eps`]; 0.0 = exact, bit-for-bit
    /// equal to the full sweep).
    pub fn dirty_eps(mut self, eps: f64) -> Self {
        self.cfg.dirty_eps = eps;
        self
    }

    /// Sets the inter-shard exchange knobs as a group
    /// ([`crate::ExchangeConfig`]): cadence and delta filter land in the
    /// service config; the peer-runtime knobs (`round_timeout`,
    /// `max_rounds_behind`) only matter when the same `ExchangeConfig`
    /// is handed to a distributed `ShardPeer`. Only meaningful with
    /// [`Engine::Sharded`] via [`ServiceBuilder::build_driver`].
    pub fn exchange(mut self, exchange: crate::ExchangeConfig) -> Self {
        self.cfg.exchange_every = exchange.every;
        self.cfg.exchange_delta_eps = exchange.delta_eps;
        self
    }

    /// Sets the inter-shard link-state exchange cadence in ticks
    /// ([`crate::FlowtuneConfig::exchange_every`]; 0 disables). Only
    /// meaningful with [`Engine::Sharded`] via
    /// [`ServiceBuilder::build_driver`].
    #[deprecated(since = "0.9.0", note = "use `exchange(ExchangeConfig)` instead")]
    pub fn exchange_every(mut self, ticks: u64) -> Self {
        self.cfg.exchange_every = ticks;
        self
    }

    /// Sets the exchange's delta filter
    /// ([`crate::FlowtuneConfig::exchange_delta_eps`]): only links whose
    /// load, dual or Hessian moved by more than `eps` since their last
    /// shipped values are re-shipped in an exchange round.
    #[deprecated(since = "0.9.0", note = "use `exchange(ExchangeConfig)` instead")]
    pub fn exchange_delta_eps(mut self, eps: f64) -> Self {
        self.cfg.exchange_delta_eps = eps;
        self
    }

    /// Enables or disables the concurrent sharded tick
    /// ([`crate::FlowtuneConfig::parallel_shards`]; on by default). Only
    /// meaningful with [`Engine::Sharded`] and more than one shard.
    pub fn parallel_shards(mut self, on: bool) -> Self {
        self.cfg.parallel_shards = on;
        self
    }

    /// Selects how endpoints map to shards
    /// ([`crate::FlowtuneConfig::placement`]; defaults to
    /// [`crate::PlacementSpec::Contiguous`]). A
    /// [`crate::PlacementSpec::Traffic`] spec consumes the matrix set
    /// with [`ServiceBuilder::traffic_matrix`] and falls back to
    /// contiguous without one. Only meaningful with [`Engine::Sharded`]
    /// via [`ServiceBuilder::build_driver`].
    pub fn placement(mut self, spec: crate::PlacementSpec) -> Self {
        self.cfg.placement = spec;
        self
    }

    /// Supplies the rack-by-rack traffic matrix a
    /// [`crate::PlacementSpec::Traffic`] placement partitions by —
    /// sampled from the workload up front
    /// (`flowtune_workload::rack_traffic_matrix`) or exported by a
    /// running service
    /// ([`ShardedService::observed_matrix`](crate::ShardedService::observed_matrix)).
    pub fn traffic_matrix(mut self, matrix: crate::placement::TrafficMatrix) -> Self {
        self.matrix = Some(matrix);
        self
    }

    /// Builds the service over the chosen engine.
    ///
    /// # Errors
    /// [`ServiceError::MissingFabric`] if no fabric was supplied;
    /// [`ServiceError::ShardedNeedsDriver`] if the engine is
    /// [`Engine::Sharded`] (a sharded control plane is not a single
    /// `AllocatorService` — build it with
    /// [`ServiceBuilder::build_driver`]).
    pub fn build(self) -> Result<AllocatorService<BoxEngine>, ServiceError> {
        if matches!(self.engine, Engine::Sharded { .. }) {
            return Err(ServiceError::ShardedNeedsDriver);
        }
        let fabric = self.fabric.ok_or(ServiceError::MissingFabric)?;
        let alloc_cfg = alloc_config(&self.cfg);
        let engine: BoxEngine = match self.engine {
            Engine::Serial => Box::new(SerialAllocator::new(&fabric, alloc_cfg)),
            Engine::Multicore { workers } => Box::new(
                flowtune_alloc::MulticoreAllocator::with_workers(&fabric, alloc_cfg, workers),
            ),
            Engine::Fastpass => {
                // NED engines interpret iterations-per-tick as extra
                // optimization work inside the same 10 µs; the arbiter's
                // iterations *are* fabric time, so split the tick across
                // them to keep its clock honest.
                let iteration_ps =
                    self.cfg.tick_interval_ps / self.cfg.iterations_per_tick.max(1) as u64;
                Box::new(
                    FastpassAdapter::new(&fabric, alloc_cfg)
                        .with_iteration_time_ps(iteration_ps, fabric.config().host_link_bps),
                )
            }
            Engine::Gradient => {
                Box::new(flowtune_alloc::GradientAllocator::new(&fabric, alloc_cfg))
            }
            Engine::Sharded { .. } => unreachable!("rejected above"),
        };
        Ok(AllocatorService::from_parts(fabric, self.cfg, engine))
    }

    /// Builds a boxed [`TickDriver`](crate::TickDriver) over the chosen
    /// engine: a [`ShardedService`](crate::ShardedService) for
    /// [`Engine::Sharded`], a plain [`AllocatorService`] otherwise. This
    /// is the constructor for embedders (simulator, fluid driver,
    /// experiment binaries) whose shard count is configuration.
    ///
    /// # Errors
    /// [`ServiceError::MissingFabric`] without a fabric;
    /// [`ServiceError::BadShards`] for zero shards or nested sharding.
    pub fn build_driver(self) -> Result<crate::BoxTickDriver, ServiceError> {
        match self.engine {
            Engine::Sharded { shards, inner } => {
                if shards == 0 {
                    return Err(ServiceError::BadShards("shard count must be at least 1"));
                }
                if matches!(*inner, Engine::Sharded { .. }) {
                    return Err(ServiceError::BadShards("shards cannot nest"));
                }
                let fabric = self.fabric.ok_or(ServiceError::MissingFabric)?;
                let clos = fabric.config();
                let placement = match self.cfg.placement {
                    crate::PlacementSpec::Contiguous => {
                        crate::Placement::contiguous(clos.server_count(), shards)
                    }
                    crate::PlacementSpec::Traffic { refine } => {
                        // Without a matrix the placer has no signal, and
                        // Placement::traffic falls back to contiguous.
                        let racks = clos.server_count() / clos.servers_per_rack;
                        let empty = crate::placement::TrafficMatrix::new(racks);
                        crate::Placement::traffic(
                            clos.server_count(),
                            clos.servers_per_rack,
                            shards,
                            self.matrix.as_ref().unwrap_or(&empty),
                            refine,
                        )
                    }
                };
                let services = (0..shards)
                    .map(|_| {
                        ServiceBuilder {
                            fabric: Some(fabric.clone()),
                            cfg: self.cfg,
                            engine: (*inner).clone(),
                            matrix: None,
                        }
                        .build()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(crate::ShardedService::with_placement(
                    services, placement,
                )))
            }
            _ => Ok(Box::new(self.build()?)),
        }
    }
}

/// The §6.4 capacity/threshold coupling, shared by every engine path.
fn alloc_config(cfg: &FlowtuneConfig) -> AllocConfig {
    AllocConfig {
        gamma: cfg.gamma,
        f_norm: cfg.f_norm,
        capacity_fraction: cfg.capacity_fraction(),
        incremental: cfg.incremental,
        full_sweep_every: cfg.full_sweep_every,
        dirty_eps: cfg.dirty_eps,
    }
}

/// The centralized rate allocator (engine + F-NORM + update filtering),
/// generic over its [`RateAllocator`] engine. `AllocatorService` without
/// a type argument is the serial reference configuration;
/// [`AllocatorService::builder`] yields the boxed, run-time-chosen form
/// ([`DynAllocatorService`]).
#[derive(Debug)]
pub struct AllocatorService<E: RateAllocator = SerialAllocator> {
    fabric: TwoTierClos,
    engine: E,
    cfg: FlowtuneConfig,
    /// Token registry. A `BTreeMap` so `tick` walks tokens in sorted
    /// order directly — the per-tick collect-and-sort of the `HashMap`
    /// design cost `O(n log n)` per 10 µs tick at zero churn.
    registry: BTreeMap<Token, Registered>,
    /// Internal id → (token, source): the reverse lookup the changed-rate
    /// export needs to turn an engine's [`FlowRate`] back into a routed
    /// update without walking the whole registry.
    rev: HashMap<FlowId, (Token, u16)>,
    /// Scratch buffer the engine's changed-rate drain fills each tick.
    export_buf: Vec<FlowRate>,
    /// Scratch buffer for sorting the changed set into token order.
    changed_buf: Vec<(Token, u16, f64)>,
    filter: ThresholdFilter,
    next_internal: u64,
    stats: ServiceStats,
    timings: PhaseTimings,
}

/// An [`AllocatorService`] whose engine was chosen at run time.
pub type DynAllocatorService = AllocatorService<BoxEngine>;

impl AllocatorService {
    /// Builds the serial-engine service over `fabric` — the compile-time
    /// shortcut the simulator's defaults and the unit tests use. The
    /// §6.4 capacity headroom (`1 − update_threshold`) is applied to
    /// every link.
    pub fn new(fabric: &TwoTierClos, cfg: FlowtuneConfig) -> Self {
        let engine = SerialAllocator::new(fabric, alloc_config(&cfg));
        Self::with_engine(fabric, cfg, engine)
    }
}

impl AllocatorService<BoxEngine> {
    /// Starts configuring a service with a run-time engine choice.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }
}

impl<E: RateAllocator> AllocatorService<E> {
    /// Builds the service around an already-constructed engine. The
    /// engine must have been built over the same `fabric`.
    pub fn with_engine(fabric: &TwoTierClos, cfg: FlowtuneConfig, engine: E) -> Self {
        Self::from_parts(fabric.clone(), cfg, engine)
    }

    fn from_parts(fabric: TwoTierClos, cfg: FlowtuneConfig, engine: E) -> Self {
        Self {
            fabric,
            engine,
            cfg,
            registry: BTreeMap::new(),
            rev: HashMap::new(),
            export_buf: Vec::new(),
            changed_buf: Vec::new(),
            filter: ThresholdFilter::new(cfg.update_threshold),
            next_internal: 0,
            stats: ServiceStats::default(),
            timings: PhaseTimings::default(),
        }
    }

    /// Handles an endpoint notification. Unknown `FlowletEnd`s are
    /// ignored (the flowlet may have been re-keyed by an endpoint
    /// restart, or belong to a predecessor allocator).
    ///
    /// # Errors
    /// [`ServiceError::DuplicateToken`] if a `FlowletStart` reuses a
    /// token that is still active, [`ServiceError::UnexpectedRateUpdate`]
    /// if a `RateUpdate` is delivered to the allocator. Either way the
    /// message is dropped, [`ServiceStats::rejected`] is bumped, and the
    /// service remains consistent — rejecting is not fatal.
    pub fn on_message(&mut self, msg: Message) -> Result<(), ServiceError> {
        let t0 = Instant::now();
        let result = self.on_message_inner(msg);
        self.timings.intake += t0.elapsed();
        result
    }

    fn on_message_inner(&mut self, msg: Message) -> Result<(), ServiceError> {
        self.stats.bytes_in += msg.encoded_len() as u64;
        match msg {
            Message::FlowletStart {
                token,
                src,
                dst,
                weight_q8,
                spine,
                ..
            } => {
                if self.registry.contains_key(&token) {
                    self.stats.rejected += 1;
                    return Err(ServiceError::DuplicateToken(token));
                }
                // Endpoint fields come off the wire too: a corrupted
                // src/dst/spine must be a rejection, not an engine panic.
                let clos = self.fabric.config();
                let servers = clos.server_count();
                if src as usize >= servers
                    || dst as usize >= servers
                    || src == dst
                    || spine as usize >= clos.spines
                {
                    self.stats.rejected += 1;
                    return Err(ServiceError::MalformedStart(token));
                }
                self.register(token, src, dst, weight_q8, spine);
                self.stats.starts += 1;
                Ok(())
            }
            Message::FlowletEnd { token } => {
                if let Some(reg) = self.registry.remove(&token) {
                    self.engine.remove_flow(reg.internal);
                    self.rev.remove(&reg.internal);
                    self.filter.forget(token);
                    self.stats.ends += 1;
                }
                Ok(())
            }
            Message::RateUpdate { .. } => {
                self.stats.rejected += 1;
                Err(ServiceError::UnexpectedRateUpdate)
            }
        }
    }

    /// One allocator tick (§6.2: every 10 µs): runs the configured number
    /// of engine iterations and returns `(source server, update)` pairs
    /// for every flow whose normalized rate moved beyond the threshold.
    /// Updates come out in token order (the registry iterates sorted; an
    /// incremental engine's changed set is sorted before filtering).
    pub fn tick(&mut self) -> Vec<(u16, Message)> {
        let t0 = Instant::now();
        self.engine.run_iterations(self.cfg.iterations_per_tick);
        self.stats.iterations += self.cfg.iterations_per_tick as u64;
        let t1 = Instant::now();
        self.timings.allocate += t1 - t0;
        let out = if let Some((dirty_flows, dirty_links)) = self.engine.dirty_counters() {
            // The counters are running totals the engine owns; mirror
            // them so shard sums aggregate naturally.
            self.stats.dirty_flows = dirty_flows;
            self.stats.dirty_links = dirty_links;
            self.export_changed()
        } else {
            self.export_all()
        };
        self.timings.export += t1.elapsed();
        out
    }

    /// The classic export walk: every registered flow, in token order.
    fn export_all(&mut self) -> Vec<(u16, Message)> {
        // flowtune-lint: allow(hot-path-alloc, "export returns an owned batch by contract; zero-alloc callers use rates_into")
        let mut out = Vec::new();
        for (&token, reg) in &self.registry {
            let rate = self
                .engine
                .flow_rate(reg.internal)
                .expect("registered flow must be in the engine");
            let gbps = rate.normalized;
            if self.filter.should_send(token, gbps) {
                let msg = Message::RateUpdate {
                    token,
                    rate: Rate16::encode(gbps),
                };
                self.stats.bytes_out += msg.encoded_len() as u64;
                self.stats.updates_sent += 1;
                out.push((reg.src, msg));
            } else {
                self.stats.updates_suppressed += 1;
            }
        }
        out
    }

    /// The incremental export: drain the engine's changed-rate set, sort
    /// it into token order, and run only those flows through the filter.
    /// Flows the engine did not export cannot have moved, so the filter
    /// would suppress them without touching its memory — they are counted
    /// suppressed directly, keeping every [`ServiceStats`] counter equal
    /// to what [`AllocatorService::export_all`] would have produced.
    fn export_changed(&mut self) -> Vec<(u16, Message)> {
        if !self.engine.take_changed_rates(&mut self.export_buf) {
            return self.export_all();
        }
        self.changed_buf.clear();
        for r in &self.export_buf {
            let &(token, src) = self
                .rev
                .get(&r.id)
                .expect("exported flow must be registered");
            self.changed_buf.push((token, src, r.normalized));
        }
        self.changed_buf.sort_unstable_by_key(|e| e.0);
        // flowtune-lint: allow(hot-path-alloc, "export returns an owned batch by contract; zero-alloc callers use rates_into")
        let mut out = Vec::new();
        for i in 0..self.changed_buf.len() {
            let (token, src, gbps) = self.changed_buf[i];
            if self.filter.should_send(token, gbps) {
                let msg = Message::RateUpdate {
                    token,
                    rate: Rate16::encode(gbps),
                };
                self.stats.bytes_out += msg.encoded_len() as u64;
                self.stats.updates_sent += 1;
                out.push((src, msg));
            }
        }
        self.stats.updates_suppressed += self.registry.len() as u64 - out.len() as u64;
        out
    }

    /// Current normalized rate of an active flowlet, Gbit/s.
    pub fn flow_rate_gbps(&self, token: Token) -> Option<f64> {
        let reg = self.registry.get(&token)?;
        Some(self.engine.flow_rate(reg.internal)?.normalized)
    }

    /// Source server of an active flowlet — the key re-placement routing
    /// decisions are made on.
    pub fn flow_source(&self, token: Token) -> Option<u16> {
        Some(self.registry.get(&token)?.src)
    }

    /// Removes an active flowlet and returns its detached registration,
    /// for re-registration in another shard via
    /// [`AllocatorService::adopt_flow`]. Unlike a `FlowletEnd` this is a
    /// *migration*, not churn: no counter moves (`starts`/`ends`/bytes
    /// stay put, so aggregate stats are placement-invariant). The flow's
    /// threshold-filter memory is dropped — the adopting shard reports a
    /// fresh rate once the flow re-converges there.
    pub fn extract_flow(&mut self, token: Token) -> Option<FlowMigration> {
        let reg = self.registry.remove(&token)?;
        self.engine.remove_flow(reg.internal);
        self.rev.remove(&reg.internal);
        self.filter.forget(token);
        Some(FlowMigration {
            token,
            src: reg.src,
            dst: reg.dst,
            weight_q8: reg.weight_q8,
            spine: reg.spine,
        })
    }

    /// Registers a flowlet previously detached with
    /// [`AllocatorService::extract_flow`] — the receiving half of a
    /// migration. The flow re-enters the engine at its initial rate and
    /// re-converges under this shard's prices; the fields were validated
    /// at original intake, so only token freshness is re-checked. No
    /// counter moves.
    ///
    /// # Errors
    /// [`ServiceError::DuplicateToken`] if the token is already active
    /// here.
    pub fn adopt_flow(&mut self, m: FlowMigration) -> Result<(), ServiceError> {
        if self.registry.contains_key(&m.token) {
            return Err(ServiceError::DuplicateToken(m.token));
        }
        self.register(m.token, m.src, m.dst, m.weight_q8, m.spine);
        Ok(())
    }

    /// The single registration path intake and migration share: mint the
    /// internal id, decode the Q8 weight, build the path, seat the flow
    /// in the engine and the registry. One implementation, so migrated
    /// flows can never diverge from freshly started ones in weight or
    /// path rules. The token must be fresh and the endpoint fields
    /// validated by the caller.
    fn register(&mut self, token: Token, src: u16, dst: u16, weight_q8: u16, spine: u8) {
        let internal = FlowId(self.next_internal);
        self.next_internal += 1;
        let weight = if weight_q8 == 0 {
            self.cfg.default_weight
        } else {
            weight_q8 as f64 / 256.0
        };
        let path = self
            .fabric
            .path_via_spine(src as usize, dst as usize, spine as usize);
        self.engine
            .add_flow(internal, src as usize, dst as usize, weight, &path);
        self.registry.insert(
            token,
            Registered {
                internal,
                src,
                dst,
                weight_q8,
                spine,
            },
        );
        self.rev.insert(internal, (token, src));
    }

    /// Number of active flowlets.
    pub fn active_flows(&self) -> usize {
        self.registry.len()
    }

    /// Operating counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Cumulative per-phase wall time (intake / allocate / export; this
    /// unsharded service has no exchange phase).
    pub fn phase_timings(&self) -> PhaseTimings {
        self.timings
    }

    /// The fabric this allocator serves.
    pub fn fabric(&self) -> &TwoTierClos {
        &self.fabric
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> FlowtuneConfig {
        self.cfg
    }

    /// The engine's own per-link loads (raw rates summed per global link;
    /// see [`RateAllocator::link_loads`]). Empty for engines that do not
    /// price fabric links.
    pub fn link_loads(&self) -> Vec<f64> {
        self.engine.link_loads()
    }

    /// [`AllocatorService::link_loads`] into a caller-provided buffer
    /// (see [`RateAllocator::link_loads_into`]) — the allocation-free
    /// export the sharded exchange calls every round.
    pub fn link_loads_into(&self, out: &mut Vec<f64>) {
        self.engine.link_loads_into(out);
    }

    /// Installs an exogenous per-link load the engine prices alongside
    /// its own flows (see [`RateAllocator::set_background_loads`]) — the
    /// import half of the sharded control plane's link-state exchange.
    pub fn set_background_loads(&mut self, loads: &[f64]) {
        self.engine.set_background_loads(loads);
    }

    /// The engine's own per-link Hessian diagonal (see
    /// [`RateAllocator::link_hessians`]). Empty for engines without a
    /// second-order price term.
    pub fn link_hessians(&self) -> Vec<f64> {
        self.engine.link_hessians()
    }

    /// [`AllocatorService::link_hessians`] into a caller-provided buffer
    /// (see [`RateAllocator::link_hessians_into`]).
    pub fn link_hessians_into(&self, out: &mut Vec<f64>) {
        self.engine.link_hessians_into(out);
    }

    /// Installs the exogenous per-link Hessian diagonal accompanying the
    /// background loads (see [`RateAllocator::set_background_hessians`]).
    pub fn set_background_hessians(&mut self, hdiag: &[f64]) {
        self.engine.set_background_hessians(hdiag);
    }

    /// Every flow's current allocation into a caller-provided buffer
    /// (cleared first) — the allocation-free steady-state export (see
    /// [`RateAllocator::rates_into`]).
    pub fn rates_into(&self, out: &mut Vec<FlowRate>) {
        self.engine.rates_into(out);
    }

    /// The engine's current per-link duals (see
    /// [`RateAllocator::link_prices`]). Empty for engines that do not
    /// price fabric links.
    pub fn link_prices(&self) -> Vec<f64> {
        self.engine.link_prices()
    }

    /// [`AllocatorService::link_prices`] into a caller-provided buffer
    /// (see [`RateAllocator::link_prices_into`]).
    pub fn link_prices_into(&self, out: &mut Vec<f64>) {
        self.engine.link_prices_into(out);
    }

    /// Overwrites the engine's per-link duals with consensus values;
    /// `NaN` entries keep the current price (see
    /// [`RateAllocator::set_link_prices`]).
    pub fn set_link_prices(&mut self, prices: &[f64]) {
        self.engine.set_link_prices(prices);
    }

    /// The engine's short name (`serial` / `multicore` / `fastpass` /
    /// `gradient`).
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Read access to the engine, for engine-specific telemetry.
    pub fn engine(&self) -> &E {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtune_topo::ClosConfig;

    fn fabric() -> TwoTierClos {
        TwoTierClos::build(ClosConfig::paper_eval())
    }

    fn start(token: u32, src: u16, dst: u16) -> Message {
        Message::FlowletStart {
            token: Token::new(token),
            src,
            dst,
            size_hint: 100_000,
            weight_q8: 256,
            spine: 1,
        }
    }

    #[test]
    fn single_flow_gets_headroom_scaled_line_rate() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140)).unwrap();
        // A handful of 10 µs ticks converge the only flow to line rate
        // × 0.99 headroom.
        let mut last = Vec::new();
        for _ in 0..200 {
            last = svc.tick();
        }
        let rate = svc.flow_rate_gbps(Token::new(1)).unwrap();
        assert!((rate - 9.9).abs() < 0.05, "rate {rate}");
        // Converged ⇒ the filter suppresses further updates.
        assert!(last.is_empty(), "{last:?}");
    }

    #[test]
    fn updates_route_to_the_source_server() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 17, 99)).unwrap();
        let updates = svc.tick();
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].0, 17);
    }

    #[test]
    fn two_flows_share_fairly_and_end_frees() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140)).unwrap();
        svc.on_message(start(2, 1, 141)).unwrap(); // same rack 0 → shares nothing
        for _ in 0..100 {
            svc.tick();
        }
        // Different sources/destinations: both get full line rate.
        assert!((svc.flow_rate_gbps(Token::new(1)).unwrap() - 9.9).abs() < 0.05);
        assert!((svc.flow_rate_gbps(Token::new(2)).unwrap() - 9.9).abs() < 0.05);

        // Now two flows from the same source share its access link.
        svc.on_message(start(3, 0, 100)).unwrap();
        for _ in 0..200 {
            svc.tick();
        }
        let r1 = svc.flow_rate_gbps(Token::new(1)).unwrap();
        let r3 = svc.flow_rate_gbps(Token::new(3)).unwrap();
        assert!((r1 - 4.95).abs() < 0.1, "shared uplink: {r1}");
        assert!((r3 - 4.95).abs() < 0.1, "shared uplink: {r3}");

        svc.on_message(Message::FlowletEnd {
            token: Token::new(3),
        })
        .unwrap();
        for _ in 0..200 {
            svc.tick();
        }
        let r1 = svc.flow_rate_gbps(Token::new(1)).unwrap();
        assert!((r1 - 9.9).abs() < 0.05, "back to line rate: {r1}");
        assert_eq!(svc.active_flows(), 2);
    }

    #[test]
    fn threshold_suppresses_steady_state_updates() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140)).unwrap();
        for _ in 0..100 {
            svc.tick();
        }
        let before = svc.stats().updates_sent;
        for _ in 0..100 {
            let updates = svc.tick();
            assert!(updates.is_empty());
        }
        assert_eq!(svc.stats().updates_sent, before);
        assert!(svc.stats().updates_suppressed > 0);
    }

    #[test]
    fn unknown_end_is_ignored() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(Message::FlowletEnd {
            token: Token::new(9),
        })
        .unwrap();
        assert_eq!(svc.active_flows(), 0);
        assert_eq!(svc.stats().ends, 0);
    }

    #[test]
    fn byte_accounting_matches_wire_sizes() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140)).unwrap();
        svc.on_message(Message::FlowletEnd {
            token: Token::new(1),
        })
        .unwrap();
        assert_eq!(svc.stats().bytes_in, 16 + 4);
    }

    #[test]
    fn duplicate_active_token_is_rejected_not_fatal() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        svc.on_message(start(1, 0, 140)).unwrap();
        let err = svc.on_message(start(1, 2, 141)).unwrap_err();
        assert_eq!(err, ServiceError::DuplicateToken(Token::new(1)));
        assert_eq!(svc.stats().rejected, 1);
        assert_eq!(svc.stats().starts, 1, "original registration kept");
        // The service still operates: the original flow converges.
        for _ in 0..100 {
            svc.tick();
        }
        assert!(svc.flow_rate_gbps(Token::new(1)).unwrap() > 9.0);
    }

    #[test]
    fn corrupt_endpoint_fields_are_rejected_not_fatal() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        let mk = |token: u32, src: u16, dst: u16, spine: u8| Message::FlowletStart {
            token: Token::new(token),
            src,
            dst,
            size_hint: 1,
            weight_q8: 256,
            spine,
        };
        // src == dst, endpoint out of range, spine out of range: each a
        // rejection, none a panic.
        for (i, msg) in [
            mk(1, 5, 5, 1),
            mk(2, 9999, 0, 1),
            mk(3, 0, 9999, 1),
            mk(4, 0, 140, 200),
        ]
        .into_iter()
        .enumerate()
        {
            let err = svc.on_message(msg).unwrap_err();
            assert!(matches!(err, ServiceError::MalformedStart(_)), "{err}");
            assert_eq!(svc.stats().rejected, i as u64 + 1);
        }
        assert_eq!(svc.active_flows(), 0);
        // The service is unharmed: a valid start still converges.
        svc.on_message(start(5, 0, 140)).unwrap();
        for _ in 0..100 {
            svc.tick();
        }
        assert!(svc.flow_rate_gbps(Token::new(5)).unwrap() > 9.0);
    }

    #[test]
    fn rate_update_to_allocator_is_rejected() {
        let mut svc = AllocatorService::new(&fabric(), FlowtuneConfig::default());
        let msg = Message::RateUpdate {
            token: Token::new(5),
            rate: Rate16::encode(1.0),
        };
        assert_eq!(svc.on_message(msg), Err(ServiceError::UnexpectedRateUpdate));
        assert_eq!(svc.stats().rejected, 1);
    }

    #[test]
    fn builder_requires_a_fabric() {
        let err = AllocatorService::builder().build().unwrap_err();
        assert_eq!(err, ServiceError::MissingFabric);
    }

    #[test]
    fn builder_overrides_reach_the_config() {
        let svc = AllocatorService::builder()
            .fabric(&fabric())
            .gamma(0.7)
            .update_threshold(0.02)
            .iterations_per_tick(3)
            .f_norm(true)
            .build()
            .unwrap();
        assert_eq!(svc.cfg.gamma, 0.7);
        assert_eq!(svc.cfg.update_threshold, 0.02);
        assert_eq!(svc.cfg.iterations_per_tick, 3);
        assert_eq!(svc.engine_name(), "serial");
    }

    #[test]
    fn grouped_exchange_config_reaches_the_flat_config() {
        let svc = AllocatorService::builder()
            .fabric(&fabric())
            .exchange(crate::ExchangeConfig::default().every(4).delta_eps(1e-6))
            .build()
            .unwrap();
        assert_eq!(svc.cfg.exchange_every, 4);
        assert_eq!(svc.cfg.exchange_delta_eps, 1e-6);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_exchange_setters_still_forward() {
        // The pre-grouping per-knob setters must keep working while
        // callers migrate to `exchange(ExchangeConfig)`.
        let svc = AllocatorService::builder()
            .fabric(&fabric())
            .exchange_every(3)
            .exchange_delta_eps(0.25)
            .build()
            .unwrap();
        assert_eq!(svc.cfg.exchange_every, 3);
        assert_eq!(svc.cfg.exchange_delta_eps, 0.25);
    }

    #[test]
    fn engine_parse_roundtrips_names() {
        for engine in [
            Engine::Serial,
            Engine::Multicore { workers: 0 },
            Engine::Fastpass,
            Engine::Gradient,
        ] {
            assert_eq!(Engine::parse(engine.name()), Ok(engine));
        }
    }

    #[test]
    fn engine_parse_error_lists_valid_names() {
        let err = Engine::parse("warp-drive").unwrap_err();
        assert_eq!(err.got(), "warp-drive");
        let msg = err.to_string();
        assert!(msg.contains("unknown engine `warp-drive`"), "{msg}");
        for name in ENGINE_NAMES {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn sharded_engine_needs_the_driver_constructor() {
        let err = AllocatorService::builder()
            .fabric(&fabric())
            .engine(Engine::Serial.sharded(2))
            .build()
            .unwrap_err();
        assert_eq!(err, ServiceError::ShardedNeedsDriver);
    }

    #[test]
    fn build_driver_rejects_degenerate_shard_specs() {
        let err = AllocatorService::builder()
            .fabric(&fabric())
            .engine(Engine::Serial.sharded(0))
            .build_driver()
            .unwrap_err();
        assert!(matches!(err, ServiceError::BadShards(_)), "{err}");
        let err = AllocatorService::builder()
            .fabric(&fabric())
            .engine(Engine::Serial.sharded(2).sharded(2))
            .build_driver()
            .unwrap_err();
        assert!(matches!(err, ServiceError::BadShards(_)), "{err}");
    }

    #[test]
    fn build_driver_builds_plain_and_sharded_services() {
        let f = fabric();
        for (engine, name) in [
            (Engine::Serial, "serial"),
            (Engine::Gradient, "gradient"),
            (Engine::Serial.sharded(3), "sharded"),
        ] {
            let mut drv = AllocatorService::builder()
                .fabric(&f)
                .engine(engine)
                .build_driver()
                .unwrap();
            assert_eq!(drv.engine_name(), name);
            drv.on_message(start(1, 0, 140)).unwrap();
            let updates = drv.tick();
            assert_eq!(updates.len(), 1);
            assert_eq!(updates[0].0, 0);
        }
    }
}
